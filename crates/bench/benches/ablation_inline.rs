//! E11 — §7.1 design ablation: call-site patching with inlining (the
//! shipped design) vs. no inlining vs. entry-only redirection (the
//! body-patching-like alternative the paper rejected).
//!
//! The native-layer dispatch cell is benchmarked alongside as the
//! function-pointer alternative of §7.2, measured in real host time.

use criterion::{criterion_group, criterion_main, Criterion};
use multiverse::bench::render_table;
use multiverse::native::{MvBool, MvFn0};

static FEATURE: MvBool = MvBool::new(false);

fn generic() -> u64 {
    if FEATURE.read() {
        2
    } else {
        1
    }
}
fn spec_off() -> u64 {
    1
}

static CELL: MvFn0<u64> = MvFn0::new(&[generic, spec_off]);

#[inline(never)]
fn direct() -> u64 {
    1
}

fn bench(c: &mut Criterion) {
    println!(
        "{}",
        render_table(
            "E11 — patching strategies (musl fputc, single-threaded)",
            &mv_bench::inline_ablation_data()
        )
    );

    // Host-side: the §7.2 comparison — dynamic branch vs. fn-pointer cell
    // vs. direct call, in real nanoseconds.
    let mut g = c.benchmark_group("native_dispatch");
    g.bench_function("dynamic_branch", |b| {
        b.iter(|| std::hint::black_box(generic()))
    });
    CELL.bind(1);
    g.bench_function("mvfn_cell_committed", |b| {
        b.iter(|| std::hint::black_box(CELL.call()))
    });
    g.bench_function("direct_call", |b| b.iter(|| std::hint::black_box(direct())));
    CELL.revert();
    g.finish();
}

criterion_group! {
    name = benches;
    // Simulated workloads are deterministic; short sampling keeps the
    // full suite fast without changing any conclusion.
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(1));
    targets = bench
}
criterion_main!(benches);
