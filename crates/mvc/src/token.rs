//! Tokens of the MVC language.

use core::fmt;

/// Source position (1-based line and column).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Pos {
    /// Line number, starting at 1.
    pub line: u32,
    /// Column number, starting at 1.
    pub col: u32,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A lexical token.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Tok {
    /// Identifier.
    Ident(String),
    /// Integer literal (decimal, hex `0x…`, or char `'a'`).
    Int(i64),
    /// Keyword.
    Kw(Kw),
    /// Punctuation / operator.
    P(P),
    /// End of input.
    Eof,
}

/// Keywords.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[allow(missing_docs)]
pub enum Kw {
    Void,
    Bool,
    I8,
    I16,
    I32,
    I64,
    U8,
    U16,
    U32,
    U64,
    Enum,
    Fnptr,
    If,
    Else,
    While,
    For,
    Return,
    Break,
    Continue,
    True,
    False,
    Multiverse,
    PvopCc,
    Extern,
    Static,
}

impl Kw {
    /// Looks up a keyword by spelling.
    pub fn lookup(s: &str) -> Option<Kw> {
        Some(match s {
            "void" => Kw::Void,
            "bool" => Kw::Bool,
            "i8" => Kw::I8,
            "i16" => Kw::I16,
            "i32" => Kw::I32,
            "i64" => Kw::I64,
            "u8" => Kw::U8,
            "u16" => Kw::U16,
            "u32" => Kw::U32,
            "u64" => Kw::U64,
            "int" => Kw::I32,
            "long" => Kw::I64,
            "char" => Kw::U8,
            "enum" => Kw::Enum,
            "fnptr" => Kw::Fnptr,
            "if" => Kw::If,
            "else" => Kw::Else,
            "while" => Kw::While,
            "for" => Kw::For,
            "return" => Kw::Return,
            "break" => Kw::Break,
            "continue" => Kw::Continue,
            "true" => Kw::True,
            "false" => Kw::False,
            "multiverse" => Kw::Multiverse,
            "pvop_cc" => Kw::PvopCc,
            "extern" => Kw::Extern,
            "static" => Kw::Static,
            _ => return None,
        })
    }
}

/// Punctuation and operators.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[allow(missing_docs)]
pub enum P {
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semi,
    Comma,
    Assign,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Amp,
    Pipe,
    Caret,
    Tilde,
    Bang,
    Lt,
    Gt,
    Le,
    Ge,
    EqEq,
    Ne,
    AndAnd,
    OrOr,
    Shl,
    Shr,
    PlusEq,
    MinusEq,
    PlusPlus,
    MinusMinus,
}

/// A token with its source position.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Token {
    /// The token.
    pub tok: Tok,
    /// Where it starts.
    pub pos: Pos,
}
