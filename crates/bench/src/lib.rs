#![warn(missing_docs)]
//! The benchmark harness: one data builder per table/figure of the
//! paper's evaluation (§6), shared by the Criterion benches and the
//! `paper_tables` binary.
//!
//! | builder | paper artifact |
//! |---|---|
//! | [`fig1_data`] | Fig. 1 — static/dynamic/multiverse spinlock table |
//! | [`fig4_spinlock_data`] | Fig. 4 left — four kernels × {unicore, multicore} |
//! | [`fig4_pvops_data`] | Fig. 4 right — three kernels × {native, Xen guest} |
//! | [`fig5_data`] | Fig. 5 — musl, four libc functions × thread modes |
//! | [`grep_data`] | §6.2.3 — grep end-to-end |
//! | [`cpython_data`] | §6.2.1 — cPython allocation path |
//! | [`patch_stats_data`] | §6.1/§5 — call sites, patch time, size model |
//! | [`btb_data`] | footnote 1 / E10 — warm vs. cold predictors |
//! | [`inline_ablation_data`] | §7.1 / E11 — inlining and patch strategy |
//! | [`smp_commit_data`] | E15 — quiesced commit under SMP contention |
//! | [`commit_storm_data`] | mvd control plane — coalesced flip storms |
//!
//! All numbers are deterministic VM cycles from the `mvvm` cost model;
//! the Criterion benches additionally measure host-side throughput (and,
//! for the native layer, real dispatch latencies).

use multiverse::bench::Series;
use multiverse::mvrt::{CommitStrategy, PatchStrategy};
use multiverse::mvvm::{ExecTier, MachineMode, Platform};
use multiverse::{mvasm, mvobj, Program};
use mv_workloads::{commit_storm, cpython, grep, musl, pvops, smp_contention, spinlock, textgen};

/// Iterations used for cycle-average tables (paper: 100 M; scaled for an
/// interpreted substrate — averages are exact either way because the
/// machine is deterministic).
pub const ITERS: u64 = 20_000;

/// Fig. 1: `spin_irq_lock` average cycles for bindings A/B/C, in UP and
/// SMP machine state.
pub fn fig1_data() -> Vec<Series> {
    let mut rows = Vec::new();
    let configs = [
        ("A (static #ifdef)", None),
        ("B (dynamic if)", Some(spinlock::KernelBuild::ElisionIf)),
        (
            "C (multiverse)",
            Some(spinlock::KernelBuild::ElisionMultiverse),
        ),
    ];
    for (label, build) in configs {
        let mut s = Series::new(label);
        for (col, mode) in [
            ("SMP=false", MachineMode::Unicore),
            ("SMP=true", MachineMode::Multicore),
        ] {
            // Binding A uses the UP kernel for SMP=false and the mainline
            // kernel for SMP=true (two different compile-time worlds).
            let kind = build.unwrap_or(match mode {
                MachineMode::Unicore => spinlock::KernelBuild::IfdefOff,
                MachineMode::Multicore => spinlock::KernelBuild::NoElision,
            });
            let mut w = spinlock::boot(kind, mode).expect("boot");
            s.point(col, spinlock::measure_lock(&mut w, ITERS).expect("measure"));
        }
        rows.push(s);
    }
    rows
}

/// Fig. 4 (left): lock+unlock cycles for the four kernels.
pub fn fig4_spinlock_data() -> Vec<Series> {
    let mut rows = Vec::new();
    for kind in [
        spinlock::KernelBuild::NoElision,
        spinlock::KernelBuild::ElisionIf,
        spinlock::KernelBuild::ElisionMultiverse,
        spinlock::KernelBuild::IfdefOff,
    ] {
        let mut s = Series::new(kind.label());
        for (col, mode) in [
            ("Unicore", MachineMode::Unicore),
            ("Multicore", MachineMode::Multicore),
        ] {
            if kind == spinlock::KernelBuild::IfdefOff && mode == MachineMode::Multicore {
                continue; // statically determined to UP (Fig. 4)
            }
            let mut w = spinlock::boot(kind, mode).expect("boot");
            s.point(col, spinlock::measure_pair(&mut w, ITERS).expect("measure"));
        }
        rows.push(s);
    }
    rows
}

/// Fig. 4 (right): `sti`+`cli` cycles for the three PV kernels.
pub fn fig4_pvops_data() -> Vec<Series> {
    let mut rows = Vec::new();
    for build in [
        pvops::PvBuild::Current,
        pvops::PvBuild::Multiverse,
        pvops::PvBuild::IfdefDisabled,
    ] {
        let mut s = Series::new(build.label());
        for (col, platform) in [
            ("Native", Platform::Native),
            ("XEN (guest)", Platform::XenGuest),
        ] {
            let mut w = pvops::boot(build, platform).expect("boot");
            s.point(col, pvops::measure(&mut w, ITERS).expect("measure"));
        }
        rows.push(s);
    }
    rows
}

/// Fig. 5: mini-musl accumulated cycles for 4 libc functions ×
/// {single, multi} × {w/o, w/} multiverse. Values are cycles per call.
pub fn fig5_data(n: u64) -> Vec<Series> {
    let mut rows = Vec::new();
    for threads in [musl::ThreadMode::Single, musl::ThreadMode::Multi] {
        for build in [musl::MuslBuild::Without, musl::MuslBuild::With] {
            let mut s = Series::new(&format!("{} | {}", threads.label(), build.label()));
            for f in musl::LibcFn::all() {
                let mut w = musl::boot(build, threads).expect("boot");
                let (cycles, _) = musl::run_bench(&mut w, f, n).expect("bench");
                s.point(f.label(), cycles as f64 / n as f64);
            }
            rows.push(s);
        }
    }
    rows
}

/// §6.2.3: grep end-to-end cycles and the relative improvement.
pub fn grep_data(corpus_size: usize) -> (Vec<Series>, f64) {
    let corpus = textgen::hex_corpus(corpus_size, 2019);
    let mut without = grep::boot(grep::GrepBuild::Without, &corpus, false).expect("boot");
    let (matches_a, c_without) = grep::run(&mut without, corpus.len()).expect("run");
    let mut with = grep::boot(grep::GrepBuild::With, &corpus, false).expect("boot");
    let (matches_b, c_with) = grep::run(&mut with, corpus.len()).expect("run");
    assert_eq!(matches_a, matches_b, "soundness: identical match counts");
    let improvement = 1.0 - c_with as f64 / c_without as f64;
    let mut s = Series::new("grep 'a.a' (end-to-end cycles)");
    s.point("w/o Multiverse", c_without as f64);
    s.point("w/ Multiverse", c_with as f64);
    s.point("matches", matches_a as f64);
    (vec![s], improvement)
}

/// §6.2.1: cPython allocation path, GC disabled.
pub fn cpython_data(n: u64) -> (Vec<Series>, f64) {
    let without = cpython::run(
        &mut cpython::boot(cpython::PyBuild::Without, false).unwrap(),
        n,
    )
    .expect("run");
    let with = cpython::run(
        &mut cpython::boot(cpython::PyBuild::With, false).unwrap(),
        n,
    )
    .expect("run");
    let mut s = Series::new("_PyObject_GC_Alloc (cycles/alloc, gc disabled)");
    s.point("w/o Multiverse", without as f64 / n as f64);
    s.point("w/ Multiverse", with as f64 / n as f64);
    let delta = 1.0 - with as f64 / without as f64;
    (vec![s], delta)
}

/// Synthesizes a program with `n_sites` recorded call sites of one
/// multiversed function — the §6.1 "1161 call sites" experiment.
pub fn many_callsites_src(n_sites: usize) -> String {
    let mut src = String::from(
        "multiverse bool feature;\n\
         multiverse void hot(void) { if (feature) { __out(1); } }\n",
    );
    // Spread the sites over many small callers, like the kernel's 1161
    // spinlock sites spread over the whole text segment.
    let per_fn = 8;
    let n_fns = n_sites.div_ceil(per_fn);
    let mut emitted = 0;
    for i in 0..n_fns {
        src.push_str(&format!("void caller{i}(void) {{\n"));
        for _ in 0..per_fn.min(n_sites - emitted) {
            src.push_str("    hot();\n");
            emitted += 1;
        }
        src.push_str("}\n");
    }
    src.push_str("i64 main(void) { return 0; }\n");
    src
}

/// §6.1 + §5 accounting: call sites patched, host patch time, image-size
/// delta, descriptor-section sizes.
pub struct PatchStatsReport {
    /// Number of recorded call sites.
    pub call_sites: u64,
    /// Host wall time for one full commit.
    pub commit_time: std::time::Duration,
    /// Image size with multiverse (bytes).
    pub mv_image: u64,
    /// Image size of the plain dynamic build (bytes).
    pub dyn_image: u64,
    /// Size of `multiverse.variables`.
    pub sec_vars: u64,
    /// Size of `multiverse.functions`.
    pub sec_funcs: u64,
    /// Size of `multiverse.callsites`.
    pub sec_sites: u64,
}

/// Builds the many-call-sites program and measures one commit.
pub fn patch_stats_data(n_sites: usize) -> PatchStatsReport {
    let src = many_callsites_src(n_sites);
    let mv = Program::build(&[("sites.c", &src)]).expect("build");
    let dynb = Program::build_with(&[("sites.c", &src)], &multiverse::mvc::Options::dynamic())
        .expect("build");
    let mut w = mv.boot();
    w.set("feature", 1).unwrap();
    let t0 = std::time::Instant::now();
    w.commit().unwrap();
    let commit_time = t0.elapsed();
    let rt = w.rt.as_ref().expect("runtime attached");
    let exe = mv.exe();
    PatchStatsReport {
        call_sites: rt.num_callsites() as u64,
        commit_time,
        mv_image: mv.image_size(),
        dyn_image: dynb.image_size(),
        sec_vars: exe.section(multiverse::mvobj::SEC_MV_VARIABLES).1,
        sec_funcs: exe.section(multiverse::mvobj::SEC_MV_FUNCTIONS).1,
        sec_sites: exe.section(multiverse::mvobj::SEC_MV_CALLSITES).1,
    }
}

/// One mode-column of [`fast_path_data`]: the patching-cost profile of a
/// first commit and an immediate re-commit under one apply discipline.
#[derive(Clone, Copy, Debug)]
pub struct FastPathRow {
    /// `"batched"` or `"per-site"`.
    pub mode: &'static str,
    /// Stats delta of the first (cold) commit.
    pub first: multiverse::mvrt::PatchStats,
    /// Host wall time of the first commit.
    pub first_time: std::time::Duration,
    /// Stats delta of the immediate re-commit (the delta-planning fast
    /// path: should plan zero writes).
    pub recommit: multiverse::mvrt::PatchStats,
    /// Host wall time of the re-commit.
    pub recommit_time: std::time::Duration,
    /// Total recorded call sites in the workload.
    pub call_sites: u64,
}

/// E7's new columns: batched vs per-site apply and first-commit vs
/// re-commit, on the `n_sites` workload. The interesting claims:
/// batched `mprotects`/`icache_flushes` drop from O(sites) to O(pages),
/// and the re-commit row performs zero journal entries and zero byte
/// writes in either mode.
pub fn fast_path_data(n_sites: usize) -> Vec<FastPathRow> {
    let src = many_callsites_src(n_sites);
    let program = Program::build(&[("sites.c", &src)]).expect("build");
    let mut rows = Vec::new();
    for (mode, batch) in [("batched", true), ("per-site", false)] {
        let mut w = program.boot();
        w.set("feature", 1).unwrap();
        w.rt.as_mut().expect("runtime").batch_pages = batch;
        let before = w.rt.as_ref().unwrap().stats;
        let t0 = std::time::Instant::now();
        w.commit().expect("commit");
        let first_time = t0.elapsed();
        let mid = w.rt.as_ref().unwrap().stats;
        let t0 = std::time::Instant::now();
        w.commit().expect("re-commit");
        let recommit_time = t0.elapsed();
        let rt = w.rt.as_ref().unwrap();
        rows.push(FastPathRow {
            mode,
            first: mid.since(&before),
            first_time,
            recommit: rt.stats.since(&mid),
            recommit_time,
            call_sites: rt.num_callsites() as u64,
        });
    }
    rows
}

/// One row of [`commit_latency_percentiles`]: the latency distribution
/// of one commit phase (or the whole transaction) in microseconds.
#[derive(Clone, Copy, Debug)]
pub struct PhaseLatency {
    /// `"plan"`, `"validate"`, `"apply"` or `"total"`.
    pub phase: &'static str,
    /// Median.
    pub p50_us: f64,
    /// 95th percentile.
    pub p95_us: f64,
    /// Maximum.
    pub max_us: f64,
}

fn percentile_us(sorted_ns: &[u64], q: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ns.len() - 1) as f64 * q).round() as usize;
    sorted_ns[idx] as f64 / 1e3
}

/// §6.1, event-derived: per-phase commit-latency distribution over
/// `rounds` commit+revert pairs on the `n_sites` program. Unlike an
/// outer stopwatch (which only sees the total), the trace ring carries
/// `phase_begin`/`phase_end` pairs, so plan, validate and apply get
/// their own p50/p95/max — the breakdown behind the paper's single
/// "≈16 ms" number. Both commits and reverts contribute samples.
pub fn commit_latency_percentiles(n_sites: usize, rounds: usize) -> Vec<PhaseLatency> {
    use multiverse::mvtrace::{build_spans, Phase};
    let src = many_callsites_src(n_sites);
    let program = Program::build(&[("sites.c", &src)]).expect("build");
    let mut w = program.boot();
    w.set("feature", 1).unwrap();
    let (mut plan, mut validate, mut apply, mut total) =
        (Vec::new(), Vec::new(), Vec::new(), Vec::new());
    for _ in 0..rounds {
        // A fresh ring per round: at kernel scale one commit emits a
        // point event per site, so accumulating rounds in one bounded
        // ring would drop the oldest samples.
        w.rt.as_mut().unwrap().enable_tracing(1 << 16);
        w.commit().expect("commit");
        w.revert().expect("revert");
        let events = w.rt.as_mut().unwrap().take_trace();
        let forest = build_spans(&events);
        for c in &forest.commits {
            plan.extend(c.phase_durations_ns(Phase::Plan));
            validate.extend(c.phase_durations_ns(Phase::Validate));
            apply.extend(c.phase_durations_ns(Phase::Apply));
            total.push(c.duration_ns());
        }
    }
    multiverse::mvtrace::set_enabled(false);
    [
        ("plan", plan),
        ("validate", validate),
        ("apply", apply),
        ("total", total),
    ]
    .into_iter()
    .map(|(phase, mut ns)| {
        ns.sort_unstable();
        PhaseLatency {
            phase,
            p50_us: percentile_us(&ns, 0.50),
            p95_us: percentile_us(&ns, 0.95),
            max_us: percentile_us(&ns, 1.0),
        }
    })
    .collect()
}

/// Renders [`commit_latency_percentiles`] rows as an aligned table.
pub fn render_latency_table(rows: &[PhaseLatency]) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<10} {:>10} {:>10} {:>10}",
        "phase", "p50 (µs)", "p95 (µs)", "max (µs)"
    );
    for r in rows {
        let _ = writeln!(
            s,
            "{:<10} {:>10.1} {:>10.1} {:>10.1}",
            r.phase, r.p50_us, r.p95_us, r.max_us
        );
    }
    s
}

/// Best-of batched commit+revert wall times for the tracing overhead
/// column: `(baseline, recording, disabled)`.
///
/// * `baseline` — tracing never enabled (the default every user gets);
/// * `recording` — a 2^16-event ring installed and the global flag on;
/// * `disabled` — ring drained and flag off again, i.e. the steady-state
///   cost of the instrumentation points themselves: one branch per
///   would-be event. The acceptance bar is `disabled` within ≈1 % of
///   `baseline`.
pub fn tracing_overhead(
    n_sites: usize,
) -> (
    std::time::Duration,
    std::time::Duration,
    std::time::Duration,
) {
    use std::time::Instant;
    let src = many_callsites_src(n_sites);
    let program = Program::build(&[("sites.c", &src)]).expect("build");
    let mut w = program.boot();
    w.set("feature", 1).unwrap();
    let batch = |w: &mut multiverse::World| {
        let mut best = std::time::Duration::MAX;
        for _ in 0..5 {
            let start = Instant::now();
            for _ in 0..20 {
                w.commit().expect("commit");
                w.revert().expect("revert");
            }
            best = best.min(start.elapsed() / 20);
        }
        best
    };
    // Warm-up, then measure with the tracer absent (the default).
    for _ in 0..5 {
        w.commit().unwrap();
        w.revert().unwrap();
    }
    let baseline = batch(&mut w);
    w.rt.as_mut().unwrap().enable_tracing(1 << 16);
    let recording = batch(&mut w);
    multiverse::mvtrace::set_enabled(false);
    w.rt.as_mut().unwrap().take_trace();
    let disabled = batch(&mut w);
    (baseline, recording, disabled)
}

/// Best-of batched commit+revert wall times for the metrics overhead
/// column: `(baseline, enabled, disabled)`.
///
/// * `baseline` — no registry attached (the default every user gets);
/// * `enabled` — an enabled `mvmetrics` registry, every commit mirrored
///   into the `mv_rt_*` counter families;
/// * `disabled` — registry attached but switched off: each recording
///   point is one relaxed atomic load. The acceptance bar is `enabled`
///   within ≈5 % of `baseline` (see `metrics_overhead_quick`).
pub fn metrics_overhead(
    n_sites: usize,
) -> (
    std::time::Duration,
    std::time::Duration,
    std::time::Duration,
) {
    use std::time::Instant;
    let src = many_callsites_src(n_sites);
    let program = Program::build(&[("sites.c", &src)]).expect("build");
    let mut w = program.boot();
    w.set("feature", 1).unwrap();
    let batch = |w: &mut multiverse::World| {
        let mut best = std::time::Duration::MAX;
        for _ in 0..5 {
            let start = Instant::now();
            for _ in 0..20 {
                w.commit().expect("commit");
                w.revert().expect("revert");
            }
            best = best.min(start.elapsed() / 20);
        }
        best
    };
    for _ in 0..5 {
        w.commit().unwrap();
        w.revert().unwrap();
    }
    let baseline = batch(&mut w);
    let registry = multiverse::mvmetrics::Registry::new();
    w.enable_metrics(&registry);
    let enabled = batch(&mut w);
    registry.set_enabled(false);
    let disabled = batch(&mut w);
    (baseline, enabled, disabled)
}

/// Synthesizes the compile-cost workload: `n_funcs` multiversed
/// functions, each reading `n_switches` switches with `domain`-value
/// domains — `domain^n_switches` clones per function before merging.
///
/// The bodies are built so the merge stage has real work: each function
/// only distinguishes *whether* a switch is zero, so for `domain > 2`
/// all non-zero values of a switch collapse into one merged variant
/// (Fig. 2 at scale).
pub fn compile_cost_src(n_funcs: usize, n_switches: usize, domain: usize) -> String {
    use std::fmt::Write as _;
    let mut src = String::new();
    for s in 0..n_switches {
        let dom: Vec<String> = (0..domain as i64).map(|v| v.to_string()).collect();
        let _ = writeln!(src, "multiverse({}) i32 s{s};", dom.join(", "));
    }
    for f in 0..n_funcs {
        let _ = writeln!(src, "multiverse i64 f{f}(void) {{\n    i64 acc = {f};");
        for s in 0..n_switches {
            // Scaled powers of two keep every subset sum distinct, so the
            // folded bodies never collide and merging yields exactly
            // 2^n_switches variants per function.
            let _ = writeln!(src, "    if (s{s}) {{ acc = acc + {}; }}", (f + 1) << s);
        }
        let _ = writeln!(src, "    return acc;\n}}");
    }
    src.push_str("i64 main(void) { return ");
    src.push_str(
        &(0..n_funcs)
            .map(|f| format!("f{f}()"))
            .collect::<Vec<_>>()
            .join(" + "),
    );
    src.push_str("; }\n");
    src
}

/// One row of [`compile_cost_data`]: a (switch count, domain width)
/// configuration compiled four ways.
#[derive(Clone, Debug)]
pub struct CompileCostRow {
    /// Human label, e.g. `"4 fns × 3^4 assignments"`.
    pub config: String,
    /// Clones materialized in the cold sequential build.
    pub clones: u64,
    /// Variants emitted post-merge.
    pub variants: u64,
    /// Merge rate of the cold build (fraction of clones eliminated).
    pub merge_rate: f64,
    /// Cold sequential (`-j 1`, cache off) wall time.
    pub seq_cold: std::time::Duration,
    /// Cold parallel (`-j N`, cache off) wall time.
    pub par_cold: std::time::Duration,
    /// Warm (`-j 1`, cache hit for every function) wall time.
    pub cached: std::time::Duration,
    /// Clones materialized by the warm build (0 = every function hit).
    pub cached_clones: u64,
    /// `true` iff the sequential and parallel objects are byte-identical
    /// (fingerprint over sections, symbols and relocations).
    pub identical: bool,
}

/// §7.1's build-time table, extended with the pipeline's two levers:
/// thread-parallel clone+fold (`jobs`) and the content-keyed compile
/// cache. Each `(n_funcs, n_switches, domain)` configuration is
/// compiled sequentially-cold, parallel-cold, and sequentially-warm,
/// and the sequential/parallel objects are compared byte-for-byte.
pub fn compile_cost_data(configs: &[(usize, usize, usize)], jobs: usize) -> Vec<CompileCostRow> {
    use multiverse::mvc::{pipeline, Options, Pipeline};
    use std::time::Instant;
    let mut rows = Vec::new();
    for &(n_funcs, n_switches, domain) in configs {
        let src = compile_cost_src(n_funcs, n_switches, domain);
        let limit = domain.pow(n_switches as u32) * 2;
        let opts = |jobs: usize, cache: bool| Options {
            variant_limit: limit,
            jobs,
            cache,
            ..Options::default()
        };

        let mut seq = Pipeline::new(opts(1, false));
        let t0 = Instant::now();
        let (obj_seq, _) = seq.compile_unit(&src, "cost.c").expect("sequential build");
        let seq_cold = t0.elapsed();

        let mut par = Pipeline::new(opts(jobs, false));
        let t0 = Instant::now();
        let (obj_par, _) = par.compile_unit(&src, "cost.c").expect("parallel build");
        let par_cold = t0.elapsed();

        // Warm run: populate the cache once, then time the replay.
        pipeline::clear_compile_cache();
        Pipeline::new(opts(1, true))
            .compile_unit(&src, "cost.c")
            .expect("populate cache");
        let mut warm = Pipeline::new(opts(1, true));
        let t0 = Instant::now();
        let (obj_warm, _) = warm.compile_unit(&src, "cost.c").expect("cached build");
        let cached = t0.elapsed();

        let stats = seq.stats();
        rows.push(CompileCostRow {
            config: format!("{n_funcs} fns × {domain}^{n_switches} assignments"),
            clones: stats.clones,
            variants: stats.variants,
            merge_rate: stats.merge_rate(),
            seq_cold,
            par_cold,
            cached,
            cached_clones: warm.stats().clones,
            identical: obj_seq.fingerprint() == obj_par.fingerprint()
                && obj_par.fingerprint() == obj_warm.fingerprint(),
        });
    }
    rows
}

/// Renders [`compile_cost_data`] rows as an aligned table.
pub fn render_compile_cost_table(rows: &[CompileCostRow], jobs: usize) -> String {
    use std::fmt::Write as _;
    let ms = |d: std::time::Duration| d.as_secs_f64() * 1e3;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<28} {:>7} {:>8} {:>7} {:>10} {:>10} {:>10} {:>6}",
        "configuration",
        "clones",
        "variants",
        "merge%",
        "seq (ms)",
        format!("-j{jobs} (ms)"),
        "warm (ms)",
        "ident"
    );
    for r in rows {
        let _ = writeln!(
            s,
            "{:<28} {:>7} {:>8} {:>6.1}% {:>10.3} {:>10.3} {:>10.3} {:>6}",
            r.config,
            r.clones,
            r.variants,
            r.merge_rate * 100.0,
            ms(r.seq_cold),
            ms(r.par_cold),
            ms(r.cached),
            if r.identical { "yes" } else { "NO" }
        );
    }
    s
}

/// E10 — the footnote-1 ablation: dynamic `if` vs. multiverse under warm
/// and cold branch predictors.
///
/// Run in SMP state, where the feature test is a *taken* branch: a cold
/// predictor defaults to not-taken and eats the ≈16-cycle penalty on
/// every invocation — the "real kernel execution paths" situation §1
/// describes, which the tight-loop microbenchmark (warm column) hides.
/// The multiverse kernel has no feature branch left, so only the shared
/// return-stack misses remain.
pub fn btb_data() -> Vec<Series> {
    let n = 4000;
    let mut rows = Vec::new();
    for (label, kind) in [
        ("Lock Elision [if]", spinlock::KernelBuild::ElisionIf),
        (
            "Lock Elision [multiverse]",
            spinlock::KernelBuild::ElisionMultiverse,
        ),
    ] {
        let mut s = Series::new(label);
        for (col, cold) in [("warm BTB", false), ("cold BTB", true)] {
            let mut w = spinlock::boot(kind, MachineMode::Multicore).expect("boot");
            let t = w.time_calls("lock_unlock", &[], n, cold).expect("measure");
            s.point(col, t.avg_cycles);
        }
        rows.push(s);
    }
    rows
}

/// E11 — §7.1 ablations: call-site patching with inlining (the paper's
/// design), without inlining, and entry-only (body-patching-like)
/// redirection. Measured on single-threaded mini-musl `fputc`.
pub fn inline_ablation_data() -> Vec<Series> {
    let n = 4000;
    let configs: [(&str, PatchStrategy, bool); 3] = [
        (
            "call-site patching + inlining",
            PatchStrategy::CallSites,
            true,
        ),
        (
            "call-site patching, no inlining",
            PatchStrategy::CallSites,
            false,
        ),
        ("entry-only redirection", PatchStrategy::EntryOnly, true),
    ];
    let mut rows = Vec::new();
    for (label, strategy, inline) in configs {
        let program = Program::build(&[("musl.c", musl::SRC)]).expect("build");
        let mut w = program.boot();
        w.set("threads_minus_1", 0).unwrap();
        {
            let rt = w.rt.as_mut().expect("runtime");
            rt.strategy = strategy;
            rt.inline_enabled = inline;
        }
        w.commit().unwrap();
        let (cycles, _) = musl::run_bench(&mut w, musl::LibcFn::Fputc, n).expect("bench");
        let patched = w.rt.as_ref().unwrap().stats.sites_patched;
        let mut s = Series::new(label);
        s.point("cycles/call", cycles as f64 / n as f64);
        s.point("sites patched", patched as f64);
        rows.push(s);
    }
    rows
}

/// One (core count × strategy) cell of [`smp_commit_data`]: per-flip
/// quiesce cost on the E15 contention workload.
#[derive(Clone, Copy, Debug)]
pub struct SmpCommitRow {
    /// Quiesce protocol used for every flip.
    pub strategy: CommitStrategy,
    /// Worker vCPUs hammering the lock.
    pub vcpus: usize,
    /// Guest cycles of the quiesce window, per flip (max over vCPUs —
    /// the wall-clock commit latency under the cost model).
    pub commit_latency: f64,
    /// Worker stall cycles charged inside the window, per flip.
    pub stall_cycles: f64,
    /// Scheduler rounds spent in rendezvous/drain, per flip.
    pub rounds: f64,
    /// Breakpoint hits absorbed per flip (0 under stop-machine).
    pub trap_hits: f64,
    /// Steady-state cycles per lock/increment iteration on the worst
    /// vCPU (strategy-independent; the Fig. 1 SMP number re-derived on
    /// real contention).
    pub steady_cycles: f64,
    /// The workload's exactness oracle: `counter == vcpus × iters`.
    pub consistent: bool,
}

/// E15 — quiesced-commit cost vs. core count for both [`CommitStrategy`]
/// protocols, measured on the SMP spinlock-contention workload: workers
/// hammer the lock while the host flips the binding of the lock
/// functions (commit ↔ revert) mid-flight.
pub fn smp_commit_data(vcpu_counts: &[usize], iters: u64, flips: u32) -> Vec<SmpCommitRow> {
    let mut rows = Vec::new();
    for &vcpus in vcpu_counts {
        let steady = smp_contention::steady_state_cycles(vcpus, iters, 0xE15).expect("steady");
        for strategy in [CommitStrategy::StopMachine, CommitStrategy::Breakpoint] {
            let r = smp_contention::measure(vcpus, iters, strategy, flips, 0xE15).expect("measure");
            let per_flip = |v: u64| v as f64 / flips as f64;
            rows.push(SmpCommitRow {
                strategy,
                vcpus,
                commit_latency: per_flip(r.commit_latency),
                stall_cycles: per_flip(r.stall_cycles),
                rounds: per_flip(r.rounds),
                trap_hits: per_flip(r.trap_hits),
                steady_cycles: steady,
                consistent: r.lock_consistent,
            });
        }
    }
    rows
}

/// Renders [`smp_commit_data`] rows as table series: one row per
/// (strategy, metric), one column per core count.
pub fn smp_commit_series(rows: &[SmpCommitRow]) -> Vec<Series> {
    let mut out = Vec::new();
    for strategy in [CommitStrategy::StopMachine, CommitStrategy::Breakpoint] {
        let mut lat = Series::new(&format!("{strategy}: commit latency (cycles/flip)"));
        let mut stall = Series::new(&format!("{strategy}: worker stall (cycles/flip)"));
        for r in rows.iter().filter(|r| r.strategy == strategy) {
            let col = format!("{} vCPUs", r.vcpus);
            lat.point(&col, r.commit_latency);
            stall.point(&col, r.stall_cycles);
        }
        out.push(lat);
        out.push(stall);
    }
    let mut steady = Series::new("steady state (cycles/iteration)");
    for r in rows
        .iter()
        .filter(|r| r.strategy == CommitStrategy::StopMachine)
    {
        steady.point(&format!("{} vCPUs", r.vcpus), r.steady_cycles);
    }
    out.push(steady);
    out
}

/// Serializes [`smp_commit_data`] rows as the `BENCH_smp.json` document
/// CI records for the perf trajectory.
pub fn smp_commit_json(rows: &[SmpCommitRow]) -> String {
    use std::fmt::Write;
    let mut s = String::from(
        "{\n  \"bench\": \"smp_commit\",\n  \"unit\": \"guest cycles\",\n  \"rows\": [\n",
    );
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            s,
            "    {{\"strategy\": \"{}\", \"vcpus\": {}, \"commit_latency\": {:.1}, \
             \"stall_cycles\": {:.1}, \"rounds\": {:.1}, \"trap_hits\": {:.2}, \
             \"steady_cycles\": {:.2}, \"consistent\": {}}}{}",
            r.strategy,
            r.vcpus,
            r.commit_latency,
            r.stall_cycles,
            r.rounds,
            r.trap_hits,
            r.steady_cycles,
            r.consistent,
            if i + 1 == rows.len() { "" } else { "," }
        );
    }
    s.push_str("  ]\n}\n");
    s
}

/// One strategy row of [`commit_storm_data`]: the mvd commit daemon vs.
/// the naive one-commit-per-request baseline on the same flip stream.
#[derive(Clone, Copy, Debug)]
pub struct CommitStormRow {
    /// Quiesce protocol used for every commit.
    pub strategy: CommitStrategy,
    /// Worker vCPUs running the switched loop.
    pub vcpus: usize,
    /// Flip requests submitted (identical stream for both drivers).
    pub requests: u64,
    /// Quiesced commits the daemon actually ran.
    pub commits: u64,
    /// Requests merged into an already-queued entry.
    pub coalesced: u64,
    /// Baseline commits per daemon commit — the coalescing factor,
    /// strategy-independent.
    pub commit_ratio: f64,
    /// Cycle-throughput ratio over the baseline (meaningful under
    /// stop-machine; breakpoint windows cost ~0 cycles on idle regions).
    pub speedup: f64,
    /// Median per-commit latency, guest cycles.
    pub p50_cycles: f64,
    /// 95th-percentile per-commit latency, guest cycles.
    pub p95_cycles: f64,
    /// The exactness oracle: every worker returned its iteration count
    /// under both drivers.
    pub workers_exact: bool,
}

fn percentile_cycles(sorted: &[u64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx] as f64
}

/// mvd commit-storm sweep: the identical randomized flip stream driven
/// through the commit daemon and through the naive baseline, one row per
/// quiesce protocol.
pub fn commit_storm_data(
    vcpus: usize,
    iters: u64,
    requests: u64,
    burst: u64,
) -> Vec<CommitStormRow> {
    let mut rows = Vec::new();
    for strategy in [CommitStrategy::StopMachine, CommitStrategy::Breakpoint] {
        let daemon =
            commit_storm::run_storm(vcpus, iters, requests, burst, strategy, 0x57).expect("storm");
        let naive = commit_storm::naive_serial(vcpus, iters, requests, burst, strategy, 0x57)
            .expect("baseline");
        let mut lat = daemon.latencies.clone();
        lat.sort_unstable();
        rows.push(CommitStormRow {
            strategy,
            vcpus,
            requests,
            commits: daemon.commits,
            coalesced: daemon.stats.coalesced,
            commit_ratio: commit_storm::commit_ratio(&daemon, &naive),
            speedup: commit_storm::speedup(&daemon, &naive),
            p50_cycles: percentile_cycles(&lat, 0.50),
            p95_cycles: percentile_cycles(&lat, 0.95),
            workers_exact: daemon.workers_exact && naive.workers_exact,
        });
    }
    rows
}

/// Serializes [`commit_storm_data`] rows as the `BENCH_commit_storm.json`
/// document CI records for the perf trajectory.
pub fn commit_storm_json(rows: &[CommitStormRow]) -> String {
    use std::fmt::Write;
    let mut s = String::from(
        "{\n  \"bench\": \"commit_storm\",\n  \"unit\": \"guest cycles\",\n  \"rows\": [\n",
    );
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            s,
            "    {{\"strategy\": \"{}\", \"vcpus\": {}, \"requests\": {}, \"commits\": {}, \
             \"coalesced\": {}, \"commit_ratio\": {:.1}, \"speedup\": {:.1}, \
             \"p50_cycles\": {:.1}, \"p95_cycles\": {:.1}, \"workers_exact\": {}}}{}",
            r.strategy,
            r.vcpus,
            r.requests,
            r.commits,
            r.coalesced,
            r.commit_ratio,
            r.speedup,
            r.p50_cycles,
            r.p95_cycles,
            r.workers_exact,
            if i + 1 == rows.len() { "" } else { "," }
        );
    }
    s.push_str("  ]\n}\n");
    s
}

/// One tier row of [`vm_throughput_data`]: host-side interpreter
/// throughput plus the observation-identity verdict against tierless.
#[derive(Clone, Copy, Debug)]
pub struct VmThroughputRow {
    /// Execution tier measured.
    pub tier: ExecTier,
    /// Guest instructions retired by one run of the workload.
    pub instructions: u64,
    /// Best-of-trials host wall time for one warm run, nanoseconds.
    pub nanos: u64,
    /// Guest instructions per host second, from the best trial.
    pub insns_per_sec: f64,
    /// Host-throughput ratio over the tierless row (tierless = 1.0).
    pub speedup: f64,
    /// `true` iff result, guest cycles and [`multiverse::mvvm::Stats`]
    /// match the tierless run exactly.
    pub identical: bool,
}

/// The tiered-engine throughput workload: a counted loop whose body
/// mixes straight-line ALU runs, a direct-`jmp` block split and a
/// `call` to a tiny helper — enough control-flow structure that tier 0
/// caches several short blocks per iteration and tier 1 fuses them back
/// into one superblock spanning the whole loop body.
pub fn vm_throughput_exe(iters: i64) -> mvobj::Executable {
    use mvasm::{AluOp, Cond, Insn, Reg};
    let mut a = mvasm::Assembler::new();
    a.mov_ri(Reg::R0, 0);
    a.mov_ri(Reg::R1, 0);
    a.label("loop");
    for i in 0..40 {
        a.emit(Insn::AluRI {
            op: AluOp::Add,
            dst: Reg::R0,
            imm: i + 1,
        });
        a.emit(Insn::AluRI {
            op: AluOp::Xor,
            dst: Reg::R0,
            imm: 0x5555,
        });
    }
    a.jmp("mid");
    a.label("mid");
    for i in 0..40 {
        a.emit(Insn::AluRI {
            op: AluOp::Add,
            dst: Reg::R0,
            imm: i + 7,
        });
        a.emit(Insn::AluRI {
            op: AluOp::And,
            dst: Reg::R0,
            imm: 0xffff,
        });
    }
    a.call_sym("bump", false);
    a.emit(Insn::AluRI {
        op: AluOp::Add,
        dst: Reg::R1,
        imm: 1,
    });
    a.cmp_ri(Reg::R1, iters);
    a.jcc("loop", Cond::Lt);
    a.emit(Insn::Halt);
    a.label("bump");
    let off = a.len() as u64;
    a.emit(Insn::AluRI {
        op: AluOp::Add,
        dst: Reg::R2,
        imm: 1,
    });
    a.ret();
    let blob = a.finish().expect("assemble");
    let mut o = mvobj::Object::new("vm_throughput");
    o.append(mvobj::SEC_TEXT, mvobj::SectionKind::Text, &blob.bytes);
    o.define(mvobj::Symbol::func("main", mvobj::SEC_TEXT, 0, off));
    o.define(mvobj::Symbol::func(
        "bump",
        mvobj::SEC_TEXT,
        off,
        blob.bytes.len() as u64 - off,
    ));
    for f in &blob.fixups {
        let kind = match f.kind {
            mvasm::FixupKind::Rel32 { next_insn } => mvobj::RelocKind::Rel32 {
                next_insn: next_insn as u64,
            },
            mvasm::FixupKind::Abs64 => mvobj::RelocKind::Abs64,
        };
        o.relocate(mvobj::Reloc {
            section: mvobj::SEC_TEXT.into(),
            offset: f.offset as u64,
            kind,
            symbol: f.symbol.clone(),
            addend: f.addend,
        });
    }
    mvobj::link(&[o], &mvobj::Layout::default()).expect("link")
}

/// Shared tier-throughput harness: one untimed run per tier primes the
/// caches (and promotion / native lowering) and records the observation
/// tuple, then the best of `trials` timed warm runs yields the
/// throughput. The first tier listed is the identity baseline. For
/// [`ExecTier::Native`] the `native_roots` symbols are lowered into the
/// machine's region registry up front — the role the `native` runtime
/// backend's post-commit sync plays when a full runtime is attached.
fn measure_tiers(
    exe: &mvobj::Executable,
    tiers: &[ExecTier],
    trials: u32,
    native_roots: &[&str],
) -> Vec<VmThroughputRow> {
    use multiverse::mvvm::Machine;
    use std::time::Instant;
    let measure = |tier: ExecTier| {
        let mut m = Machine::boot(exe);
        m.set_tier(tier);
        if tier == ExecTier::Native {
            for root in native_roots {
                let entry = exe.symbol(root).expect("native root symbol");
                assert!(m.ensure_native(entry), "{root} must lower");
            }
        }
        let r = m.run_entry(exe).expect("workload runs");
        let per_run = m.stats.instructions;
        let obs = (r, m.cycles(), m.stats);
        let mut best = u64::MAX;
        for _ in 0..trials.max(1) {
            let before = m.stats.instructions;
            let t = Instant::now();
            let r2 = m.run_entry(exe).expect("workload runs");
            let dt = t.elapsed().as_nanos() as u64;
            assert_eq!(r2, r, "{tier}: rerun must reproduce the result");
            assert_eq!(m.stats.instructions - before, per_run, "{tier}");
            best = best.min(dt.max(1));
        }
        (per_run, best, obs)
    };
    let (base_insns, base_nanos, base_obs) = measure(tiers[0]);
    let mut rows = Vec::new();
    for (i, &tier) in tiers.iter().enumerate() {
        let (insns, nanos, obs) = if i == 0 {
            (base_insns, base_nanos, base_obs)
        } else {
            measure(tier)
        };
        rows.push(VmThroughputRow {
            tier,
            instructions: insns,
            nanos,
            insns_per_sec: insns as f64 / (nanos as f64 / 1e9),
            speedup: base_nanos as f64 / nanos as f64,
            identical: obs == base_obs && insns == base_insns,
        });
    }
    rows
}

/// Guest-instruction throughput of each [`ExecTier`] — including the
/// native host-closure tier — on the [`vm_throughput_exe`] workload.
/// Every row carries the identity verdict against tierless: a tier that
/// gets faster by observing differently is a broken tier, not a fast
/// one.
pub fn vm_throughput_data(iters: i64, trials: u32) -> Vec<VmThroughputRow> {
    let exe = vm_throughput_exe(iters);
    measure_tiers(
        &exe,
        &[
            ExecTier::Tierless,
            ExecTier::Block,
            ExecTier::Superblock,
            ExecTier::Native,
        ],
        trials,
        &["main", "bump"],
    )
}

/// The native-tier gate workload: a hot register-only loop — no loads,
/// no stores, no calls — so the whole body lowers into one pre-resolved
/// micro-op region and the comparison isolates dispatch cost: block
/// replay vs. superblock replay vs. native closure runs.
pub fn native_hot_exe(iters: i64) -> mvobj::Executable {
    use mvasm::{AluOp, Cond, Insn, Reg};
    let mut a = mvasm::Assembler::new();
    a.mov_ri(Reg::R0, 0);
    a.mov_ri(Reg::R1, 0);
    a.label("loop");
    for i in 0..64 {
        a.emit(Insn::AluRI {
            op: AluOp::Add,
            dst: Reg::R0,
            imm: i + 1,
        });
        a.emit(Insn::AluRI {
            op: AluOp::Xor,
            dst: Reg::R0,
            imm: 0x5A5A,
        });
        a.emit(Insn::AluRI {
            op: AluOp::And,
            dst: Reg::R0,
            imm: 0xffff,
        });
    }
    a.emit(Insn::AluRI {
        op: AluOp::Add,
        dst: Reg::R1,
        imm: 1,
    });
    a.cmp_ri(Reg::R1, iters);
    a.jcc("loop", Cond::Lt);
    a.emit(Insn::Halt);
    let blob = a.finish().expect("assemble");
    let mut o = mvobj::Object::new("native_hot");
    o.append(mvobj::SEC_TEXT, mvobj::SectionKind::Text, &blob.bytes);
    o.define(mvobj::Symbol::func(
        "main",
        mvobj::SEC_TEXT,
        0,
        blob.bytes.len() as u64,
    ));
    for f in &blob.fixups {
        let kind = match f.kind {
            mvasm::FixupKind::Rel32 { next_insn } => mvobj::RelocKind::Rel32 {
                next_insn: next_insn as u64,
            },
            mvasm::FixupKind::Abs64 => mvobj::RelocKind::Abs64,
        };
        o.relocate(mvobj::Reloc {
            section: mvobj::SEC_TEXT.into(),
            offset: f.offset as u64,
            kind,
            symbol: f.symbol.clone(),
            addend: f.addend,
        });
    }
    mvobj::link(&[o], &mvobj::Layout::default()).expect("link")
}

/// Native-tier gate sweep on [`native_hot_exe`]: tierless baseline,
/// superblock (the best block-engine tier) and native, with identity
/// verdicts against tierless.
pub fn native_tier_data(iters: i64, trials: u32) -> Vec<VmThroughputRow> {
    let exe = native_hot_exe(iters);
    measure_tiers(
        &exe,
        &[ExecTier::Tierless, ExecTier::Superblock, ExecTier::Native],
        trials,
        &["main"],
    )
}

/// Serializes [`native_tier_data`] rows as the `BENCH_native.json`
/// document CI records for the perf trajectory.
pub fn native_tier_json(rows: &[VmThroughputRow]) -> String {
    use std::fmt::Write;
    let mut s = String::from(
        "{\n  \"bench\": \"native_tier\",\n  \"unit\": \"guest instructions / host second\",\n  \
         \"rows\": [\n",
    );
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            s,
            "    {{\"tier\": \"{}\", \"instructions\": {}, \"nanos\": {}, \
             \"insns_per_sec\": {:.0}, \"speedup\": {:.2}, \"identical\": {}}}{}",
            r.tier,
            r.instructions,
            r.nanos,
            r.insns_per_sec,
            r.speedup,
            r.identical,
            if i + 1 == rows.len() { "" } else { "," }
        );
    }
    s.push_str("  ]\n}\n");
    s
}

/// Renders [`vm_throughput_data`] rows as table series.
pub fn vm_throughput_series(rows: &[VmThroughputRow]) -> Vec<Series> {
    let mut mips = Series::new("throughput (M guest insns / host s)");
    let mut speedup = Series::new("speedup over tierless");
    for r in rows {
        let col = r.tier.to_string();
        mips.point(&col, r.insns_per_sec / 1e6);
        speedup.point(&col, r.speedup);
    }
    vec![mips, speedup]
}

/// Serializes [`vm_throughput_data`] rows as the
/// `BENCH_vm_throughput.json` document CI records for the perf
/// trajectory.
pub fn vm_throughput_json(rows: &[VmThroughputRow]) -> String {
    use std::fmt::Write;
    let mut s = String::from(
        "{\n  \"bench\": \"vm_throughput\",\n  \"unit\": \"guest instructions / host second\",\n  \
         \"rows\": [\n",
    );
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            s,
            "    {{\"tier\": \"{}\", \"instructions\": {}, \"nanos\": {}, \
             \"insns_per_sec\": {:.0}, \"speedup\": {:.2}, \"identical\": {}}}{}",
            r.tier,
            r.instructions,
            r.nanos,
            r.insns_per_sec,
            r.speedup,
            r.identical,
            if i + 1 == rows.len() { "" } else { "," }
        );
    }
    s.push_str("  ]\n}\n");
    s
}

/// One row of [`vexec_data`]: the E14 grid configuration run through a
/// single variational pass versus leaf-by-leaf enumeration.
#[derive(Clone, Debug)]
pub struct VexecRow {
    /// Human label, e.g. `"4 fns × 3^4 assignments"`.
    pub config: String,
    /// Leaves in the switch cross product (always fully covered).
    pub leaves: usize,
    /// Instructions retired by the single variational pass.
    pub shared_steps: u64,
    /// Instructions retired replaying every leaf via enumerate-and-rerun.
    pub enum_insns: u64,
    /// `enum_insns / shared_steps` — the sharing win.
    pub speedup: f64,
    /// Context splits taken during the pass.
    pub splits: u64,
    /// Context re-joins during the pass.
    pub joins: u64,
    /// Peak simultaneously-live contexts.
    pub max_live: usize,
    /// `true` iff every leaf's full architectural state matched its
    /// enumerated rerun (the leaf-equivalence check).
    pub equivalent: bool,
}

/// E16: variational execution over the E14 compile-cost grid. Each
/// configuration is booted uncommitted, `main` (which calls every
/// multiversed function) runs once under [`multiverse::World::vexec_in`]
/// across the whole recovered cross product, and then every leaf is
/// replayed via [`multiverse::enumerate_check`] — both to certify
/// equivalence and to price the enumeration baseline in the same
/// deterministic instruction currency.
pub fn vexec_data(configs: &[(usize, usize, usize)]) -> Vec<VexecRow> {
    use multiverse::mvc::Options;
    let mut rows = Vec::new();
    for &(n_funcs, n_switches, domain) in configs {
        let src = compile_cost_src(n_funcs, n_switches, domain);
        let opts = Options {
            variant_limit: domain.pow(n_switches as u32) * 2,
            ..Options::default()
        };
        let program = Program::build_with(&[("grid.c", &src)], &opts).expect("build grid");
        let w = program.boot();
        let space = w.config_space().expect("recover space");
        let report = w.vexec_in(&space, "main", &[]).expect("vexec");
        assert_eq!(report.leaves.len(), space.leaf_count(), "full coverage");
        let chk = multiverse::enumerate_check(&program, &space, "main", &[], &report);
        let (equivalent, enum_insns) = match chk {
            Ok(c) => (c.leaves_checked == space.leaf_count(), c.insns),
            Err(_) => (false, 0),
        };
        let s = &report.stats;
        rows.push(VexecRow {
            config: format!("{n_funcs} fns × {domain}^{n_switches} assignments"),
            leaves: space.leaf_count(),
            shared_steps: s.steps,
            enum_insns,
            speedup: if s.steps > 0 {
                enum_insns as f64 / s.steps as f64
            } else {
                0.0
            },
            splits: s.splits,
            joins: s.joins,
            max_live: s.max_live as usize,
            equivalent,
        });
    }
    rows
}

/// Renders [`vexec_data`] rows as an aligned table (E16).
pub fn render_vexec_table(rows: &[VexecRow]) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<28} {:>6} {:>12} {:>12} {:>8} {:>7} {:>7} {:>5} {:>6}",
        "configuration",
        "leaves",
        "shared",
        "enumerated",
        "speedup",
        "splits",
        "joins",
        "live",
        "equiv"
    );
    for r in rows {
        let _ = writeln!(
            s,
            "{:<28} {:>6} {:>12} {:>12} {:>7.1}x {:>7} {:>7} {:>5} {:>6}",
            r.config,
            r.leaves,
            r.shared_steps,
            r.enum_insns,
            r.speedup,
            r.splits,
            r.joins,
            r.max_live,
            if r.equivalent { "yes" } else { "NO" }
        );
    }
    s
}

/// Serializes [`vexec_data`] rows as the `BENCH_vexec.json` document CI
/// records for the perf trajectory.
pub fn vexec_json(rows: &[VexecRow]) -> String {
    use std::fmt::Write;
    let mut s = String::from(
        "{\n  \"bench\": \"vexec\",\n  \"unit\": \"guest instructions\",\n  \"rows\": [\n",
    );
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            s,
            "    {{\"config\": \"{}\", \"leaves\": {}, \"shared_steps\": {}, \
             \"enum_insns\": {}, \"speedup\": {:.2}, \"splits\": {}, \"joins\": {}, \
             \"max_live\": {}, \"equivalent\": {}}}{}",
            r.config,
            r.leaves,
            r.shared_steps,
            r.enum_insns,
            r.speedup,
            r.splits,
            r.joins,
            r.max_live,
            r.equivalent,
            if i + 1 == rows.len() { "" } else { "," }
        );
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_shape() {
        let rows = fig1_data();
        let get = |r: usize, c: usize| rows[r].points[c].1;
        // SMP=false column: A ≤ C < B.
        assert!(get(0, 0) <= get(2, 0) + 0.5, "A ≤ C");
        assert!(get(2, 0) < get(1, 0), "C < B");
        // SMP=true column: all close together and ≫ UP values.
        let smp: Vec<f64> = (0..3).map(|r| get(r, 1)).collect();
        let max = smp.iter().cloned().fold(f64::MIN, f64::max);
        let min = smp.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max - min < 0.2 * max, "SMP values within 20%: {smp:?}");
        assert!(min > 2.0 * get(2, 0), "SMP ≫ UP");
    }

    #[test]
    fn patch_stats_kernel_scale() {
        // The kernel experiment: 1161 spinlock call sites.
        let r = patch_stats_data(1161);
        assert_eq!(r.call_sites, 1161);
        assert!(r.mv_image > r.dyn_image);
        assert_eq!(r.sec_sites, 1161 * 16, "16 bytes per call site");
        assert_eq!(r.sec_vars, 32, "32 bytes per switch");
        // Patching ~1161 sites is quick (paper: ≈16 ms for the real
        // kernel; the simulated patch is host-side memory writes).
        assert!(r.commit_time.as_millis() < 2000);
    }

    /// CI's quick patch-cost gate (see `.github/workflows/ci.yml`): the
    /// batched commit does O(pages) protection changes, and the
    /// immediate re-commit is a pure fast path that skips every site.
    #[test]
    fn patch_cost_quick() {
        let rows = fast_path_data(256);
        let batched = rows[0];
        let per_site = rows[1];
        assert_eq!(batched.mode, "batched");

        // Batched apply: at most one RW + one RX per touched page.
        assert!(batched.first.pages_touched >= 1);
        assert!(
            batched.first.mprotects <= 2 * batched.first.pages_touched,
            "{} mprotects for {} pages",
            batched.first.mprotects,
            batched.first.pages_touched
        );
        assert!(batched.first.icache_flushes <= batched.first.pages_touched);
        // …and strictly cheaper than the per-site discipline.
        assert!(batched.first.mprotects < per_site.first.mprotects);
        assert!(batched.first.icache_flushes < per_site.first.icache_flushes);

        // Immediate re-commit: delta planning skips every site and
        // writes nothing, in both modes.
        for row in &rows {
            assert_eq!(row.recommit.sites_skipped, row.call_sites, "{}", row.mode);
            assert_eq!(row.recommit.journal_entries, 0, "{}", row.mode);
            assert_eq!(row.recommit.bytes_written, 0, "{}", row.mode);
            assert_eq!(row.recommit.mprotects, 0, "{}", row.mode);
        }
    }

    /// CI's quick metrics gate (see `.github/workflows/ci.yml`): with an
    /// enabled registry the commit path stays within 5 % of the
    /// uninstrumented baseline, and after disabling the registry no
    /// commit leaves a trace in it. Wall-clock ratios are noisy under
    /// CI load, so the timing bar takes the best of several attempts
    /// before giving a verdict.
    #[test]
    fn metrics_overhead_quick() {
        let mut best = f64::MAX;
        for _ in 0..3 {
            let (baseline, enabled, _disabled) = metrics_overhead(128);
            let ratio = enabled.as_secs_f64() / baseline.as_secs_f64() - 1.0;
            best = best.min(ratio);
            if best <= 0.05 {
                break;
            }
        }
        assert!(best <= 0.05, "metrics overhead {:.1}% > 5%", best * 100.0);

        // Disabled registry: commits leave every counter untouched.
        let src = many_callsites_src(16);
        let program = Program::build(&[("sites.c", &src)]).expect("build");
        let mut w = program.boot();
        let registry = multiverse::mvmetrics::Registry::new();
        w.enable_metrics(&registry);
        registry.set_enabled(false);
        let before = registry.snapshot();
        w.set("feature", 1).unwrap();
        w.commit().expect("commit");
        w.sync_metrics();
        let after = registry.snapshot();
        for (b, a) in before.iter().zip(after.iter()) {
            assert_eq!(b.value, a.value, "{} moved while disabled", b.name);
        }
    }

    /// CI's quick compile-pipeline gate (see `.github/workflows/ci.yml`):
    /// parallel output is byte-identical to sequential, the merge stage
    /// actually shares clones, and the warm build replays every variant
    /// from the compile cache without re-cloning.
    #[test]
    fn compile_cost_quick() {
        use multiverse::mvc::{pipeline, Options, Pipeline};
        let src = compile_cost_src(3, 3, 3); // 3 fns × 27 assignments
        let opts = |jobs: usize, cache: bool| Options {
            variant_limit: 64,
            jobs,
            cache,
            ..Options::default()
        };

        // Differential: -j {2,4,8} objects are byte-identical to -j 1.
        let (seq_obj, seq_warn) = Pipeline::new(opts(1, false))
            .compile_unit(&src, "cost.c")
            .expect("sequential");
        for jobs in [2usize, 4, 8] {
            let (par_obj, par_warn) = Pipeline::new(opts(jobs, false))
                .compile_unit(&src, "cost.c")
                .expect("parallel");
            assert_eq!(
                seq_obj.fingerprint(),
                par_obj.fingerprint(),
                "-j {jobs} diverged from -j 1"
            );
            assert_eq!(seq_warn, par_warn, "-j {jobs} warnings diverged");
        }

        // The merge stage shares work: `if (s)` bodies collapse all
        // non-zero values, so 27 clones merge to 2^3 = 8 variants per fn.
        let mut p = Pipeline::new(opts(1, false));
        p.compile_unit(&src, "cost.c").expect("build");
        assert_eq!(p.stats().clones, 3 * 27);
        assert_eq!(p.stats().variants, 3 * 8);

        // Cache-hit path: a second build replays everything, clones
        // nothing, and still produces the identical object.
        pipeline::clear_compile_cache();
        let mut cold = Pipeline::new(opts(1, true));
        let (cold_obj, _) = cold.compile_unit(&src, "cost.c").expect("cold");
        assert_eq!(cold.stats().cache_misses, 3);
        let mut warm = Pipeline::new(opts(1, true));
        let (warm_obj, _) = warm.compile_unit(&src, "cost.c").expect("warm");
        assert_eq!(warm.stats().cache_hits, 3);
        assert_eq!(warm.stats().clones, 0, "hits must not re-specialize");
        assert_eq!(warm.stats().cached_variants, 3 * 8);
        assert_eq!(cold_obj.fingerprint(), warm_obj.fingerprint());
    }

    /// CI's quick SMP-commit gate (see `.github/workflows/ci.yml`):
    /// both quiesce protocols stay exact under real contention at 2 and
    /// 4 cores, stop-machine plants no breakpoints, and the sweep is
    /// serialized to `BENCH_smp.json` at the workspace root so the perf
    /// trajectory records every CI run.
    #[test]
    fn smp_commit_quick() {
        let rows = smp_commit_data(&[2, 4], 48, 4);
        assert_eq!(rows.len(), 4, "2 core counts × 2 strategies");
        for r in &rows {
            assert!(
                r.consistent,
                "{} @ {} vCPUs lost an increment",
                r.strategy, r.vcpus
            );
            assert!(r.steady_cycles > 0.0);
            match r.strategy {
                // The rendezvous IPIs every CPU: the window always costs
                // at least one full-park round, and the stall grows with
                // the core count.
                CommitStrategy::StopMachine => {
                    assert!(r.commit_latency > 0.0, "rendezvous has a cost");
                    assert!(r.stall_cycles > 0.0, "parked workers stall");
                    assert_eq!(r.trap_hits, 0.0, "stop-machine plants no traps");
                }
                // Breakpoint-first never stops CPUs that are outside the
                // patched regions — the cheap path text_poke_bp exists for.
                CommitStrategy::Breakpoint => {
                    let twin = rows
                        .iter()
                        .find(|t| t.vcpus == r.vcpus && t.strategy == CommitStrategy::StopMachine)
                        .unwrap();
                    assert!(
                        r.stall_cycles < twin.stall_cycles,
                        "breakpoint-first must stall less than stop-machine"
                    );
                }
            }
        }
        let stop: Vec<&SmpCommitRow> = rows
            .iter()
            .filter(|r| r.strategy == CommitStrategy::StopMachine)
            .collect();
        assert!(
            stop[1].stall_cycles > stop[0].stall_cycles,
            "stop-machine stall grows with core count"
        );
        let json = smp_commit_json(&rows);
        assert!(json.contains("\"bench\": \"smp_commit\""));
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_smp.json");
        std::fs::write(path, &json).expect("write BENCH_smp.json");
    }

    /// CI's commit-storm gate (see `.github/workflows/ci.yml`): the mvd
    /// control plane coalesces the burst into an order of magnitude
    /// fewer commits than the naive driver under both protocols, the
    /// workers stay exact, and the sweep is serialized to
    /// `BENCH_commit_storm.json` at the workspace root.
    #[test]
    fn commit_storm_quick() {
        let rows = commit_storm_data(4, 6000, 96, 48);
        assert_eq!(rows.len(), 2, "one row per strategy");
        for r in &rows {
            assert!(r.workers_exact, "{}: a worker lost iterations", r.strategy);
            assert!(
                r.commit_ratio >= 10.0,
                "{}: coalescing factor {:.1}x below the 10x gate",
                r.strategy,
                r.commit_ratio
            );
            assert!(r.p50_cycles <= r.p95_cycles);
            // Fault-free run: every request either became a commit or
            // merged into one.
            assert_eq!(r.commits + r.coalesced, r.requests);
        }
        let stop = rows
            .iter()
            .find(|r| r.strategy == CommitStrategy::StopMachine)
            .unwrap();
        assert!(
            stop.speedup >= 10.0,
            "stop-machine throughput speedup {:.1}x below the 10x gate",
            stop.speedup
        );
        let json = commit_storm_json(&rows);
        assert!(json.contains("\"bench\": \"commit_storm\""));
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_commit_storm.json");
        std::fs::write(path, &json).expect("write BENCH_commit_storm.json");
    }

    /// CI's tiered-engine gate (see `.github/workflows/ci.yml`): every
    /// tier must be observation-identical to tierless, and — on
    /// optimized builds, which is how CI runs this gate — the
    /// superblock tier must clear the 5× throughput target. The rows
    /// are serialized to `BENCH_vm_throughput.json` at the workspace
    /// root for the perf trajectory.
    #[test]
    fn vm_throughput_quick() {
        // Wall-clock ratios are only meaningful on optimized builds;
        // debug runs keep the identity checks but shrink the workload.
        let iters = if cfg!(debug_assertions) {
            2_000
        } else {
            40_000
        };
        let rows = vm_throughput_data(iters, 3);
        assert_eq!(rows.len(), 4, "one row per tier");
        for r in &rows {
            assert!(
                r.identical,
                "{}: diverged from tierless observation",
                r.tier
            );
            assert!(r.insns_per_sec > 0.0);
        }
        assert_eq!(rows[0].tier, ExecTier::Tierless);
        assert_eq!(rows[0].speedup, 1.0);
        // Record the trajectory before gating, so a failed gate still
        // leaves the measured rows behind for diagnosis.
        let json = vm_throughput_json(&rows);
        assert!(json.contains("\"bench\": \"vm_throughput\""));
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../BENCH_vm_throughput.json"
        );
        std::fs::write(path, &json).expect("write BENCH_vm_throughput.json");
        if !cfg!(debug_assertions) {
            assert!(
                rows[1].speedup > 1.0,
                "tier-0 must beat tierless: {:.2}x",
                rows[1].speedup
            );
            assert!(
                rows[2].speedup >= 5.0,
                "superblock {:.2}x below the 5x gate",
                rows[2].speedup
            );
        }
    }

    /// CI's native-tier gate (see `.github/workflows/ci.yml`): on the
    /// hot register-only workload the native tier must be
    /// observation-identical to tierless always, and — on optimized
    /// builds, which is how CI runs this gate — at least 2× the
    /// superblock tier's host throughput. The rows are serialized to
    /// `BENCH_native.json` at the workspace root for the perf
    /// trajectory.
    #[test]
    fn native_tier_quick() {
        let iters = if cfg!(debug_assertions) {
            2_000
        } else {
            40_000
        };
        let rows = native_tier_data(iters, 3);
        assert_eq!(rows.len(), 3, "tierless, superblock, native");
        for r in &rows {
            assert!(
                r.identical,
                "{}: diverged from tierless observation",
                r.tier
            );
            assert!(r.insns_per_sec > 0.0);
        }
        assert_eq!(rows[2].tier, ExecTier::Native);
        // Record the trajectory before gating, so a failed gate still
        // leaves the measured rows behind for diagnosis.
        let json = native_tier_json(&rows);
        assert!(json.contains("\"bench\": \"native_tier\""));
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_native.json");
        std::fs::write(path, &json).expect("write BENCH_native.json");
        if !cfg!(debug_assertions) {
            let over_superblock = rows[1].nanos as f64 / rows[2].nanos as f64;
            assert!(
                over_superblock >= 2.0,
                "native {over_superblock:.2}x over superblock, below the 2x gate"
            );
        }
    }

    /// CI's variational-execution gate (see `.github/workflows/ci.yml`):
    /// on the E14 compile-cost grid, the single vexec pass must cover
    /// the whole cross product with full-state leaf equivalence against
    /// enumerate-and-rerun, and on the widest-domain configuration the
    /// shared pass must retire at least 3× fewer instructions than the
    /// enumeration it replaces. The rows are serialized to
    /// `BENCH_vexec.json` at the workspace root for the perf trajectory.
    #[test]
    fn vexec_quick() {
        let configs = [
            (4, 3, 2), // 4 fns × 2^3 =  8 leaves
            (4, 5, 2), // 4 fns × 2^5 = 32 leaves
            (4, 4, 3), // 4 fns × 3^4 = 81 leaves (widest domain)
            (8, 6, 2), // 8 fns × 2^6 = 64 leaves
        ];
        let rows = vexec_data(&configs);
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert!(r.equivalent, "{}: leaf-equivalence failed", r.config);
            assert!(r.splits > 0 && r.joins > 0, "{}: {r:?}", r.config);
        }
        // Record the trajectory before gating, so a failed gate still
        // leaves the measured rows behind for diagnosis.
        let json = vexec_json(&rows);
        assert!(json.contains("\"bench\": \"vexec\""));
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_vexec.json");
        std::fs::write(path, &json).expect("write BENCH_vexec.json");
        let widest = rows.iter().max_by_key(|r| r.leaves).unwrap();
        assert_eq!(widest.leaves, 81, "3^4 is the widest E14 domain");
        assert!(
            widest.speedup >= 3.0,
            "shared-prefix speedup {:.2}x below the 3x gate on {}",
            widest.speedup,
            widest.config
        );
    }

    #[test]
    fn latency_percentiles_from_trace() {
        let rows = commit_latency_percentiles(64, 5);
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert!(
                r.p50_us <= r.p95_us && r.p95_us <= r.max_us,
                "{}: p50 {} ≤ p95 {} ≤ max {}",
                r.phase,
                r.p50_us,
                r.p95_us,
                r.max_us
            );
            assert!(r.max_us > 0.0, "{} saw samples", r.phase);
        }
        // The transaction total dominates any single phase.
        let total = rows[3];
        assert_eq!(total.phase, "total");
        for r in &rows[..3] {
            assert!(total.p50_us >= r.p50_us, "total ≥ {}", r.phase);
        }
    }

    #[test]
    fn btb_ablation_shows_mispredict_penalty() {
        let rows = btb_data();
        let ifwarm = rows[0].points[0].1;
        let ifcold = rows[0].points[1].1;
        let mvwarm = rows[1].points[0].1;
        let mvcold = rows[1].points[1].1;
        // Cold costs more for both (returns mispredict), but the dynamic
        // kernel pays extra for its feature-test branches.
        let if_delta = ifcold - ifwarm;
        let mv_delta = mvcold - mvwarm;
        assert!(
            if_delta > mv_delta + 8.0,
            "dynamic pays extra cold-BTB penalty: if Δ{if_delta} vs mv Δ{mv_delta}"
        );
    }

    #[test]
    fn inline_ablation_ordering() {
        let rows = inline_ablation_data();
        let inlined = rows[0].points[0].1;
        let no_inline = rows[1].points[0].1;
        let entry_only = rows[2].points[0].1;
        assert!(
            inlined < no_inline,
            "inlining wins: {inlined} < {no_inline}"
        );
        assert!(
            no_inline <= entry_only,
            "direct call beats entry redirection: {no_inline} ≤ {entry_only}"
        );
        // Entry-only patches far fewer locations.
        assert!(rows[2].points[1].1 < rows[0].points[1].1);
    }
}
