//! Integer-valued configuration switches (abstract/§2): a log *level*
//! (not just a flag) consulted in a hot request path, specialized per
//! level and re-committed when an operator changes verbosity.
//!
//! ```sh
//! cargo run --release --example loglevel
//! ```

use multiverse::Program;

const SRC: &str = r#"
    // 0 = off, 1 = errors, 2 = +warnings, 3 = +info, 4 = +debug.
    multiverse(0, 1, 2, 3, 4) i32 log_level;

    u64 lines_emitted;

    void emit(i64 tag) {
        lines_emitted = lines_emitted + 1;
        __out(tag);
    }

    // The request path consults the level several times — each test
    // disappears from the committed variant.
    multiverse i64 handle_request(i64 id) {
        if (log_level >= 3) { emit('I'); }
        i64 status = id % 7;
        if (status == 0) {
            if (log_level >= 1) { emit('E'); }
        }
        if (log_level >= 4) { emit('D'); emit('D'); }
        return status;
    }

    i64 serve(i64 n) {
        i64 acc = 0;
        for (i64 i = 1; i <= n; i++) {
            acc = acc + handle_request(i);
        }
        return acc;
    }

    i64 main(void) { return 0; }
"#;

fn main() {
    let program = Program::build(&[("logging.c", SRC)]).unwrap();
    let mut world = program.boot();
    let n = 5_000;

    println!("log-level sweep, {n} requests each (cycles/request, lines emitted):");
    for level in 0..=4 {
        world.set("log_level", level).unwrap();
        world.set("lines_emitted", 0).unwrap();
        world.commit().unwrap();
        let t = world.time_calls("serve", &[n], 1, false).unwrap();
        world.machine.take_output();
        println!(
            "  level {level}: {:8.2} cycles/req, {:6} log lines",
            t.total_cycles as f64 / n as f64,
            world.get("lines_emitted").unwrap(),
        );
    }

    // The paper's point, in one pair of numbers: at level 0 the committed
    // hot path carries no trace of the logging machinery, while the
    // dynamic build keeps paying for the three level tests per request.
    let dynamic =
        Program::build_with(&[("logging.c", SRC)], &multiverse::mvc::Options::dynamic()).unwrap();
    let mut dw = dynamic.boot();
    dw.set("log_level", 0).unwrap();
    let d = dw.time_calls("serve", &[n], 1, false).unwrap();
    world.set("log_level", 0).unwrap();
    world.commit().unwrap();
    let c = world.time_calls("serve", &[n], 1, false).unwrap();
    println!(
        "\nsilent operation: dynamic {:.2} vs committed {:.2} cycles/req \
         ({} fewer loads, {} fewer branches per {n} requests)",
        d.total_cycles as f64 / n as f64,
        c.total_cycles as f64 / n as f64,
        d.stats.loads.saturating_sub(c.stats.loads),
        d.stats.branches.saturating_sub(c.stats.branches),
    );
    assert!(c.total_cycles < d.total_cycles);
}
