//! The residency join and registry wiring for booted worlds.
//!
//! `mvmetrics` keeps the flip timeline ([`SwitchHistory`]) and `mvvm`
//! keeps per-symbol cycle attribution ([`mvvm::Profiler`]); this module
//! joins them. Variant bodies are separate text symbols with mangled
//! names (`work.feature=1`), so a profiler report already separates
//! variants — [`residency_rows`] splits each row's symbol into its
//! (function, variant) pair, and because the rows are a partition of
//! the profiler's attribution, the per-variant cycles sum exactly to
//! the profiler's total attributed cycles.

use mvmetrics::residency::{split_variant_symbol, ResidencyRow, SwitchHistory};
use mvmetrics::Registry;
use mvvm::Profiler;

use crate::program::{SmpWorld, World};

/// Joins a profiler report into per-(function, variant) residency
/// rows, in the report's order (cycles descending, `<other>` last).
/// Generic bodies get variant `"generic"`.
pub fn residency_rows(profiler: &Profiler) -> Vec<ResidencyRow> {
    profiler
        .report()
        .into_iter()
        .map(|row| {
            let (function, variant) = split_variant_symbol(&row.name);
            ResidencyRow {
                function,
                variant,
                cycles: row.counters.cycles,
                instructions: row.counters.stats.instructions,
            }
        })
        .collect()
}

/// Total cycles the profiler attributed (including the `<other>`
/// bucket) — the quantity the residency rows partition.
pub fn total_attributed_cycles(profiler: &Profiler) -> u64 {
    profiler.report().iter().map(|r| r.counters.cycles).sum()
}

/// Renders residency rows as an aligned text table (the `mvcc stats
/// --per-fn` summary).
pub fn render_residency(rows: &[ResidencyRow]) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<20} {:<20} {:>12} {:>12}",
        "function", "variant", "cycles", "insns"
    );
    for r in rows {
        let _ = writeln!(
            s,
            "{:<20} {:<20} {:>12} {:>12}",
            r.function, r.variant, r.cycles, r.instructions
        );
    }
    s
}

impl World {
    /// Registers the runtime (`mv_rt_*`) and VM (`mv_vm_*`) metric
    /// families in `registry`. Call [`World::sync_metrics`] at
    /// measurement points to push the VM's counters.
    pub fn enable_metrics(&mut self, registry: &Registry) {
        if let Some(rt) = self.rt.as_mut() {
            rt.enable_metrics(registry);
        }
        self.vm_metrics = Some(mvvm::VmMetrics::new(registry));
        self.sync_metrics();
    }

    /// Pushes the machine's current execution counters into the
    /// registry (absolute, idempotent).
    pub fn sync_metrics(&mut self) {
        if let Some(vm) = self.vm_metrics.as_mut() {
            vm.record_machine(&self.machine);
        }
    }
}

impl SmpWorld {
    /// Registers the runtime (`mv_rt_*`) and VM (`mv_vm_*`, including
    /// per-vCPU cycles) metric families in `registry`. Call
    /// [`SmpWorld::sync_metrics`] at measurement points to push the
    /// machine's counters.
    pub fn enable_metrics(&mut self, registry: &Registry) {
        if let Some(rt) = self.rt.as_mut() {
            rt.enable_metrics(registry);
        }
        self.vm_metrics = Some(mvvm::VmMetrics::new(registry));
        self.sync_metrics();
    }

    /// Pushes the SMP machine's current execution counters into the
    /// registry (absolute, idempotent).
    pub fn sync_metrics(&mut self) {
        if let Some(vm) = self.vm_metrics.as_mut() {
            vm.record_smp(&self.smp);
        }
    }

    /// A [`SwitchHistory`] with every integer switch of this world
    /// registered under its symbol name, at its current value — ready
    /// for [`mvrt::CommitDaemon::enable_history`].
    pub fn switch_history(&self) -> SwitchHistory {
        let mut h = SwitchHistory::new();
        if let Some(rt) = self.rt.as_ref() {
            for addr in rt.switch_addrs() {
                let name = self
                    .exe()
                    .symbolize(addr)
                    .filter(|&(_, off)| off == 0)
                    .map(|(n, _)| n.to_string())
                    .unwrap_or_else(|| format!("{addr:#x}"));
                let initial = rt.read_switch(&self.smp.machine, addr).unwrap_or(0);
                h.register_switch(&name, addr, initial);
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Program;

    const SRC: &str = r#"
        multiverse bool feature;
        multiverse i64 work(void) {
            if (feature) { return 10; }
            return 20;
        }
        i64 main(void) { return work(); }
    "#;

    #[test]
    fn residency_partitions_profiler_cycles() {
        let p = Program::build(&[("t", SRC)]).unwrap();
        let mut w = p.boot();
        let exe = w.exe().clone();
        w.machine.enable_profile(&exe);
        w.call("work", &[]).unwrap();
        w.set("feature", 1).unwrap();
        w.commit().unwrap();
        w.call("work", &[]).unwrap();
        let prof = w.machine.take_profile().unwrap();
        let rows = residency_rows(&prof);
        let total = total_attributed_cycles(&prof);
        assert_eq!(rows.iter().map(|r| r.cycles).sum::<u64>(), total);
        assert!(
            rows.iter()
                .any(|r| r.function == "work" && r.variant == "generic"),
            "{rows:?}"
        );
        assert!(
            rows.iter()
                .any(|r| r.function == "work" && r.variant.contains("feature=1")),
            "{rows:?}"
        );
    }

    #[test]
    fn world_metrics_sync_matches_machine() {
        let p = Program::build(&[("t", SRC)]).unwrap();
        let mut w = p.boot();
        let registry = Registry::new();
        w.enable_metrics(&registry);
        w.set("feature", 1).unwrap();
        w.commit().unwrap();
        w.call("work", &[]).unwrap();
        w.sync_metrics();
        let snap = registry.snapshot();
        let get = |name: &str| {
            snap.iter()
                .find(|s| s.name == name)
                .map(|s| match s.value {
                    mvmetrics::SampleValue::Counter(v) => v,
                    _ => panic!("not a counter"),
                })
                .unwrap()
        };
        assert_eq!(
            get("mv_vm_instructions_total"),
            w.machine.stats.instructions
        );
        assert_eq!(
            get("mv_rt_bytes_written_total"),
            w.rt.as_ref().unwrap().stats.bytes_written
        );
        assert_eq!(get("mv_rt_commits_total"), 1, "one commit, outcome ok");
    }
}
