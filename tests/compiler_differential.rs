//! Differential testing of the whole tool-chain: random statement-level
//! MVC programs (locals, assignments, nested ifs, bounded loops) are
//! compiled, linked and executed on the machine, and the result is
//! compared against a direct Rust interpretation of the same AST.

use multiverse::mvc::Options;
use multiverse::Program;
use proptest::prelude::*;
use std::fmt::Write as _;

const N_VARS: usize = 4;

#[derive(Clone, Debug)]
enum SExpr {
    Const(i8),
    Var(u8),
    Param,
    Add(Box<SExpr>, Box<SExpr>),
    Sub(Box<SExpr>, Box<SExpr>),
    Mul(Box<SExpr>, Box<SExpr>),
    And(Box<SExpr>, Box<SExpr>),
    Xor(Box<SExpr>, Box<SExpr>),
    Lt(Box<SExpr>, Box<SExpr>),
}

#[derive(Clone, Debug)]
enum SStmt {
    Assign(u8, SExpr),
    If(SExpr, Vec<SStmt>, Vec<SStmt>),
    /// `for (i = 0; i < n; i++) body` with a dedicated counter the body
    /// cannot touch — termination by construction.
    Loop(u8, Vec<SStmt>),
}

fn arb_expr() -> impl Strategy<Value = SExpr> {
    let leaf = prop_oneof![
        any::<i8>().prop_map(SExpr::Const),
        (0u8..N_VARS as u8).prop_map(SExpr::Var),
        Just(SExpr::Param),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(l, r)| SExpr::Add(Box::new(l), Box::new(r))),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| SExpr::Sub(Box::new(l), Box::new(r))),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| SExpr::Mul(Box::new(l), Box::new(r))),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| SExpr::And(Box::new(l), Box::new(r))),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| SExpr::Xor(Box::new(l), Box::new(r))),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| SExpr::Lt(Box::new(l), Box::new(r))),
        ]
    })
}

fn arb_stmts(depth: u32) -> BoxedStrategy<Vec<SStmt>> {
    let stmt = if depth == 0 {
        prop_oneof![(0u8..N_VARS as u8, arb_expr()).prop_map(|(v, e)| SStmt::Assign(v, e))].boxed()
    } else {
        prop_oneof![
            3 => (0u8..N_VARS as u8, arb_expr()).prop_map(|(v, e)| SStmt::Assign(v, e)),
            1 => (arb_expr(), arb_stmts(depth - 1), arb_stmts(depth - 1))
                .prop_map(|(c, t, f)| SStmt::If(c, t, f)),
            1 => (1u8..6, arb_stmts(depth - 1)).prop_map(|(n, b)| SStmt::Loop(n, b)),
        ]
        .boxed()
    };
    proptest::collection::vec(stmt, 1..5).boxed()
}

// ---- MVC emission ---------------------------------------------------------

fn emit_expr(e: &SExpr, out: &mut String) {
    match e {
        SExpr::Const(c) => {
            let _ = write!(out, "{c}");
        }
        SExpr::Var(v) => {
            let _ = write!(out, "v{v}");
        }
        SExpr::Param => {
            let _ = write!(out, "x");
        }
        SExpr::Add(l, r) => bin(out, l, "+", r),
        SExpr::Sub(l, r) => bin(out, l, "-", r),
        SExpr::Mul(l, r) => bin(out, l, "*", r),
        SExpr::And(l, r) => bin(out, l, "&", r),
        SExpr::Xor(l, r) => bin(out, l, "^", r),
        SExpr::Lt(l, r) => bin(out, l, "<", r),
    }
}

fn bin(out: &mut String, l: &SExpr, op: &str, r: &SExpr) {
    out.push('(');
    emit_expr(l, out);
    let _ = write!(out, " {op} ");
    emit_expr(r, out);
    out.push(')');
}

fn emit_stmts(stmts: &[SStmt], out: &mut String, loop_counter: &mut u32) {
    for s in stmts {
        match s {
            SStmt::Assign(v, e) => {
                let _ = write!(out, "v{v} = ");
                emit_expr(e, out);
                out.push_str(";\n");
            }
            SStmt::If(c, t, f) => {
                out.push_str("if (");
                emit_expr(c, out);
                out.push_str(") {\n");
                emit_stmts(t, out, loop_counter);
                out.push_str("} else {\n");
                emit_stmts(f, out, loop_counter);
                out.push_str("}\n");
            }
            SStmt::Loop(n, b) => {
                let li = *loop_counter;
                *loop_counter += 1;
                let _ = writeln!(out, "for (i64 li{li} = 0; li{li} < {n}; li{li}++) {{");
                emit_stmts(b, out, loop_counter);
                out.push_str("}\n");
            }
        }
    }
}

fn emit_program(stmts: &[SStmt]) -> String {
    let mut body = String::new();
    for v in 0..N_VARS {
        let _ = writeln!(body, "i64 v{v} = {};", v as i64);
    }
    let mut counter = 0;
    emit_stmts(stmts, &mut body, &mut counter);
    body.push_str("return v0 + v1 * 31 + v2 * 977 + v3 * 83;\n");
    format!("i64 f(i64 x) {{\n{body}}}\ni64 main(void) {{ return 0; }}\n")
}

// ---- Rust oracle ----------------------------------------------------------

fn eval_expr(e: &SExpr, vars: &[i64; N_VARS], x: i64) -> i64 {
    match e {
        SExpr::Const(c) => *c as i64,
        SExpr::Var(v) => vars[*v as usize],
        SExpr::Param => x,
        SExpr::Add(l, r) => eval_expr(l, vars, x).wrapping_add(eval_expr(r, vars, x)),
        SExpr::Sub(l, r) => eval_expr(l, vars, x).wrapping_sub(eval_expr(r, vars, x)),
        SExpr::Mul(l, r) => eval_expr(l, vars, x).wrapping_mul(eval_expr(r, vars, x)),
        SExpr::And(l, r) => eval_expr(l, vars, x) & eval_expr(r, vars, x),
        SExpr::Xor(l, r) => eval_expr(l, vars, x) ^ eval_expr(r, vars, x),
        SExpr::Lt(l, r) => (eval_expr(l, vars, x) < eval_expr(r, vars, x)) as i64,
    }
}

fn eval_stmts(stmts: &[SStmt], vars: &mut [i64; N_VARS], x: i64) {
    for s in stmts {
        match s {
            SStmt::Assign(v, e) => vars[*v as usize] = eval_expr(e, vars, x),
            SStmt::If(c, t, f) => {
                if eval_expr(c, vars, x) != 0 {
                    eval_stmts(t, vars, x);
                } else {
                    eval_stmts(f, vars, x);
                }
            }
            SStmt::Loop(n, b) => {
                for _ in 0..*n {
                    eval_stmts(b, vars, x);
                }
            }
        }
    }
}

fn oracle(stmts: &[SStmt], x: i64) -> i64 {
    let mut vars = [0i64, 1, 2, 3];
    eval_stmts(stmts, &mut vars, x);
    vars[0]
        .wrapping_add(vars[1].wrapping_mul(31))
        .wrapping_add(vars[2].wrapping_mul(977))
        .wrapping_add(vars[3].wrapping_mul(83))
}

// ---- The differential property --------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn compiled_programs_match_the_interpreter(
        stmts in arb_stmts(2),
        xs in proptest::collection::vec(-6i64..6, 1..3),
    ) {
        let src = emit_program(&stmts);
        for opts in [Options::dynamic(), Options { optimize: false, ..Options::dynamic() }] {
            let program = Program::build_with(&[("fuzz.c", &src)], &opts)
                .unwrap_or_else(|e| panic!("compile failed: {e}\n{src}"));
            let mut w = program.boot();
            for &x in &xs {
                let expect = oracle(&stmts, x) as u64;
                let got = w.call("f", &[x as u64]).unwrap();
                prop_assert_eq!(got, expect, "optimize={:?} x={}\n{}", opts.optimize, x, src);
            }
        }
    }
}
