//! Binary descriptor formats for the multiverse run-time library.
//!
//! The compiler emits three kinds of descriptors into dedicated sections
//! (Fig. 2 of the paper); the run-time library parses them back out of the
//! loaded image. Record sizes follow §5 of the paper exactly:
//!
//! * configuration switch — **32 bytes** ([`VAR_DESC_SIZE`]),
//! * call site — **16 bytes** ([`CALLSITE_DESC_SIZE`]),
//! * multiversed function — **48 + #variants·(32 + #guards·16) bytes**
//!   ([`FN_DESC_HEADER_SIZE`], [`VARIANT_DESC_SIZE`], [`GUARD_SIZE`]).
//!
//! Address fields are written as zero placeholders with `Abs64` relocations
//! against the referenced symbols, so the linker (or a future dynamic
//! loader) injects the numeric addresses — descriptor emission itself is
//! position independent.

use crate::object::Object;
use crate::reloc::{Reloc, RelocKind};
use crate::section::SectionKind;
use crate::{SEC_MV_CALLSITES, SEC_MV_FUNCTIONS, SEC_MV_VARIABLES};

/// Size of one configuration-switch descriptor.
pub const VAR_DESC_SIZE: usize = 32;
/// Size of one call-site descriptor.
pub const CALLSITE_DESC_SIZE: usize = 16;
/// Size of a function-descriptor header (excluding variants).
pub const FN_DESC_HEADER_SIZE: usize = 48;
/// Size of one variant record (excluding guards).
pub const VARIANT_DESC_SIZE: usize = 32;
/// Size of one guard record.
pub const GUARD_SIZE: usize = 16;

/// Total encoded size of a function descriptor — the §5 formula.
pub const fn fn_desc_size(variants: usize, guards_total: usize) -> usize {
    FN_DESC_HEADER_SIZE + variants * VARIANT_DESC_SIZE + guards_total * GUARD_SIZE
}

/// Marker for a variant body that must not be inlined into call sites.
pub const NOT_INLINABLE: u32 = u32::MAX;

/// Flag bit: the switch has a signed integer type.
pub const VAR_FLAG_SIGNED: u32 = 1 << 0;
/// Flag bit: the switch is an attributed function pointer (§4 extension).
pub const VAR_FLAG_FN_PTR: u32 = 1 << 1;

// ---------------------------------------------------------------------------
// Compiler-side (symbolic) descriptor emission.
// ---------------------------------------------------------------------------

/// Symbolic configuration-switch descriptor, as known to the compiler.
#[derive(Clone, Debug)]
pub struct VarDescSym {
    /// Symbol of the global variable.
    pub symbol: String,
    /// Width of the variable in bytes (1, 2, 4 or 8).
    pub width: u32,
    /// Signed integer type.
    pub signed: bool,
    /// The switch is a function pointer rather than an integer.
    pub fn_ptr: bool,
    /// Optional symbol of an interned NUL-terminated name string.
    pub name_sym: Option<String>,
}

/// Symbolic guard: the switch must lie in `[low, high]` (Fig. 2 uses ranges
/// so merged variants stay representable, e.g. `multi.A=1.B=01`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GuardSym {
    /// Symbol of the guarded configuration switch.
    pub var_symbol: String,
    /// Inclusive lower bound.
    pub low: i32,
    /// Inclusive upper bound.
    pub high: i32,
}

/// Symbolic variant record.
#[derive(Clone, Debug)]
pub struct VariantDescSym {
    /// Symbol of the specialized function body.
    pub symbol: String,
    /// Encoded body size in bytes (including the final `ret`).
    pub body_size: u32,
    /// Bytes to copy when inlining into a call site (body without the
    /// final `ret`), or [`NOT_INLINABLE`].
    pub inline_len: u32,
    /// Guard conjunction over the referenced switches.
    pub guards: Vec<GuardSym>,
}

/// Symbolic function descriptor.
#[derive(Clone, Debug)]
pub struct FnDescSym {
    /// Symbol of the generic function.
    pub symbol: String,
    /// Encoded size of the generic body.
    pub generic_size: u32,
    /// Inlinable prefix of the *generic* body (body without the final
    /// `ret`), or [`NOT_INLINABLE`]. Used when the function is the target
    /// of a committed function-pointer switch (PV-Ops style inlining).
    pub generic_inline_len: u32,
    /// Optional symbol of an interned name string.
    pub name_sym: Option<String>,
    /// Specialized variants.
    pub variants: Vec<VariantDescSym>,
}

/// Symbolic call-site descriptor.
#[derive(Clone, Debug)]
pub struct CallsiteDescSym {
    /// Symbol of the called multiversed function.
    pub callee: String,
    /// Symbol of the containing (caller) function.
    pub caller: String,
    /// Byte offset of the `call rel32` instruction inside the caller.
    pub offset: u32,
}

fn emit_addr_field(obj: &mut Object, section: &str, at: u64, symbol: &str, addend: i64) {
    obj.relocate(Reloc {
        section: section.to_string(),
        offset: at,
        kind: RelocKind::Abs64,
        symbol: symbol.to_string(),
        addend,
    });
}

/// Appends a 32-byte variable descriptor to `multiverse.variables`.
pub fn emit_variable(obj: &mut Object, d: &VarDescSym) {
    let mut rec = [0u8; VAR_DESC_SIZE];
    rec[8..12].copy_from_slice(&d.width.to_le_bytes());
    let mut flags = 0u32;
    if d.signed {
        flags |= VAR_FLAG_SIGNED;
    }
    if d.fn_ptr {
        flags |= VAR_FLAG_FN_PTR;
    }
    rec[12..16].copy_from_slice(&flags.to_le_bytes());
    let base = obj.append(SEC_MV_VARIABLES, SectionKind::Rodata, &rec);
    emit_addr_field(obj, SEC_MV_VARIABLES, base, &d.symbol, 0);
    if let Some(name) = &d.name_sym {
        emit_addr_field(obj, SEC_MV_VARIABLES, base + 16, name, 0);
    }
}

/// Appends a 16-byte call-site descriptor to `multiverse.callsites`.
pub fn emit_callsite(obj: &mut Object, d: &CallsiteDescSym) {
    let rec = [0u8; CALLSITE_DESC_SIZE];
    let base = obj.append(SEC_MV_CALLSITES, SectionKind::Rodata, &rec);
    emit_addr_field(obj, SEC_MV_CALLSITES, base, &d.callee, 0);
    emit_addr_field(obj, SEC_MV_CALLSITES, base + 8, &d.caller, d.offset as i64);
}

/// Appends a variable-length function descriptor to `multiverse.functions`.
pub fn emit_function(obj: &mut Object, d: &FnDescSym) {
    let guards_total: usize = d.variants.iter().map(|v| v.guards.len()).sum();
    let total = fn_desc_size(d.variants.len(), guards_total);
    let mut rec = vec![0u8; total];
    rec[16..20].copy_from_slice(&(d.variants.len() as u32).to_le_bytes());
    rec[20..24].copy_from_slice(&d.generic_size.to_le_bytes());
    rec[24..28].copy_from_slice(&d.generic_inline_len.to_le_bytes());
    // rec[28..48] reserved.
    let mut at = FN_DESC_HEADER_SIZE;
    let mut addr_fields: Vec<(u64, String, i64)> = vec![(0, d.symbol.clone(), 0)];
    if let Some(name) = &d.name_sym {
        addr_fields.push((8, name.clone(), 0));
    }
    for v in &d.variants {
        addr_fields.push((at as u64, v.symbol.clone(), 0));
        rec[at + 8..at + 12].copy_from_slice(&v.body_size.to_le_bytes());
        rec[at + 12..at + 16].copy_from_slice(&(v.guards.len() as u32).to_le_bytes());
        rec[at + 16..at + 20].copy_from_slice(&v.inline_len.to_le_bytes());
        at += VARIANT_DESC_SIZE;
        for g in &v.guards {
            addr_fields.push((at as u64, g.var_symbol.clone(), 0));
            rec[at + 8..at + 12].copy_from_slice(&g.low.to_le_bytes());
            rec[at + 12..at + 16].copy_from_slice(&g.high.to_le_bytes());
            at += GUARD_SIZE;
        }
    }
    debug_assert_eq!(at, total);
    let base = obj.append(SEC_MV_FUNCTIONS, SectionKind::Rodata, &rec);
    for (off, sym, addend) in addr_fields {
        emit_addr_field(obj, SEC_MV_FUNCTIONS, base + off, &sym, addend);
    }
}

// ---------------------------------------------------------------------------
// Runtime-side (resolved) descriptor parsing.
// ---------------------------------------------------------------------------

/// A resolved configuration-switch descriptor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VarDesc {
    /// Address of the variable.
    pub addr: u64,
    /// Width in bytes.
    pub width: u32,
    /// Signed integer type.
    pub signed: bool,
    /// Function-pointer switch.
    pub fn_ptr: bool,
    /// Address of the NUL-terminated name string (0 if absent).
    pub name_addr: u64,
}

/// A resolved guard.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Guard {
    /// Address of the guarded switch.
    pub var_addr: u64,
    /// Inclusive lower bound.
    pub low: i32,
    /// Inclusive upper bound.
    pub high: i32,
}

impl Guard {
    /// `true` if the current `value` of the switch satisfies this guard.
    pub fn admits(&self, value: i64) -> bool {
        (self.low as i64..=self.high as i64).contains(&value)
    }
}

/// A resolved variant record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VariantDesc {
    /// Entry address of the specialized body.
    pub addr: u64,
    /// Encoded body size (including final `ret`).
    pub body_size: u32,
    /// Inlinable prefix length, or [`NOT_INLINABLE`].
    pub inline_len: u32,
    /// Guard conjunction.
    pub guards: Vec<Guard>,
}

/// A resolved function descriptor.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FnDesc {
    /// Entry address of the generic function.
    pub generic: u64,
    /// Address of the name string (0 if absent).
    pub name_addr: u64,
    /// Encoded size of the generic body.
    pub generic_size: u32,
    /// Inlinable prefix of the generic body, or [`NOT_INLINABLE`].
    pub generic_inline_len: u32,
    /// Specialized variants.
    pub variants: Vec<VariantDesc>,
}

/// A resolved call-site descriptor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CallsiteDesc {
    /// Generic entry address of the callee.
    pub callee: u64,
    /// Address of the `call rel32` instruction.
    pub site: u64,
}

/// Error from descriptor parsing.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DescError {
    /// Section size is not a multiple of the record size, or a
    /// variable-length record is truncated.
    Malformed,
}

impl std::fmt::Display for DescError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed descriptor section")
    }
}

impl std::error::Error for DescError {}

fn u64le(b: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(b[at..at + 8].try_into().expect("bounds checked"))
}

fn u32le(b: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(b[at..at + 4].try_into().expect("bounds checked"))
}

fn i32le(b: &[u8], at: usize) -> i32 {
    i32::from_le_bytes(b[at..at + 4].try_into().expect("bounds checked"))
}

/// Parses the `multiverse.variables` section.
pub fn parse_variables(bytes: &[u8]) -> Result<Vec<VarDesc>, DescError> {
    if !bytes.len().is_multiple_of(VAR_DESC_SIZE) {
        return Err(DescError::Malformed);
    }
    Ok(bytes
        .chunks_exact(VAR_DESC_SIZE)
        .map(|rec| {
            let flags = u32le(rec, 12);
            VarDesc {
                addr: u64le(rec, 0),
                width: u32le(rec, 8),
                signed: flags & VAR_FLAG_SIGNED != 0,
                fn_ptr: flags & VAR_FLAG_FN_PTR != 0,
                name_addr: u64le(rec, 16),
            }
        })
        .collect())
}

/// Parses the `multiverse.callsites` section.
pub fn parse_callsites(bytes: &[u8]) -> Result<Vec<CallsiteDesc>, DescError> {
    if !bytes.len().is_multiple_of(CALLSITE_DESC_SIZE) {
        return Err(DescError::Malformed);
    }
    Ok(bytes
        .chunks_exact(CALLSITE_DESC_SIZE)
        .map(|rec| CallsiteDesc {
            callee: u64le(rec, 0),
            site: u64le(rec, 8),
        })
        .collect())
}

/// Parses the `multiverse.functions` section (variable-length records).
pub fn parse_functions(bytes: &[u8]) -> Result<Vec<FnDesc>, DescError> {
    let mut out = Vec::new();
    let mut at = 0usize;
    while at < bytes.len() {
        if bytes.len() - at < FN_DESC_HEADER_SIZE {
            return Err(DescError::Malformed);
        }
        let generic = u64le(bytes, at);
        let name_addr = u64le(bytes, at + 8);
        let n_variants = u32le(bytes, at + 16) as usize;
        let generic_size = u32le(bytes, at + 20);
        let generic_inline_len = u32le(bytes, at + 24);
        let mut pos = at + FN_DESC_HEADER_SIZE;
        let mut variants = Vec::with_capacity(n_variants);
        for _ in 0..n_variants {
            if bytes.len() - pos < VARIANT_DESC_SIZE {
                return Err(DescError::Malformed);
            }
            let addr = u64le(bytes, pos);
            let body_size = u32le(bytes, pos + 8);
            let n_guards = u32le(bytes, pos + 12) as usize;
            let inline_len = u32le(bytes, pos + 16);
            pos += VARIANT_DESC_SIZE;
            if bytes.len() - pos < n_guards * GUARD_SIZE {
                return Err(DescError::Malformed);
            }
            let mut guards = Vec::with_capacity(n_guards);
            for _ in 0..n_guards {
                guards.push(Guard {
                    var_addr: u64le(bytes, pos),
                    low: i32le(bytes, pos + 8),
                    high: i32le(bytes, pos + 12),
                });
                pos += GUARD_SIZE;
            }
            variants.push(VariantDesc {
                addr,
                body_size,
                inline_len,
                guards,
            });
        }
        out.push(FnDesc {
            generic,
            name_addr,
            generic_size,
            generic_inline_len,
            variants,
        });
        at = pos;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::{link, Layout};
    use crate::symbol::Symbol;
    use crate::SEC_TEXT;
    use mvasm::Insn;

    fn base_obj() -> Object {
        let mut o = Object::new("tu0");
        let mut code = mvasm::encode(&Insn::Halt);
        code.extend(mvasm::encode(&Insn::Ret)); // "generic" at offset 1
        code.extend(mvasm::encode(&Insn::Ret)); // "variant" at offset 2
        o.append(SEC_TEXT, SectionKind::Text, &code);
        o.define(Symbol::func("main", SEC_TEXT, 0, 1));
        o.define(Symbol::func("multi", SEC_TEXT, 1, 1));
        o.define(Symbol::func("multi.A=1", SEC_TEXT, 2, 1));
        o.define_bss("A", 4);
        o
    }

    #[test]
    fn variable_descriptor_roundtrip() {
        let mut o = base_obj();
        emit_variable(
            &mut o,
            &VarDescSym {
                symbol: "A".into(),
                width: 4,
                signed: true,
                fn_ptr: false,
                name_sym: None,
            },
        );
        let exe = link(&[o], &Layout::default()).unwrap();
        let seg = exe
            .segments
            .iter()
            .find(|s| s.name == SEC_MV_VARIABLES)
            .unwrap();
        let vars = parse_variables(&seg.bytes).unwrap();
        assert_eq!(vars.len(), 1);
        assert_eq!(vars[0].addr, exe.symbol("A").unwrap());
        assert_eq!(vars[0].width, 4);
        assert!(vars[0].signed);
        assert!(!vars[0].fn_ptr);
    }

    #[test]
    fn function_descriptor_roundtrip_with_merged_guard() {
        let mut o = base_obj();
        emit_function(
            &mut o,
            &FnDescSym {
                symbol: "multi".into(),
                generic_size: 1,
                generic_inline_len: NOT_INLINABLE,
                name_sym: None,
                variants: vec![VariantDescSym {
                    symbol: "multi.A=1".into(),
                    body_size: 1,
                    inline_len: 0,
                    guards: vec![GuardSym {
                        var_symbol: "A".into(),
                        low: 0,
                        high: 1,
                    }],
                }],
            },
        );
        let exe = link(&[o], &Layout::default()).unwrap();
        let seg = exe
            .segments
            .iter()
            .find(|s| s.name == SEC_MV_FUNCTIONS)
            .unwrap();
        assert_eq!(seg.bytes.len(), fn_desc_size(1, 1));
        let fns = parse_functions(&seg.bytes).unwrap();
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].generic, exe.symbol("multi").unwrap());
        let v = &fns[0].variants[0];
        assert_eq!(v.addr, exe.symbol("multi.A=1").unwrap());
        assert_eq!(v.guards[0].var_addr, exe.symbol("A").unwrap());
        assert!(v.guards[0].admits(0));
        assert!(v.guards[0].admits(1));
        assert!(!v.guards[0].admits(2));
    }

    #[test]
    fn callsite_descriptor_roundtrip() {
        let mut o = base_obj();
        emit_callsite(
            &mut o,
            &CallsiteDescSym {
                callee: "multi".into(),
                caller: "main".into(),
                offset: 0,
            },
        );
        let exe = link(&[o], &Layout::default()).unwrap();
        let seg = exe
            .segments
            .iter()
            .find(|s| s.name == SEC_MV_CALLSITES)
            .unwrap();
        let sites = parse_callsites(&seg.bytes).unwrap();
        assert_eq!(sites[0].callee, exe.symbol("multi").unwrap());
        assert_eq!(sites[0].site, exe.symbol("main").unwrap());
    }

    #[test]
    fn sizes_follow_paper_formula() {
        assert_eq!(VAR_DESC_SIZE, 32);
        assert_eq!(CALLSITE_DESC_SIZE, 16);
        assert_eq!(fn_desc_size(0, 0), 48);
        assert_eq!(fn_desc_size(3, 5), 48 + 3 * 32 + 5 * 16);
    }

    #[test]
    fn malformed_sections_rejected() {
        assert_eq!(parse_variables(&[0u8; 31]), Err(DescError::Malformed));
        assert_eq!(parse_callsites(&[0u8; 17]), Err(DescError::Malformed));
        assert!(parse_functions(&[0u8; 47]).is_err());
        // Header claiming one variant but no variant bytes.
        let mut bad = vec![0u8; 48];
        bad[16..20].copy_from_slice(&1u32.to_le_bytes());
        assert!(parse_functions(&bad).is_err());
    }

    #[test]
    fn empty_sections_parse_to_empty() {
        assert!(parse_variables(&[]).unwrap().is_empty());
        assert!(parse_callsites(&[]).unwrap().is_empty());
        assert!(parse_functions(&[]).unwrap().is_empty());
    }
}
