//! Dead-code elimination: unused pure temps and stores to never-read
//! local slots.

use crate::ir::{FuncIr, Inst, Operand, Term};
use std::collections::HashSet;

/// Runs the pass; returns `true` if anything changed.
pub fn run(f: &mut FuncIr) -> bool {
    let mut changed = false;

    // Collect all used temps and all loaded slots, function-wide.
    let mut used_temps: HashSet<u32> = HashSet::new();
    let mut loaded_slots: HashSet<u32> = HashSet::new();
    for b in &f.blocks {
        for inst in &b.insts {
            for op in inst.operands() {
                if let Operand::Temp(t) = op {
                    used_temps.insert(t);
                }
            }
            if let Inst::LoadLocal { slot, .. } = inst {
                loaded_slots.insert(*slot);
            }
        }
        match &b.term {
            Term::Br {
                cond: Operand::Temp(t),
                ..
            } => {
                used_temps.insert(*t);
            }
            Term::Ret(Some(Operand::Temp(t))) => {
                used_temps.insert(*t);
            }
            _ => {}
        }
    }

    // Iterate removal: dropping an instruction can make its inputs dead,
    // so run a few rounds (bounded by instruction count via the caller's
    // fixpoint loop).
    for b in &mut f.blocks {
        let before = b.insts.len();
        b.insts.retain(|inst| {
            // Stores to a slot no load ever reads are dead even though
            // they are nominally effectful.
            if let Inst::StoreLocal { slot, .. } = inst {
                return loaded_slots.contains(slot);
            }
            if inst.has_side_effect() {
                return true;
            }
            match inst.dst() {
                Some(d) => used_temps.contains(&d),
                None => true,
            }
        });
        changed |= b.insts.len() != before;
    }

    // A call whose result is unused keeps the call but drops the dst so
    // canonical keys of "call used" vs "call ignored" differ correctly.
    for b in &mut f.blocks {
        for inst in &mut b.insts {
            if let Inst::Call {
                dst: dst @ Some(_), ..
            } = inst
            {
                if !used_temps.contains(&dst.expect("checked Some")) {
                    *dst = None;
                    changed = true;
                }
            }
        }
    }
    changed
}
