//! Snapshot exporters: Prometheus text exposition and a versioned
//! JSON document. Both operate on the `Vec<Sample>` returned by
//! [`Registry::snapshot`](crate::Registry::snapshot), so an export is
//! always a consistent point-in-time view.

use crate::json::{array, number, string, Obj};
use crate::{Sample, SampleValue};

/// Schema version of the JSON snapshot document.
pub const JSON_SNAPSHOT_VERSION: u32 = 1;

/// Renders samples in the Prometheus text exposition format. `# HELP`
/// and `# TYPE` headers are emitted once per metric family, before its
/// first sample; label sets render in registration order.
pub fn prometheus(samples: &[Sample]) -> String {
    let mut out = String::new();
    let mut seen: Vec<&str> = Vec::new();
    for s in samples {
        if !seen.contains(&s.name.as_str()) {
            seen.push(&s.name);
            let ty = match &s.value {
                SampleValue::Counter(_) => "counter",
                SampleValue::Gauge(_) => "gauge",
                SampleValue::Histogram { .. } => "histogram",
            };
            out.push_str(&format!("# HELP {} {}\n", s.name, s.help));
            out.push_str(&format!("# TYPE {} {}\n", s.name, ty));
        }
        match &s.value {
            SampleValue::Counter(v) => {
                out.push_str(&format!("{}{} {}\n", s.name, label_set(s, &[]), v));
            }
            SampleValue::Gauge(v) => {
                out.push_str(&format!(
                    "{}{} {}\n",
                    s.name,
                    label_set(s, &[]),
                    prom_f64(*v)
                ));
            }
            SampleValue::Histogram {
                bounds,
                counts,
                count,
                sum,
            } => {
                let mut cum = 0u64;
                for (i, c) in counts.iter().enumerate() {
                    cum += c;
                    let le = if i < bounds.len() {
                        prom_f64(bounds[i])
                    } else {
                        "+Inf".to_string()
                    };
                    out.push_str(&format!(
                        "{}_bucket{} {}\n",
                        s.name,
                        label_set(s, &[("le", &le)]),
                        cum
                    ));
                }
                out.push_str(&format!(
                    "{}_sum{} {}\n",
                    s.name,
                    label_set(s, &[]),
                    prom_f64(*sum)
                ));
                out.push_str(&format!(
                    "{}_count{} {}\n",
                    s.name,
                    label_set(s, &[]),
                    count
                ));
            }
        }
    }
    out
}

/// Renders samples as a versioned JSON snapshot document:
/// `{"version":1,"kind":"mv-metrics-snapshot","metrics":[...]}`.
pub fn json(samples: &[Sample]) -> String {
    let metrics = samples.iter().map(|s| {
        let mut o = Obj::new();
        o.str("name", &s.name);
        let ty = match &s.value {
            SampleValue::Counter(_) => "counter",
            SampleValue::Gauge(_) => "gauge",
            SampleValue::Histogram { .. } => "histogram",
        };
        o.str("type", ty);
        if !s.labels.is_empty() {
            let mut lo = Obj::new();
            for (k, v) in &s.labels {
                lo.str(k, v);
            }
            o.raw("labels", lo.finish());
        }
        match &s.value {
            SampleValue::Counter(v) => {
                o.u64("value", *v);
            }
            SampleValue::Gauge(v) => {
                o.f64("value", *v);
            }
            SampleValue::Histogram {
                bounds,
                counts,
                count,
                sum,
            } => {
                o.raw("bounds", array(bounds.iter().map(|b| number(*b))));
                o.raw("counts", array(counts.iter().map(|c| c.to_string())));
                o.u64("count", *count);
                o.f64("sum", *sum);
            }
        }
        o.finish()
    });
    let mut doc = Obj::new();
    doc.u64("version", JSON_SNAPSHOT_VERSION as u64)
        .str("kind", "mv-metrics-snapshot")
        .raw("metrics", array(metrics));
    doc.finish()
}

fn label_set(s: &Sample, extra: &[(&str, &str)]) -> String {
    if s.labels.is_empty() && extra.is_empty() {
        return String::new();
    }
    let pairs: Vec<String> = s
        .labels
        .iter()
        .map(|(k, v)| format!("{}={}", k, string(v)))
        .chain(extra.iter().map(|(k, v)| format!("{}={}", k, string(v))))
        .collect();
    format!("{{{}}}", pairs.join(","))
}

fn prom_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.to_string()
    } else if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    fn demo_registry() -> Registry {
        let r = Registry::new();
        let c = r.counter_with("mv_ops_total", "Operations", &[("op", "flip")]);
        c.add(3);
        let g = r.gauge("mv_depth", "Queue depth");
        g.set(2.0);
        let h = r.histogram("mv_lat", "Latency", &[1.0, 10.0]);
        h.observe(0.5);
        h.observe(5.0);
        h.observe(50.0);
        r
    }

    #[test]
    fn prometheus_families() {
        let text = prometheus(&demo_registry().snapshot());
        assert!(text.contains("# TYPE mv_ops_total counter"));
        assert!(text.contains("mv_ops_total{op=\"flip\"} 3"));
        assert!(text.contains("mv_depth 2"));
        // Cumulative buckets: 1, 2, 3.
        assert!(text.contains("mv_lat_bucket{le=\"1\"} 1"));
        assert!(text.contains("mv_lat_bucket{le=\"10\"} 2"));
        assert!(text.contains("mv_lat_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("mv_lat_count 3"));
    }

    #[test]
    fn json_snapshot_shape() {
        let doc = json(&demo_registry().snapshot());
        assert!(doc.starts_with("{\"version\":1,\"kind\":\"mv-metrics-snapshot\""));
        assert!(doc.contains("\"name\":\"mv_ops_total\""));
        assert!(doc.contains("\"labels\":{\"op\":\"flip\"}"));
        assert!(doc.contains("\"counts\":[1,1,1]"));
    }
}
