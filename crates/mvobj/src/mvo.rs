//! MVO — the on-disk object-file format.
//!
//! Serializes a relocatable [`Object`] so translation units can be
//! compiled in separate processes and linked later (`mvcc -c` / link),
//! as a C toolchain would. The format is a straightforward
//! length-prefixed little-endian encoding:
//!
//! ```text
//! "MVO1" | unit-name
//! u32 n_sections  { name | kind u8 | align u64 | mem_size u64 | bytes }
//! u32 n_symbols   { name | section | offset u64 | flags u8 | size u64 }
//! u32 n_relocs    { section | offset u64 | kind u8 (+ next u64) | symbol | addend i64 }
//! ```
//!
//! Strings are `u32` length + UTF-8 bytes. Descriptor sections travel as
//! ordinary sections; their relocations keep the whole scheme position
//! independent, exactly as in memory.

use crate::object::Object;
use crate::reloc::{Reloc, RelocKind};
use crate::section::{Section, SectionKind};
use crate::symbol::{SymKind, Symbol};
use std::fmt;

/// Magic bytes of the format.
pub const MAGIC: &[u8; 4] = b"MVO1";

/// Errors from reading an MVO image.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum MvoError {
    /// Missing or wrong magic.
    BadMagic,
    /// The input ended inside a field.
    Truncated,
    /// A string field is not UTF-8.
    BadString,
    /// An enum field holds an unknown value.
    BadEnum(u8),
}

impl fmt::Display for MvoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MvoError::BadMagic => write!(f, "not an MVO object (bad magic)"),
            MvoError::Truncated => write!(f, "truncated MVO object"),
            MvoError::BadString => write!(f, "malformed string in MVO object"),
            MvoError::BadEnum(v) => write!(f, "invalid enum value {v} in MVO object"),
        }
    }
}

impl std::error::Error for MvoError {}

// ---- writing ---------------------------------------------------------------

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    out.extend_from_slice(&(b.len() as u32).to_le_bytes());
    out.extend_from_slice(b);
}

fn kind_code(k: SectionKind) -> u8 {
    match k {
        SectionKind::Text => 0,
        SectionKind::Data => 1,
        SectionKind::Rodata => 2,
        SectionKind::Bss => 3,
    }
}

/// Serializes `obj` into MVO bytes.
pub fn write_object(obj: &Object) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    put_str(&mut out, &obj.name);

    out.extend_from_slice(&(obj.sections.len() as u32).to_le_bytes());
    for s in &obj.sections {
        put_str(&mut out, &s.name);
        out.push(kind_code(s.kind));
        out.extend_from_slice(&s.align.to_le_bytes());
        out.extend_from_slice(&s.size.to_le_bytes());
        put_bytes(&mut out, &s.bytes);
    }

    out.extend_from_slice(&(obj.symbols.len() as u32).to_le_bytes());
    for sym in &obj.symbols {
        put_str(&mut out, &sym.name);
        put_str(&mut out, &sym.section);
        out.extend_from_slice(&sym.offset.to_le_bytes());
        let flags = (sym.global as u8) | (((sym.kind == SymKind::Func) as u8) << 1);
        out.push(flags);
        out.extend_from_slice(&sym.size.to_le_bytes());
    }

    out.extend_from_slice(&(obj.relocs.len() as u32).to_le_bytes());
    for r in &obj.relocs {
        put_str(&mut out, &r.section);
        out.extend_from_slice(&r.offset.to_le_bytes());
        match r.kind {
            RelocKind::Abs64 => out.push(0),
            RelocKind::Rel32 { next_insn } => {
                out.push(1);
                out.extend_from_slice(&next_insn.to_le_bytes());
            }
        }
        put_str(&mut out, &r.symbol);
        out.extend_from_slice(&r.addend.to_le_bytes());
    }
    out
}

// ---- reading ---------------------------------------------------------------

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], MvoError> {
        let end = self.pos.checked_add(n).ok_or(MvoError::Truncated)?;
        if end > self.buf.len() {
            return Err(MvoError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, MvoError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, MvoError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, MvoError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn i64(&mut self) -> Result<i64, MvoError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn string(&mut self) -> Result<String, MvoError> {
        let n = self.u32()? as usize;
        let b = self.take(n)?;
        String::from_utf8(b.to_vec()).map_err(|_| MvoError::BadString)
    }

    fn bytes(&mut self) -> Result<Vec<u8>, MvoError> {
        let n = self.u32()? as usize;
        Ok(self.take(n)?.to_vec())
    }
}

/// Deserializes MVO bytes into an [`Object`].
pub fn read_object(bytes: &[u8]) -> Result<Object, MvoError> {
    let mut r = Reader { buf: bytes, pos: 0 };
    if r.take(4)? != MAGIC {
        return Err(MvoError::BadMagic);
    }
    let mut obj = Object::new(&r.string()?);

    let n_sections = r.u32()?;
    for _ in 0..n_sections {
        let name = r.string()?;
        let kind = match r.u8()? {
            0 => SectionKind::Text,
            1 => SectionKind::Data,
            2 => SectionKind::Rodata,
            3 => SectionKind::Bss,
            other => return Err(MvoError::BadEnum(other)),
        };
        let align = r.u64()?;
        let size = r.u64()?;
        let data = r.bytes()?;
        obj.sections.push(Section {
            name,
            kind,
            bytes: data,
            size,
            align,
        });
    }

    let n_symbols = r.u32()?;
    for _ in 0..n_symbols {
        let name = r.string()?;
        let section = r.string()?;
        let offset = r.u64()?;
        let flags = r.u8()?;
        let size = r.u64()?;
        obj.symbols.push(Symbol {
            name,
            section,
            offset,
            global: flags & 1 != 0,
            kind: if flags & 2 != 0 {
                SymKind::Func
            } else {
                SymKind::Object
            },
            size,
        });
    }

    let n_relocs = r.u32()?;
    for _ in 0..n_relocs {
        let section = r.string()?;
        let offset = r.u64()?;
        let kind = match r.u8()? {
            0 => RelocKind::Abs64,
            1 => RelocKind::Rel32 {
                next_insn: r.u64()?,
            },
            other => return Err(MvoError::BadEnum(other)),
        };
        let symbol = r.string()?;
        let addend = r.i64()?;
        obj.relocs.push(Reloc {
            section,
            offset,
            kind,
            symbol,
            addend,
        });
    }
    Ok(obj)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_object() -> Object {
        let mut o = Object::new("unit.c");
        o.append(crate::SEC_TEXT, SectionKind::Text, &[0xE8, 1, 2, 3, 4]);
        o.define(Symbol::func("main", crate::SEC_TEXT, 0, 5));
        o.define_bss("counter", 8);
        o.define_data("table", &[7u8; 16]);
        o.relocate(Reloc {
            section: crate::SEC_TEXT.into(),
            offset: 1,
            kind: RelocKind::Rel32 { next_insn: 5 },
            symbol: "callee".into(),
            addend: -3,
        });
        o.relocate(Reloc {
            section: crate::SEC_DATA.into(),
            offset: 0,
            kind: RelocKind::Abs64,
            symbol: "main".into(),
            addend: 0,
        });
        o
    }

    fn objects_equal(a: &Object, b: &Object) -> bool {
        if a.name != b.name
            || a.sections.len() != b.sections.len()
            || a.symbols.len() != b.symbols.len()
            || a.relocs.len() != b.relocs.len()
        {
            return false;
        }
        for (x, y) in a.sections.iter().zip(&b.sections) {
            if x.name != y.name
                || x.kind != y.kind
                || x.bytes != y.bytes
                || x.size != y.size
                || x.align != y.align
            {
                return false;
            }
        }
        for (x, y) in a.symbols.iter().zip(&b.symbols) {
            if x.name != y.name
                || x.section != y.section
                || x.offset != y.offset
                || x.global != y.global
                || x.kind != y.kind
            {
                return false;
            }
        }
        for (x, y) in a.relocs.iter().zip(&b.relocs) {
            if x.section != y.section
                || x.offset != y.offset
                || x.symbol != y.symbol
                || x.addend != y.addend
            {
                return false;
            }
            match (&x.kind, &y.kind) {
                (RelocKind::Abs64, RelocKind::Abs64) => {}
                (RelocKind::Rel32 { next_insn: n1 }, RelocKind::Rel32 { next_insn: n2 })
                    if n1 == n2 => {}
                _ => return false,
            }
        }
        true
    }

    #[test]
    fn roundtrip_sample() {
        let o = sample_object();
        let bytes = write_object(&o);
        let back = read_object(&bytes).unwrap();
        assert!(objects_equal(&o, &back));
    }

    #[test]
    fn bad_magic_rejected() {
        assert!(matches!(read_object(b"ELF!rest"), Err(MvoError::BadMagic)));
        assert!(matches!(read_object(b"MV"), Err(MvoError::Truncated)));
    }

    proptest! {
        /// Truncating a valid image at any point yields a structured
        /// error, never a panic.
        #[test]
        fn truncation_never_panics(cut in 0usize..512) {
            let bytes = write_object(&sample_object());
            let cut = cut.min(bytes.len().saturating_sub(1));
            let _ = read_object(&bytes[..cut]);
        }

        /// Random byte flips either round-trip to a different-but-parsed
        /// object or fail cleanly.
        #[test]
        fn corruption_never_panics(pos in 0usize..256, val in any::<u8>()) {
            let mut bytes = write_object(&sample_object());
            let pos = pos.min(bytes.len() - 1);
            bytes[pos] = val;
            let _ = read_object(&bytes);
        }
    }
}
