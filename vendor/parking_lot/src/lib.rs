//! Offline shim for the subset of `parking_lot` this workspace uses.
//!
//! The container this repository is built in has no access to crates.io,
//! so the sanctioned external crates are replaced by small local shims
//! with the same API surface (see `vendor/README.md`). This one wraps
//! `std::sync` primitives behind parking_lot's non-poisoning interface:
//! `lock()`/`read()`/`write()` return guards directly and a poisoned
//! std lock is transparently recovered, matching parking_lot's behavior
//! of not propagating panics as poison.

use std::sync;

/// A mutual-exclusion primitive (non-poisoning `lock()` API).
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

/// A reader-writer lock (non-poisoning `read()`/`write()` API).
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// RAII read guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// RAII write guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> RwLock<T> {
        RwLock::new(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
