//! MV64 code generation.
//!
//! A deliberately simple backend: temporaries live in a pool of
//! caller-saved registers (`r1`–`r5`, `r12`, `r13`) with greedy last-use
//! allocation, locals and spill homes live in a `bp`-based frame, and leaf
//! functions without locals skip the frame entirely so the paper's tiny
//! hot functions (`spin_lock`, `cli` wrappers, …) carry no prologue
//! overhead.
//!
//! Responsibilities beyond instruction selection:
//!
//! * **Call-site labelling** (§3): every `call rel32` to a multiversed
//!   function and every `call *[ptr]` through a multiverse function
//!   pointer is recorded with its exact byte offset — these become
//!   `multiverse.callsites` descriptors.
//! * **Calling conventions** (§6.1): functions marked `pvop_cc` are
//!   emitted with the PV-Ops convention — the callee saves and restores
//!   the *entire* caller-saved register file, reproducing the overhead
//!   the paper measured in the Xen guest.
//! * **Inline metadata** (§4): after assembly each body is analysed for
//!   run-time inlinability — a straight-line prefix followed by a single
//!   `ret`, free of relative control transfers.

use crate::error::CompileError;
use crate::ir::{Callee, FuncIr, Inst, Intrinsic, IrBin, IrUn, Operand, Term};
use crate::lower::Ctx;
use mvasm::{AluOp, Assembler, Cond, Insn, Reg, Width};
use mvobj::descriptor::NOT_INLINABLE;
use std::collections::HashMap;

/// Register pool for temporaries (all caller-saved).
const POOL: [Reg; 7] = [
    Reg::R1,
    Reg::R2,
    Reg::R3,
    Reg::R4,
    Reg::R5,
    Reg::R12,
    Reg::R13,
];

/// Generated machine code for one function.
pub struct GenFn {
    /// Assembled bytes (padded to at least 5 bytes so the runtime can
    /// always place an entry jump).
    pub blob: mvasm::asm::CodeBlob,
    /// `(offset, callee)` of recorded direct call sites to multiversed
    /// functions.
    pub mv_callsites: Vec<(u32, String)>,
    /// `(offset, pointer-global)` of recorded indirect call sites through
    /// multiverse function pointers.
    pub ptr_callsites: Vec<(u32, String)>,
    /// Run-time inlinable prefix length, or [`NOT_INLINABLE`].
    pub inline_len: u32,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Loc {
    Reg(Reg),
    Slot(u32),
}

struct Gen<'a> {
    f: &'a FuncIr,
    ctx: &'a Ctx,
    record_sites: bool,
    a: Assembler,
    /// temp → current location.
    loc: HashMap<u32, Loc>,
    free: Vec<Reg>,
    /// temp → home spill slot (lazily assigned after `n_slots`).
    home: HashMap<u32, u32>,
    next_home: u32,
    has_frame: bool,
    n_pushes: u32,
    frame_bytes: i64,
    /// Registers the PV-Ops prologue/epilogue saves.
    pvop_save: Vec<Reg>,
    /// Pool registers the body actually allocated (for the PV-Ops
    /// clobber set).
    used: std::collections::HashSet<Reg>,
    mv_callsites: Vec<(u32, String)>,
    ptr_callsites: Vec<(u32, String)>,
}

/// Generates code for `f`.
///
/// `record_sites` controls call-site descriptor recording (off for the
/// plain dynamic baseline build).
pub fn gen_function(f: &FuncIr, ctx: &Ctx, record_sites: bool) -> Result<GenFn, CompileError> {
    f.validate();
    // PV-Ops functions save exactly the registers they clobber, as the
    // kernel's clobber annotations do. The set is discovered with a dry
    // run (allocation is offset-independent, so both passes allocate
    // identically).
    let save = if f.attrs.pvop_cc {
        let dry = gen_once(f, ctx, record_sites, POOL.to_vec())?;
        let mut regs: Vec<Reg> = dry.1.into_iter().collect();
        regs.sort_by_key(|r| r.index());
        regs
    } else {
        Vec::new()
    };
    let (g, _) = gen_once(f, ctx, record_sites, save)?;
    Ok(g)
}

fn gen_once(
    f: &FuncIr,
    ctx: &Ctx,
    record_sites: bool,
    pvop_save: Vec<Reg>,
) -> Result<(GenFn, std::collections::HashSet<Reg>), CompileError> {
    let max_block_temps = f
        .blocks
        .iter()
        .map(|b| b.insts.iter().filter(|i| i.dst().is_some()).count())
        .max()
        .unwrap_or(0);
    // A call needs the frame when an argument is a temporary (staged via
    // home slots) or when a temporary is live across it (spilled).
    let call_needs_frame = f.blocks.iter().any(|b| {
        let mut last_use: HashMap<u32, usize> = HashMap::new();
        let mut def_at: HashMap<u32, usize> = HashMap::new();
        for (i, inst) in b.insts.iter().enumerate() {
            for op in inst.operands() {
                if let Operand::Temp(t) = op {
                    last_use.insert(t, i);
                }
            }
            if let Some(d) = inst.dst() {
                def_at.insert(d, i);
            }
        }
        let term_idx = b.insts.len();
        match &b.term {
            Term::Br {
                cond: Operand::Temp(t),
                ..
            } => {
                last_use.insert(*t, term_idx);
            }
            Term::Ret(Some(Operand::Temp(t))) => {
                last_use.insert(*t, term_idx);
            }
            _ => {}
        }
        b.insts.iter().enumerate().any(|(i, inst)| {
            let Inst::Call { args, .. } = inst else {
                return false;
            };
            if args.iter().any(|a| matches!(a, Operand::Temp(_))) {
                return true;
            }
            def_at
                .iter()
                .any(|(t, &d)| d < i && last_use.get(t).copied().unwrap_or(d) > i)
        })
    });
    // Slots matter only if the optimized body still touches one (dead
    // locals — e.g. after full specialization — must not force a frame).
    let uses_slots = f.blocks.iter().any(|b| {
        b.insts
            .iter()
            .any(|i| matches!(i, Inst::LoadLocal { .. } | Inst::StoreLocal { .. }))
    });
    // Constant staging can hold up to two extra registers beyond the
    // block's temporaries; stay clear of the pool limit.
    let has_frame = uses_slots || call_needs_frame || max_block_temps + 2 > POOL.len();
    let pvop_pushes = pvop_save.len() as u32;
    // Home slots: locals first, then (worst case) one per temp.
    let frame_bytes = 8 * (f.n_slots as i64 + f.n_temps as i64);

    let mut g = Gen {
        f,
        ctx,
        record_sites,
        a: Assembler::new(),
        loc: HashMap::new(),
        free: Vec::new(),
        home: HashMap::new(),
        next_home: f.n_slots,
        has_frame,
        n_pushes: pvop_pushes,
        frame_bytes,
        pvop_save,
        used: std::collections::HashSet::new(),
        mv_callsites: Vec::new(),
        ptr_callsites: Vec::new(),
    };

    g.prologue();
    for bi in 0..f.blocks.len() {
        g.block(bi)?;
    }
    let used = g.used.clone();

    let blob =
        g.a.finish()
            .map_err(|e| CompileError::Asm(format!("{}: {e}", f.name)))?;
    let mut blob = blob;
    // Pad to at least one call-site width so an entry jump always fits.
    mvasm::MV64.pad_entry(&mut blob.bytes);
    let inline_len = compute_inline_len(&blob);
    Ok((
        GenFn {
            blob,
            mv_callsites: g.mv_callsites,
            ptr_callsites: g.ptr_callsites,
            inline_len,
        },
        used,
    ))
}

/// A body is run-time inlinable if it is a straight-line instruction
/// sequence followed by a single final `ret`, with no relative control
/// transfers (their displacement would break at the copy destination).
/// Absolute references (globals) copy fine. Returns the prefix length.
fn compute_inline_len(blob: &mvasm::asm::CodeBlob) -> u32 {
    let bytes = &blob.bytes;
    // Any rel32 fixup in the body makes it position-dependent.
    if blob
        .fixups
        .iter()
        .any(|fx| matches!(fx.kind, mvasm::FixupKind::Rel32 { .. }))
    {
        return NOT_INLINABLE;
    }
    let mut pos = 0usize;
    while pos < bytes.len() {
        let Ok((insn, len)) = mvasm::decode(&bytes[pos..]) else {
            return NOT_INLINABLE;
        };
        match insn {
            Insn::Ret => {
                // Must be the final instruction (ignoring padding NOPs).
                let mut rest = pos + len;
                while rest < bytes.len() {
                    match mvasm::decode(&bytes[rest..]) {
                        Ok((i, l)) if i.is_nop() => rest += l,
                        _ => return NOT_INLINABLE,
                    }
                }
                return pos as u32;
            }
            i if i.is_control() => return NOT_INLINABLE,
            // Stack-relative code (frames, pushes) is position-independent
            // but changes `sp` expectations; push/pop pairs inline fine.
            _ => pos += len,
        }
    }
    NOT_INLINABLE
}

impl<'a> Gen<'a> {
    fn prologue(&mut self) {
        if self.has_frame {
            self.a.push(Reg::BP);
            self.a.mov_rr(Reg::BP, Reg::SP);
        }
        if self.f.attrs.pvop_cc {
            // PV-Ops convention: no volatile registers (§6.1) — the
            // callee saves every register it clobbers.
            let save = self.pvop_save.clone();
            for r in save {
                self.a.push(r);
            }
        }
        if self.has_frame {
            self.a.emit(Insn::AluRI {
                op: AluOp::Sub,
                dst: Reg::SP,
                imm: self.frame_bytes,
            });
            // Park incoming parameters in their slots.
            for p in 0..self.f.n_params {
                let src = Reg::new(p as u8).expect("≤ 6 params");
                self.a.emit(Insn::Store {
                    src,
                    base: Reg::BP,
                    off: self.slot_off(p),
                    width: Width::W64,
                });
            }
        }
        self.reset_block_state();
    }

    fn epilogue(&mut self) {
        if self.has_frame {
            self.a.emit(Insn::AluRI {
                op: AluOp::Add,
                dst: Reg::SP,
                imm: self.frame_bytes,
            });
        }
        if self.f.attrs.pvop_cc {
            let save = self.pvop_save.clone();
            for r in save.iter().rev() {
                self.a.pop(*r);
            }
        }
        if self.has_frame {
            self.a.pop(Reg::BP);
        }
        self.a.ret();
    }

    fn slot_off(&self, slot: u32) -> i32 {
        -(((self.n_pushes + slot + 1) * 8) as i32)
    }

    fn reset_block_state(&mut self) {
        self.loc.clear();
        self.free = POOL.to_vec();
    }

    fn alloc_reg(&mut self) -> Reg {
        if let Some(r) = self.free.pop() {
            self.used.insert(r);
            return r;
        }
        // Spill the register whose temp was defined earliest (any victim
        // is correct; temps reload from their home slot on next use).
        let (&victim, &Loc::Reg(r)) = self
            .loc
            .iter()
            .filter(|(_, l)| matches!(l, Loc::Reg(_)))
            .min_by_key(|(t, _)| **t)
            .expect("pool exhausted implies a register-resident temp")
        else {
            unreachable!("filtered to registers");
        };
        let home = self.home_of(victim);
        self.a.emit(Insn::Store {
            src: r,
            base: Reg::BP,
            off: self.slot_off(home),
            width: Width::W64,
        });
        self.loc.insert(victim, Loc::Slot(home));
        r
    }

    fn home_of(&mut self, temp: u32) -> u32 {
        if let Some(&h) = self.home.get(&temp) {
            return h;
        }
        let h = self.next_home;
        self.next_home += 1;
        assert!(
            h < self.f.n_slots + self.f.n_temps,
            "home slots exceed frame reservation"
        );
        self.home.insert(temp, h);
        h
    }

    /// Materializes a temp in a register (reloading from its home slot if
    /// it was spilled).
    fn temp_reg(&mut self, t: u32) -> Reg {
        match self.loc.get(&t).copied() {
            Some(Loc::Reg(r)) => r,
            Some(Loc::Slot(s)) => {
                let r = self.alloc_reg();
                self.a.emit(Insn::Load {
                    dst: r,
                    base: Reg::BP,
                    off: self.slot_off(s),
                    width: Width::W64,
                    signed: false,
                });
                self.loc.insert(t, Loc::Reg(r));
                r
            }
            None => panic!("{}: temp t{t} has no location", self.f.name),
        }
    }

    /// Materializes any operand in a register.
    fn operand_reg(&mut self, op: Operand) -> Reg {
        match op {
            Operand::Temp(t) => self.temp_reg(t),
            Operand::Const(c) => {
                let r = self.alloc_reg();
                self.a.mov_ri(r, c);
                // Constants are not tracked; caller must free via
                // free_scratch when done.
                r
            }
        }
    }

    fn define(&mut self, t: u32) -> Reg {
        let r = self.alloc_reg();
        self.loc.insert(t, Loc::Reg(r));
        r
    }

    fn kill(&mut self, t: u32) {
        if let Some(Loc::Reg(r)) = self.loc.remove(&t) {
            self.free.push(r);
        }
    }

    fn free_scratch(&mut self, op: Operand, r: Reg) {
        if matches!(op, Operand::Const(_)) {
            self.free.push(r);
        }
    }

    fn block(&mut self, bi: usize) -> Result<(), CompileError> {
        self.a.label(&format!(".b{bi}"));
        self.reset_block_state();
        let block = &self.f.blocks[bi];

        // Last use index per temp (terminator = insts.len()).
        let mut last_use: HashMap<u32, usize> = HashMap::new();
        for (i, inst) in block.insts.iter().enumerate() {
            for op in inst.operands() {
                if let Operand::Temp(t) = op {
                    last_use.insert(t, i);
                }
            }
        }
        let term_idx = block.insts.len();
        match &block.term {
            Term::Br {
                cond: Operand::Temp(t),
                ..
            } => {
                last_use.insert(*t, term_idx);
            }
            Term::Ret(Some(Operand::Temp(t))) => {
                last_use.insert(*t, term_idx);
            }
            _ => {}
        }

        // Detect the cmp+branch fusion opportunity: last inst is a
        // comparison whose only consumer is the branch condition.
        let fuse = matches!(
            (&block.term, block.insts.last()),
            (
                Term::Br { cond: Operand::Temp(ct), .. },
                Some(Inst::Bin { op, dst, .. }),
            ) if dst == ct && cmp_cond(*op).is_some()
        );

        let n = block.insts.len();
        for (i, inst) in block.insts.iter().enumerate() {
            if fuse && i == n - 1 {
                // Emit only the flag-setting compare; Jcc follows in the
                // terminator.
                let Inst::Bin { op, a, b, .. } = inst else {
                    unreachable!("fusion requires a compare")
                };
                self.emit_cmp(*a, *b);
                let _ = op;
                break;
            }
            self.inst(i, inst)?;
            // Free temps whose last use has passed.
            for op in inst.operands() {
                if let Operand::Temp(t) = op {
                    if last_use.get(&t) == Some(&i) {
                        self.kill(t);
                    }
                }
            }
            // A result that is never used (e.g. call in statement
            // position) frees immediately.
            if let Some(d) = inst.dst() {
                if !last_use.contains_key(&d) {
                    self.kill(d);
                }
            }
        }

        // Terminator.
        let next_bi = bi + 1;
        match &block.term {
            Term::Jmp(t) => {
                if *t as usize != next_bi {
                    self.a.jmp(&format!(".b{t}"));
                }
            }
            Term::Br { cond, t, f } => {
                let cc = if fuse {
                    let Some(Inst::Bin { op, .. }) = block.insts.last() else {
                        unreachable!()
                    };
                    cmp_cond(*op).expect("fusion checked")
                } else {
                    match cond {
                        Operand::Temp(tt) => {
                            let r = self.temp_reg(*tt);
                            self.a.cmp_ri(r, 0);
                            Cond::Ne
                        }
                        Operand::Const(c) => {
                            // Should have been folded; emit correct code
                            // anyway.
                            if *c != 0 {
                                if *t as usize != next_bi {
                                    self.a.jmp(&format!(".b{t}"));
                                }
                            } else if *f as usize != next_bi {
                                self.a.jmp(&format!(".b{f}"));
                            }
                            return Ok(());
                        }
                    }
                };
                if *t as usize == next_bi {
                    // Fall through into the taken arm by negating the
                    // condition; at most one branch instruction emitted.
                    self.a.jcc(&format!(".b{f}"), cc.negate());
                } else {
                    self.a.jcc(&format!(".b{t}"), cc);
                    if *f as usize != next_bi {
                        self.a.jmp(&format!(".b{f}"));
                    }
                }
            }
            Term::Ret(v) => {
                match v {
                    Some(Operand::Const(c)) => self.a.mov_ri(Reg::R0, *c),
                    Some(Operand::Temp(t)) => {
                        let r = self.temp_reg(*t);
                        if r != Reg::R0 {
                            self.a.mov_rr(Reg::R0, r);
                        }
                    }
                    None => {}
                }
                self.epilogue();
            }
        }
        Ok(())
    }

    fn emit_cmp(&mut self, a: Operand, b: Operand) {
        let ra = self.operand_reg(a);
        match b {
            Operand::Const(c) => self.a.cmp_ri(ra, c),
            Operand::Temp(t) => {
                let rb = self.temp_reg(t);
                self.a.cmp_rr(ra, rb);
            }
        }
        self.free_scratch(a, ra);
    }

    fn inst(&mut self, _i: usize, inst: &Inst) -> Result<(), CompileError> {
        match inst {
            Inst::Bin { op, dst, a, b } => {
                if let Some(cc) = cmp_cond(*op) {
                    self.emit_cmp(*a, *b);
                    let rd = self.define(*dst);
                    self.a.emit(Insn::Setcc { cc, dst: rd });
                    return Ok(());
                }
                let aluop = alu_op(*op).expect("non-compare IR op maps to ALU");
                // dst ← a; dst ←op b.
                let rd = self.define(*dst);
                match a {
                    Operand::Const(c) => self.a.mov_ri(rd, *c),
                    Operand::Temp(t) => {
                        let ra = self.temp_reg(*t);
                        self.a.mov_rr(rd, ra);
                    }
                }
                match b {
                    Operand::Const(c) => self.a.emit(Insn::AluRI {
                        op: aluop,
                        dst: rd,
                        imm: *c,
                    }),
                    Operand::Temp(t) => {
                        let rb = self.temp_reg(*t);
                        self.a.emit(Insn::AluRR {
                            op: aluop,
                            dst: rd,
                            src: rb,
                        });
                    }
                }
            }
            Inst::Un { op, dst, a } => match op {
                IrUn::Neg => {
                    let rd = self.define(*dst);
                    self.a.mov_ri(rd, 0);
                    let ra = self.operand_reg(*a);
                    self.a.emit(Insn::AluRR {
                        op: AluOp::Sub,
                        dst: rd,
                        src: ra,
                    });
                    self.free_scratch(*a, ra);
                }
                IrUn::Not => {
                    self.emit_cmp(*a, Operand::Const(0));
                    let rd = self.define(*dst);
                    self.a.emit(Insn::Setcc {
                        cc: Cond::Eq,
                        dst: rd,
                    });
                }
                IrUn::BitNot => {
                    let rd = self.define(*dst);
                    match a {
                        Operand::Const(c) => self.a.mov_ri(rd, *c),
                        Operand::Temp(t) => {
                            let ra = self.temp_reg(*t);
                            self.a.mov_rr(rd, ra);
                        }
                    }
                    self.a.emit(Insn::AluRI {
                        op: AluOp::Xor,
                        dst: rd,
                        imm: -1,
                    });
                }
            },
            Inst::LoadGlobal {
                dst,
                global,
                width,
                signed,
            } => {
                let rd = self.define(*dst);
                let w = Width::from_bytes(*width as usize).expect("validated width");
                self.a.load_sym(rd, global, 0, w, *signed);
            }
            Inst::StoreGlobal { global, src, width } => {
                let rs = self.operand_reg(*src);
                let w = Width::from_bytes(*width as usize).expect("validated width");
                self.a.store_sym(rs, global, 0, w);
                self.free_scratch(*src, rs);
            }
            Inst::AddrOf { dst, symbol } => {
                let rd = self.define(*dst);
                self.a.lea_sym(rd, symbol);
            }
            Inst::LoadLocal { dst, slot } => {
                let rd = self.define(*dst);
                self.a.emit(Insn::Load {
                    dst: rd,
                    base: Reg::BP,
                    off: self.slot_off(*slot),
                    width: Width::W64,
                    signed: false,
                });
            }
            Inst::StoreLocal { slot, src } => {
                let rs = self.operand_reg(*src);
                self.a.emit(Insn::Store {
                    src: rs,
                    base: Reg::BP,
                    off: self.slot_off(*slot),
                    width: Width::W64,
                });
                self.free_scratch(*src, rs);
            }
            Inst::LoadMem {
                dst,
                addr,
                width,
                signed,
            } => {
                let ra = self.operand_reg(*addr);
                let rd = self.define(*dst);
                let w = Width::from_bytes(*width as usize).expect("validated width");
                self.a.emit(Insn::Load {
                    dst: rd,
                    base: ra,
                    off: 0,
                    width: w,
                    signed: *signed,
                });
                self.free_scratch(*addr, ra);
            }
            Inst::StoreMem { addr, src, width } => {
                let ra = self.operand_reg(*addr);
                let rs = self.operand_reg(*src);
                let w = Width::from_bytes(*width as usize).expect("validated width");
                self.a.emit(Insn::Store {
                    src: rs,
                    base: ra,
                    off: 0,
                    width: w,
                });
                self.free_scratch(*addr, ra);
                self.free_scratch(*src, rs);
            }
            Inst::Call { dst, callee, args } => {
                self.call(*dst, callee, args)?;
            }
            Inst::Intr { dst, kind, args } => self.intrinsic(*dst, *kind, args)?,
        }
        Ok(())
    }

    fn call(
        &mut self,
        dst: Option<u32>,
        callee: &Callee,
        args: &[Operand],
    ) -> Result<(), CompileError> {
        // Does the callee preserve our registers? (With more than one
        // argument the argument registers overlap the temp pool, so fall
        // back to the spilling path for simplicity.)
        let callee_preserves = args.len() <= 1
            && match callee {
                Callee::Direct(name) => self
                    .ctx
                    .funcs
                    .get(name)
                    .is_some_and(|sig| sig.attrs.pvop_cc),
                Callee::Ptr(_) => false,
            };

        // Spill every register-resident temp to its home slot (unless the
        // callee preserves registers). Constants in args need no spilling.
        if !callee_preserves {
            // Sorted by temp id: `loc` is a HashMap, and both the store
            // sequence and the free-list refill order below must not
            // depend on its iteration order — identical sources must
            // compile to identical bytes.
            let mut resident: Vec<(u32, Reg)> = self
                .loc
                .iter()
                .filter_map(|(&t, &l)| match l {
                    Loc::Reg(r) => Some((t, r)),
                    Loc::Slot(_) => None,
                })
                .collect();
            resident.sort_unstable_by_key(|&(t, _)| t);
            for (t, r) in resident {
                let home = self.home_of(t);
                self.a.emit(Insn::Store {
                    src: r,
                    base: Reg::BP,
                    off: self.slot_off(home),
                    width: Width::W64,
                });
                self.loc.insert(t, Loc::Slot(home));
                self.free.push(r);
            }
        }

        // Load arguments into r0..r5 straight from homes/constants.
        for (j, arg) in args.iter().enumerate() {
            let target = Reg::new(j as u8).expect("≤ 6 args");
            match arg {
                Operand::Const(c) => self.a.mov_ri(target, *c),
                Operand::Temp(t) => match self.loc.get(t).copied() {
                    Some(Loc::Slot(s)) => {
                        let off = self.slot_off(s);
                        self.a.emit(Insn::Load {
                            dst: target,
                            base: Reg::BP,
                            off,
                            width: Width::W64,
                            signed: false,
                        });
                    }
                    Some(Loc::Reg(r)) => {
                        // Callee-preserving path: temp still in a pool
                        // register (pool regs never alias r0..r5? They do:
                        // r1..r5 are in the pool). Move directly — safe
                        // because with a preserving callee we never loaded
                        // args over pool registers... to stay safe, go
                        // through the home slot instead when target is a
                        // pool register holding a live temp.
                        if self.loc.values().any(|l| *l == Loc::Reg(target)) && r != target {
                            let home = self.home_of(*t);
                            let off = self.slot_off(home);
                            self.a.emit(Insn::Store {
                                src: r,
                                base: Reg::BP,
                                off,
                                width: Width::W64,
                            });
                            self.a.emit(Insn::Load {
                                dst: target,
                                base: Reg::BP,
                                off,
                                width: Width::W64,
                                signed: false,
                            });
                        } else if r != target {
                            self.a.mov_rr(target, r);
                        }
                    }
                    None => panic!("arg temp without location"),
                },
            }
        }

        // Emit the call, recording descriptor-worthy sites.
        match callee {
            Callee::Direct(name) => {
                let is_mv = self
                    .ctx
                    .funcs
                    .get(name)
                    .is_some_and(|sig| sig.attrs.multiverse);
                let off = self.a.len() as u32;
                if is_mv && self.record_sites {
                    self.mv_callsites.push((off, name.clone()));
                }
                self.a.call_sym(name, false);
            }
            Callee::Ptr(global) => {
                let is_mv_ptr = self.ctx.globals.get(global).is_some_and(|g| g.is_switch());
                let off = self.a.len() as u32;
                if is_mv_ptr && self.record_sites {
                    self.ptr_callsites.push((off, global.clone()));
                }
                self.a.call_mem_sym(global);
            }
        }

        if let Some(d) = dst {
            let rd = self.define(d);
            if rd != Reg::R0 {
                self.a.mov_rr(rd, Reg::R0);
            }
        }
        Ok(())
    }

    fn intrinsic(
        &mut self,
        dst: Option<u32>,
        kind: Intrinsic,
        args: &[Operand],
    ) -> Result<(), CompileError> {
        match kind {
            Intrinsic::Xchg => {
                let base = self.operand_reg(args[0]);
                // The exchanged register is clobbered; copy the value into
                // the destination first.
                let rd = match dst {
                    Some(d) => self.define(d),
                    None => self.alloc_reg(),
                };
                match args[1] {
                    Operand::Const(c) => self.a.mov_ri(rd, c),
                    Operand::Temp(t) => {
                        let rv = self.temp_reg(t);
                        self.a.mov_rr(rd, rv);
                    }
                }
                self.a.emit(Insn::XchgLock { val: rd, base });
                self.free_scratch(args[0], base);
                if dst.is_none() {
                    self.free.push(rd);
                }
            }
            Intrinsic::Cli => self.a.emit(Insn::Cli),
            Intrinsic::Sti => self.a.emit(Insn::Sti),
            Intrinsic::Hypercall => {
                let Operand::Const(nr) = args[0] else {
                    return Err(CompileError::Sema {
                        msg: format!("{}: __hypercall number must be a constant", self.f.name),
                    });
                };
                self.a.emit(Insn::Hypercall { nr: nr as u8 });
            }
            Intrinsic::Rdtsc => {
                let rd = match dst {
                    Some(d) => self.define(d),
                    None => self.alloc_reg(),
                };
                self.a.emit(Insn::Rdtsc { dst: rd });
                if dst.is_none() {
                    self.free.push(rd);
                }
            }
            Intrinsic::Out => {
                let rs = self.operand_reg(args[0]);
                self.a.emit(Insn::Out { src: rs });
                self.free_scratch(args[0], rs);
            }
            Intrinsic::Pause => self.a.emit(Insn::Pause),
            Intrinsic::Mfence => self.a.emit(Insn::Mfence),
            Intrinsic::Halt => self.a.emit(Insn::Halt),
            Intrinsic::_Reserved => {}
        }
        Ok(())
    }
}

fn cmp_cond(op: IrBin) -> Option<Cond> {
    Some(match op {
        IrBin::CmpEq => Cond::Eq,
        IrBin::CmpNe => Cond::Ne,
        IrBin::CmpLts => Cond::Lt,
        IrBin::CmpLes => Cond::Le,
        IrBin::CmpGts => Cond::Gt,
        IrBin::CmpGes => Cond::Ge,
        IrBin::CmpLtu => Cond::B,
        IrBin::CmpLeu => Cond::Be,
        IrBin::CmpGtu => Cond::A,
        IrBin::CmpGeu => Cond::Ae,
        _ => return None,
    })
}

fn alu_op(op: IrBin) -> Option<AluOp> {
    Some(match op {
        IrBin::Add => AluOp::Add,
        IrBin::Sub => AluOp::Sub,
        IrBin::Mul => AluOp::Mul,
        IrBin::Divs => AluOp::Divs,
        IrBin::Divu => AluOp::Divu,
        IrBin::Rems => AluOp::Rems,
        IrBin::Remu => AluOp::Remu,
        IrBin::And => AluOp::And,
        IrBin::Or => AluOp::Or,
        IrBin::Xor => AluOp::Xor,
        IrBin::Shl => AluOp::Shl,
        IrBin::Shrs => AluOp::Shrs,
        IrBin::Shru => AluOp::Shru,
        _ => return None,
    })
}
