//! Function-pointer configuration switches — the §4 extension and the
//! PV-Ops boot-time patching model.
//!
//! The Linux kernel dispatches paravirtualized operations through a table
//! of function pointers (`pv_ops`) and patches the indirect call sites at
//! boot: an indirect `call *pv_ops.op` becomes a direct call to the bound
//! implementation, or — for single-instruction bodies like `sti`/`cli` —
//! the body is inlined straight into the call site. Multiverse subsumes
//! this mechanism by allowing the `multiverse` attribute on function
//! pointers: the compiler records every indirect call site through the
//! pointer, and a commit re-binds them with the ordinary call-site patcher.
//!
//! [`Runtime::commit_refs`] on a pointer switch is exactly that operation;
//! this module adds the small conveniences the kernel work-flow uses
//! (bind-then-commit, and a whole-table commit mirroring
//! `apply_paravirt()`).

use crate::error::RtError;
use crate::runtime::{CommitReport, Runtime};
use mvvm::Machine;

/// Stores `target` into the function pointer at `ptr_addr` and commits its
/// call sites — the "assign the op, then patch" sequence of the kernel's
/// paravirt setup.
pub fn bind_and_commit(
    rt: &mut Runtime,
    m: &mut Machine,
    ptr_addr: u64,
    target: u64,
) -> Result<CommitReport, RtError> {
    m.mem.write_int(ptr_addr, target, 8)?;
    rt.commit_refs(m, ptr_addr)
}

/// Commits every pointer in `table` (a `pv_ops`-style array of switch
/// addresses), returning the merged report. This models the kernel's
/// one-shot boot-time `apply_paravirt()` pass.
pub fn commit_table(
    rt: &mut Runtime,
    m: &mut Machine,
    table: &[u64],
) -> Result<CommitReport, RtError> {
    let mut merged = CommitReport::default();
    for &ptr in table {
        let r = rt.commit_refs(m, ptr)?;
        merged.variants_committed += r.variants_committed;
        merged.generic_fallbacks += r.generic_fallbacks;
        merged.fnptr_sites += r.fnptr_sites;
        merged.sites_touched += r.sites_touched;
        merged.unchanged += r.unchanged;
        merged.repatched += r.repatched;
    }
    Ok(merged)
}
