//! Runtime telemetry: mirrors the patcher's accounting into an
//! [`mvmetrics::Registry`].
//!
//! Two recording styles, matching the sources:
//!
//! * monotone [`PatchStats`] counters are mirrored with
//!   [`mvmetrics::Counter::store_max`] — an absolute sync, so the
//!   registry equals the source by definition;
//! * per-operation quantities (outcome tallies, phase nanoseconds,
//!   quiesce rounds) are added once per completed operation from the
//!   operation's own report, at the same place the `CommitEnd` /
//!   `QuiesceEnd` trace events are emitted.
//!
//! Both happen once per commit/revert, never per patched byte, so the
//! overhead on the patching fast path is a handful of relaxed atomics
//! per operation.

use crate::stats::{PatchStats, PatchTiming};
use mvmetrics::{Counter, Registry};
use std::collections::HashMap;

/// Registered handles for the `mv_rt_*` metric family.
pub struct RtMetrics {
    registry: Registry,
    /// `mv_rt_commits_total{op,outcome}`, registered lazily per pair.
    commits: HashMap<(&'static str, bool), Counter>,
    bytes_written: Counter,
    pages_touched: Counter,
    sites_patched: Counter,
    sites_skipped: Counter,
    mprotects: Counter,
    icache_flushes: Counter,
    retries: Counter,
    rollbacks: Counter,
    phase_ns: [Counter; 3],
    backoff_ns: Counter,
    /// `mv_rt_quiesce_total{strategy,outcome}`, registered lazily.
    quiesce: HashMap<(&'static str, bool), Counter>,
    quiesce_rounds: Counter,
    quiesce_parked: Counter,
    quiesce_trap_hits: Counter,
    quiesce_stall_cycles: Counter,
}

impl RtMetrics {
    /// Registers the runtime metric family in `registry`.
    pub fn new(registry: &Registry) -> RtMetrics {
        let phase = |p: &str| {
            registry.counter_with(
                "mv_rt_phase_ns_total",
                "Nanoseconds spent per transaction phase",
                &[("phase", p)],
            )
        };
        RtMetrics {
            registry: registry.clone(),
            commits: HashMap::new(),
            bytes_written: registry.counter(
                "mv_rt_bytes_written_total",
                "Text bytes written by the patcher",
            ),
            pages_touched: registry.counter(
                "mv_rt_pages_touched_total",
                "Distinct text pages opened by page-batched applies",
            ),
            sites_patched: registry.counter("mv_rt_sites_patched_total", "Call sites rewritten"),
            sites_skipped: registry.counter(
                "mv_rt_sites_skipped_total",
                "Call sites skipped by delta planning (commit fast path)",
            ),
            mprotects: registry.counter("mv_rt_mprotects_total", "mprotect invocations"),
            icache_flushes: registry
                .counter("mv_rt_icache_flushes_total", "Instruction-cache flushes"),
            retries: registry.counter(
                "mv_rt_retries_total",
                "Transactions re-attempted after a transient fault",
            ),
            rollbacks: registry.counter(
                "mv_rt_rollbacks_total",
                "Apply phases rolled back successfully",
            ),
            phase_ns: [phase("plan"), phase("validate"), phase("apply")],
            backoff_ns: registry.counter(
                "mv_rt_backoff_ns_total",
                "Nanoseconds slept in retry backoff",
            ),
            quiesce: HashMap::new(),
            quiesce_rounds: registry.counter(
                "mv_rt_quiesce_rounds_total",
                "Scheduler rounds spent in rendezvous/drain windows",
            ),
            quiesce_parked: registry.counter(
                "mv_rt_quiesce_parked_total",
                "vCPUs parked by stop-machine rendezvous",
            ),
            quiesce_trap_hits: registry.counter(
                "mv_rt_quiesce_trap_hits_total",
                "Trap-byte hits absorbed during breakpoint drains",
            ),
            quiesce_stall_cycles: registry.counter(
                "mv_rt_quiesce_stall_cycles_total",
                "Stall cycles charged to vCPUs inside quiesce windows",
            ),
        }
    }

    /// Records one completed commit/revert transaction: outcome tally,
    /// absolute `PatchStats` sync, and this operation's phase timings.
    pub fn record_txn(
        &mut self,
        op: &'static str,
        ok: bool,
        stats: PatchStats,
        timing: PatchTiming,
    ) {
        // Recording while disabled must cost nothing — not even the
        // lazy registration of a new (op, outcome) label pair.
        if !self.registry.enabled() {
            return;
        }
        let registry = &self.registry;
        self.commits
            .entry((op, ok))
            .or_insert_with(|| {
                registry.counter_with(
                    "mv_rt_commits_total",
                    "Commit/revert operations by op and outcome",
                    &[("op", op), ("outcome", if ok { "ok" } else { "err" })],
                )
            })
            .inc();
        self.bytes_written.store_max(stats.bytes_written);
        self.pages_touched.store_max(stats.pages_touched);
        self.sites_patched.store_max(stats.sites_patched);
        self.sites_skipped.store_max(stats.sites_skipped);
        self.mprotects.store_max(stats.mprotects);
        self.icache_flushes.store_max(stats.icache_flushes);
        self.retries.store_max(stats.retries);
        self.rollbacks.store_max(stats.rollbacks);
        self.phase_ns[0].add(timing.plan.as_nanos() as u64);
        self.phase_ns[1].add(timing.validate.as_nanos() as u64);
        self.phase_ns[2].add(timing.apply.as_nanos() as u64);
        self.backoff_ns.add(timing.backoff.as_nanos() as u64);
    }

    /// Records one quiesce window (successful or not).
    pub fn record_quiesce(
        &mut self,
        strategy: &'static str,
        ok: bool,
        rounds: u64,
        parked: u64,
        trap_hits: u64,
        stall_cycles: u64,
    ) {
        if !self.registry.enabled() {
            return;
        }
        let registry = &self.registry;
        self.quiesce
            .entry((strategy, ok))
            .or_insert_with(|| {
                registry.counter_with(
                    "mv_rt_quiesce_total",
                    "Quiesce windows by strategy and outcome",
                    &[
                        ("strategy", strategy),
                        ("outcome", if ok { "ok" } else { "err" }),
                    ],
                )
            })
            .inc();
        self.quiesce_rounds.add(rounds);
        self.quiesce_parked.add(parked);
        self.quiesce_trap_hits.add(trap_hits);
        self.quiesce_stall_cycles.add(stall_cycles);
    }
}
