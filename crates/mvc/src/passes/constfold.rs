//! Block-local constant propagation and folding.
//!
//! Temps are block-local and single-assignment, so a forward scan per block
//! with a constant environment is exact for temps. Local slots are
//! propagated within a block only (no join analysis), which is all the
//! multiverse pipeline needs: switch reads are already constants when the
//! variant clone reaches this pass.

use crate::ir::{FuncIr, Inst, Operand, Term};
use std::collections::HashMap;

/// Runs the pass; returns `true` if anything changed.
pub fn run(f: &mut FuncIr) -> bool {
    let mut changed = false;
    for b in &mut f.blocks {
        let mut temps: HashMap<u32, i64> = HashMap::new();
        let mut slots: HashMap<u32, i64> = HashMap::new();
        let mut out = Vec::with_capacity(b.insts.len());
        for mut inst in std::mem::take(&mut b.insts) {
            // Substitute known-constant temps in operands.
            inst.map_operands(|op| {
                if let Operand::Temp(t) = *op {
                    if let Some(&c) = temps.get(&t) {
                        *op = Operand::Const(c);
                        changed = true;
                    }
                }
            });
            match &inst {
                Inst::Bin {
                    op,
                    dst,
                    a: Operand::Const(a),
                    b: Operand::Const(bb),
                } => {
                    if let Some(v) = op.eval(*a, *bb) {
                        temps.insert(*dst, v);
                        changed = true;
                        continue; // instruction dissolved into the env
                    }
                    // Division by constant zero: keep it to fault at
                    // run time.
                    out.push(inst);
                }
                Inst::Un {
                    op,
                    dst,
                    a: Operand::Const(a),
                } => {
                    temps.insert(*dst, op.eval(*a));
                    changed = true;
                }
                Inst::StoreLocal {
                    slot,
                    src: Operand::Const(c),
                } => {
                    slots.insert(*slot, *c);
                    out.push(inst);
                }
                Inst::StoreLocal { slot, .. } => {
                    slots.remove(slot);
                    out.push(inst);
                }
                Inst::LoadLocal { dst, slot } => {
                    if let Some(&c) = slots.get(slot) {
                        temps.insert(*dst, c);
                        changed = true;
                    } else {
                        out.push(inst);
                    }
                }
                _ => out.push(inst),
            }
        }
        b.insts = out;
        // Substitute in the terminator.
        match &mut b.term {
            Term::Br { cond, .. } => {
                if let Operand::Temp(t) = *cond {
                    if let Some(&c) = temps.get(&t) {
                        *cond = Operand::Const(c);
                        changed = true;
                    }
                }
            }
            Term::Ret(Some(v)) => {
                if let Operand::Temp(t) = *v {
                    if let Some(&c) = temps.get(&t) {
                        *v = Operand::Const(c);
                        changed = true;
                    }
                }
            }
            _ => {}
        }
        // Fold constant branches.
        if let Term::Br {
            cond: Operand::Const(c),
            t,
            f: fb,
        } = b.term
        {
            b.term = Term::Jmp(if c != 0 { t } else { fb });
            changed = true;
        }
    }
    changed
}
