//! The run-time library proper: descriptor interpretation, variant
//! selection, and the commit/revert API of Table 1.
//!
//! Since the transactional rework, every public commit/revert operation
//! runs as a two-phase transaction (see [`crate::txn`]): a read-only
//! *validate* pass plans and checks all work, then a journaled *apply*
//! pass performs it; any apply failure rolls the journal back so the
//! text segment is left byte-identical to its pre-call state.

use crate::backend::{Mv64RtBackend, RtBackend};
use crate::error::RtError;
use crate::journal::Journal;
use crate::patch::{insn_at, verify_call, PageBatch};
use crate::stats::{PatchStats, PatchTiming};
use crate::txn::{RetryPolicy, TxnOp};
use mvasm::Insn;
use mvobj::descriptor::{
    parse_callsites, parse_functions, parse_variables, CallsiteDesc, FnDesc, VarDesc, NOT_INLINABLE,
};
use mvobj::{Executable, SEC_MV_CALLSITES, SEC_MV_FUNCTIONS, SEC_MV_VARIABLES};
use mvtrace::{EventKind, TraceRing};
use mvvm::Machine;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How commits install variants — the §7.1 design-space ablation.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum PatchStrategy {
    /// The paper's mechanism: rewrite every recorded call site (and
    /// inline short bodies), plus the completeness entry jump.
    #[default]
    CallSites,
    /// The rejected alternative, approximated: only the generic entry is
    /// redirected (one patch per function, like body patching would
    /// need). Calls pay an extra jump and nothing is ever inlined, but
    /// patching is O(functions) instead of O(call sites).
    EntryOnly,
}

/// Current binding of a multiversed function.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FnBinding {
    /// The generic body is live; switches are evaluated dynamically.
    Generic,
    /// A specialized variant (by entry address) is committed.
    Variant(u64),
}

/// How a call site is currently bound.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum SiteBinding {
    /// Untouched original instruction.
    Original,
    /// Rewritten to a direct call to this target.
    Call(u64),
    /// A variant body was inlined (recorded by variant address).
    Inlined(u64),
}

/// A call site and its patch state.
#[derive(Clone, Debug)]
pub(crate) struct SiteState {
    pub(crate) desc: CallsiteDesc,
    /// Total patchable length: 5 for a `call rel32` site, 9 for a
    /// `call *[mem]` (function-pointer) site.
    pub(crate) len: usize,
    /// `true` if the original instruction was an indirect memory call.
    pub(crate) indirect: bool,
    pub(crate) original: Vec<u8>,
    pub(crate) binding: SiteBinding,
}

/// A multiversed function and its patch state.
#[derive(Clone, Debug)]
pub(crate) struct FnState {
    pub(crate) desc: FnDesc,
    pub(crate) binding: FnBinding,
    pub(crate) saved_prologue: Option<Vec<u8>>,
}

/// Outcome of a commit operation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CommitReport {
    /// Functions now bound to a specialized variant.
    pub variants_committed: usize,
    /// Functions left on (or reverted to) the generic body because no
    /// variant admitted the current switch values — the signalled
    /// situation of Fig. 3 d.
    pub generic_fallbacks: usize,
    /// Function-pointer call sites re-bound.
    pub fnptr_sites: usize,
    /// Call sites visited in this operation.
    pub sites_touched: usize,
    /// Functions and function-pointer switches delta planning skipped
    /// because the image already matched the selected state — the commit
    /// fast path. Skipped generic fallbacks count here *and* in
    /// [`CommitReport::generic_fallbacks`].
    pub unchanged: usize,
    /// Installs re-applied because the bookkeeping said "already bound"
    /// but the image bytes did not verify (healing re-install). Each is
    /// also counted in [`CommitReport::variants_committed`].
    pub repatched: usize,
}

/// The attached multiverse runtime for one loaded program.
pub struct Runtime {
    pub(crate) vars: Vec<VarDesc>,
    pub(crate) var_by_addr: HashMap<u64, usize>,
    pub(crate) fns: Vec<FnState>,
    pub(crate) fn_by_addr: HashMap<u64, usize>,
    pub(crate) sites: Vec<SiteState>,
    /// callee address (generic entry or fn-pointer variable) → site indices.
    pub(crate) sites_of: HashMap<u64, Vec<usize>>,
    /// The undo log of the apply phase currently in flight, if any.
    pub(crate) txn: Option<Journal>,
    /// Retired journal kept around so the next apply phase reuses its
    /// allocation instead of growing a fresh one.
    pub(crate) spare_journal: Journal,
    /// Cumulative patching statistics.
    pub stats: PatchStats,
    /// Host wall-clock time spent patching, cumulative. Includes failed
    /// operations (validation, partial applies and their rollbacks).
    pub patch_time: Duration,
    /// Patch strategy (default: call-site patching).
    pub strategy: PatchStrategy,
    /// Whether short bodies may be inlined into call sites (default on).
    pub inline_enabled: bool,
    /// Whether the apply phase keeps the undo log (default on). Off =
    /// operations are still planned and validated, but applied without
    /// the journal: a mid-apply fault surfaces raw and leaves the image
    /// torn. Exists for the journal-overhead ablation in the patch-cost
    /// benchmark.
    pub journal: bool,
    /// Whether journaled apply phases batch text writes per page
    /// (default on): one RW window per touched page per transaction,
    /// all writes inside, then one RX relock and one icache flush per
    /// page — O(pages) protection changes instead of O(sites). Only the
    /// journaled path batches; with [`Runtime::journal`] off the legacy
    /// per-site discipline is used regardless.
    pub batch_pages: bool,
    /// RW windows of the page-batched apply phase in flight, if any.
    pub(crate) batch: Option<PageBatch>,
    /// Bounded retry for transient apply-phase faults (default: off).
    pub retry: RetryPolicy,
    /// Structured-event ring, installed by [`Runtime::enable_tracing`]
    /// (default: off — the hot path then pays one branch per would-be
    /// event and nothing else).
    pub tracer: Option<TraceRing>,
    /// Timing of the most recent commit/revert operation, with the
    /// per-phase breakdown accumulated across its attempts.
    pub last_timing: PatchTiming,
    /// Metrics handles, installed by [`Runtime::enable_metrics`]
    /// (default: off — commits then pay one branch per operation and
    /// nothing else).
    pub metrics: Option<crate::metrics::RtMetrics>,
    /// The runtime backend: ABI encodings, patch protections and the
    /// post-commit sync hook (default: [`Mv64RtBackend`]).
    pub(crate) backend: Arc<dyn RtBackend>,
}

impl Runtime {
    /// Parses the descriptor sections out of the loaded image and verifies
    /// every recorded call site.
    ///
    /// Mirrors the library initialization of §5: the descriptors are read
    /// from the process image itself (the linker already concatenated and
    /// relocated them).
    pub fn attach(m: &Machine, exe: &Executable) -> Result<Runtime, RtError> {
        let read_sec = |name: &str| -> Result<Vec<u8>, RtError> {
            let (addr, size) = exe.section(name);
            if size == 0 {
                return Ok(Vec::new());
            }
            Ok(m.mem.read_vec(addr, size as usize)?)
        };
        let vars = parse_variables(&read_sec(SEC_MV_VARIABLES)?)?;
        let fn_descs = parse_functions(&read_sec(SEC_MV_FUNCTIONS)?)?;
        let site_descs = parse_callsites(&read_sec(SEC_MV_CALLSITES)?)?;

        let var_by_addr: HashMap<u64, usize> =
            vars.iter().enumerate().map(|(i, v)| (v.addr, i)).collect();
        let fn_by_addr: HashMap<u64, usize> = fn_descs
            .iter()
            .enumerate()
            .map(|(i, f)| (f.generic, i))
            .collect();

        let backend: Arc<dyn RtBackend> = Arc::new(Mv64RtBackend);
        let abi = backend.abi();
        let mut sites = Vec::with_capacity(site_descs.len());
        let mut sites_of: HashMap<u64, Vec<usize>> = HashMap::new();
        for desc in site_descs {
            let insn = insn_at(m, abi, desc.site)?;
            let (len, indirect) = match insn {
                Insn::CallRel { rel } => {
                    let t = abi.call_target(desc.site, rel);
                    if t != desc.callee {
                        return Err(RtError::SiteVerifyFailed {
                            site: desc.site,
                            what: format!(
                                "initial call targets {t:#x}, descriptor says {:#x}",
                                desc.callee
                            ),
                        });
                    }
                    (abi.call_site_len(), false)
                }
                Insn::CallMem { addr } => {
                    if addr != desc.callee {
                        return Err(RtError::SiteVerifyFailed {
                            site: desc.site,
                            what: format!(
                                "indirect call through {addr:#x}, descriptor says {:#x}",
                                desc.callee
                            ),
                        });
                    }
                    (insn.len(), true)
                }
                other => {
                    return Err(RtError::SiteVerifyFailed {
                        site: desc.site,
                        what: format!("found `{other}`, expected a call"),
                    })
                }
            };
            let original = m.mem.read_vec(desc.site, len)?;
            sites_of.entry(desc.callee).or_default().push(sites.len());
            sites.push(SiteState {
                desc,
                len,
                indirect,
                original,
                binding: SiteBinding::Original,
            });
        }

        Ok(Runtime {
            vars,
            var_by_addr,
            fns: fn_descs
                .into_iter()
                .map(|desc| FnState {
                    desc,
                    binding: FnBinding::Generic,
                    saved_prologue: None,
                })
                .collect(),
            fn_by_addr,
            sites,
            sites_of,
            txn: None,
            spare_journal: Journal::new(),
            stats: PatchStats::default(),
            patch_time: Duration::ZERO,
            strategy: PatchStrategy::default(),
            inline_enabled: true,
            journal: true,
            batch_pages: true,
            batch: None,
            retry: RetryPolicy::default(),
            tracer: None,
            last_timing: PatchTiming::default(),
            metrics: None,
            backend,
        })
    }

    /// The ISA contract of the installed backend — every encoding and
    /// width decision in the runtime funnels through here.
    #[inline]
    pub(crate) fn abi(&self) -> &'static dyn mvasm::Backend {
        self.backend.abi()
    }

    /// Installs a runtime backend (see [`crate::backend`]). Takes
    /// effect on the next operation; for the native-tier backend the
    /// first post-commit sync lowers the machine's live bodies. Call
    /// [`Runtime::sync_backend`] to reconcile immediately.
    pub fn set_backend(&mut self, backend: Arc<dyn RtBackend>) {
        self.backend = backend;
    }

    /// Name of the installed backend (`"mv64"` unless changed).
    pub fn backend_name(&self) -> &'static str {
        self.backend.name()
    }

    /// Runs the backend's post-commit sync hook immediately — the same
    /// reconciliation every successful commit performs. Useful right
    /// after [`Runtime::set_backend`] so the machine does not wait for
    /// the first commit to pick up the tier.
    pub fn sync_backend(&mut self, m: &mut Machine) {
        let b = Arc::clone(&self.backend);
        b.sync(m, self);
    }

    /// Registers the `mv_rt_*` metric family in `registry` and starts
    /// recording per-operation telemetry. Recording is once per
    /// commit/revert (never per patched byte): an outcome tally, an
    /// absolute [`PatchStats`] sync, and the phase timing of the
    /// operation.
    pub fn enable_metrics(&mut self, registry: &mvmetrics::Registry) {
        self.metrics = Some(crate::metrics::RtMetrics::new(registry));
    }

    /// Installs a bounded event ring (capacity clamped to
    /// [`mvtrace::MAX_RING_CAP`]) and globally enables tracing. Every
    /// subsequent commit/revert emits its span events into the ring.
    pub fn enable_tracing(&mut self, cap: usize) {
        mvtrace::set_enabled(true);
        self.tracer = Some(TraceRing::new(cap));
    }

    /// Uninstalls the ring and returns everything it buffered (oldest
    /// first). Returns an empty vec if tracing was never enabled. The
    /// global enabled flag is left on: other runtimes in the process may
    /// still be tracing.
    pub fn take_trace(&mut self) -> Vec<mvtrace::Event> {
        self.tracer.take().map(|r| r.snapshot()).unwrap_or_default()
    }

    /// Events the installed ring has dropped to overflow so far (0 with
    /// no ring). Read this *before* [`Runtime::take_trace`] detaches the
    /// ring; exporters surface it so a truncated trace is never silently
    /// misread as complete.
    pub fn trace_dropped(&self) -> u64 {
        self.tracer.as_ref().map_or(0, |r| r.dropped())
    }

    /// Copies the buffered events out without uninstalling the ring.
    pub fn trace_snapshot(&self) -> Vec<mvtrace::Event> {
        self.tracer
            .as_ref()
            .map(|r| r.snapshot())
            .unwrap_or_default()
    }

    /// Records one event if tracing is on. The closure only runs (and
    /// the event is only constructed) when a ring is installed *and* the
    /// global flag is set, so with tracing off this inlines to a single
    /// predictable branch on `self.tracer`.
    #[inline]
    pub(crate) fn emit(&mut self, kind: impl FnOnce() -> EventKind) {
        if let Some(ring) = self.tracer.as_mut() {
            if mvtrace::enabled() {
                ring.record(kind());
            }
        }
    }

    /// Number of known configuration switches.
    pub fn num_variables(&self) -> usize {
        self.vars.len()
    }

    /// Addresses of the integer configuration switches, in descriptor
    /// order (function-pointer switches excluded) — for tooling that
    /// flips every switch it can find.
    pub fn switch_addrs(&self) -> Vec<u64> {
        self.vars
            .iter()
            .filter(|v| !v.fn_ptr)
            .map(|v| v.addr)
            .collect()
    }

    /// Number of multiversed functions.
    pub fn num_functions(&self) -> usize {
        self.fns.len()
    }

    /// Number of recorded call sites.
    pub fn num_callsites(&self) -> usize {
        self.sites.len()
    }

    /// Call sites recorded for the callee at `addr` (generic function or
    /// function-pointer switch).
    pub fn callsites_of(&self, addr: u64) -> usize {
        self.sites_of.get(&addr).map_or(0, |v| v.len())
    }

    /// Current binding of the function whose generic entry is `addr`.
    pub fn binding_of(&self, addr: u64) -> Option<FnBinding> {
        self.fn_by_addr.get(&addr).map(|&i| self.fns[i].binding)
    }

    /// The variant entry addresses of the function at `addr` (for tests
    /// and tooling).
    pub fn variants_of(&self, addr: u64) -> Option<Vec<u64>> {
        self.fn_by_addr
            .get(&addr)
            .map(|&i| self.fns[i].desc.variants.iter().map(|v| v.addr).collect())
    }

    /// Reads the current value of the configuration switch at `addr`,
    /// honoring its descriptor's width and signedness.
    pub fn read_switch(&self, m: &Machine, addr: u64) -> Result<i64, RtError> {
        let &i = self
            .var_by_addr
            .get(&addr)
            .ok_or(RtError::UnknownVariable(addr))?;
        let v = &self.vars[i];
        Ok(m.mem.read_int(v.addr, v.width as usize, v.signed)?)
    }

    /// Writes a configuration switch (convenience for hosts; guest code
    /// writes switches with ordinary stores).
    pub fn write_switch(&self, m: &mut Machine, addr: u64, value: i64) -> Result<(), RtError> {
        let &i = self
            .var_by_addr
            .get(&addr)
            .ok_or(RtError::UnknownVariable(addr))?;
        let v = &self.vars[i];
        Ok(m.mem.write_int(v.addr, value as u64, v.width as usize)?)
    }

    pub(crate) fn select_variant(&self, m: &Machine, fi: usize) -> Result<Option<usize>, RtError> {
        let f = &self.fns[fi];
        'variants: for (vi, v) in f.desc.variants.iter().enumerate() {
            for g in &v.guards {
                let &var_i =
                    self.var_by_addr
                        .get(&g.var_addr)
                        .ok_or(RtError::UnknownGuardVariable {
                            function: f.desc.generic,
                            var_addr: g.var_addr,
                        })?;
                let var = &self.vars[var_i];
                let value = m.mem.read_int(var.addr, var.width as usize, var.signed)?;
                if !g.admits(value) {
                    continue 'variants;
                }
            }
            return Ok(Some(vi));
        }
        Ok(None)
    }

    fn patch_site_to(
        &mut self,
        m: &mut Machine,
        si: usize,
        target: u64,
        inline: Option<(u64, u32)>,
    ) -> Result<(), RtError> {
        let (site, len, binding) = {
            let s = &self.sites[si];
            (s.desc.site, s.len, s.binding)
        };
        // §4: check the site still points at the expected target before
        // touching it. Inside a transaction the validate phase has
        // already byte-checked every site, so the apply pass skips the
        // re-decode.
        let abi = self.abi();
        if self.txn.is_none() {
            match binding {
                SiteBinding::Call(t) => verify_call(m, abi, site, t)?,
                SiteBinding::Original if !self.sites[si].indirect => {
                    verify_call(m, abi, site, self.sites[si].desc.callee)?
                }
                _ => {}
            }
        }
        let (bytes, new_binding) = match inline {
            Some((body_addr, inline_len)) if (inline_len as usize) <= len => {
                let body = m.mem.read_vec(body_addr, inline_len as usize)?;
                self.stats.sites_inlined += 1;
                (
                    abi.inline_image(&body, len)?,
                    SiteBinding::Inlined(body_addr),
                )
            }
            _ => {
                let mut b = abi.encode_call(site, target)?;
                b.extend(abi.nop_fill(len - abi.call_site_len()));
                (b, SiteBinding::Call(target))
            }
        };
        self.write_text(m, site, &bytes)?;
        self.stats.sites_patched += 1;
        self.sites[si].binding = new_binding;
        match new_binding {
            SiteBinding::Inlined(variant) => self.emit(|| EventKind::Inlined { site, variant }),
            _ => self.emit(|| EventKind::SitePatched { site, target }),
        }
        Ok(())
    }

    fn restore_site(&mut self, m: &mut Machine, si: usize) -> Result<(), RtError> {
        if self.sites[si].binding == SiteBinding::Original {
            return Ok(());
        }
        let site = self.sites[si].desc.site;
        let original = self.sites[si].original.clone();
        self.write_text(m, site, &original)?;
        self.stats.sites_patched += 1;
        self.sites[si].binding = SiteBinding::Original;
        self.emit(|| EventKind::SiteRestored { site });
        Ok(())
    }

    pub(crate) fn install_variant(
        &mut self,
        m: &mut Machine,
        fi: usize,
        vi: usize,
    ) -> Result<usize, RtError> {
        let (generic, generic_size, v_addr, v_inline) = {
            let f = &self.fns[fi];
            let v = &f.desc.variants[vi];
            (f.desc.generic, f.desc.generic_size, v.addr, v.inline_len)
        };
        // Completeness patching needs room for the entry jump; checked
        // up front so the error surfaces before any call site is touched
        // even on the unjournaled path.
        if generic_size < self.abi().call_site_len() as u32 {
            return Err(RtError::GenericTooSmall {
                function: generic,
                size: generic_size,
            });
        }
        // Patch all recorded call sites of the generic function (the
        // EntryOnly strategy leaves them aimed at the generic entry, where
        // the jump redirects them).
        let site_idxs = match self.strategy {
            PatchStrategy::CallSites => self.sites_of.get(&generic).cloned().unwrap_or_default(),
            PatchStrategy::EntryOnly => Vec::new(),
        };
        let inline = if self.inline_enabled && v_inline != NOT_INLINABLE {
            Some((v_addr, v_inline))
        } else {
            None
        };
        for si in &site_idxs {
            self.patch_site_to(m, *si, v_addr, inline)?;
        }
        // Completeness: overwrite the generic entry with `jmp variant`,
        // saving the prologue the first time. The jump is encoded before
        // the prologue save so an out-of-range variant cannot strand
        // bookkeeping on the unjournaled path.
        let jmp = self.abi().encode_jmp(generic, v_addr)?;
        let first_install = self.fns[fi].saved_prologue.is_none();
        if first_install {
            let saved = m.mem.read_vec(generic, self.abi().call_site_len())?;
            self.fns[fi].saved_prologue = Some(saved);
        }
        if let Err(e) = self.write_text(m, generic, &jmp) {
            // Keep the in-memory state consistent with the image even on
            // the unjournaled path: nothing was written over the entry.
            if first_install {
                self.fns[fi].saved_prologue = None;
            }
            return Err(e);
        }
        self.stats.entry_jumps += 1;
        self.fns[fi].binding = FnBinding::Variant(v_addr);
        self.stats.committed_variants += 1;
        self.emit(|| EventKind::EntryJumpWritten {
            function: generic,
            variant: v_addr,
        });
        Ok(site_idxs.len())
    }

    pub(crate) fn revert_fn_idx(&mut self, m: &mut Machine, fi: usize) -> Result<usize, RtError> {
        let generic = self.fns[fi].desc.generic;
        let site_idxs = self.sites_of.get(&generic).cloned().unwrap_or_default();
        for si in &site_idxs {
            self.restore_site(m, *si)?;
        }
        if let Some(prologue) = self.fns[fi].saved_prologue.clone() {
            self.write_text(m, generic, &prologue)?;
            self.fns[fi].saved_prologue = None;
            self.stats.prologues_restored += 1;
            self.emit(|| EventKind::PrologueRestored { function: generic });
        }
        self.fns[fi].binding = FnBinding::Generic;
        Ok(site_idxs.len())
    }

    pub(crate) fn commit_fnptr_var(
        &mut self,
        m: &mut Machine,
        var_addr: u64,
        report: &mut CommitReport,
    ) -> Result<(), RtError> {
        let target = m.mem.read_uint(var_addr, 8)?;
        if target == 0 {
            return Err(RtError::BadFnPtrTarget { var_addr, target });
        }
        // If the pointee is a described function with an inlinable body,
        // inline it into the sites (PV-Ops style); otherwise bind a direct
        // call.
        let inline = self.fn_by_addr.get(&target).and_then(|&fi| {
            let il = self.fns[fi].desc.generic_inline_len;
            (self.inline_enabled && il != NOT_INLINABLE).then_some((target, il))
        });
        let site_idxs = self.sites_of.get(&var_addr).cloned().unwrap_or_default();
        for si in &site_idxs {
            self.patch_site_to(m, *si, target, inline)?;
            report.fnptr_sites += 1;
        }
        report.sites_touched += site_idxs.len();
        Ok(())
    }

    pub(crate) fn revert_fnptr_var(
        &mut self,
        m: &mut Machine,
        var_addr: u64,
    ) -> Result<usize, RtError> {
        let site_idxs = self.sites_of.get(&var_addr).cloned().unwrap_or_default();
        for si in &site_idxs {
            self.restore_site(m, *si)?;
        }
        Ok(site_idxs.len())
    }

    /// Runs `op` as a transaction, charging wall-clock time to
    /// [`Runtime::patch_time`] whether it succeeds or fails, and filling
    /// in [`Runtime::last_timing`].
    fn timed(&mut self, m: &mut Machine, op: TxnOp) -> Result<CommitReport, RtError> {
        let start = Instant::now();
        let result = self.run_txn(m, op);
        let elapsed = start.elapsed();
        self.patch_time += elapsed;
        self.last_timing.elapsed = elapsed;
        if let Ok(report) = &result {
            self.last_timing.sites = report.sites_touched as u64;
        }
        result
    }

    /// `multiverse_commit()`: inspect all switches, select and install
    /// variants for every multiversed function, and re-bind every
    /// function-pointer switch.
    ///
    /// Transactional: on `Err` the text segment is byte-identical to its
    /// state before the call (unless the error's phase is
    /// [`crate::CommitPhase::Rollback`], which reports a failed restore).
    pub fn commit(&mut self, m: &mut Machine) -> Result<CommitReport, RtError> {
        self.timed(m, TxnOp::CommitAll)
    }

    /// `multiverse_revert()`: restore the original process image
    /// everywhere. Transactional like [`Runtime::commit`].
    pub fn revert(&mut self, m: &mut Machine) -> Result<CommitReport, RtError> {
        self.timed(m, TxnOp::RevertAll)
    }

    /// `multiverse_commit_refs(&var)`: commit only the functions whose
    /// variants are guarded by the switch at `var_addr` (or, for a
    /// function-pointer switch, its call sites). Transactional like
    /// [`Runtime::commit`].
    pub fn commit_refs(&mut self, m: &mut Machine, var_addr: u64) -> Result<CommitReport, RtError> {
        if !self.var_by_addr.contains_key(&var_addr) {
            return Err(RtError::UnknownVariable(var_addr));
        }
        self.timed(m, TxnOp::CommitRefs(var_addr))
    }

    /// `multiverse_revert_refs(&var)`. Transactional like
    /// [`Runtime::commit`].
    pub fn revert_refs(&mut self, m: &mut Machine, var_addr: u64) -> Result<CommitReport, RtError> {
        if !self.var_by_addr.contains_key(&var_addr) {
            return Err(RtError::UnknownVariable(var_addr));
        }
        self.timed(m, TxnOp::RevertRefs(var_addr))
    }

    /// `multiverse_commit_func(&fn)`: commit a single function by its
    /// generic entry address. Transactional like [`Runtime::commit`].
    pub fn commit_func(&mut self, m: &mut Machine, fn_addr: u64) -> Result<CommitReport, RtError> {
        if !self.fn_by_addr.contains_key(&fn_addr) {
            return Err(RtError::UnknownFunction(fn_addr));
        }
        self.timed(m, TxnOp::CommitFunc(fn_addr))
    }

    /// `multiverse_revert_func(&fn)`. Transactional like
    /// [`Runtime::commit`].
    pub fn revert_func(&mut self, m: &mut Machine, fn_addr: u64) -> Result<CommitReport, RtError> {
        if !self.fn_by_addr.contains_key(&fn_addr) {
            return Err(RtError::UnknownFunction(fn_addr));
        }
        self.timed(m, TxnOp::RevertFunc(fn_addr))
    }

    pub(crate) fn references_var(&self, fi: usize, var_addr: u64) -> bool {
        self.fns[fi]
            .desc
            .variants
            .iter()
            .any(|v| v.guards.iter().any(|g| g.var_addr == var_addr))
    }
}
