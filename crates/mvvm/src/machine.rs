//! The interpreter: fetch, decode (cached), execute, charge cycles.
//!
//! Execution is tiered (see [`ExecTier`] and [`crate::block`]): the
//! default tierless engine decodes one instruction at a time through the
//! per-instruction decode cache; the block tiers memoize straight-line
//! decode runs and replay them through the *same* per-instruction
//! execution routine, so every observable — cycles, [`Stats`], traces,
//! profiles, fault points — is identical across tiers by construction.

use crate::block::{
    BlockCacheStats, DecodedBlock, ExecTier, MAX_BLOCK_INSTS, MAX_SUPERBLOCK_FUSES,
    MAX_SUPERBLOCK_INSTS,
};
use crate::cost::CostModel;
use crate::cpu::Cpu;
use crate::mem::{extend, MemError, Memory, PAGE_SIZE};
use crate::native::{MicroOp, NativeFn, NativeRegistry, NativeStats, Seg};
use crate::pred::Predictors;
use crate::stats::Stats;
use crate::tier0::{BlockCache, HOT_THRESHOLD};
use mvasm::{AluOp, DecodeError, Insn, Reg};
use mvobj::Executable;
use std::cell::Cell;
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

/// A cached decode: the instruction plus the `code_version` generation of
/// the first and last page its encoding touches. Both generations must
/// still match for the entry to be served (non-sticky mode) — keying on
/// the first page alone would let an instruction straddling a page
/// boundary survive a flush of its tail page.
type CachedDecode = (Insn, u64, u64);

/// Unicore or multicore operation — switches the cost of bus-locked
/// atomics, modelling the UP/SMP distinction of the spinlock case study.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MachineMode {
    /// Single CPU online; atomics stay core-local.
    Unicore,
    /// Multiple CPUs online; atomics pay coherence traffic.
    Multicore,
}

/// Execution platform — native hardware or a paravirtualized Xen guest.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Platform {
    /// Bare metal: `sti`/`cli` are cheap, hypercalls are invalid.
    Native,
    /// Xen PV guest: `sti`/`cli` trap to the hypervisor (expensive
    /// emulation), `hypercall` performs the operation at moderate cost.
    XenGuest,
}

/// Machine construction parameters.
#[derive(Clone, Copy, Debug)]
pub struct MachineConfig {
    /// Unicore or multicore.
    pub mode: MachineMode,
    /// Native or guest.
    pub platform: Platform,
    /// Stack size in bytes.
    pub stack_size: u64,
    /// Maximum instructions a single [`Machine::call`] may retire before
    /// failing with [`Fault::Timeout`].
    pub fuel: u64,
}

impl Default for MachineConfig {
    fn default() -> MachineConfig {
        MachineConfig {
            mode: MachineMode::Unicore,
            platform: Platform::Native,
            stack_size: 1 << 20,
            fuel: 20_000_000_000,
        }
    }
}

/// Top of the stack region.
pub const STACK_TOP: u64 = 0x7FFF_F000;
/// Return-address sentinel used by [`Machine::call`]; reaching it ends the
/// call.
pub const RET_SENTINEL: u64 = 0xFFFF_FFFF_0000_0000;

/// Execution faults.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Memory access or protection violation.
    Mem(MemError),
    /// Undecodable instruction bytes.
    Decode {
        /// Address of the bad instruction.
        addr: u64,
        /// Decoder diagnosis.
        err: DecodeError,
    },
    /// Integer division by zero.
    DivByZero {
        /// Address of the dividing instruction.
        addr: u64,
    },
    /// `hypercall` on native hardware or with an unknown number.
    InvalidHypercall {
        /// Address of the instruction.
        addr: u64,
        /// Hypercall number.
        nr: u8,
    },
    /// The fuel limit was exhausted.
    Timeout {
        /// Instructions retired before giving up.
        executed: u64,
    },
    /// `halt` retired inside [`Machine::call`] (the program ended instead
    /// of returning).
    Halted,
    /// A one-byte trap instruction ([`mvasm::Insn::Trap`], the `int3`
    /// analog) was fetched. The faulting CPU has *not* advanced past the
    /// trap: `pc` still points at the trap byte, so whoever catches the
    /// fault (the SMP scheduler's registered handler, a debugger) decides
    /// whether to stall, skip, or re-execute after the byte is restored.
    Trap {
        /// Address of the trap byte.
        addr: u64,
    },
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::Mem(e) => write!(f, "{e}"),
            Fault::Decode { addr, err } => write!(f, "decode fault at {addr:#x}: {err}"),
            Fault::DivByZero { addr } => write!(f, "division by zero at {addr:#x}"),
            Fault::InvalidHypercall { addr, nr } => {
                write!(f, "invalid hypercall {nr} at {addr:#x}")
            }
            Fault::Timeout { executed } => write!(f, "fuel exhausted after {executed} insns"),
            Fault::Halted => write!(f, "machine halted during call"),
            Fault::Trap { addr } => write!(f, "trap (int3) at {addr:#x}"),
        }
    }
}

impl std::error::Error for Fault {}

impl From<MemError> for Fault {
    fn from(e: MemError) -> Fault {
        Fault::Mem(e)
    }
}

/// Hypercall number: enable interrupts.
pub const HC_STI: u8 = 1;
/// Hypercall number: disable interrupts.
pub const HC_CLI: u8 = 2;

/// The virtual machine.
pub struct Machine {
    /// Guest memory.
    pub mem: Memory,
    /// CPU state.
    pub cpu: Cpu,
    /// Cycle cost model.
    pub cost: CostModel,
    /// Branch predictors.
    pub pred: Predictors,
    /// Event counters.
    pub stats: Stats,
    config: MachineConfig,
    out: Vec<u8>,
    decode_cache: HashMap<u64, CachedDecode>,
    /// Which execution engine runs (shared by all vCPUs of an SMP
    /// machine — the tier is machine state, not per-CPU state).
    tier: ExecTier,
    /// The resident per-CPU block cache (tiered execution); swapped with
    /// [`CpuContext::blocks`] alongside the decode cache.
    blocks: BlockCache,
    /// Lowered native-tier regions (see [`crate::native`]). Machine
    /// state like the tier itself, not per-CPU state — the native tier
    /// only runs in non-sticky (unicore) mode, where there is exactly
    /// one CPU observing the shared text.
    natives: NativeRegistry,
    /// `pc` at which a `jcc` would macro-fuse with the preceding `cmp`.
    fusable_at: Option<u64>,
    /// Sticky-icache mode: cached decodes are served *without* the
    /// code-version check, so [`Memory::flush_icache`] alone no longer
    /// invalidates them — only the explicit
    /// [`Machine::invalidate_decode_range`]/[`Machine::invalidate_decode_all`]
    /// primitives do. This models a private per-CPU icache that requires
    /// an IPI shootdown (the SMP machine's `flush_remote`): on a
    /// multi-vCPU machine a patcher that flushes only its own cache
    /// observably leaves stale instructions running elsewhere.
    sticky_icache: bool,
    trace: Option<crate::trace::Trace>,
    profiler: Option<crate::profile::Profiler>,
}

/// The per-CPU slice of machine state: everything a core owns privately
/// — architectural registers, branch predictors, event counters, the
/// decoded-instruction cache (the icache model) and the macro-fusion
/// latch. [`Machine::swap_context`] exchanges it against the machine's
/// resident state in O(1), which is how [`crate::smp::SmpMachine`]
/// multiplexes N virtual CPUs over one interpreter and one shared
/// [`Memory`].
#[derive(Default)]
pub struct CpuContext {
    /// Architectural register/flag state (including the per-CPU TSC).
    pub cpu: Cpu,
    /// Private branch-predictor state (2-bit counters, BTB, RSB).
    pub pred: Predictors,
    /// Private event counters; roll up machine-wide with `AddAssign`.
    pub stats: Stats,
    /// Private decoded-instruction cache (the icache model).
    pub decode_cache: HashMap<u64, CachedDecode>,
    /// Private decoded-block cache (the tiered engine's icache model).
    pub blocks: BlockCache,
    /// Pending cmp→jcc macro-fusion point.
    pub fusable_at: Option<u64>,
}

impl Machine {
    /// Creates a machine with the given cost model and configuration.
    /// The stack is mapped immediately.
    pub fn new(cost: CostModel, config: MachineConfig) -> Machine {
        let mut mem = Memory::new();
        mem.map(
            STACK_TOP - config.stack_size,
            config.stack_size,
            mvobj::Prot::RW,
        );
        Machine {
            mem,
            cpu: Cpu::new(STACK_TOP - 64),
            cost,
            pred: Predictors::new(),
            stats: Stats::default(),
            config,
            out: Vec::new(),
            decode_cache: HashMap::new(),
            tier: ExecTier::Tierless,
            blocks: BlockCache::default(),
            natives: NativeRegistry::default(),
            fusable_at: None,
            sticky_icache: false,
            trace: None,
            profiler: None,
        }
    }

    /// Creates a default native unicore machine and loads `exe`.
    pub fn boot(exe: &Executable) -> Machine {
        let mut m = Machine::new(CostModel::default(), MachineConfig::default());
        m.load(exe);
        m
    }

    /// Maps all segments of a linked executable.
    pub fn load(&mut self, exe: &Executable) {
        self.mem.load(exe);
        self.decode_cache.clear();
        self.blocks.reset();
        self.natives.clear();
    }

    /// Selects the execution engine (see [`ExecTier`]). Switching tiers
    /// resets the resident block cache and the native-region registry so
    /// every tier starts cold; the per-instruction decode cache is
    /// untouched. The tier is machine state shared by every vCPU of an
    /// SMP machine.
    pub fn set_tier(&mut self, tier: ExecTier) {
        if self.tier != tier {
            self.blocks.reset();
            self.natives.clear();
        }
        self.tier = tier;
    }

    /// The active execution tier.
    pub fn tier(&self) -> ExecTier {
        self.tier
    }

    /// Counters of the resident block cache (for an SMP machine, use
    /// [`crate::SmpMachine::block_stats`] which rolls up every vCPU).
    pub fn block_stats(&self) -> BlockCacheStats {
        self.blocks.stats
    }

    /// Machine mode (unicore/multicore).
    pub fn mode(&self) -> MachineMode {
        self.config.mode
    }

    /// Switches between unicore and multicore cost behavior at run time
    /// (CPU hot-plug, as in the paper's SMP scenario).
    ///
    /// Hot-plug semantics: bringing CPUs on or offline flushes all
    /// branch-predictor state (counters, BTB, RSB) — on real hardware the
    /// plugged core arrives cold, and keeping another mode's training
    /// would let stale indirect-branch targets leak across the plug. The
    /// decoded-instruction cache is *kept*: hot-plug changes how many
    /// cores observe the text, not the text itself, and x86 caches are
    /// coherent across hot-plug. A no-op call (same mode) changes
    /// nothing.
    pub fn set_mode(&mut self, mode: MachineMode) {
        if self.config.mode != mode {
            self.pred.flush();
        }
        self.config.mode = mode;
    }

    /// Execution platform.
    pub fn platform(&self) -> Platform {
        self.config.platform
    }

    /// The construction-time configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Current cycle count (the TSC).
    pub fn cycles(&self) -> u64 {
        self.cpu.tsc
    }

    /// Bytes written via `out` so far.
    pub fn output(&self) -> &[u8] {
        &self.out
    }

    /// Takes and clears the output sink.
    pub fn take_output(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.out)
    }

    /// Flushes all branch-predictor state (cold-BTB ablation).
    pub fn flush_predictors(&mut self) {
        self.pred.flush();
    }

    /// Enables or disables sticky-icache mode (see the field docs on
    /// [`Machine`]): when sticky, cached decodes survive
    /// [`Memory::flush_icache`] and only the explicit invalidation
    /// primitives refresh them — the private-per-CPU-icache model the
    /// SMP machine runs under.
    pub fn set_sticky_icache(&mut self, sticky: bool) {
        self.sticky_icache = sticky;
    }

    /// `true` if the machine serves cached decodes without version
    /// checks (sticky-icache mode).
    pub fn sticky_icache(&self) -> bool {
        self.sticky_icache
    }

    /// Drops cached decoded instructions *and decoded blocks* for
    /// `[start, end)` — the per-CPU half of an icache shootdown. Unlike
    /// [`Memory::flush_icache`] this acts on *this* CPU's private caches
    /// and works even in sticky mode. Both layers use the same
    /// instruction-start-address rule, so a shootdown that evicts a
    /// single decode also evicts exactly the blocks replaying it (a trap
    /// plant therefore splits/evicts the blocks spanning it), and
    /// nothing else.
    pub fn invalidate_decode_range(&mut self, start: u64, end: u64) {
        self.decode_cache.retain(|&pc, _| pc < start || pc >= end);
        self.blocks.invalidate_range(start, end);
        self.natives.invalidate_overlapping(start, end);
    }

    /// Drops every cached decoded instruction and block of this CPU.
    pub fn invalidate_decode_all(&mut self) {
        self.decode_cache.clear();
        self.blocks.invalidate_all();
        self.natives.clear();
    }

    /// Exchanges the machine's resident per-CPU state (registers,
    /// predictors, stats, decode cache, fusion latch) with `ctx` in
    /// O(1). The SMP scheduler swaps a vCPU's context in, steps a
    /// quantum, and swaps it back out; memory, cost model, output sink,
    /// trace and profiler stay resident and shared.
    pub fn swap_context(&mut self, ctx: &mut CpuContext) {
        std::mem::swap(&mut self.cpu, &mut ctx.cpu);
        std::mem::swap(&mut self.pred, &mut ctx.pred);
        std::mem::swap(&mut self.stats, &mut ctx.stats);
        std::mem::swap(&mut self.decode_cache, &mut ctx.decode_cache);
        std::mem::swap(&mut self.blocks, &mut ctx.blocks);
        std::mem::swap(&mut self.fusable_at, &mut ctx.fusable_at);
    }

    /// Installs a deterministic fault schedule on guest memory (see
    /// [`crate::fault`]). Replaces any existing plan.
    pub fn inject_fault(&mut self, plan: crate::fault::FaultPlan) {
        self.mem.set_fault_plan(plan);
    }

    /// Removes the fault schedule, returning it with its counters.
    pub fn clear_fault(&mut self) -> Option<crate::fault::FaultPlan> {
        self.mem.clear_fault_plan()
    }

    /// Starts recording the last `cap` retired instructions.
    pub fn enable_trace(&mut self, cap: usize) {
        self.trace = Some(crate::trace::Trace::new(cap));
    }

    /// Stops tracing and returns the recorded ring, if any.
    pub fn take_trace(&mut self) -> Option<crate::trace::Trace> {
        self.trace.take()
    }

    /// The active trace, if tracing is enabled.
    pub fn trace(&self) -> Option<&crate::trace::Trace> {
        self.trace.as_ref()
    }

    /// Starts per-function profiling, deriving function ranges from the
    /// symbol table of `exe` (see [`crate::profile`]). Replaces any
    /// profiler already installed.
    pub fn enable_profile(&mut self, exe: &Executable) {
        self.profiler = Some(crate::profile::Profiler::from_executable(exe));
    }

    /// Stops profiling and returns the collected attribution, if any.
    pub fn take_profile(&mut self) -> Option<crate::profile::Profiler> {
        self.profiler.take()
    }

    /// The active profiler, if profiling is enabled.
    pub fn profile(&self) -> Option<&crate::profile::Profiler> {
        self.profiler.as_ref()
    }

    /// Best-effort stack backtrace: return addresses collected by walking
    /// the saved-`bp` chain that framed functions maintain (`push bp; mov
    /// bp, sp`). Frameless leaves do not appear — as with `-fomit-frame-
    /// pointer` code under a real debugger.
    pub fn backtrace(&self, max_frames: usize) -> Vec<u64> {
        self.backtrace_from(self.cpu.get(Reg::BP), max_frames)
    }

    /// [`Machine::backtrace`] starting from an explicit frame pointer —
    /// lets the SMP scheduler walk the stack of a vCPU whose context is
    /// currently swapped out.
    pub fn backtrace_from(&self, bp: u64, max_frames: usize) -> Vec<u64> {
        let mut out = Vec::new();
        let mut bp = bp;
        for _ in 0..max_frames {
            // Frame layout: [bp] = caller's bp, [bp+8] = return address.
            let Ok(ret) = self.mem.read_uint(bp.wrapping_add(8), 8) else {
                break;
            };
            let Ok(next_bp) = self.mem.read_uint(bp, 8) else {
                break;
            };
            if ret == 0 || ret == RET_SENTINEL {
                break;
            }
            out.push(ret);
            if next_bp <= bp {
                break; // stacks grow down; anything else is a torn chain
            }
            bp = next_bp;
        }
        out
    }

    #[inline]
    fn charge(&mut self, cycles: u64) {
        self.cpu.tsc += cycles;
    }

    #[inline]
    fn push(&mut self, v: u64) -> Result<(), Fault> {
        let sp = self.cpu.sp().wrapping_sub(8);
        self.mem.write(sp, &v.to_le_bytes())?;
        self.cpu.set(Reg::SP, sp);
        Ok(())
    }

    #[inline]
    fn pop(&mut self) -> Result<u64, Fault> {
        let sp = self.cpu.sp();
        let v = self.mem.read_uint(sp, 8)?;
        self.cpu.set(Reg::SP, sp.wrapping_add(8));
        Ok(v)
    }

    fn decode_at(&mut self, pc: u64) -> Result<Insn, Fault> {
        let version = self.mem.code_version(pc);
        if let Some(&(insn, v0, v1)) = self.decode_cache.get(&pc) {
            // Sticky mode: the private icache ignores the shared
            // version counter — only an explicit shootdown
            // (invalidate_decode_*) evicts, exactly the staleness a
            // missing cross-CPU IPI leaves behind.
            //
            // Otherwise *every* page the encoding touches must still be
            // at its recorded generation: an instruction straddling a
            // page boundary is stale as soon as either page is flushed.
            if self.sticky_icache || (v0 == version && v1 == self.tail_version(pc, insn, version)) {
                return Ok(insn);
            }
        }
        let mut buf = [0u8; 16];
        let n = self.mem.fetch(pc, &mut buf)?;
        let (insn, _) = mvasm::decode(&buf[..n]).map_err(|err| Fault::Decode { addr: pc, err })?;
        self.decode_cache
            .insert(pc, (insn, version, self.tail_version(pc, insn, version)));
        Ok(insn)
    }

    /// `code_version` of the page holding the last byte of `insn`'s
    /// encoding at `pc` (`head_version` is passed in to skip the lookup
    /// for the common non-straddling case).
    fn tail_version(&self, pc: u64, insn: Insn, head_version: u64) -> u64 {
        let last = pc + insn.len() as u64 - 1;
        if last / PAGE_SIZE == pc / PAGE_SIZE {
            head_version
        } else {
            self.mem.code_version(last)
        }
    }

    #[inline]
    fn alu(&mut self, op: AluOp, a: u64, b: u64, at: u64) -> Result<u64, Fault> {
        let (v, c) = match op {
            AluOp::Add => (a.wrapping_add(b), self.cost.alu),
            AluOp::Sub => (a.wrapping_sub(b), self.cost.alu),
            AluOp::Mul => (a.wrapping_mul(b), self.cost.mul),
            AluOp::Divs => {
                if b == 0 {
                    return Err(Fault::DivByZero { addr: at });
                }
                ((a as i64).wrapping_div(b as i64) as u64, self.cost.div)
            }
            AluOp::Divu => {
                if b == 0 {
                    return Err(Fault::DivByZero { addr: at });
                }
                (a / b, self.cost.div)
            }
            AluOp::Rems => {
                if b == 0 {
                    return Err(Fault::DivByZero { addr: at });
                }
                ((a as i64).wrapping_rem(b as i64) as u64, self.cost.div)
            }
            AluOp::Remu => {
                if b == 0 {
                    return Err(Fault::DivByZero { addr: at });
                }
                (a % b, self.cost.div)
            }
            AluOp::And => (a & b, self.cost.alu),
            AluOp::Or => (a | b, self.cost.alu),
            AluOp::Xor => (a ^ b, self.cost.alu),
            AluOp::Shl => (a.wrapping_shl(b as u32), self.cost.alu),
            AluOp::Shrs => ((a as i64).wrapping_shr(b as u32) as u64, self.cost.alu),
            AluOp::Shru => (a.wrapping_shr(b as u32), self.cost.alu),
        };
        self.charge(c);
        Ok(v)
    }

    /// Executes one instruction.
    pub fn step(&mut self) -> Result<(), Fault> {
        let pc = self.cpu.pc;
        let insn = self.decode_at(pc)?;
        self.exec_insn(pc, insn)
    }

    /// Executes one already-decoded instruction at `pc`. This is the
    /// single execution routine: the tierless loop calls it after
    /// `decode_at`, block replay calls it with the memoized decode —
    /// cycles, stats, traces, profiles and fault behavior are therefore
    /// identical across tiers by construction.
    #[inline]
    fn exec_insn(&mut self, pc: u64, insn: Insn) -> Result<(), Fault> {
        // Snapshot TSC and counters so the step's deltas can be charged
        // to the function holding `pc`. Stats is Copy; with no profiler
        // installed this is a single branch.
        let prof_snap = self.profiler.as_ref().map(|_| (self.cpu.tsc, self.stats));
        if matches!(insn, Insn::Trap) {
            // The trap does not retire: pc stays on the trap byte and no
            // cycles are charged, so the catcher sees the CPU exactly at
            // the breakpoint (x86 `int3` semantics, minus the IDT).
            return Err(Fault::Trap { addr: pc });
        }
        let next = pc + insn.len() as u64;
        self.stats.instructions += 1;
        if let Some(t) = &mut self.trace {
            t.record(pc, insn);
        }
        let fused_here = self.fusable_at == Some(pc);
        self.fusable_at = None;
        let mut new_pc = next;

        match insn {
            Insn::MovRR { dst, src } => {
                let v = self.cpu.get(src);
                self.cpu.set(dst, v);
                self.charge(self.cost.alu);
            }
            Insn::MovRI { dst, imm } => {
                self.cpu.set(dst, imm as u64);
                self.charge(self.cost.alu);
            }
            Insn::Lea { dst, addr } => {
                self.cpu.set(dst, addr);
                self.charge(self.cost.lea);
            }
            Insn::Load {
                dst,
                base,
                off,
                width,
                signed,
            } => {
                let a = self.cpu.get(base).wrapping_add(off as i64 as u64);
                let raw = self.mem.read_uint(a, width.bytes())?;
                self.cpu.set(dst, extend(raw, width.bytes(), signed) as u64);
                self.stats.loads += 1;
                self.charge(self.cost.load);
            }
            Insn::Store {
                src,
                base,
                off,
                width,
            } => {
                let a = self.cpu.get(base).wrapping_add(off as i64 as u64);
                let v = self.cpu.get(src);
                self.mem.write_int(a, v, width.bytes())?;
                self.stats.stores += 1;
                self.charge(self.cost.store);
            }
            Insn::LoadAbs {
                dst,
                addr,
                width,
                signed,
            } => {
                let raw = self.mem.read_uint(addr, width.bytes())?;
                self.cpu.set(dst, extend(raw, width.bytes(), signed) as u64);
                self.stats.loads += 1;
                self.charge(self.cost.load);
            }
            Insn::StoreAbs { src, addr, width } => {
                let v = self.cpu.get(src);
                self.mem.write_int(addr, v, width.bytes())?;
                self.stats.stores += 1;
                self.charge(self.cost.store);
            }
            Insn::AluRR { op, dst, src } => {
                let v = self.alu(op, self.cpu.get(dst), self.cpu.get(src), pc)?;
                self.cpu.set(dst, v);
            }
            Insn::AluRI { op, dst, imm } => {
                let v = self.alu(op, self.cpu.get(dst), imm as u64, pc)?;
                self.cpu.set(dst, v);
            }
            Insn::CmpRR { a, b } => {
                self.cpu.cmp = (self.cpu.get(a), self.cpu.get(b));
                self.charge(self.cost.cmp);
                self.fusable_at = Some(next);
            }
            Insn::CmpRI { a, imm } => {
                self.cpu.cmp = (self.cpu.get(a), imm as u64);
                self.charge(self.cost.cmp);
                self.fusable_at = Some(next);
            }
            Insn::Setcc { cc, dst } => {
                let (a, b) = self.cpu.cmp;
                self.cpu.set(dst, cc.eval(a, b) as u64);
                self.charge(self.cost.alu);
            }
            Insn::Jmp { rel } => {
                new_pc = next.wrapping_add(rel as i64 as u64);
                self.charge(self.cost.jmp);
            }
            Insn::Jcc { cc, rel } => {
                let (a, b) = self.cpu.cmp;
                let taken = cc.eval(a, b);
                self.stats.branches += 1;
                if taken {
                    self.stats.branches_taken += 1;
                    new_pc = next.wrapping_add(rel as i64 as u64);
                }
                let base = if fused_here {
                    self.cost.fused_cmp_branch.saturating_sub(self.cost.cmp)
                } else {
                    self.cost.branch
                };
                self.charge(base);
                if !self.pred.cond_branch(pc, taken) {
                    self.stats.mispredicts += 1;
                    self.charge(self.cost.mispredict);
                }
            }
            Insn::CallRel { rel } => {
                self.push(next)?;
                self.pred.push_ret(next);
                new_pc = next.wrapping_add(rel as i64 as u64);
                self.stats.calls += 1;
                self.charge(self.cost.call);
            }
            Insn::CallInd { target } => {
                let t = self.cpu.get(target);
                self.push(next)?;
                self.pred.push_ret(next);
                new_pc = t;
                self.stats.indirect_calls += 1;
                self.charge(self.cost.call_ind);
                if !self.pred.indirect(pc, t) {
                    self.stats.mispredicts += 1;
                    self.charge(self.cost.mispredict);
                }
            }
            Insn::CallMem { addr } => {
                let t = self.mem.read_uint(addr, 8)?;
                self.push(next)?;
                self.pred.push_ret(next);
                new_pc = t;
                self.stats.indirect_calls += 1;
                self.stats.loads += 1;
                self.charge(self.cost.call_ind + self.cost.call_mem_extra);
                if !self.pred.indirect(pc, t) {
                    self.stats.mispredicts += 1;
                    self.charge(self.cost.mispredict);
                }
            }
            Insn::Push { src } => {
                let v = self.cpu.get(src);
                self.push(v)?;
                self.charge(self.cost.push_pop);
            }
            Insn::Pop { dst } => {
                let v = self.pop()?;
                self.cpu.set(dst, v);
                self.charge(self.cost.push_pop);
            }
            Insn::Ret => {
                let t = self.pop()?;
                new_pc = t;
                self.stats.rets += 1;
                self.charge(self.cost.ret);
                if !self.pred.pop_ret(t) {
                    self.stats.mispredicts += 1;
                    self.charge(self.cost.mispredict);
                }
            }
            Insn::Halt => {
                self.cpu.halted = true;
                new_pc = pc;
            }
            Insn::Sti | Insn::Cli => {
                let enable = matches!(insn, Insn::Sti);
                self.cpu.if_flag = enable;
                match self.config.platform {
                    Platform::Native => self.charge(self.cost.sti_cli),
                    Platform::XenGuest => {
                        self.stats.guest_traps += 1;
                        self.charge(self.cost.guest_priv_trap);
                    }
                }
            }
            Insn::Hypercall { nr } => {
                if self.config.platform == Platform::Native {
                    return Err(Fault::InvalidHypercall { addr: pc, nr });
                }
                match nr {
                    HC_STI => self.cpu.if_flag = true,
                    HC_CLI => self.cpu.if_flag = false,
                    _ => return Err(Fault::InvalidHypercall { addr: pc, nr }),
                }
                self.stats.hypercalls += 1;
                self.charge(self.cost.hypercall);
            }
            Insn::Rdtsc { dst } => {
                self.charge(self.cost.rdtsc);
                let t = self.cpu.tsc;
                self.cpu.set(dst, t);
            }
            Insn::Pause => self.charge(self.cost.pause),
            Insn::Out { src } => {
                let b = self.cpu.get(src) as u8;
                self.out.push(b);
                self.stats.out_bytes += 1;
                self.charge(self.cost.out);
            }
            Insn::XchgLock { val, base } => {
                let a = self.cpu.get(base);
                let old = self.mem.read_uint(a, 8)?;
                let v = self.cpu.get(val);
                self.mem.write_int(a, v, 8)?;
                self.cpu.set(val, old);
                self.stats.atomics += 1;
                let c = match self.config.mode {
                    MachineMode::Unicore => self.cost.atomic_up,
                    MachineMode::Multicore => self.cost.atomic_smp,
                };
                self.charge(c);
            }
            Insn::Mfence => self.charge(self.cost.fence),
            Insn::Trap => unreachable!("trap faults before dispatch"),
            Insn::Nop { .. } => {
                self.stats.nops += 1;
                self.charge(self.cost.nop);
            }
        }

        self.cpu.pc = new_pc;
        if let Some((tsc0, stats0)) = prof_snap {
            let cycles = self.cpu.tsc - tsc0;
            let delta = self.stats.since(&stats0);
            if let Some(p) = self.profiler.as_mut() {
                p.record(pc, cycles, &delta);
            }
        }
        Ok(())
    }

    /// Retires up to `budget > 0` instructions through the active
    /// [`ExecTier`] and returns how many retired plus the first fault, if
    /// any. Tierless maps to a single [`Machine::step`]; the block tiers
    /// replay and record decoded blocks. Every observable — cycles,
    /// [`Stats`], traces, profiles, fault points — matches calling
    /// [`Machine::step`] the same number of times, because the tiers
    /// memoize decode, never semantics.
    pub fn step_tiered(&mut self, budget: u64) -> (u64, Result<(), Fault>) {
        debug_assert!(budget > 0, "step_tiered needs a positive budget");
        match self.tier {
            ExecTier::Tierless => match self.step() {
                Ok(()) => (1, Ok(())),
                Err(f) => (0, Err(f)),
            },
            ExecTier::Block | ExecTier::Superblock => self.step_blocks(budget),
            ExecTier::Native => self.step_native(budget),
        }
    }

    /// The block-tier loop: replay cached valid blocks, record new ones.
    /// Stops at the budget, at `halt`, or when control reaches
    /// [`RET_SENTINEL`] mid-run. (With zero retired, the sentinel falls
    /// through to recording, whose fetch faults exactly as a tierless
    /// fetch from the sentinel would.)
    fn step_blocks(&mut self, budget: u64) -> (u64, Result<(), Fault>) {
        let mut retired = 0u64;
        while retired < budget && !self.cpu.halted {
            let pc = self.cpu.pc;
            if retired > 0 && pc == RET_SENTINEL {
                break;
            }
            let (n, r) = self.step_block_once(budget - retired);
            retired += n;
            if r.is_err() {
                return (retired, r);
            }
        }
        (retired, Ok(()))
    }

    /// One iteration of the block-tier loop at the current `pc`: replay
    /// the cached block if present and valid, record one otherwise.
    fn step_block_once(&mut self, budget: u64) -> (u64, Result<(), Fault>) {
        let pc = self.cpu.pc;
        let cached = self
            .blocks
            .last(pc)
            .cloned()
            .map(|b| (b, true))
            .or_else(|| self.blocks.get(pc).cloned().map(|b| (b, false)));
        match cached {
            Some((b, _)) if !self.block_valid(&b) => {
                self.blocks.evict(pc);
                self.record_block(pc, budget, false)
            }
            Some((b, from_last)) => {
                if !from_last
                    && matches!(self.tier, ExecTier::Superblock | ExecTier::Native)
                    && !b.superblock
                    && self.blocks.bump_hot(pc) >= HOT_THRESHOLD
                {
                    // Hot tier-0 entry: re-record as a fused
                    // superblock (the recording replaces the map
                    // entry at `pc`).
                    self.blocks.stats.promotions += 1;
                    self.record_block(pc, budget, true)
                } else {
                    self.blocks.stats.hits += 1;
                    if !from_last {
                        self.blocks.set_last(pc, b.clone());
                    }
                    self.replay_block(&b, budget)
                }
            }
            None => self.record_block(pc, budget, false),
        }
    }

    /// The native-tier loop (see [`crate::native`]): run lowered regions
    /// where registered and valid, fall back to the block engine
    /// everywhere else. With a tracer or profiler attached, or in
    /// sticky-icache (SMP) mode, the native fast path is bypassed
    /// entirely — per-op observation and shootdown-precise invalidation
    /// belong to the block engine.
    fn step_native(&mut self, budget: u64) -> (u64, Result<(), Fault>) {
        let plain = self.trace.is_none() && self.profiler.is_none();
        if !plain || self.sticky_icache || self.natives.is_empty() {
            return self.step_blocks(budget);
        }
        let mut retired = 0u64;
        while retired < budget && !self.cpu.halted {
            let pc = self.cpu.pc;
            if retired > 0 && pc == RET_SENTINEL {
                break;
            }
            let mut ran_native = false;
            if let Some(nf) = self.natives.get(pc).cloned() {
                if self.native_valid(&nf) {
                    let (n, r) = self.run_native(&nf, budget - retired);
                    retired += n;
                    if r.is_err() {
                        return (retired, r);
                    }
                    ran_native = n > 0;
                } else {
                    self.natives.invalidate_region(nf.entry);
                }
            }
            if ran_native {
                continue;
            }
            // No region here (or not enough budget for a whole native
            // block): one block-engine iteration, then try again.
            let (n, r) = self.step_block_once(budget - retired);
            retired += n;
            if r.is_err() {
                return (retired, r);
            }
            if n == 0 {
                break;
            }
        }
        (retired, Ok(()))
    }

    /// Executes lowered blocks of `nf` while control stays inside the
    /// region and the budget covers whole blocks. Returns instructions
    /// retired plus the first fault, if any.
    fn run_native(&mut self, nf: &NativeFn, budget: u64) -> (u64, Result<(), Fault>) {
        let mut retired = 0u64;
        let mut runs = 0u64;
        let mut result = Ok(());
        'outer: while !self.cpu.halted {
            let pc = self.cpu.pc;
            let Some(&bi) = nf.by_pc.get(&pc) else { break };
            let b = &nf.blocks[bi];
            if b.insns as u64 > budget - retired {
                break;
            }
            if retired > 0 && !self.native_valid(nf) {
                break;
            }
            runs += 1;
            for seg in &b.segs {
                match seg {
                    Seg::Fast(fs) => {
                        for op in fs.micro.iter() {
                            self.exec_micro(op, &fs.chains);
                        }
                        self.cpu.tsc += fs.counts.cycles(&self.cost);
                        self.stats.instructions += fs.insns as u64;
                        self.fusable_at = fs.fuse_next;
                        self.cpu.pc = fs.next_pc;
                        retired += fs.insns as u64;
                    }
                    Seg::Slow { pc, insn } => {
                        debug_assert_eq!(self.cpu.pc, *pc, "native run left the lowered trace");
                        if let Err(f) = self.exec_insn(*pc, *insn) {
                            result = Err(f);
                            break 'outer;
                        }
                        retired += 1;
                    }
                }
            }
        }
        self.natives.stats.runs += runs;
        self.natives.stats.insns += retired;
        (retired, result)
    }

    /// One micro-op of a native fast segment. Semantics mirror the
    /// corresponding [`Machine::exec_fast`] arms exactly; cycle charges
    /// are pre-classified in the segment's [`crate::native::CostCounts`].
    /// `chains` is the owning segment's [`MicroOp::ChainRI`] step table.
    #[inline]
    fn exec_micro(&mut self, op: &MicroOp, chains: &[crate::native::AluChain]) {
        #[inline]
        fn ix(r: u8) -> usize {
            r as usize & (Reg::COUNT - 1)
        }
        match *op {
            MicroOp::MovRR { dst, src } => self.cpu.regs[ix(dst)] = self.cpu.regs[ix(src)],
            MicroOp::MovRI { dst, imm } => self.cpu.regs[ix(dst)] = imm,
            MicroOp::AluRR { op, dst, src } => {
                let (v, _) = alu_fast(
                    op,
                    self.cpu.regs[ix(dst)],
                    self.cpu.regs[ix(src)],
                    &self.cost,
                );
                self.cpu.regs[ix(dst)] = v;
            }
            MicroOp::AluRI { op, dst, imm } => {
                let (v, _) = alu_fast(op, self.cpu.regs[ix(dst)], imm, &self.cost);
                self.cpu.regs[ix(dst)] = v;
            }
            MicroOp::Alu2RI {
                op1,
                dst1,
                imm1,
                op2,
                dst2,
                imm2,
            } => {
                let (v, _) = alu_fast(op1, self.cpu.regs[ix(dst1)], imm1, &self.cost);
                self.cpu.regs[ix(dst1)] = v;
                let (v, _) = alu_fast(op2, self.cpu.regs[ix(dst2)], imm2, &self.cost);
                self.cpu.regs[ix(dst2)] = v;
            }
            MicroOp::CmpRR { a, b } => self.cpu.cmp = (self.cpu.regs[ix(a)], self.cpu.regs[ix(b)]),
            MicroOp::CmpRI { a, imm } => self.cpu.cmp = (self.cpu.regs[ix(a)], imm),
            MicroOp::Setcc { cc, dst } => {
                let (a, b) = self.cpu.cmp;
                self.cpu.regs[ix(dst)] = cc.eval(a, b) as u64;
            }
            MicroOp::ChainRI { dst, chain } => {
                // The chained value lives in a host register for the
                // whole run — no register-file round trip between steps.
                let d = ix(dst);
                let mut v = self.cpu.regs[d];
                for &(op, imm) in chains[chain as usize].iter() {
                    v = crate::native::alu_value(op, v, imm);
                }
                self.cpu.regs[d] = v;
            }
        }
    }

    /// `true` if the lowered region `nf` may still run: every page it
    /// was lowered from keeps its `code_version`, with the same O(1)
    /// flush-epoch fast path the block caches use.
    fn native_valid(&self, nf: &NativeFn) -> bool {
        let epoch = self.mem.flush_epoch();
        if nf.epoch.get() == epoch {
            return true;
        }
        if nf
            .pages
            .iter()
            .all(|&(page, ver)| self.mem.code_version(page * PAGE_SIZE) == ver)
        {
            nf.epoch.set(epoch);
            return true;
        }
        false
    }

    /// Lowers and registers the function region at `entry` for the
    /// native tier, if it is not already covered by a valid region.
    /// Returns `false` when nothing executable could be lowered there.
    /// Idempotent; the `native` runtime backend calls this from its
    /// post-commit sync for every installed variant.
    pub fn ensure_native(&mut self, entry: u64) -> bool {
        if let Some(nf) = self.natives.get(entry).cloned() {
            if self.native_valid(&nf) {
                return true;
            }
            self.natives.invalidate_region(nf.entry);
        }
        match crate::native::lower(&self.mem, entry) {
            Some(nf) => {
                self.natives.register(Rc::new(nf));
                true
            }
            None => false,
        }
    }

    /// Drops lowered regions whose registered entry fails `keep` (the
    /// reconciliation half of the `native` backend's post-commit sync).
    pub fn retain_native(&mut self, keep: impl Fn(u64) -> bool) {
        self.natives.retain_regions(keep);
    }

    /// `true` if a lowered region covers a block starting at `pc`.
    pub fn has_native(&self, pc: u64) -> bool {
        self.natives.get(pc).is_some()
    }

    /// Counters of the native tier (see [`NativeStats`]).
    pub fn native_stats(&self) -> NativeStats {
        self.natives.stats
    }

    /// Re-executes the memoized ops of `b`. Stops at the budget or at a
    /// fault.
    ///
    /// Mid-block control flow is deterministic by construction: recording
    /// breaks at every transfer except fused `jmp`/`call rel`, whose
    /// targets are static, and `halt` only ever terminates a trace — so
    /// inside the pre-sliced budget window only the entry pc needs
    /// checking, and the per-op guard is a debug assertion.
    ///
    /// With no tracer or profiler attached, maximal runs of register-only
    /// ops ([`DecodedBlock::fast_runs`]) retire through [`Machine::exec_fast`]
    /// with the `tsc`, instruction-count, `fusable_at` and `pc` updates
    /// batched to the end of the run. Fast ops cannot fault, halt,
    /// transfer control, or read `tsc`/[`Stats`], and host code only
    /// observes machine state between quanta, so the end-of-quantum state
    /// is bit-identical to per-instruction execution. Everything else —
    /// and every op when a tracer or profiler is attached — goes through
    /// [`Machine::exec_insn`] unchanged.
    fn replay_block(&mut self, b: &DecodedBlock, budget: u64) -> (u64, Result<(), Fault>) {
        let limit = usize::try_from(budget).map_or(b.ops.len(), |n| b.ops.len().min(n));
        if self.cpu.pc != b.entry {
            return (0, Ok(()));
        }
        let plain = self.trace.is_none() && self.profiler.is_none();
        let mut i = 0usize;
        while i < limit {
            let (pc, insn) = b.ops[i];
            debug_assert_eq!(self.cpu.pc, pc, "replay left the recorded trace");
            let run = if plain {
                (b.fast_runs[i] as usize).min(limit - i)
            } else {
                0
            };
            if run > 0 {
                let mut cycles = 0u64;
                for &(_, op) in &b.ops[i..i + run] {
                    self.exec_fast(op, &mut cycles);
                }
                self.cpu.tsc += cycles;
                self.stats.instructions += run as u64;
                let (last_pc, last) = b.ops[i + run - 1];
                let next = last_pc + last.len() as u64;
                self.fusable_at =
                    matches!(last, Insn::CmpRR { .. } | Insn::CmpRI { .. }).then_some(next);
                self.cpu.pc = next;
                i += run;
            } else {
                if let Err(f) = self.exec_insn(pc, insn) {
                    return (i as u64, Err(f));
                }
                i += 1;
            }
        }
        (i as u64, Ok(()))
    }

    /// One op of a fast run (see [`Machine::replay_block`]): the
    /// register-only [`DecodedBlock::is_fast`] subset with its cycle
    /// charge accumulated into `cycles` instead of `tsc`. Semantics match
    /// the corresponding [`Machine::exec_insn`] arms exactly; the
    /// differential test suite holds the two in lockstep.
    #[inline]
    fn exec_fast(&mut self, insn: Insn, cycles: &mut u64) {
        match insn {
            Insn::MovRR { dst, src } => {
                let v = self.cpu.get(src);
                self.cpu.set(dst, v);
                *cycles += self.cost.alu;
            }
            Insn::MovRI { dst, imm } => {
                self.cpu.set(dst, imm as u64);
                *cycles += self.cost.alu;
            }
            Insn::Lea { dst, addr } => {
                self.cpu.set(dst, addr);
                *cycles += self.cost.lea;
            }
            Insn::AluRR { op, dst, src } => {
                let (v, c) = alu_fast(op, self.cpu.get(dst), self.cpu.get(src), &self.cost);
                self.cpu.set(dst, v);
                *cycles += c;
            }
            Insn::AluRI { op, dst, imm } => {
                let (v, c) = alu_fast(op, self.cpu.get(dst), imm as u64, &self.cost);
                self.cpu.set(dst, v);
                *cycles += c;
            }
            Insn::CmpRR { a, b } => {
                self.cpu.cmp = (self.cpu.get(a), self.cpu.get(b));
                *cycles += self.cost.cmp;
            }
            Insn::CmpRI { a, imm } => {
                self.cpu.cmp = (self.cpu.get(a), imm as u64);
                *cycles += self.cost.cmp;
            }
            Insn::Setcc { cc, dst } => {
                let (a, b) = self.cpu.cmp;
                self.cpu.set(dst, cc.eval(a, b) as u64);
                *cycles += self.cost.alu;
            }
            _ => unreachable!("non-fast op inside a fast run"),
        }
    }

    /// Records a new block at the current `pc` by executing instructions
    /// through the ordinary decode path while memoizing every decode it
    /// performed — never decoding ahead, so a sticky stale decode enters
    /// the block exactly as stale as tierless execution observes it. A
    /// faulting op is kept as the block terminator (a replay re-reaches
    /// the same fault point); a budget cut caches the partial block.
    fn record_block(
        &mut self,
        entry: u64,
        budget: u64,
        superblock: bool,
    ) -> (u64, Result<(), Fault>) {
        self.blocks.stats.misses += 1;
        let max_ops = if superblock {
            MAX_SUPERBLOCK_INSTS
        } else {
            MAX_BLOCK_INSTS
        };
        let mut ops: Vec<(u64, Insn)> = Vec::new();
        let mut pages: Vec<(u64, u64)> = Vec::new();
        let mut fuses = 0usize;
        let mut retired = 0u64;
        let mut result = Ok(());
        while retired < budget {
            let pc = self.cpu.pc;
            let insn = match self.decode_at(pc) {
                Ok(i) => i,
                Err(f) => {
                    result = Err(f);
                    break;
                }
            };
            self.record_pages(&mut pages, pc, insn);
            ops.push((pc, insn));
            if let Err(f) = self.exec_insn(pc, insn) {
                result = Err(f);
                break;
            }
            retired += 1;
            if self.cpu.halted || self.cpu.pc == RET_SENTINEL || ops.len() >= max_ops {
                break;
            }
            // A superblock fuses across direct, statically-targeted
            // transfers — unless the target is already in the trace (a
            // loop) or the fuse allowance ran out.
            if superblock
                && fuses < MAX_SUPERBLOCK_FUSES
                && matches!(insn, Insn::Jmp { .. } | Insn::CallRel { .. })
                && !ops.iter().any(|&(p, _)| p == self.cpu.pc)
            {
                fuses += 1;
                continue;
            }
            if matches!(
                insn,
                Insn::Jmp { .. }
                    | Insn::Jcc { .. }
                    | Insn::CallRel { .. }
                    | Insn::CallInd { .. }
                    | Insn::CallMem { .. }
                    | Insn::Ret
            ) {
                break;
            }
        }
        if !ops.is_empty() {
            let block = Rc::new(DecodedBlock {
                entry,
                fast_runs: DecodedBlock::fast_runs_of(&ops),
                ops,
                pages,
                superblock,
                epoch: Cell::new(self.mem.flush_epoch()),
            });
            self.blocks.insert(entry, block);
        }
        (retired, result)
    }

    /// Records the `(page, code_version)` of every page the encoding of
    /// `insn` at `pc` touches into `pages` (deduplicated) — a straddling
    /// instruction contributes both its pages, so flushing either one
    /// invalidates the block.
    fn record_pages(&self, pages: &mut Vec<(u64, u64)>, pc: u64, insn: Insn) {
        let first = pc / PAGE_SIZE;
        let last = (pc + insn.len() as u64 - 1) / PAGE_SIZE;
        for page in first..=last {
            if !pages.iter().any(|&(p, _)| p == page) {
                pages.push((page, self.mem.code_version(page * PAGE_SIZE)));
            }
        }
    }

    /// `true` if `b` may be replayed. Sticky mode: always — the private
    /// icache ignores version counters and only the explicit shootdown
    /// primitives evict (see [`Machine::invalidate_decode_range`]).
    /// Otherwise every recorded page generation must still match, with an
    /// O(1) [`Memory::flush_epoch`] fast path for the common
    /// nothing-flushed-since case.
    fn block_valid(&self, b: &DecodedBlock) -> bool {
        if self.sticky_icache {
            return true;
        }
        let epoch = self.mem.flush_epoch();
        if b.epoch.get() == epoch {
            return true;
        }
        if b.pages
            .iter()
            .all(|&(page, ver)| self.mem.code_version(page * PAGE_SIZE) == ver)
        {
            b.epoch.set(epoch);
            return true;
        }
        false
    }

    /// Calls the function at `addr` with up to six `args`, runs it to
    /// completion and returns `r0`.
    ///
    /// The machine's TSC, statistics and predictor state persist across
    /// calls, so repeated calls model a warm microbenchmark loop.
    pub fn call(&mut self, addr: u64, args: &[u64]) -> Result<u64, Fault> {
        assert!(args.len() <= 6, "at most six register arguments");
        for (i, &a) in args.iter().enumerate() {
            self.cpu.set(Reg::new(i as u8).expect("< 6"), a);
        }
        // (Re)entering execution clears a previous `halt`: a halted
        // machine used to poison every later call with `Fault::Halted`
        // even though the caller asked it to run new code.
        self.cpu.halted = false;
        self.push(RET_SENTINEL)?;
        self.pred.push_ret(RET_SENTINEL);
        self.cpu.pc = addr;
        let mut executed = 0u64;
        while self.cpu.pc != RET_SENTINEL {
            if self.cpu.halted {
                return Err(Fault::Halted);
            }
            if executed >= self.config.fuel {
                return Err(Fault::Timeout { executed });
            }
            let (n, r) = self.step_tiered(self.config.fuel - executed);
            executed += n;
            r?;
        }
        Ok(self.cpu.get(Reg::R0))
    }

    /// Runs from the image entry point until `halt`; returns `r0`.
    pub fn run_entry(&mut self, exe: &Executable) -> Result<u64, Fault> {
        // (Re)entering execution clears a previous `halt` — without this
        // a second `run_entry` returned `r0` without executing a single
        // instruction.
        self.cpu.halted = false;
        self.cpu.pc = exe.entry;
        let mut executed = 0u64;
        while !self.cpu.halted {
            if executed >= self.config.fuel {
                return Err(Fault::Timeout { executed });
            }
            let (n, r) = self.step_tiered(self.config.fuel - executed);
            executed += n;
            r?;
        }
        Ok(self.cpu.get(Reg::R0))
    }
}

/// Value and cycle charge of a non-dividing ALU op — the fast-run twin
/// of [`Machine::alu`], restricted to the ops [`DecodedBlock::is_fast`]
/// admits (the div/rem family can fault and never enters a fast run).
#[inline]
fn alu_fast(op: AluOp, a: u64, b: u64, cost: &CostModel) -> (u64, u64) {
    match op {
        AluOp::Add => (a.wrapping_add(b), cost.alu),
        AluOp::Sub => (a.wrapping_sub(b), cost.alu),
        AluOp::Mul => (a.wrapping_mul(b), cost.mul),
        AluOp::And => (a & b, cost.alu),
        AluOp::Or => (a | b, cost.alu),
        AluOp::Xor => (a ^ b, cost.alu),
        AluOp::Shl => (a.wrapping_shl(b as u32), cost.alu),
        AluOp::Shrs => ((a as i64).wrapping_shr(b as u32) as u64, cost.alu),
        AluOp::Shru => (a.wrapping_shr(b as u32), cost.alu),
        AluOp::Divs | AluOp::Divu | AluOp::Rems | AluOp::Remu => {
            unreachable!("div ops never enter a fast run")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvasm::Cond;
    use mvobj::{link, Layout, Object, SectionKind, Symbol};

    fn exe_from(asm: mvasm::Assembler, extra: impl FnOnce(&mut Object)) -> Executable {
        let blob = asm.finish().unwrap();
        let mut o = Object::new("t");
        o.append(mvobj::SEC_TEXT, SectionKind::Text, &blob.bytes);
        o.define(Symbol::func(
            "main",
            mvobj::SEC_TEXT,
            0,
            blob.bytes.len() as u64,
        ));
        for f in &blob.fixups {
            let kind = match f.kind {
                mvasm::FixupKind::Rel32 { next_insn } => mvobj::RelocKind::Rel32 {
                    next_insn: next_insn as u64,
                },
                mvasm::FixupKind::Abs64 => mvobj::RelocKind::Abs64,
            };
            o.relocate(mvobj::Reloc {
                section: mvobj::SEC_TEXT.into(),
                offset: f.offset as u64,
                kind,
                symbol: f.symbol.clone(),
                addend: f.addend,
            });
        }
        extra(&mut o);
        link(&[o], &Layout::default()).unwrap()
    }

    #[test]
    fn arithmetic_loop_computes_sum() {
        // sum 1..=10 into r0
        let mut a = mvasm::Assembler::new();
        a.mov_ri(Reg::R0, 0);
        a.mov_ri(Reg::R1, 1);
        a.label("loop");
        a.emit(Insn::AluRR {
            op: AluOp::Add,
            dst: Reg::R0,
            src: Reg::R1,
        });
        a.emit(Insn::AluRI {
            op: AluOp::Add,
            dst: Reg::R1,
            imm: 1,
        });
        a.cmp_ri(Reg::R1, 10);
        a.jcc("loop", Cond::Le);
        a.emit(Insn::Halt);
        let exe = exe_from(a, |_| {});
        let mut m = Machine::boot(&exe);
        assert_eq!(m.run_entry(&exe).unwrap(), 55);
    }

    #[test]
    fn call_and_ret_roundtrip() {
        let mut a = mvasm::Assembler::new();
        a.call_sym("double_it", false);
        a.emit(Insn::Halt);
        a.label("double_it");
        // Local label targets are assembler-local; expose as symbol below.
        let blob_offset_known = a.len();
        a.emit(Insn::AluRR {
            op: AluOp::Add,
            dst: Reg::R0,
            src: Reg::R0,
        });
        a.ret();
        let exe = exe_from(a, |o| {
            o.define(Symbol::func(
                "double_it",
                mvobj::SEC_TEXT,
                blob_offset_known as u64,
                5,
            ));
        });
        let mut m = Machine::boot(&exe);
        m.cpu.set(Reg::R0, 21);
        assert_eq!(m.run_entry(&exe).unwrap(), 42);
        assert_eq!(m.stats.calls, 1);
        assert_eq!(m.stats.rets, 1);
    }

    #[test]
    fn machine_call_returns_r0() {
        let mut a = mvasm::Assembler::new();
        a.emit(Insn::Halt); // entry, unused
        a.label("f");
        let f_off = a.len();
        a.emit(Insn::AluRI {
            op: AluOp::Add,
            dst: Reg::R0,
            imm: 5,
        });
        a.ret();
        let exe = exe_from(a, |o| {
            o.define(Symbol::func("f", mvobj::SEC_TEXT, f_off as u64, 12));
        });
        let mut m = Machine::boot(&exe);
        let f = exe.symbol("f").unwrap();
        assert_eq!(m.call(f, &[37]).unwrap(), 42);
        // TSC advanced and the machine is reusable.
        let t = m.cycles();
        assert!(t > 0);
        assert_eq!(m.call(f, &[0]).unwrap(), 5);
        assert!(m.cycles() > t);
    }

    #[test]
    fn profiler_attributes_callee_to_callee() {
        let mut a = mvasm::Assembler::new();
        a.call_sym("double_it", false);
        a.emit(Insn::Halt);
        a.label("double_it");
        let off = a.len();
        a.emit(Insn::AluRR {
            op: AluOp::Add,
            dst: Reg::R0,
            src: Reg::R0,
        });
        a.ret();
        let exe = exe_from(a, |o| {
            o.define(Symbol::func("double_it", mvobj::SEC_TEXT, off as u64, 5));
        });
        let mut m = Machine::boot(&exe);
        m.enable_profile(&exe);
        m.cpu.set(Reg::R0, 21);
        m.run_entry(&exe).unwrap();
        let p = m.take_profile().unwrap();
        // The call retires in main; add+ret retire in double_it.
        let main = p.counters_of("main").unwrap();
        let callee = p.counters_of("double_it").unwrap();
        assert_eq!(main.stats.calls, 1);
        assert_eq!(callee.stats.rets, 1);
        assert_eq!(callee.stats.instructions, 2);
        assert!(callee.cycles > 0);
        // Everything retired is attributed somewhere.
        let total: u64 = p
            .report()
            .iter()
            .map(|r| r.counters.stats.instructions)
            .sum();
        assert_eq!(total, m.stats.instructions);
    }

    #[test]
    fn division_by_zero_faults() {
        let mut a = mvasm::Assembler::new();
        a.mov_ri(Reg::R0, 1);
        a.mov_ri(Reg::R1, 0);
        a.emit(Insn::AluRR {
            op: AluOp::Divu,
            dst: Reg::R0,
            src: Reg::R1,
        });
        a.emit(Insn::Halt);
        let exe = exe_from(a, |_| {});
        let mut m = Machine::boot(&exe);
        assert!(matches!(
            m.run_entry(&exe).unwrap_err(),
            Fault::DivByZero { .. }
        ));
    }

    #[test]
    fn warm_branch_costs_less_than_cold() {
        // A taken loop branch: first iterations mispredict, then the
        // predictor warms up.
        let mut a = mvasm::Assembler::new();
        a.mov_ri(Reg::R1, 0);
        a.label("loop");
        a.emit(Insn::AluRI {
            op: AluOp::Add,
            dst: Reg::R1,
            imm: 1,
        });
        a.cmp_ri(Reg::R1, 1000);
        a.jcc("loop", Cond::Lt);
        a.emit(Insn::Halt);
        let exe = exe_from(a, |_| {});
        let mut m = Machine::boot(&exe);
        m.run_entry(&exe).unwrap();
        // Only the warm-up and the final not-taken branch mispredict.
        assert!(m.stats.mispredicts <= 3, "{}", m.stats.mispredicts);
        assert_eq!(m.stats.branches, 1000);
    }

    #[test]
    fn guest_sti_traps_native_does_not() {
        let mut a = mvasm::Assembler::new();
        a.emit(Insn::Cli);
        a.emit(Insn::Sti);
        a.emit(Insn::Halt);
        let exe = exe_from(a, |_| {});

        let mut native = Machine::boot(&exe);
        native.run_entry(&exe).unwrap();
        assert_eq!(native.stats.guest_traps, 0);
        let native_cycles = native.cycles();

        let mut guest = Machine::new(
            CostModel::default(),
            MachineConfig {
                platform: Platform::XenGuest,
                ..MachineConfig::default()
            },
        );
        guest.load(&exe);
        guest.run_entry(&exe).unwrap();
        assert_eq!(guest.stats.guest_traps, 2);
        assert!(guest.cycles() > native_cycles * 10);
    }

    #[test]
    fn hypercall_invalid_on_native() {
        let mut a = mvasm::Assembler::new();
        a.emit(Insn::Hypercall { nr: HC_CLI });
        a.emit(Insn::Halt);
        let exe = exe_from(a, |_| {});
        let mut m = Machine::boot(&exe);
        assert!(matches!(
            m.run_entry(&exe).unwrap_err(),
            Fault::InvalidHypercall { nr: HC_CLI, .. }
        ));

        let mut guest = Machine::new(
            CostModel::default(),
            MachineConfig {
                platform: Platform::XenGuest,
                ..MachineConfig::default()
            },
        );
        guest.load(&exe);
        guest.run_entry(&exe).unwrap();
        assert!(!guest.cpu.if_flag);
        assert_eq!(guest.stats.hypercalls, 1);
    }

    #[test]
    fn atomic_costs_more_in_smp() {
        let mk = |mode| {
            let mut a = mvasm::Assembler::new();
            a.lea_sym(Reg::R1, "lockword");
            a.mov_ri(Reg::R0, 1);
            a.emit(Insn::XchgLock {
                val: Reg::R0,
                base: Reg::R1,
            });
            a.emit(Insn::Halt);
            let exe = exe_from(a, |o| o.define_bss("lockword", 8));
            let mut m = Machine::new(
                CostModel::default(),
                MachineConfig {
                    mode,
                    ..MachineConfig::default()
                },
            );
            m.load(&exe);
            m.run_entry(&exe).unwrap();
            (m.cycles(), m.stats.atomics)
        };
        let (up, a1) = mk(MachineMode::Unicore);
        let (smp, a2) = mk(MachineMode::Multicore);
        assert_eq!((a1, a2), (1, 1));
        assert!(smp > up);
    }

    #[test]
    fn xchg_swaps_memory() {
        let mut a = mvasm::Assembler::new();
        a.lea_sym(Reg::R1, "word");
        a.mov_ri(Reg::R0, 7);
        a.emit(Insn::XchgLock {
            val: Reg::R0,
            base: Reg::R1,
        });
        a.emit(Insn::Halt);
        let exe = exe_from(a, |o| {
            o.define_data("word", &42u64.to_le_bytes());
        });
        let mut m = Machine::boot(&exe);
        m.run_entry(&exe).unwrap();
        assert_eq!(m.cpu.get(Reg::R0), 42);
        let w = exe.symbol("word").unwrap();
        assert_eq!(m.mem.read_uint(w, 8).unwrap(), 7);
    }

    #[test]
    fn out_collects_bytes() {
        let mut a = mvasm::Assembler::new();
        a.mov_ri(Reg::R0, b'h' as i64);
        a.emit(Insn::Out { src: Reg::R0 });
        a.mov_ri(Reg::R0, b'i' as i64);
        a.emit(Insn::Out { src: Reg::R0 });
        a.emit(Insn::Halt);
        let exe = exe_from(a, |_| {});
        let mut m = Machine::boot(&exe);
        m.run_entry(&exe).unwrap();
        assert_eq!(m.take_output(), b"hi");
        assert!(m.output().is_empty());
    }

    #[test]
    fn stale_icache_executes_old_instruction() {
        // Execute a mov once (populating the decode cache), then patch the
        // text without flushing: the machine must keep executing the stale
        // decoded instruction until flush_icache.
        let mut a = mvasm::Assembler::new();
        a.label("f");
        a.mov_ri(Reg::R0, 1);
        a.ret();
        a.emit(Insn::Halt);
        let f_len = 0;
        let exe = exe_from(a, |o| {
            o.define(Symbol::func("f", mvobj::SEC_TEXT, f_len, 11));
        });
        let mut m = Machine::boot(&exe);
        let f = exe.symbol("f").unwrap();
        assert_eq!(m.call(f, &[]).unwrap(), 1);

        // Patch `mov r0, 1` → `mov r0, 2` behind the icache's back.
        let patched = mvasm::encode(&Insn::MovRI {
            dst: Reg::R0,
            imm: 2,
        });
        m.mem.mprotect(f, 16, mvobj::Prot::RW).unwrap();
        m.mem.write(f, &patched).unwrap();
        m.mem.mprotect(f, 16, mvobj::Prot::RX).unwrap();

        // Stale: still returns 1.
        assert_eq!(m.call(f, &[]).unwrap(), 1);
        // After the flush the new code is visible.
        m.mem.flush_icache(f, 16);
        assert_eq!(m.call(f, &[]).unwrap(), 2);
    }

    #[test]
    fn fuel_exhaustion_times_out() {
        let mut a = mvasm::Assembler::new();
        a.label("spin");
        a.jmp("spin");
        a.emit(Insn::Halt);
        let exe = exe_from(a, |_| {});
        let mut m = Machine::new(
            CostModel::default(),
            MachineConfig {
                fuel: 1000,
                ..MachineConfig::default()
            },
        );
        m.load(&exe);
        assert!(matches!(
            m.run_entry(&exe).unwrap_err(),
            Fault::Timeout { executed: 1000 }
        ));
    }

    #[test]
    fn set_mode_hotplug_resets_predictors_keeps_decode_cache() {
        // Hot-plug semantics: switching UP↔SMP must flush predictor
        // training (the plugged core arrives cold) but must NOT flush
        // the decode cache (text is unchanged by hot-plug).
        let mut a = mvasm::Assembler::new();
        a.label("f");
        a.mov_ri(Reg::R0, 1);
        a.ret();
        a.label("g");
        let g_off = a.len();
        // A 16-iteration loop whose taken back-edge needs training.
        a.mov_ri(Reg::R1, 0);
        a.label("loop");
        a.emit(Insn::AluRI {
            op: AluOp::Add,
            dst: Reg::R1,
            imm: 1,
        });
        a.cmp_ri(Reg::R1, 16);
        a.jcc("loop", Cond::Lt);
        a.ret();
        a.emit(Insn::Halt);
        let exe = exe_from(a, |o| {
            o.define(Symbol::func("f", mvobj::SEC_TEXT, 0, 11));
            o.define(Symbol::func("g", mvobj::SEC_TEXT, g_off as u64, 38));
        });
        let mut m = Machine::boot(&exe);
        let f = exe.symbol("f").unwrap();
        let g = exe.symbol("g").unwrap();

        // Warm the branch predictor and the decode cache.
        assert_eq!(m.call(f, &[]).unwrap(), 1);
        m.call(g, &[]).unwrap();
        let warm = {
            let before = m.stats.mispredicts;
            m.call(g, &[]).unwrap();
            m.stats.mispredicts - before
        };

        // Patch f *without* flushing, then hot-plug.
        let patched = mvasm::encode(&Insn::MovRI {
            dst: Reg::R0,
            imm: 2,
        });
        m.mem.mprotect(f, 16, mvobj::Prot::RW).unwrap();
        m.mem.write(f, &patched).unwrap();
        m.mem.mprotect(f, 16, mvobj::Prot::RX).unwrap();
        m.set_mode(MachineMode::Multicore);
        assert_eq!(m.mode(), MachineMode::Multicore);

        // Decode cache survived the mode change: without an icache
        // flush the stale instruction keeps executing.
        assert_eq!(m.call(f, &[]).unwrap(), 1, "decode cache must be kept");
        // Predictors were flushed: the loop back-edge needs retraining.
        let cold = {
            let before = m.stats.mispredicts;
            m.call(g, &[]).unwrap();
            m.stats.mispredicts - before
        };
        assert!(
            cold > warm,
            "predictors must be cold after hot-plug (cold {cold} !> warm {warm})"
        );

        // No-op mode change (same mode) flushes nothing.
        m.call(g, &[]).unwrap();
        let before = m.stats.mispredicts;
        m.set_mode(MachineMode::Multicore);
        m.call(g, &[]).unwrap();
        assert_eq!(
            m.stats.mispredicts - before,
            warm,
            "same-mode set_mode must not flush training"
        );
    }

    #[test]
    fn fused_cmp_jcc_is_cheaper_than_unfused() {
        // cmp;jcc adjacent (fused) vs cmp;nop;jcc (unfused): same outcome,
        // the fused pair must not cost more.
        let run = |fused: bool| {
            let mut a = mvasm::Assembler::new();
            a.cmp_ri(Reg::R0, 1);
            if !fused {
                a.emit(Insn::Nop { len: 1 });
            }
            a.jcc("t", Cond::Eq);
            a.label("t");
            a.emit(Insn::Halt);
            let exe = exe_from(a, |_| {});
            let mut m = Machine::boot(&exe);
            m.run_entry(&exe).unwrap();
            m.cycles()
        };
        // Unfused pays the nop (1) plus the unfused branch (1); fused pays
        // only the pair cost.
        assert!(run(true) < run(false));
    }

    #[test]
    fn straddling_insn_sees_tail_page_flush() {
        // A mov whose 8-byte immediate lives entirely on the page after
        // its opcode byte: patching and flushing only that tail page must
        // invalidate the cached decode. (The cache used to be keyed on
        // the head page's generation alone and served the insn stale.)
        let mut m = Machine::new(CostModel::default(), MachineConfig::default());
        let base = 0x10000u64;
        m.mem.map(base, 2 * PAGE_SIZE, mvobj::Prot::RW);
        let pc = base + PAGE_SIZE - 2; // opcode+reg on page 0, imm on page 1
        let mov = mvasm::encode(&Insn::MovRI {
            dst: Reg::R0,
            imm: 1,
        });
        assert_eq!(mov.len(), 10, "straddle layout relies on the encoding");
        m.mem.write(pc, &mov).unwrap();
        let ret = mvasm::encode(&Insn::Ret);
        m.mem.write(pc + 10, &ret).unwrap();
        m.mem
            .mprotect(base, 2 * PAGE_SIZE, mvobj::Prot::RX)
            .unwrap();
        assert_eq!(m.call(pc, &[]).unwrap(), 1);

        // Patch only the immediate — bytes entirely on the tail page —
        // and flush only that page.
        let tail = base + PAGE_SIZE;
        m.mem.mprotect(tail, PAGE_SIZE, mvobj::Prot::RW).unwrap();
        m.mem.write(tail, &2i64.to_le_bytes()).unwrap();
        m.mem.mprotect(tail, PAGE_SIZE, mvobj::Prot::RX).unwrap();
        m.mem.flush_icache(tail, 8);
        assert_eq!(
            m.call(pc, &[]).unwrap(),
            2,
            "a tail-page flush must invalidate the straddling decode"
        );
    }

    #[test]
    fn halted_machine_accepts_new_calls() {
        // run_entry ends in `halt`; the machine must still run later
        // calls instead of failing them all with Fault::Halted.
        let mut a = mvasm::Assembler::new();
        a.emit(Insn::Halt);
        a.label("f");
        let f_off = a.len();
        a.emit(Insn::AluRI {
            op: AluOp::Add,
            dst: Reg::R0,
            imm: 5,
        });
        a.ret();
        let exe = exe_from(a, |o| {
            o.define(Symbol::func("f", mvobj::SEC_TEXT, f_off as u64, 12));
        });
        let mut m = Machine::boot(&exe);
        m.run_entry(&exe).unwrap();
        assert!(m.cpu.halted);
        let f = exe.symbol("f").unwrap();
        assert_eq!(
            m.call(f, &[37]).unwrap(),
            42,
            "a finished run must not poison later calls"
        );
        // Halt retiring *during* a call still faults.
        assert_eq!(m.call(exe.entry, &[]).unwrap_err(), Fault::Halted);
    }

    #[test]
    fn run_entry_twice_reexecutes() {
        let mut a = mvasm::Assembler::new();
        a.mov_ri(Reg::R0, 7);
        a.emit(Insn::Halt);
        let exe = exe_from(a, |_| {});
        let mut m = Machine::boot(&exe);
        assert_eq!(m.run_entry(&exe).unwrap(), 7);
        let insns = m.stats.instructions;
        m.cpu.set(Reg::R0, 0);
        assert_eq!(m.run_entry(&exe).unwrap(), 7, "second run must re-execute");
        assert_eq!(m.stats.instructions, insns * 2);
    }

    /// A loop with a cmp→jcc back-edge, a call/ret pair per iteration and
    /// a direct jmp split: exercises block terminators, superblock fusion
    /// and the return path.
    fn tier_workload() -> Executable {
        let mut a = mvasm::Assembler::new();
        a.mov_ri(Reg::R0, 0);
        a.mov_ri(Reg::R1, 0);
        a.label("loop");
        a.call_sym("bump", false);
        a.jmp("cont");
        a.label("cont");
        a.emit(Insn::AluRI {
            op: AluOp::Add,
            dst: Reg::R1,
            imm: 1,
        });
        a.cmp_ri(Reg::R1, 50);
        a.jcc("loop", Cond::Lt);
        a.emit(Insn::Halt);
        a.label("bump");
        let off = a.len();
        a.emit(Insn::AluRI {
            op: AluOp::Add,
            dst: Reg::R0,
            imm: 3,
        });
        a.ret();
        exe_from(a, |o| {
            o.define(Symbol::func("bump", mvobj::SEC_TEXT, off as u64, 12));
        })
    }

    #[test]
    fn tiers_are_observation_identical() {
        let run = |tier: ExecTier| {
            let exe = tier_workload();
            let mut m = Machine::boot(&exe);
            m.set_tier(tier);
            m.enable_trace(32);
            m.enable_profile(&exe);
            let r = m.run_entry(&exe).unwrap();
            let trace: Vec<(u64, Insn)> = m.take_trace().unwrap().entries().copied().collect();
            let p = m.take_profile().unwrap();
            let callee = p.counters_of("bump").unwrap();
            (r, m.cycles(), m.stats, trace, callee.cycles, callee.stats)
        };
        let base = run(ExecTier::Tierless);
        assert_eq!(run(ExecTier::Block), base, "tier-0 diverged");
        assert_eq!(run(ExecTier::Superblock), base, "superblock diverged");
        // With a tracer attached the native tier must bypass its fast
        // path and still be observation-identical.
        assert_eq!(run(ExecTier::Native), base, "native (traced) diverged");
    }

    #[test]
    fn native_tier_is_observation_identical_and_actually_runs() {
        let run = |native: bool| {
            let exe = tier_workload();
            let mut m = Machine::boot(&exe);
            if native {
                m.set_tier(ExecTier::Native);
                assert!(m.ensure_native(exe.entry), "entry must lower");
                assert!(m.has_native(exe.entry));
            }
            let r = m.run_entry(&exe).unwrap();
            (r, m.cycles(), m.stats, m.native_stats())
        };
        let (r0, c0, s0, _) = run(false);
        let (r1, c1, s1, n) = run(true);
        assert_eq!((r1, c1, s1), (r0, c0, s0), "native diverged");
        assert!(n.runs > 0, "native fast path never ran: {n:?}");
        assert!(n.insns > 0);
        assert!(n.regions >= 1 && n.blocks >= 2);
    }

    #[test]
    fn native_region_survives_retain_and_reconciles() {
        let exe = tier_workload();
        let mut m = Machine::boot(&exe);
        m.set_tier(ExecTier::Native);
        assert!(m.ensure_native(exe.entry));
        // ensure is idempotent: no second region for the same entry.
        assert!(m.ensure_native(exe.entry));
        assert_eq!(m.native_stats().regions, 1);
        m.retain_native(|e| e != exe.entry);
        assert!(!m.has_native(exe.entry), "retain must drop the region");
        assert!(m.ensure_native(exe.entry));
        assert_eq!(m.native_stats().regions, 2, "re-lowered after drop");
    }

    #[test]
    fn block_cache_hits_and_promotes() {
        let exe = tier_workload();
        let mut m = Machine::boot(&exe);
        m.set_tier(ExecTier::Superblock);
        m.run_entry(&exe).unwrap();
        let s = m.block_stats();
        assert!(s.hits > 0, "loop re-entries must hit: {s:?}");
        assert!(s.misses > 0);
        assert!(s.promotions > 0, "hot entries must promote: {s:?}");
    }

    #[test]
    fn tiered_staleness_matches_tierless() {
        // The stale-icache discipline must survive the block tiers: a
        // patch without a flush stays stale, the flush makes exactly the
        // patched code fresh.
        for tier in [
            ExecTier::Tierless,
            ExecTier::Block,
            ExecTier::Superblock,
            ExecTier::Native,
        ] {
            let mut a = mvasm::Assembler::new();
            a.label("f");
            a.mov_ri(Reg::R0, 1);
            a.ret();
            a.emit(Insn::Halt);
            let exe = exe_from(a, |o| {
                o.define(Symbol::func("f", mvobj::SEC_TEXT, 0, 11));
            });
            let mut m = Machine::boot(&exe);
            m.set_tier(tier);
            let f = exe.symbol("f").unwrap();
            if tier == ExecTier::Native {
                assert!(m.ensure_native(f), "lower the patch target");
            }
            assert_eq!(m.call(f, &[]).unwrap(), 1, "{tier}");

            let patched = mvasm::encode(&Insn::MovRI {
                dst: Reg::R0,
                imm: 2,
            });
            m.mem.mprotect(f, 16, mvobj::Prot::RW).unwrap();
            m.mem.write(f, &patched).unwrap();
            m.mem.mprotect(f, 16, mvobj::Prot::RX).unwrap();
            assert_eq!(m.call(f, &[]).unwrap(), 1, "{tier}: must stay stale");
            m.mem.flush_icache(f, 16);
            assert_eq!(m.call(f, &[]).unwrap(), 2, "{tier}: flush must refresh");
        }
    }
}
