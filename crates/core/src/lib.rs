#![warn(missing_docs)]
//! # multiverse — compiler-assisted dynamic variability
//!
//! A from-scratch Rust reproduction of *Rommel, Dietrich, Rodin, Lohmann:
//! "Multiverse: Compiler-Assisted Management of Dynamic Variability in
//! Low-Level System Software"* (EuroSys 2019).
//!
//! System software is full of configuration decisions that are set once
//! (at boot, at `gc.enable()`, when the second thread spawns) yet paid for
//! on *every* invocation of a hot function — a load, a test and a branch
//! that may mispredict, or an indirect call. Multiverse moves that cost to
//! reconfiguration time: the compiler clones each annotated function for
//! every value of the configuration switches it reads, optimizes the
//! clones into branch-free specialists, and a tiny run-time library binary-
//! patches the chosen specialist into all call sites on an explicit
//! `commit`.
//!
//! Rust cannot portably patch its own text segment, so this reproduction
//! contains the **entire substrate** as a simulation with a faithful cost
//! model, plus a **native layer** for real Rust programs:
//!
//! * [`Program`]/[`World`] — compile MVC sources (a C-like language with
//!   the `multiverse` attribute) with the `mvc` compiler, run them on the
//!   `mvvm` machine, and drive the `mvrt` patching runtime: the paper's
//!   complete tool-chain, end to end.
//! * [`native`] — sound Rust primitives for the same idiom
//!   (atomic-fn-pointer dispatch cells with commit/revert), equivalent to
//!   the paper's function-pointer baseline and to Linux static-key-style
//!   reconfiguration.
//!
//! # Quickstart
//!
//! ```
//! use multiverse::{Program, World};
//!
//! let src = r#"
//!     multiverse bool feature;
//!     multiverse i64 work(void) {
//!         if (feature) { return 10; }
//!         return 20;
//!     }
//!     i64 main(void) { return work(); }
//! "#;
//! let program = Program::build(&[("demo.c", src)]).unwrap();
//! let mut world = program.boot();
//!
//! // Dynamic evaluation before any commit:
//! assert_eq!(world.call("work", &[]).unwrap(), 20);
//!
//! // Flip the switch and commit: the specialized variant is patched in.
//! world.set("feature", 1).unwrap();
//! world.commit().unwrap();
//! assert_eq!(world.call("work", &[]).unwrap(), 10);
//!
//! // The committed binding is frozen until the next commit (§2):
//! world.set("feature", 0).unwrap();
//! assert_eq!(world.call("work", &[]).unwrap(), 10);
//! world.commit().unwrap();
//! assert_eq!(world.call("work", &[]).unwrap(), 20);
//! ```

pub mod bench;
pub mod native;
pub mod program;
pub mod telemetry;
pub mod vexec;

pub use program::{BuildError, Program, SmpWorld, World};
pub use vexec::{
    config_space, enumerate_check, enumerate_check_with, oracle_check, oracle_check_with,
    ReplayCheck, VxError,
};

// Re-export the full tool-chain for advanced use.
pub use mvasm;
pub use mvc;
pub use mvmetrics;
pub use mvobj;
pub use mvrt;
pub use mvtrace;
pub use mvvm;
pub use mvvx;
