//! Separate compilation through on-disk MVO objects: compile each unit
//! independently, serialize, deserialize, link — the result must behave
//! exactly like the all-in-one build, descriptors included.

use multiverse::mvc::Options;
use multiverse::mvobj::{link, read_object, write_object, Layout};
use multiverse::mvrt::Runtime;
use multiverse::mvvm::Machine;

const CONFIG: &str = "multiverse bool dbg;";
const LIB: &str = r#"
    extern multiverse bool dbg;
    multiverse i64 get(void) { if (dbg) { return 42; } return 7; }
"#;
const MAIN: &str = r#"
    extern multiverse i64 get(void);
    i64 main(void) { return get(); }
"#;

#[test]
fn mvo_roundtrip_preserves_the_whole_program() {
    let opts = Options::default();
    let units = [("config.c", CONFIG), ("lib.c", LIB), ("main.c", MAIN)];

    // Compile each unit separately and round-trip it through the binary
    // object format.
    let mut objects = Vec::new();
    for (name, src) in units {
        let (obj, _) = multiverse::mvc::compile(src, name, &opts).unwrap();
        let bytes = write_object(&obj);
        objects.push(read_object(&bytes).unwrap());
    }
    let exe = link(&objects, &Layout::default()).unwrap();

    // Behaviour and descriptors survive the disk trip.
    let mut m = Machine::boot(&exe);
    let mut rt = Runtime::attach(&m, &exe).unwrap();
    assert_eq!(rt.num_variables(), 1);
    assert_eq!(rt.num_functions(), 1);
    assert_eq!(rt.num_callsites(), 1);

    assert_eq!(m.call(exe.entry, &[]).unwrap(), 7);
    let dbg = exe.symbol("dbg").unwrap();
    m.mem.write_int(dbg, 1, 1).unwrap();
    rt.commit(&mut m).unwrap();
    assert_eq!(m.call(exe.entry, &[]).unwrap(), 42);
    // Committed semantics: flipping without re-commit changes nothing.
    m.mem.write_int(dbg, 0, 1).unwrap();
    assert_eq!(m.call(exe.entry, &[]).unwrap(), 42);
}

#[test]
fn mvo_files_work_through_the_filesystem() {
    let dir = std::env::temp_dir().join(format!("mvo-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    let opts = Options::default();
    let mut paths = Vec::new();
    for (name, src) in [("config.c", CONFIG), ("lib.c", LIB), ("main.c", MAIN)] {
        let (obj, _) = multiverse::mvc::compile(src, name, &opts).unwrap();
        let path = dir.join(format!("{name}.mvo"));
        std::fs::write(&path, write_object(&obj)).unwrap();
        paths.push(path);
    }

    let mut objects = Vec::new();
    for p in &paths {
        let bytes = std::fs::read(p).unwrap();
        objects.push(read_object(&bytes).unwrap());
    }
    let exe = link(&objects, &Layout::default()).unwrap();
    let mut m = Machine::boot(&exe);
    assert_eq!(m.call(exe.entry, &[]).unwrap(), 7);

    std::fs::remove_dir_all(&dir).ok();
}
