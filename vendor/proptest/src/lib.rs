//! Offline shim for the subset of `proptest` this workspace uses.
//!
//! Same surface syntax (`proptest!`, `prop_oneof!`, `Strategy`,
//! `prop_map`, `prop_recursive`, `collection::vec`, `any::<T>()`,
//! `prop_assert*!`), but a much simpler engine: every test case is
//! generated from a deterministic per-case RNG and there is **no
//! shrinking** — a failure reports the case index, which regenerates
//! the same inputs on every run. That trade-off keeps the harness
//! dependency-free so the workspace builds in an offline container.

use std::rc::Rc;

pub mod test_runner {
    //! Deterministic case RNG and the error type `prop_assert*` returns.

    /// Error raised by a failing property (via `prop_assert!` etc.).
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// The property was falsified.
        Fail(String),
        /// The input was rejected (unused by this shim, kept for parity).
        Reject(String),
    }

    impl TestCaseError {
        /// Creates a falsification error.
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(msg.into())
        }

        /// Creates a rejection error.
        pub fn reject(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Reject(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
            }
        }
    }

    impl std::error::Error for TestCaseError {}

    /// SplitMix64 generator; one instance per test case, seeded from the
    /// case index so failures are reproducible by case number alone.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        x: u64,
    }

    impl TestRng {
        /// The deterministic generator for case `case` of a property.
        pub fn for_case(case: u32) -> TestRng {
            TestRng {
                x: (case as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1B5_4A32_D192_ED03,
            }
        }

        /// Next 64 raw random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.x = self.x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform-ish value in `0..n` (`n > 0`).
        pub fn below(&mut self, n: u64) -> u64 {
            self.next_u64() % n
        }
    }
}

use test_runner::TestRng;

/// Configuration for a `proptest!` block; only `cases` is honored.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Unused by the shim (parity with upstream).
    pub max_shrink_iters: u32,
    /// Unused by the shim (parity with upstream).
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
            max_global_rejects: 1024,
        }
    }
}

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value from the deterministic case RNG.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> strategy::Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        strategy::Map { inner: self, f }
    }

    /// Builds a bounded-depth recursive strategy: `recurse` receives a
    /// strategy for the shallower levels and returns the composite one.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut cur = leaf.clone();
        for _ in 0..depth {
            let deeper = recurse(cur).boxed();
            cur = strategy::Union::new(vec![(2, leaf.clone()), (3, deeper)]).boxed();
        }
        cur
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

trait DynStrategy<T> {
    fn dyn_generate(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, reference-counted [`Strategy`].
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> BoxedStrategy<T> {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T: 'static> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.dyn_generate(rng)
    }
}

/// A strategy that always yields a clone of its value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub mod arbitrary {
    //! The `Arbitrary` trait behind `any::<T>()`.

    use super::test_runner::TestRng;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Generates an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

/// Marker strategy returned by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T> Clone for AnyStrategy<T> {
    fn clone(&self) -> AnyStrategy<T> {
        AnyStrategy(std::marker::PhantomData)
    }
}

impl<T: arbitrary::Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`: `any::<u8>()`, `any::<bool>()`, ...
pub fn any<T: arbitrary::Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

pub mod strategy {
    //! Combinator strategy types (`Map`, `Union`) and range/tuple impls.

    use super::test_runner::TestRng;
    use super::{BoxedStrategy, Strategy};

    /// Result of [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Weighted choice among same-valued strategies (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
    }

    impl<T> Union<T> {
        /// Builds a union from `(weight, strategy)` arms.
        pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Union<T> {
            Union {
                arms: self.arms.clone(),
            }
        }
    }

    impl<T: 'static> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let total: u64 = self.arms.iter().map(|(w, _)| *w as u64).sum();
            let mut pick = rng.below(total.max(1));
            for (w, s) in &self.arms {
                if pick < *w as u64 {
                    return s.generate(rng);
                }
                pick -= *w as u64;
            }
            self.arms[self.arms.len() - 1].1.generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    sample_inclusive(rng.next_u64(), self.start, self.end - 1)
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start() <= self.end(), "empty range strategy");
                    sample_inclusive(rng.next_u64(), *self.start(), *self.end())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    fn sample_inclusive<T>(bits: u64, lo: T, hi: T) -> T
    where
        T: Copy + TryInto<i128> + TryFrom<i128>,
        <T as TryInto<i128>>::Error: std::fmt::Debug,
        <T as TryFrom<i128>>::Error: std::fmt::Debug,
    {
        let lo_w: i128 = lo.try_into().unwrap();
        let hi_w: i128 = hi.try_into().unwrap();
        let span = hi_w - lo_w + 1;
        T::try_from(lo_w + (bits as i128).rem_euclid(span)).unwrap()
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($( self.$idx.generate(rng), )+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }
}

pub mod collection {
    //! Collection strategies (`vec`).

    use super::test_runner::TestRng;
    use super::Strategy;

    /// An inclusive length range for collection strategies.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    /// Strategy producing `Vec`s of `element` values.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `vec(strategy, 1..24)` — a vector with length drawn from the range.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo + 1) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate::arbitrary::Arbitrary;
    pub use crate::strategy::Union;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{any, BoxedStrategy, Just, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Weighted or unweighted choice among strategies with a common value
/// type. `prop_oneof![a, b]` or `prop_oneof![3 => a, 1 => b]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( (($weight) as u32, $crate::Strategy::boxed($strat)), )+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( (1u32, $crate::Strategy::boxed($strat)), )+
        ])
    };
}

/// Asserts a condition inside a property, failing the case (not
/// panicking directly) so the harness can report the case index.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (lhs, rhs) = (&$a, &$b);
        $crate::prop_assert!(
            *lhs == *rhs,
            "assertion failed: `{:?} == {:?}`",
            lhs,
            rhs
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$a, &$b);
        $crate::prop_assert!(
            *lhs == *rhs,
            "assertion failed: `{:?} == {:?}`: {}",
            lhs,
            rhs,
            format!($($fmt)+)
        );
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (lhs, rhs) = (&$a, &$b);
        $crate::prop_assert!(*lhs != *rhs, "assertion failed: `{:?} != {:?}`", lhs, rhs);
    }};
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident( $($arg:pat_param in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(case);
                    $( let $arg = $crate::Strategy::generate(&($strat), &mut __rng); )*
                    let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = result {
                        panic!(
                            "property `{}` failed at case {}/{}: {}\n\
                             (cases regenerate deterministically from the case index)",
                            stringify!($name), case, config.cases, e
                        );
                    }
                }
            }
        )*
    };
}

/// Declares deterministic property tests. Accepts an optional leading
/// `#![proptest_config(...)]` followed by `fn name(arg in strategy, ...)`
/// items, exactly like upstream proptest.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Debug, PartialEq)]
    enum Tree {
        Leaf(i8),
        Node(Box<Tree>, Box<Tree>),
    }

    fn depth(t: &Tree) -> u32 {
        match t {
            Tree::Leaf(_) => 0,
            Tree::Node(l, r) => 1 + depth(l).max(depth(r)),
        }
    }

    fn arb_tree() -> BoxedStrategy<Tree> {
        any::<i8>()
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 16, 2, |inner| {
                (inner.clone(), inner).prop_map(|(l, r)| Tree::Node(Box::new(l), Box::new(r)))
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        /// Ranges stay in bounds; tuples and maps compose.
        #[test]
        fn ranges_and_tuples(
            a in 0u8..16,
            b in 1u8..=15,
            (x, y) in (0i64..5, -8i64..8),
            v in crate::collection::vec(any::<u8>(), 0..32),
        ) {
            prop_assert!(a < 16);
            prop_assert!((1..=15).contains(&b));
            prop_assert!((0..5).contains(&x), "x={}", x);
            prop_assert!((-8..8).contains(&y));
            prop_assert!(v.len() < 32);
        }

        /// Recursion depth is bounded by the declared depth.
        #[test]
        fn recursive_depth_bounded(t in arb_tree()) {
            prop_assert!(depth(&t) <= 3, "depth {} tree {:?}", depth(&t), t);
        }

        /// Weighted oneof only produces listed alternatives.
        #[test]
        fn oneof_weighted(v in prop_oneof![3 => Just(1u8), 1 => Just(2u8)]) {
            prop_assert!(v == 1 || v == 2);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let s = crate::collection::vec(any::<u8>(), 4..8);
        let mut r1 = crate::test_runner::TestRng::for_case(5);
        let mut r2 = crate::test_runner::TestRng::for_case(5);
        assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failure_names_the_case() {
        proptest! {
            #![proptest_config(ProptestConfig { cases: 4, ..ProptestConfig::default() })]
            #[allow(unused)]
            fn always_fails(x in 0u8..4) {
                prop_assert!(x > 200);
            }
        }
        always_fails();
    }
}
