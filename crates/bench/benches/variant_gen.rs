//! §7.1 — the cost of the cross product: ahead-of-time compilation time
//! and image size as the number of referenced boolean switches grows
//! (variants double per switch). This is the build-time side of the
//! variant-explosion trade-off the explicit-domain attribute exists to
//! control.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use multiverse::mvc::Options;
use multiverse::Program;

/// A function referencing `n` boolean switches with distinguishable
/// per-assignment bodies (no merging).
fn source(n_switches: usize) -> String {
    let mut s = String::new();
    for i in 0..n_switches {
        s.push_str(&format!("multiverse bool s{i};\n"));
    }
    s.push_str("multiverse i64 f(void) {\n    i64 acc = 0;\n");
    for i in 0..n_switches {
        s.push_str(&format!("    if (s{i}) {{ acc = acc + {}; }}\n", 1 << i));
    }
    s.push_str("    return acc;\n}\ni64 main(void) { return 0; }\n");
    s
}

fn bench(c: &mut Criterion) {
    println!("## variant generation scaling (2^n variants)");
    for n in 1..=6 {
        let src = source(n);
        // `cache: false`: this experiment measures the real cost of the
        // cross product — a compile-cache hit would measure a lookup.
        let opts = Options {
            variant_limit: 128,
            cache: false,
            ..Options::default()
        };
        let t0 = std::time::Instant::now();
        let p = Program::build_with(&[("t.c", &src)], &opts).expect("build");
        let dt = t0.elapsed();
        println!(
            "  {n} switches: {:>3} variants, build {:>8.3} ms, image {:>7} B",
            1 << n,
            dt.as_secs_f64() * 1e3,
            p.image_size()
        );
    }
    println!();

    let mut g = c.benchmark_group("variant_gen");
    for n in [1usize, 3, 6] {
        let src = source(n);
        // `cache: false`: this experiment measures the real cost of the
        // cross product — a compile-cache hit would measure a lookup.
        let opts = Options {
            variant_limit: 128,
            cache: false,
            ..Options::default()
        };
        g.bench_with_input(BenchmarkId::new("build", 1usize << n), &n, |b, _| {
            b.iter(|| Program::build_with(&[("t.c", &src)], &opts).expect("build"))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    // Simulated workloads are deterministic; short sampling keeps the
    // full suite fast without changing any conclusion.
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(1));
    targets = bench
}
criterion_main!(benches);
