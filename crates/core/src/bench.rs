//! Benchmark support: shared measurement helpers used by the harness that
//! regenerates the paper's tables and figures.

use crate::program::{Timing, World};
use crate::BuildError;

/// One labelled measurement series (e.g. "Lock Elision \[multiverse\]").
#[derive(Clone, Debug)]
pub struct Series {
    /// Display label.
    pub label: String,
    /// `(x-label, value)` points.
    pub points: Vec<(String, f64)>,
}

impl Series {
    /// Creates an empty series.
    pub fn new(label: &str) -> Series {
        Series {
            label: label.to_string(),
            points: Vec::new(),
        }
    }

    /// Appends a point.
    pub fn point(&mut self, x: &str, v: f64) {
        self.points.push((x.to_string(), v));
    }
}

/// Renders series as an aligned text table, one row per series, one
/// column per x-label — the shape in which the paper's figures report
/// averages.
pub fn render_table(title: &str, series: &[Series]) -> String {
    let mut cols: Vec<String> = Vec::new();
    for s in series {
        for (x, _) in &s.points {
            if !cols.contains(x) {
                cols.push(x.clone());
            }
        }
    }
    let label_w = series
        .iter()
        .map(|s| s.label.len())
        .chain([8])
        .max()
        .unwrap_or(8);
    let col_w = cols.iter().map(|c| c.len()).chain([10]).max().unwrap_or(10) + 2;

    let mut out = String::new();
    out.push_str(&format!("## {title}\n"));
    out.push_str(&format!("{:label_w$}", ""));
    for c in &cols {
        out.push_str(&format!("{c:>col_w$}"));
    }
    out.push('\n');
    for s in series {
        out.push_str(&format!("{:label_w$}", s.label));
        for c in &cols {
            match s.points.iter().find(|(x, _)| x == c) {
                Some((_, v)) => out.push_str(&format!("{v:>col_w$.2}")),
                None => out.push_str(&format!("{:>col_w$}", "-")),
            }
        }
        out.push('\n');
    }
    out
}

/// Measures `func` in `world` with the standard §6 protocol and returns
/// the timing.
pub fn measure(
    world: &mut World,
    func: &str,
    args: &[u64],
    iterations: u64,
) -> Result<Timing, BuildError> {
    world.time_calls(func, args, iterations, false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut a = Series::new("No Lock Elision");
        a.point("Unicore", 28.9);
        a.point("Multicore", 28.8);
        let mut b = Series::new("Lock Elision [multiverse]");
        b.point("Unicore", 7.5);
        b.point("Multicore", 28.9);
        let t = render_table("Fig. 4 (left)", &[a, b]);
        assert!(t.contains("Unicore"));
        assert!(t.contains("28.90"));
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[2].len(), lines[3].len(), "aligned columns");
    }

    #[test]
    fn missing_points_show_dash() {
        let mut a = Series::new("x");
        a.point("A", 1.0);
        let mut b = Series::new("y");
        b.point("B", 2.0);
        let t = render_table("t", &[a, b]);
        assert!(t.contains('-'));
    }
}
