//! The §6.2.3 grep scenario: the multibyte-locale mode is fixed after
//! startup; committing the specialized matcher wins a small end-to-end
//! margin on the whole search.
//!
//! ```sh
//! cargo run --release --example grep_mode
//! ```

use mv_workloads::grep::{boot, run, GrepBuild};
use mv_workloads::textgen;

fn main() {
    let corpus = textgen::hex_corpus(262_144, 2019);
    let reference = textgen::count_a_any_a(&corpus);
    println!(
        "corpus: {} bytes of hexadecimal-formatted random numbers, pattern `a.a`",
        corpus.len()
    );

    let mut without = boot(GrepBuild::Without, &corpus, false).unwrap();
    let (matches_a, cycles_a) = run(&mut without, corpus.len()).unwrap();

    let mut with = boot(GrepBuild::With, &corpus, false).unwrap();
    let (matches_b, cycles_b) = run(&mut with, corpus.len()).unwrap();

    assert_eq!(matches_a, reference, "matcher agrees with the Rust oracle");
    assert_eq!(matches_a, matches_b, "soundness: same matches either way");

    println!("matches found: {matches_a}");
    println!("w/o multiverse: {cycles_a:>12} cycles");
    println!("w/  multiverse: {cycles_b:>12} cycles");
    println!(
        "improvement:    {:>11.2} %   (paper: 2.73 % on 2 GiB)",
        (1.0 - cycles_b as f64 / cycles_a as f64) * 100.0
    );

    // The same binary handles a UTF-8 locale by re-committing the mode —
    // no rebuild, no restart.
    let utf8_corpus = b"gr\xC3\xBCn axa bl\xC3\xA4ulich axa\n".repeat(64);
    let mut w = boot(GrepBuild::With, &utf8_corpus, true).unwrap();
    let (mb_matches, _) = run(&mut w, utf8_corpus.len()).unwrap();
    println!("\nmultibyte locale, UTF-8 corpus: {mb_matches} matches (mb-aware matcher committed)");
}
