//! The semi-symbolic value lattice.
//!
//! A [`Val`] is either fully concrete or a tabulated function of exactly
//! **one** switch. The one-switch restriction is the load-bearing design
//! decision: it keeps every operation a small table zip, it keeps joins
//! decidable in one pass, and any computation that would entangle two
//! switches is forced through a materializing split first (see
//! [`crate::engine`]), after which each child sees the first switch as
//! concrete again.

use crate::config::{ConfigSpace, LeafSet};

/// A value as seen by the variational interpreter.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Val {
    /// The same 64-bit value in every live configuration.
    Concrete(u64),
    /// A function of one switch: `vals` maps the switch's domain-value
    /// *indices* to 64-bit values. Invariants (maintained by
    /// [`Val::per_value`]): sorted by index, at least two entries, not
    /// all entries equal.
    PerValue {
        /// Index of the switch in the [`ConfigSpace`].
        sw: usize,
        /// `(value_index, value)` pairs, sorted by `value_index`.
        vals: Vec<(usize, u64)>,
    },
}

/// Why a binary operation could not stay variational: the operands
/// depend on different switches, so the context must split on `sw`
/// (materializing that switch to a concrete value per child) before the
/// instruction can retire.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NeedSplit {
    /// The switch to materialize.
    pub sw: usize,
}

impl Val {
    /// Builds a normalized value: a single entry, or all-equal entries,
    /// collapse to [`Val::Concrete`].
    pub fn per_value(sw: usize, mut vals: Vec<(usize, u64)>) -> Val {
        vals.sort_unstable_by_key(|&(i, _)| i);
        debug_assert!(!vals.is_empty(), "per_value needs at least one entry");
        if vals.iter().all(|&(_, v)| v == vals[0].1) {
            return Val::Concrete(vals[0].1);
        }
        Val::PerValue { sw, vals }
    }

    /// The concrete value, if configuration-independent.
    pub fn as_concrete(&self) -> Option<u64> {
        match self {
            Val::Concrete(v) => Some(*v),
            Val::PerValue { .. } => None,
        }
    }

    /// The switch this value depends on, if any.
    pub fn switch(&self) -> Option<usize> {
        match self {
            Val::Concrete(_) => None,
            Val::PerValue { sw, .. } => Some(*sw),
        }
    }

    /// Evaluates the value at one leaf configuration.
    pub fn at(&self, space: &ConfigSpace, leaf: usize) -> u64 {
        match self {
            Val::Concrete(v) => *v,
            Val::PerValue { sw, vals } => {
                let idx = space.digit(leaf, *sw);
                vals.iter()
                    .find(|&&(i, _)| i == idx)
                    .map(|&(_, v)| v)
                    .expect("leaf outside the value's live digits")
            }
        }
    }

    /// Applies a pure function pointwise.
    pub fn map(&self, f: impl Fn(u64) -> u64) -> Val {
        match self {
            Val::Concrete(v) => Val::Concrete(f(*v)),
            Val::PerValue { sw, vals } => {
                Val::per_value(*sw, vals.iter().map(|&(i, v)| (i, f(v))).collect())
            }
        }
    }

    /// Combines two values pointwise. Fails with [`NeedSplit`] when the
    /// operands depend on different switches (or on the same switch with
    /// mismatched live digits, which only arises transiently and is
    /// resolved the same way — by materializing).
    pub fn zip(a: &Val, b: &Val, f: impl Fn(u64, u64) -> u64) -> Result<Val, NeedSplit> {
        match (a, b) {
            (Val::Concrete(x), Val::Concrete(y)) => Ok(Val::Concrete(f(*x, *y))),
            (Val::PerValue { .. }, Val::Concrete(y)) => Ok(a.map(|x| f(x, *y))),
            (Val::Concrete(x), Val::PerValue { .. }) => Ok(b.map(|y| f(*x, y))),
            (Val::PerValue { sw: s1, vals: v1 }, Val::PerValue { sw: s2, vals: v2 }) => {
                if s1 != s2 || v1.len() != v2.len() {
                    return Err(NeedSplit { sw: *s1 });
                }
                let mut out = Vec::with_capacity(v1.len());
                for (&(i1, x), &(i2, y)) in v1.iter().zip(v2) {
                    if i1 != i2 {
                        return Err(NeedSplit { sw: *s1 });
                    }
                    out.push((i1, f(x, y)));
                }
                Ok(Val::per_value(*s1, out))
            }
        }
    }

    /// Restricts the value to the configurations in `leaves`, dropping
    /// dead table entries (and collapsing to concrete when one remains).
    pub fn restrict(&self, space: &ConfigSpace, leaves: &LeafSet) -> Val {
        match self {
            Val::Concrete(_) => self.clone(),
            Val::PerValue { sw, vals } => {
                let kept: Vec<(usize, u64)> = vals
                    .iter()
                    .filter(|&&(i, _)| !space.mask(*sw, i).is_disjoint(leaves))
                    .copied()
                    .collect();
                debug_assert!(!kept.is_empty(), "restriction emptied a value table");
                Val::per_value(*sw, kept)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SwitchDomain;

    fn space() -> ConfigSpace {
        ConfigSpace::new(vec![
            SwitchDomain {
                name: "a".into(),
                addr: 0x100,
                width: 4,
                signed: true,
                values: vec![0, 3, 7],
            },
            SwitchDomain {
                name: "b".into(),
                addr: 0x200,
                width: 4,
                signed: true,
                values: vec![0, 1],
            },
        ])
        .unwrap()
    }

    #[test]
    fn normalization_collapses_uniform_tables() {
        assert_eq!(
            Val::per_value(0, vec![(0, 5), (1, 5), (2, 5)]),
            Val::Concrete(5)
        );
        assert_eq!(Val::per_value(0, vec![(2, 9)]), Val::Concrete(9));
        assert!(matches!(
            Val::per_value(0, vec![(0, 1), (1, 2)]),
            Val::PerValue { .. }
        ));
    }

    #[test]
    fn at_reads_the_right_digit() {
        let s = space();
        let v = Val::per_value(0, vec![(0, 10), (1, 20), (2, 30)]);
        assert_eq!(v.at(&s, 0), 10); // a=0
        assert_eq!(v.at(&s, 1), 20); // a=3
        assert_eq!(v.at(&s, 5), 30); // a=7, b=1
        assert_eq!(Val::Concrete(7).at(&s, 4), 7);
    }

    #[test]
    fn zip_same_switch_is_pointwise() {
        let a = Val::per_value(0, vec![(0, 1), (1, 2), (2, 3)]);
        let b = Val::per_value(0, vec![(0, 10), (1, 20), (2, 30)]);
        let sum = Val::zip(&a, &b, |x, y| x + y).unwrap();
        assert_eq!(sum, Val::per_value(0, vec![(0, 11), (1, 22), (2, 33)]));
    }

    #[test]
    fn zip_mixed_switches_needs_split() {
        let a = Val::per_value(0, vec![(0, 1), (1, 2)]);
        let b = Val::per_value(1, vec![(0, 10), (1, 20)]);
        assert_eq!(Val::zip(&a, &b, |x, y| x + y), Err(NeedSplit { sw: 0 }));
    }

    #[test]
    fn restrict_drops_dead_digits() {
        let s = space();
        let v = Val::per_value(0, vec![(0, 10), (1, 20), (2, 30)]);
        // Only a=3 leaves live.
        let r = v.restrict(&s, s.mask(0, 1));
        assert_eq!(r, Val::Concrete(20));
        // a∈{0,7} live.
        let set = s.mask(0, 0).union(s.mask(0, 2));
        assert_eq!(
            v.restrict(&s, &set),
            Val::per_value(0, vec![(0, 10), (2, 30)])
        );
    }
}
