//! Patching statistics — the §6.1 accounting (1161 call sites, ≈16 ms
//! patch time, descriptor overhead).

use std::time::Duration;

/// Counters accumulated across commits and reverts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PatchStats {
    /// Call sites whose target was rewritten.
    pub sites_patched: u64,
    /// Call sites where a variant body was inlined.
    pub sites_inlined: u64,
    /// Entry jumps written over generic prologues.
    pub entry_jumps: u64,
    /// Prologues restored by reverts.
    pub prologues_restored: u64,
    /// Total bytes written into the text segment.
    pub bytes_written: u64,
    /// `mprotect` invocations (two per patched range: unlock + relock).
    pub mprotects: u64,
    /// Instruction-cache flushes.
    pub icache_flushes: u64,
    /// Functions committed to a specialized variant.
    pub committed_variants: u64,
    /// Functions that fell back to the generic body because no variant's
    /// guards admitted the current configuration (Fig. 3 d).
    pub generic_fallbacks: u64,
    /// Undo-log entries recorded by journaled apply phases.
    pub journal_entries: u64,
    /// Bytes covered by journal entries.
    pub journal_bytes: u64,
    /// Apply phases that failed and were rolled back successfully.
    pub rollbacks: u64,
    /// Transactions re-attempted after a transient fault.
    pub retries: u64,
}

impl PatchStats {
    /// Difference `self - earlier`.
    pub fn since(&self, earlier: &PatchStats) -> PatchStats {
        PatchStats {
            sites_patched: self.sites_patched - earlier.sites_patched,
            sites_inlined: self.sites_inlined - earlier.sites_inlined,
            entry_jumps: self.entry_jumps - earlier.entry_jumps,
            prologues_restored: self.prologues_restored - earlier.prologues_restored,
            bytes_written: self.bytes_written - earlier.bytes_written,
            mprotects: self.mprotects - earlier.mprotects,
            icache_flushes: self.icache_flushes - earlier.icache_flushes,
            committed_variants: self.committed_variants - earlier.committed_variants,
            generic_fallbacks: self.generic_fallbacks - earlier.generic_fallbacks,
            journal_entries: self.journal_entries - earlier.journal_entries,
            journal_bytes: self.journal_bytes - earlier.journal_bytes,
            rollbacks: self.rollbacks - earlier.rollbacks,
            retries: self.retries - earlier.retries,
        }
    }
}

/// Timing of one commit/revert operation, measured on the host.
#[derive(Clone, Copy, Debug, Default)]
pub struct PatchTiming {
    /// Wall-clock time the operation took.
    pub elapsed: Duration,
    /// Call sites visited.
    pub sites: u64,
}
