//! Calling conventions.
//!
//! §6.1 of the paper traces a measurable PV-Ops slowdown to the kernel's
//! *custom* PV-Ops calling convention, which "has no volatile (or scratch)
//! registers, i.e. all registers have to be saved and restored by the
//! callee". Multiverse variants instead use the standard convention, where
//! registers the caller does not live across the call cost nothing. Both
//! conventions are modelled here; the compiler selects one per function.

use crate::reg::Reg;

/// A calling convention for MV64 functions.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CallConv {
    /// The standard System-V-like convention: `r0`..`r5` argument registers
    /// (caller-saved, `r0` returns), `r12`/`r13` caller-saved scratch,
    /// `r6`..`r11` and `bp` callee-saved.
    Standard,
    /// The PV-Ops convention: **every** register except the return register
    /// is callee-saved. The callee must save/restore each register it
    /// clobbers, even when the caller holds nothing live — the source of
    /// the overhead the paper measured in the Xen guest.
    PvOps,
}

impl CallConv {
    /// Registers available for passing arguments, in order.
    pub fn arg_regs(self) -> &'static [Reg] {
        &[Reg::R0, Reg::R1, Reg::R2, Reg::R3, Reg::R4, Reg::R5]
    }

    /// The return-value register.
    pub fn ret_reg(self) -> Reg {
        Reg::R0
    }

    /// `true` if the callee must preserve `r` when clobbering it.
    pub fn is_callee_saved(self, r: Reg) -> bool {
        match self {
            CallConv::Standard => matches!(r.index(), 6..=11) || r == Reg::BP,
            // Everything but the return register (and sp, which is always
            // preserved structurally) must survive the call.
            CallConv::PvOps => r != Reg::R0 && r != Reg::SP,
        }
    }

    /// Registers a *caller* must assume clobbered across a call.
    pub fn caller_clobbered(self) -> Vec<Reg> {
        Reg::all()
            .filter(|&r| r != Reg::SP && !self.is_callee_saved(r))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_callee_saved_set() {
        let cc = CallConv::Standard;
        assert!(!cc.is_callee_saved(Reg::R0));
        assert!(!cc.is_callee_saved(Reg::R5));
        assert!(cc.is_callee_saved(Reg::R6));
        assert!(cc.is_callee_saved(Reg::R11));
        assert!(!cc.is_callee_saved(Reg::R12));
        assert!(cc.is_callee_saved(Reg::BP));
        assert!(!cc.is_callee_saved(Reg::SP));
    }

    #[test]
    fn pvops_saves_everything_but_ret() {
        let cc = CallConv::PvOps;
        assert!(!cc.is_callee_saved(Reg::R0));
        for i in 1..15 {
            assert!(cc.is_callee_saved(Reg::new(i).unwrap()), "r{i}");
        }
    }

    #[test]
    fn pvops_caller_sees_almost_nothing_clobbered() {
        assert_eq!(CallConv::PvOps.caller_clobbered(), vec![Reg::R0]);
        let std = CallConv::Standard.caller_clobbered();
        assert!(std.contains(&Reg::R1));
        assert!(std.contains(&Reg::R12));
        assert!(!std.contains(&Reg::R6));
    }
}
