//! The linker: section concatenation, layout, symbol resolution and
//! relocation.

use crate::image::{Executable, Segment};
use crate::object::Object;
use crate::reloc::RelocKind;
use crate::section::SectionKind;
use std::collections::HashMap;
use std::fmt;

/// Address-space layout parameters.
#[derive(Clone, Copy, Debug)]
pub struct Layout {
    /// Base address of the first (text) section.
    pub text_base: u64,
    /// Page size; every output section starts on a page boundary so that
    /// `mprotect` on the text segment never affects data.
    pub page_size: u64,
}

impl Default for Layout {
    fn default() -> Layout {
        Layout {
            text_base: 0x0001_0000,
            page_size: 4096,
        }
    }
}

/// Linking errors.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum LinkError {
    /// A global symbol is defined in more than one object.
    DuplicateSymbol(String),
    /// A referenced symbol is defined nowhere.
    UndefinedSymbol(String),
    /// A `rel32` field cannot reach its target.
    RelocOutOfRange(String),
    /// No `main` entry symbol.
    NoEntry,
    /// A relocation points outside its section.
    BadRelocOffset(String),
}

impl fmt::Display for LinkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkError::DuplicateSymbol(s) => write!(f, "duplicate global symbol `{s}`"),
            LinkError::UndefinedSymbol(s) => write!(f, "undefined symbol `{s}`"),
            LinkError::RelocOutOfRange(s) => write!(f, "rel32 out of range for `{s}`"),
            LinkError::NoEntry => write!(f, "no `main` entry symbol"),
            LinkError::BadRelocOffset(s) => write!(f, "relocation outside section for `{s}`"),
        }
    }
}

impl std::error::Error for LinkError {}

/// Section output order: text first, then read-only data (descriptors),
/// initialized data, and BSS last.
fn kind_rank(kind: SectionKind) -> u32 {
    match kind {
        SectionKind::Text => 0,
        SectionKind::Rodata => 1,
        SectionKind::Data => 2,
        SectionKind::Bss => 3,
    }
}

/// Links `objects` into an executable image.
///
/// Same-named sections from all objects are concatenated in object order
/// (this is what turns the per-TU descriptor fragments into the contiguous
/// descriptor arrays the run-time library walks), global symbols are
/// resolved across objects, and relocations are applied.
///
/// # Examples
///
/// ```
/// use mvobj::{link, Layout, Object, Section, SectionKind, Symbol};
///
/// let mut o = Object::new("tu0");
/// o.append(".text", SectionKind::Text, &mvasm::encode(&mvasm::Insn::Halt));
/// o.define(Symbol::func("main", ".text", 0, 1));
/// let exe = link(&[o], &Layout::default()).unwrap();
/// assert_eq!(exe.entry, 0x10000);
/// ```
pub fn link(objects: &[Object], layout: &Layout) -> Result<Executable, LinkError> {
    // Pass 1: collect output sections (name → kind, chunk offsets).
    struct OutSec {
        kind: SectionKind,
        bytes: Vec<u8>,
        // (object index) → base offset of that object's chunk.
        chunk_base: HashMap<usize, u64>,
        mem_size: u64,
    }

    let mut order: Vec<String> = Vec::new();
    let mut secs: HashMap<String, OutSec> = HashMap::new();
    for (oi, obj) in objects.iter().enumerate() {
        for sec in &obj.sections {
            let out = secs.entry(sec.name.clone()).or_insert_with(|| {
                order.push(sec.name.clone());
                OutSec {
                    kind: sec.kind,
                    bytes: Vec::new(),
                    chunk_base: HashMap::new(),
                    mem_size: 0,
                }
            });
            let align = sec.align.max(1);
            let base = out.mem_size.next_multiple_of(align);
            if sec.kind != SectionKind::Bss {
                out.bytes.resize(base as usize, 0);
                out.bytes.extend_from_slice(&sec.bytes);
            }
            out.chunk_base.insert(oi, base);
            out.mem_size = base + sec.mem_size();
        }
    }

    // Stable layout: group by kind rank, keep first-seen order within rank.
    order.sort_by_key(|n| kind_rank(secs[n].kind));

    // Pass 2: assign addresses, each section page-aligned.
    let mut addr = layout.text_base;
    let mut sec_addr: HashMap<String, u64> = HashMap::new();
    let mut sections_meta = HashMap::new();
    for name in &order {
        let s = &secs[name];
        addr = addr.next_multiple_of(layout.page_size);
        sec_addr.insert(name.clone(), addr);
        sections_meta.insert(name.clone(), (addr, s.mem_size));
        addr += s.mem_size.max(1);
    }

    // Pass 3: symbol resolution.
    let mut globals: HashMap<String, u64> = HashMap::new();
    let mut locals: Vec<HashMap<String, u64>> = vec![HashMap::new(); objects.len()];
    for (oi, obj) in objects.iter().enumerate() {
        for sym in &obj.symbols {
            let Some(base) = sec_addr.get(&sym.section) else {
                return Err(LinkError::UndefinedSymbol(format!(
                    "{} (section {} missing)",
                    sym.name, sym.section
                )));
            };
            let chunk = secs[&sym.section].chunk_base[&oi];
            let a = base + chunk + sym.offset;
            if sym.global {
                if globals.insert(sym.name.clone(), a).is_some() {
                    return Err(LinkError::DuplicateSymbol(sym.name.clone()));
                }
            } else {
                locals[oi].insert(sym.name.clone(), a);
            }
        }
    }

    // Pass 4: relocations.
    for (oi, obj) in objects.iter().enumerate() {
        for rel in &obj.relocs {
            let sym_addr = locals[oi]
                .get(&rel.symbol)
                .or_else(|| globals.get(&rel.symbol))
                .copied()
                .ok_or_else(|| LinkError::UndefinedSymbol(rel.symbol.clone()))?;
            let out = secs.get_mut(&rel.section).ok_or_else(|| {
                LinkError::BadRelocOffset(format!("{} (no section {})", rel.symbol, rel.section))
            })?;
            let chunk = out.chunk_base[&oi];
            let value = sym_addr as i64 + rel.addend;
            let field = (chunk + rel.offset) as usize;
            match rel.kind {
                RelocKind::Abs64 => {
                    let end = field + 8;
                    if end > out.bytes.len() {
                        return Err(LinkError::BadRelocOffset(rel.symbol.clone()));
                    }
                    out.bytes[field..end].copy_from_slice(&(value as u64).to_le_bytes());
                }
                RelocKind::Rel32 { next_insn } => {
                    let pc_next = sec_addr[&rel.section] + chunk + next_insn;
                    let disp = value - pc_next as i64;
                    let disp32 = i32::try_from(disp)
                        .map_err(|_| LinkError::RelocOutOfRange(rel.symbol.clone()))?;
                    let end = field + 4;
                    if end > out.bytes.len() {
                        return Err(LinkError::BadRelocOffset(rel.symbol.clone()));
                    }
                    out.bytes[field..end].copy_from_slice(&disp32.to_le_bytes());
                }
            }
        }
    }

    // Pass 5: emit segments.
    let mut segments = Vec::new();
    for name in &order {
        let s = &secs[name];
        let mut bytes = s.bytes.clone();
        bytes.resize(s.mem_size as usize, 0);
        segments.push(Segment {
            addr: sec_addr[name],
            prot: s.kind.prot(),
            bytes,
            name: name.clone(),
        });
    }

    let entry = *globals.get("main").ok_or(LinkError::NoEntry)?;
    Ok(Executable {
        segments,
        symbols: globals,
        sections: sections_meta,
        entry,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reloc::Reloc;
    use crate::symbol::Symbol;
    use mvasm::{decode, Insn, Reg};

    fn text_obj(name: &str, code: &[u8]) -> Object {
        let mut o = Object::new(name);
        o.append(crate::SEC_TEXT, SectionKind::Text, code);
        o
    }

    #[test]
    fn cross_tu_call_is_relocated() {
        // tu0: main calls `callee` (defined in tu1).
        let mut code = mvasm::encode(&Insn::CallRel { rel: 0 });
        code.extend(mvasm::encode(&Insn::Halt));
        let mut tu0 = text_obj("tu0", &code);
        tu0.define(Symbol::func("main", crate::SEC_TEXT, 0, code.len() as u64));
        tu0.relocate(Reloc {
            section: crate::SEC_TEXT.into(),
            offset: 1,
            kind: RelocKind::Rel32 { next_insn: 5 },
            symbol: "callee".into(),
            addend: 0,
        });

        let callee = mvasm::encode(&Insn::Ret);
        let mut tu1 = text_obj("tu1", &callee);
        tu1.define(Symbol::func("callee", crate::SEC_TEXT, 0, 1));

        let exe = link(&[tu0, tu1], &Layout::default()).unwrap();
        let text = &exe.segments[0];
        let (insn, len) = decode(&text.bytes).unwrap();
        let Insn::CallRel { rel } = insn else {
            panic!("expected call")
        };
        let target = text.addr + len as u64 + rel as u64;
        assert_eq!(target, exe.symbol("callee").unwrap());
    }

    #[test]
    fn descriptor_sections_concatenate_in_object_order() {
        let mut tu0 = text_obj("tu0", &mvasm::encode(&Insn::Halt));
        tu0.define(Symbol::func("main", crate::SEC_TEXT, 0, 1));
        tu0.append(crate::SEC_MV_CALLSITES, SectionKind::Rodata, &[0xAA; 16]);
        let mut tu1 = Object::new("tu1");
        tu1.append(crate::SEC_MV_CALLSITES, SectionKind::Rodata, &[0xBB; 16]);

        let exe = link(&[tu0, tu1], &Layout::default()).unwrap();
        let (addr, size) = exe.section(crate::SEC_MV_CALLSITES);
        assert_eq!(size, 32);
        let seg = exe
            .segments
            .iter()
            .find(|s| s.name == crate::SEC_MV_CALLSITES)
            .unwrap();
        assert_eq!(seg.addr, addr);
        assert_eq!(&seg.bytes[..16], &[0xAA; 16]);
        assert_eq!(&seg.bytes[16..], &[0xBB; 16]);
    }

    #[test]
    fn duplicate_global_rejected() {
        let mut tu0 = text_obj("tu0", &mvasm::encode(&Insn::Halt));
        tu0.define(Symbol::func("main", crate::SEC_TEXT, 0, 1));
        let mut tu1 = text_obj("tu1", &mvasm::encode(&Insn::Halt));
        tu1.define(Symbol::func("main", crate::SEC_TEXT, 0, 1));
        assert_eq!(
            link(&[tu0, tu1], &Layout::default()).unwrap_err(),
            LinkError::DuplicateSymbol("main".into())
        );
    }

    #[test]
    fn undefined_symbol_rejected() {
        let mut tu0 = text_obj("tu0", &mvasm::encode(&Insn::CallRel { rel: 0 }));
        tu0.define(Symbol::func("main", crate::SEC_TEXT, 0, 5));
        tu0.relocate(Reloc {
            section: crate::SEC_TEXT.into(),
            offset: 1,
            kind: RelocKind::Rel32 { next_insn: 5 },
            symbol: "ghost".into(),
            addend: 0,
        });
        assert_eq!(
            link(&[tu0], &Layout::default()).unwrap_err(),
            LinkError::UndefinedSymbol("ghost".into())
        );
    }

    #[test]
    fn local_symbols_do_not_collide_across_objects() {
        let mk = |tu: &str| {
            let mut o = Object::new(tu);
            o.append(
                crate::SEC_TEXT,
                SectionKind::Text,
                &mvasm::encode(&Insn::Halt),
            );
            o.define(Symbol::func("helper", crate::SEC_TEXT, 0, 1).local());
            o
        };
        let mut tu0 = mk("tu0");
        tu0.define(Symbol::func("main", crate::SEC_TEXT, 0, 1));
        let tu1 = mk("tu1");
        assert!(link(&[tu0, tu1], &Layout::default()).is_ok());
    }

    #[test]
    fn abs64_reloc_into_data() {
        let mut tu0 = text_obj("tu0", &mvasm::encode(&Insn::Halt));
        tu0.define(Symbol::func("main", crate::SEC_TEXT, 0, 1));
        tu0.define_data_ptr("ptr", "main");
        let exe = link(&[tu0], &Layout::default()).unwrap();
        let data = exe
            .segments
            .iter()
            .find(|s| s.name == crate::SEC_DATA)
            .unwrap();
        let v = u64::from_le_bytes(data.bytes[..8].try_into().unwrap());
        assert_eq!(v, exe.entry);
    }

    #[test]
    fn sections_are_page_separated() {
        let mut tu0 = text_obj("tu0", &mvasm::encode(&Insn::Halt));
        tu0.define(Symbol::func("main", crate::SEC_TEXT, 0, 1));
        tu0.define_bss("g", 8);
        tu0.define_data("d", &[1, 2, 3, 4]);
        let exe = link(&[tu0, Object::new("tu1")], &Layout::default()).unwrap();
        for w in exe.segments.windows(2) {
            assert!(w[1].addr >= w[0].addr + w[0].bytes.len() as u64);
            assert_eq!(w[1].addr % 4096, 0);
        }
    }

    #[test]
    fn text_loads_rx_and_data_rw() {
        let mut tu0 = text_obj("tu0", &mvasm::encode(&Insn::Halt));
        tu0.define(Symbol::func("main", crate::SEC_TEXT, 0, 1));
        tu0.define_data("d", &[0; 8]);
        let exe = link(&[tu0], &Layout::default()).unwrap();
        let text = exe.segments.iter().find(|s| s.name == ".text").unwrap();
        assert!(text.prot.exec && !text.prot.write);
        let data = exe.segments.iter().find(|s| s.name == ".data").unwrap();
        assert!(data.prot.write && !data.prot.exec);
    }

    #[test]
    fn symbolize_finds_enclosing_function() {
        let mut code = mvasm::encode(&Insn::MovRI {
            dst: Reg::R0,
            imm: 0,
        });
        code.extend(mvasm::encode(&Insn::Halt));
        let mut tu0 = text_obj("tu0", &code);
        tu0.define(Symbol::func("main", crate::SEC_TEXT, 0, code.len() as u64));
        let exe = link(&[tu0], &Layout::default()).unwrap();
        let (name, off) = exe.symbolize(exe.entry + 10).unwrap();
        assert_eq!((name, off), ("main", 10));
    }
}
