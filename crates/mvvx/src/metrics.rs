//! The `mv_vexec_*` metric family.

use crate::engine::VexecStats;
use mvmetrics::{Counter, Gauge, Registry};

/// Handles to the vexec counters in a [`Registry`]. Registration is
/// idempotent (the registry deduplicates by name), so it is fine to
/// build this per pass.
pub struct VexecMetrics {
    splits: Counter,
    joins: Counter,
    leaves: Counter,
    steps: Counter,
    enum_equiv: Counter,
    max_live: Counter,
    shared_prefix_ratio: Gauge,
}

impl VexecMetrics {
    /// Registers (or retrieves) the family.
    pub fn register(reg: &Registry) -> VexecMetrics {
        VexecMetrics {
            splits: reg.counter(
                "mv_vexec_splits_total",
                "Context splits during variational execution",
            ),
            joins: reg.counter(
                "mv_vexec_joins_total",
                "Context joins during variational execution",
            ),
            leaves: reg.counter(
                "mv_vexec_leaves_total",
                "Leaf configurations covered by vexec passes",
            ),
            steps: reg.counter(
                "mv_vexec_shared_steps_total",
                "Shared interpreter steps executed by vexec passes",
            ),
            enum_equiv: reg.counter(
                "mv_vexec_enum_equiv_insns_total",
                "Instructions enumerate-and-rerun would have executed",
            ),
            max_live: reg.counter(
                "mv_vexec_max_live_deltas",
                "High-water mark of simultaneously live per-config deltas",
            ),
            shared_prefix_ratio: reg.gauge(
                "mv_vexec_shared_prefix_ratio",
                "Enumeration-equivalent instructions per shared step (last pass)",
            ),
        }
    }

    /// Folds one pass's accounting into the registry.
    pub fn record(&self, stats: &VexecStats) {
        self.splits.add(stats.splits);
        self.joins.add(stats.joins);
        self.leaves.add(stats.leaf_count);
        self.steps.add(stats.steps);
        self.enum_equiv.add(stats.enum_equiv_insns);
        self.max_live.store_max(stats.max_live);
        self.shared_prefix_ratio.set(stats.shared_prefix_ratio());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_into_registry() {
        let reg = Registry::new();
        reg.set_enabled(true);
        let m = VexecMetrics::register(&reg);
        let stats = VexecStats {
            steps: 10,
            enum_equiv_insns: 60,
            splits: 2,
            joins: 1,
            leaf_count: 6,
            max_live: 3,
            contexts_spawned: 4,
        };
        m.record(&stats);
        assert_eq!(m.splits.get(), 2);
        assert_eq!(m.joins.get(), 1);
        assert_eq!(m.leaves.get(), 6);
        assert_eq!(m.max_live.get(), 3);
        assert!((m.shared_prefix_ratio.get() - 6.0).abs() < 1e-9);
    }
}
