//! Concurrent commit: quiescing an SMP machine around a transaction.
//!
//! On a single core, `multiverse_commit()` can patch text between two
//! instructions and nothing can observe the intermediate state. With
//! true SMP execution ([`SmpMachine`]) the other vCPUs keep fetching
//! while the runtime writes, and two hazards appear — exactly the
//! cross-modifying-code hazards the kernel's `text_poke` machinery
//! exists for:
//!
//! * a vCPU whose `pc` (or a saved return address) points strictly
//!   *inside* a byte range the commit rewrites resumes in the middle of
//!   the new instruction — a torn fetch;
//! * a vCPU whose private instruction cache still holds a decode of the
//!   old bytes keeps executing them until an IPI shootdown evicts it —
//!   stale code. Under a block tier ([`mvvm::ExecTier`]) the same IPI
//!   also evicts exactly the decoded blocks spanning the flushed range
//!   from every per-vCPU block cache, in lockstep with the per-insn
//!   decode caches, so quiesced commits need no extra work regardless
//!   of the execution tier.
//!
//! This module provides the two classic protocols as
//! [`CommitStrategy`]:
//!
//! * **Stop-machine** (`stop_machine()` in Linux): rendezvous every
//!   vCPU at a safepoint — a `pc` outside every to-be-patched region
//!   interior with no saved return address inside one — park them all,
//!   run the ordinary journaled transaction while the world is stopped,
//!   shoot down the instruction caches and release. Simple, but every
//!   vCPU stalls for the whole window.
//! * **Breakpoint-first** (`text_poke_bp()`): plant a 1-byte trap
//!   ([`mvasm::Insn::Trap`], `0xCC`) over the *first* byte of every
//!   region, shoot down icaches so the traps are seen, and keep the
//!   machine running — only vCPUs that actually reach a patched region
//!   trap and stall, everyone else makes progress. Once no vCPU is left
//!   inside a region interior, the trap bytes are restored, the
//!   transaction applies while the stragglers are held on their traps,
//!   icaches are shot down again and the trapped vCPUs released to
//!   re-fetch the (new) first byte.
//!
//! Both paths end in the same place: the journaled plan → validate →
//! apply transaction of [`crate::txn`], so a mid-apply fault still rolls
//! the image back byte-identically — the quiesce layer then restores its
//! own trap bytes (breakpoint path), shoots down the caches and releases
//! the vCPUs, so a failed concurrent commit leaves the machine running
//! the old image, unharmed.
//!
//! A custom [`mvvm::smp::TrapHandler`] that answers
//! [`mvvm::TrapDisposition::Skip`] would step a vCPU *past* a planted
//! trap byte into the region interior; leave quiesced commits on the
//! default stall disposition.

use crate::error::RtError;
use crate::runtime::{CommitReport, PatchStrategy, Runtime};
use crate::txn::TxnOp;
use mvtrace::EventKind;
use mvvm::{FaultOp, Machine, MemError, SmpMachine, VcpuState};

/// How a commit quiesces the other vCPUs. See the module docs for the
/// two protocols.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CommitStrategy {
    /// Rendezvous and park every vCPU for the whole commit window.
    #[default]
    StopMachine,
    /// Trap bytes at region starts; only vCPUs entering a patched
    /// region stall.
    Breakpoint,
}

impl CommitStrategy {
    /// Stable protocol name, as it appears in trace events and CLI
    /// flags.
    pub fn name(self) -> &'static str {
        match self {
            CommitStrategy::StopMachine => "stop-machine",
            CommitStrategy::Breakpoint => "breakpoint",
        }
    }

    /// Parses a CLI spelling (`stop-machine`/`stop`/`breakpoint`/`bp`).
    pub fn parse(s: &str) -> Option<CommitStrategy> {
        match s {
            "stop-machine" | "stop" => Some(CommitStrategy::StopMachine),
            "breakpoint" | "bp" => Some(CommitStrategy::Breakpoint),
            _ => None,
        }
    }
}

impl std::fmt::Display for CommitStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The public Table 1 operation a quiesced transaction runs — the
/// SMP-facing mirror of the crate-private `TxnOp`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QuiesceOp {
    /// `multiverse_commit()`.
    Commit,
    /// `multiverse_revert()`.
    Revert,
    /// `multiverse_commit_refs(&var)` for the switch at this address.
    CommitRefs(u64),
    /// `multiverse_revert_refs(&var)`.
    RevertRefs(u64),
    /// `multiverse_commit_func(&fn)` for the generic entry at this
    /// address.
    CommitFunc(u64),
    /// `multiverse_revert_func(&fn)`.
    RevertFunc(u64),
}

impl QuiesceOp {
    fn to_txn(self) -> TxnOp {
        match self {
            QuiesceOp::Commit => TxnOp::CommitAll,
            QuiesceOp::Revert => TxnOp::RevertAll,
            QuiesceOp::CommitRefs(a) => TxnOp::CommitRefs(a),
            QuiesceOp::RevertRefs(a) => TxnOp::RevertRefs(a),
            QuiesceOp::CommitFunc(a) => TxnOp::CommitFunc(a),
            QuiesceOp::RevertFunc(a) => TxnOp::RevertFunc(a),
        }
    }
}

/// What a quiesced commit did, beyond the transaction's own
/// [`CommitReport`].
#[derive(Clone, Copy, Debug, Default)]
pub struct QuiesceReport {
    /// The underlying transaction's report.
    pub commit: CommitReport,
    /// Protocol used.
    pub strategy: CommitStrategy,
    /// Scheduler rounds spent inside the quiesce window (rendezvous or
    /// breakpoint drain).
    pub rounds: u64,
    /// vCPUs parked by the stop-machine rendezvous (0 under
    /// breakpoint).
    pub parked: usize,
    /// Trap-byte hits absorbed during the breakpoint drain (0 under
    /// stop-machine).
    pub trap_hits: u64,
    /// IPI icache shootdowns issued.
    pub shootdowns: u64,
    /// Stall cycles charged to vCPUs while the window was open.
    pub stall_cycles: u64,
}

/// Rendezvous/drain round budget before a quiesce gives up. Generous:
/// a vCPU inside a region interior leaves it within a handful of
/// instructions unless it loops there forever.
const MAX_QUIESCE_ROUNDS: u64 = 10_000;

/// Byte ranges `[start, end)` the transaction may write, computed
/// conservatively (delta-planning skips are *not* subtracted: a region
/// the commit ends up not touching is still safe to quiesce around).
fn danger_regions(rt: &Runtime, op: TxnOp) -> Result<Vec<(u64, u64)>, RtError> {
    let mut fns: Vec<usize> = Vec::new();
    let mut ptr_vars: Vec<u64> = Vec::new();
    match op {
        TxnOp::CommitAll | TxnOp::RevertAll => {
            fns.extend(0..rt.fns.len());
            ptr_vars.extend(rt.vars.iter().filter(|v| v.fn_ptr).map(|v| v.addr));
        }
        TxnOp::CommitRefs(a) | TxnOp::RevertRefs(a) => {
            let &vi = rt.var_by_addr.get(&a).ok_or(RtError::UnknownVariable(a))?;
            if rt.vars[vi].fn_ptr {
                ptr_vars.push(a);
            } else {
                fns.extend((0..rt.fns.len()).filter(|&fi| rt.references_var(fi, a)));
            }
        }
        TxnOp::CommitFunc(a) | TxnOp::RevertFunc(a) => {
            let &fi = rt.fn_by_addr.get(&a).ok_or(RtError::UnknownFunction(a))?;
            fns.push(fi);
        }
    }
    let mut regions: Vec<(u64, u64)> = Vec::new();
    for fi in fns {
        let f = &rt.fns[fi];
        if f.desc.variants.is_empty() {
            continue;
        }
        let g = f.desc.generic;
        // The completeness entry jump overwrites the first call-site's
        // worth of generic bytes in every strategy.
        regions.push((g, g + rt.abi().call_site_len() as u64));
        if matches!(rt.strategy, PatchStrategy::CallSites) {
            if let Some(idxs) = rt.sites_of.get(&g) {
                for &si in idxs {
                    let s = &rt.sites[si];
                    regions.push((s.desc.site, s.desc.site + s.len as u64));
                }
            }
        }
    }
    for va in ptr_vars {
        if let Some(idxs) = rt.sites_of.get(&va) {
            for &si in idxs {
                let s = &rt.sites[si];
                regions.push((s.desc.site, s.desc.site + s.len as u64));
            }
        }
    }
    regions.sort_unstable();
    regions.dedup();
    Ok(regions)
}

/// `true` if `addr` lies strictly inside one of the regions. The
/// boundaries are safe: a `pc` *at* a region start re-decodes whatever
/// the commit put there (after the shootdown), and a return address at
/// `end` resumes past the rewritten bytes.
fn inside_interior(regions: &[(u64, u64)], addr: u64) -> bool {
    regions.iter().any(|&(s, e)| addr > s && addr < e)
}

/// Frames walked per vCPU when checking saved return addresses.
const BACKTRACE_DEPTH: usize = 64;

/// `true` if vCPU `i` must not be present while the regions are
/// rewritten: its `pc` or a saved return address is inside an interior.
fn vcpu_unsafe(smp: &SmpMachine, i: usize, regions: &[(u64, u64)]) -> bool {
    if inside_interior(regions, smp.pc_of(i)) {
        return true;
    }
    smp.backtrace_of(i, BACKTRACE_DEPTH)
        .iter()
        .any(|&ra| inside_interior(regions, ra))
}

/// Writes `byte` over `addr` through the ordinary mprotect → write →
/// mprotect → flush dance (fault-injectable like any other patch).
fn poke_byte(rt: &mut Runtime, m: &mut Machine, addr: u64, byte: u8) -> Result<(), RtError> {
    let (window, restore) = (rt.backend.window_prot(), rt.backend.restore_prot());
    let r = crate::patch::patch_bytes_with(m, addr, &[byte], &mut rt.stats, window, restore);
    if r.is_err() {
        // A fault inside the dance can strand the page RW — W^X broken
        // under vCPUs that are still executing it. Relock best-effort,
        // outside the stats so probe-counted fault schedules of a clean
        // commit stay aligned with the failing run.
        let _ = m.mem.mprotect(addr, 1, restore);
    }
    r
}

impl Runtime {
    /// Records one quiesce window into the metrics registry, if
    /// enabled — called wherever a `QuiesceEnd` trace event is emitted
    /// so traces and metrics agree on window counts.
    fn note_quiesce(
        &mut self,
        strategy: CommitStrategy,
        ok: bool,
        rounds: u64,
        parked: u64,
        trap_hits: u64,
        stall_cycles: u64,
    ) {
        if let Some(metrics) = self.metrics.as_mut() {
            metrics.record_quiesce(strategy.name(), ok, rounds, parked, trap_hits, stall_cycles);
        }
    }

    /// Issues a full remote icache shootdown and emits the trace event.
    ///
    /// A real broadcast always acknowledges at least one invalidated
    /// cache (the machine's resident one), so a `0` return means the
    /// IPI was lost (a [`FaultOp::Shootdown`] plan, or nothing at all
    /// on a hypothetical broken interconnect) — re-issue once. A
    /// one-shot lost IPI is thereby absorbed exactly like a dropped
    /// local icache flush; a sticky loss still returns `0` and leaves
    /// stale decodes, which the caller's drain/commit oracle surfaces.
    fn shoot_down_all(&mut self, smp: &mut SmpMachine) -> u64 {
        let mut shot = smp.flush_remote(None) as u64;
        if shot == 0 {
            shot = smp.flush_remote(None) as u64;
        }
        self.emit(|| EventKind::IcacheShootdown {
            start: 0,
            end: 0,
            vcpus: shot,
        });
        shot
    }

    /// `multiverse_commit()` against a running [`SmpMachine`], quiesced
    /// under `strategy`. See [`Runtime::run_quiesced`].
    pub fn commit_quiesced(
        &mut self,
        smp: &mut SmpMachine,
        strategy: CommitStrategy,
    ) -> Result<QuiesceReport, RtError> {
        self.run_quiesced(smp, QuiesceOp::Commit, strategy)
    }

    /// `multiverse_revert()` against a running [`SmpMachine`], quiesced
    /// under `strategy`. See [`Runtime::run_quiesced`].
    pub fn revert_quiesced(
        &mut self,
        smp: &mut SmpMachine,
        strategy: CommitStrategy,
    ) -> Result<QuiesceReport, RtError> {
        self.run_quiesced(smp, QuiesceOp::Revert, strategy)
    }

    /// Runs one Table 1 operation as a quiesced transaction on an SMP
    /// machine.
    ///
    /// On `Ok` the operation committed, every vCPU has been released,
    /// and the icache shootdown made the new text visible everywhere.
    /// On `Err` the transaction rolled back (or never wrote — see
    /// [`RtError::commit_phase`]), any trap bytes were restored, and
    /// the vCPUs were likewise shot down and released: the machine keeps
    /// running the old image.
    pub fn run_quiesced(
        &mut self,
        smp: &mut SmpMachine,
        op: QuiesceOp,
        strategy: CommitStrategy,
    ) -> Result<QuiesceReport, RtError> {
        match strategy {
            CommitStrategy::StopMachine => self.quiesce_stop_machine(smp, op.to_txn()),
            CommitStrategy::Breakpoint => self.quiesce_breakpoint(smp, op.to_txn()),
        }
    }

    /// Stop-machine: rendezvous every vCPU at a safepoint, park the
    /// world, run the transaction, shoot down, release.
    fn quiesce_stop_machine(
        &mut self,
        smp: &mut SmpMachine,
        op: TxnOp,
    ) -> Result<QuiesceReport, RtError> {
        let regions = danger_regions(self, op)?;
        let n = smp.vcpus();
        self.emit(|| EventKind::QuiesceBegin {
            strategy: CommitStrategy::StopMachine.name(),
            vcpus: n as u64,
        });
        let stall0 = smp.total_stall_cycles();
        let shoot0 = smp.shootdowns();
        let mut rounds = 0u64;
        let mut parked: Vec<usize> = Vec::new();
        loop {
            let mut pending = false;
            for i in 0..n {
                if !matches!(smp.state(i), VcpuState::Runnable) {
                    continue;
                }
                if vcpu_unsafe(smp, i, &regions) {
                    pending = true;
                } else {
                    smp.park(i);
                    parked.push(i);
                    let pc = smp.pc_of(i);
                    self.emit(|| EventKind::VcpuParked { vcpu: i as u64, pc });
                }
            }
            if !pending {
                // Even with every vCPU already at a safepoint the
                // rendezvous is not free: each live CPU takes the IPI
                // and spins in the stopper loop for at least one round
                // — the fixed all-CPU cost that made Linux grow
                // `text_poke_bp`. Charge it unless the machine is idle.
                if parked.is_empty() || rounds >= 1 {
                    break;
                }
            }
            if rounds >= MAX_QUIESCE_ROUNDS {
                for &i in &parked {
                    smp.unpark(i);
                }
                self.emit(|| EventKind::QuiesceEnd { ok: false, rounds });
                self.note_quiesce(
                    CommitStrategy::StopMachine,
                    false,
                    rounds,
                    parked.len() as u64,
                    0,
                    smp.total_stall_cycles() - stall0,
                );
                return Err(RtError::Quiesce {
                    reason: "rendezvous never found a safepoint on every vcpu",
                    rounds,
                });
            }
            smp.step_round();
            rounds += 1;
        }
        // The world is stopped: apply the ordinary journaled transaction
        // host-atomically, then make it visible before anyone resumes.
        let result = self.run_txn(&mut smp.machine, op);
        self.shoot_down_all(smp);
        for &i in &parked {
            smp.unpark(i);
        }
        let ok = result.is_ok();
        self.emit(|| EventKind::QuiesceEnd { ok, rounds });
        let stall_cycles = smp.total_stall_cycles() - stall0;
        self.note_quiesce(
            CommitStrategy::StopMachine,
            ok,
            rounds,
            parked.len() as u64,
            0,
            stall_cycles,
        );
        Ok(QuiesceReport {
            commit: result?,
            strategy: CommitStrategy::StopMachine,
            rounds,
            parked: parked.len(),
            trap_hits: 0,
            shootdowns: smp.shootdowns() - shoot0,
            stall_cycles,
        })
    }

    /// Breakpoint-first: plant trap bytes, drain region interiors while
    /// the rest of the machine keeps running, patch under the traps,
    /// release.
    fn quiesce_breakpoint(
        &mut self,
        smp: &mut SmpMachine,
        op: TxnOp,
    ) -> Result<QuiesceReport, RtError> {
        let regions = danger_regions(self, op)?;
        let n = smp.vcpus();
        self.emit(|| EventKind::QuiesceBegin {
            strategy: CommitStrategy::Breakpoint.name(),
            vcpus: n as u64,
        });
        let stall0 = smp.total_stall_cycles();
        let shoot0 = smp.shootdowns();
        let traps0 = smp.trap_hits();

        // Plant a trap byte over the first byte of every region,
        // journaled locally so a mid-plant fault can unwind.
        let trap = self.abi().trap_byte();
        let mut planted: Vec<(u64, u8)> = Vec::new();
        for &(start, _) in &regions {
            let mut orig = [0u8; 1];
            // A FaultPlan targeting trap plants fails this plant before
            // the byte lands — the poke racing a concurrent protection
            // change. Reported like any W^X violation (mapped: true),
            // indistinguishable from the real thing. Restores through
            // restore_traps never consume this counter.
            let r = if smp.machine.mem.trip_fault(FaultOp::TrapPlant, start) {
                Err(RtError::from(MemError {
                    addr: start,
                    access: mvvm::mem::Access::Write,
                    mapped: true,
                }))
            } else {
                smp.machine
                    .mem
                    .read(start, &mut orig)
                    .map_err(RtError::from)
                    .and_then(|()| poke_byte(self, &mut smp.machine, start, trap))
            };
            if let Err(e) = r {
                // The failed poke may already have landed the trap byte
                // (the RX relock or the flush faulted after the write):
                // hand it to the unwind so the original byte comes back.
                let mut cur = [0u8; 1];
                if smp.machine.mem.read(start, &mut cur).is_ok()
                    && cur[0] == trap
                    && cur[0] != orig[0]
                {
                    planted.push((start, orig[0]));
                }
                self.unwind_traps(smp, &planted)?;
                self.emit(|| EventKind::QuiesceEnd {
                    ok: false,
                    rounds: 0,
                });
                self.note_quiesce(
                    CommitStrategy::Breakpoint,
                    false,
                    0,
                    0,
                    smp.trap_hits() - traps0,
                    smp.total_stall_cycles() - stall0,
                );
                return Err(e);
            }
            planted.push((start, orig[0]));
        }
        self.shoot_down_all(smp);

        // Drain: step the machine until no vCPU sits inside a region
        // interior. vCPUs reaching a region start hit the trap and
        // stall; everyone else keeps making progress.
        let mut rounds = 0u64;
        let mut trapped_seen = vec![false; n];
        loop {
            for (i, seen) in trapped_seen.iter_mut().enumerate() {
                if let VcpuState::Trapped { addr } = *smp.state(i) {
                    if !*seen && planted.iter().any(|&(a, _)| a == addr) {
                        *seen = true;
                        self.emit(|| EventKind::TrapHit {
                            vcpu: i as u64,
                            addr,
                        });
                    }
                }
            }
            let pending = (0..n).any(|i| smp.state(i).is_live() && vcpu_unsafe(smp, i, &regions));
            if !pending {
                break;
            }
            if rounds >= MAX_QUIESCE_ROUNDS {
                self.unwind_traps(smp, &planted)?;
                self.emit(|| EventKind::QuiesceEnd { ok: false, rounds });
                self.note_quiesce(
                    CommitStrategy::Breakpoint,
                    false,
                    rounds,
                    0,
                    smp.trap_hits() - traps0,
                    smp.total_stall_cycles() - stall0,
                );
                return Err(RtError::Quiesce {
                    reason: "breakpoint drain never emptied the patched regions",
                    rounds,
                });
            }
            smp.step_round();
            rounds += 1;
        }

        // Restore the original first bytes so the transaction's validate
        // phase sees pristine text, then apply while the stragglers are
        // still held on their traps (they re-fetch only after release).
        if let Err(e) = self.restore_traps(&mut smp.machine, &planted) {
            self.shoot_down_all(smp);
            self.release_planted(smp, &planted);
            self.emit(|| EventKind::QuiesceEnd { ok: false, rounds });
            self.note_quiesce(
                CommitStrategy::Breakpoint,
                false,
                rounds,
                0,
                smp.trap_hits() - traps0,
                smp.total_stall_cycles() - stall0,
            );
            return Err(e);
        }
        let result = self.run_txn(&mut smp.machine, op);
        self.shoot_down_all(smp);
        self.release_planted(smp, &planted);
        let ok = result.is_ok();
        self.emit(|| EventKind::QuiesceEnd { ok, rounds });
        let trap_hits = smp.trap_hits() - traps0;
        let stall_cycles = smp.total_stall_cycles() - stall0;
        self.note_quiesce(
            CommitStrategy::Breakpoint,
            ok,
            rounds,
            0,
            trap_hits,
            stall_cycles,
        );
        Ok(QuiesceReport {
            commit: result?,
            strategy: CommitStrategy::Breakpoint,
            rounds,
            parked: 0,
            trap_hits,
            shootdowns: smp.shootdowns() - shoot0,
            stall_cycles,
        })
    }

    /// Restores every planted trap byte. A restore failure reports the
    /// first address that could not be healed — the image is torn there
    /// (a trap byte remains), like a journal rollback failure.
    fn restore_traps(&mut self, m: &mut Machine, planted: &[(u64, u8)]) -> Result<(), RtError> {
        // Best effort over every byte first: one transiently failing
        // poke must not strand the traps planted after it.
        let mut first_err = None;
        let mut failed: Vec<(u64, u8)> = Vec::new();
        for &(addr, orig) in planted {
            if let Err(e) = poke_byte(self, m, addr, orig) {
                if first_err.is_none() {
                    first_err = Some(e);
                }
                failed.push((addr, orig));
            }
        }
        // Second chance for the failures. A byte that still cannot be
        // restored leaves a trap in the text segment — the torn state
        // the kernel treats as unrecoverable (`text_poke_bp` BUG()s).
        for &(addr, orig) in &failed {
            poke_byte(self, m, addr, orig).map_err(|e| RtError::RollbackFailed {
                addr,
                source: Box::new(e),
            })?;
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Failure unwind during planting: restore what was written, make it
    /// visible, and release anyone who already trapped.
    fn unwind_traps(&mut self, smp: &mut SmpMachine, planted: &[(u64, u8)]) -> Result<(), RtError> {
        let restored = self.restore_traps(&mut smp.machine, planted);
        self.shoot_down_all(smp);
        self.release_planted(smp, planted);
        restored
    }

    /// Releases every vCPU trapped on one of *our* trap addresses
    /// (a trap planted by someone else stays held).
    fn release_planted(&mut self, smp: &mut SmpMachine, planted: &[(u64, u8)]) {
        for i in 0..smp.vcpus() {
            if let VcpuState::Trapped { addr } = *smp.state(i) {
                if planted.iter().any(|&(a, _)| a == addr) {
                    smp.release_trap(i);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interior_excludes_boundaries() {
        let regions = [(0x100u64, 0x105u64), (0x200, 0x209)];
        assert!(!inside_interior(&regions, 0x100));
        assert!(inside_interior(&regions, 0x101));
        assert!(inside_interior(&regions, 0x104));
        assert!(!inside_interior(&regions, 0x105));
        assert!(!inside_interior(&regions, 0x1ff));
        assert!(inside_interior(&regions, 0x208));
        assert!(!inside_interior(&regions, 0x209));
    }

    #[test]
    fn strategy_names_parse_back() {
        for s in [CommitStrategy::StopMachine, CommitStrategy::Breakpoint] {
            assert_eq!(CommitStrategy::parse(s.name()), Some(s));
        }
        assert_eq!(
            CommitStrategy::parse("bp"),
            Some(CommitStrategy::Breakpoint)
        );
        assert_eq!(CommitStrategy::parse("nope"), None);
    }
}
