//! End-to-end metrics: the mvmetrics registry mirrors the runtime,
//! daemon and VM counters exactly, records nothing while disabled, and
//! the switch-history/residency join reconciles with the profiler and
//! the daemon's own bookkeeping.

use multiverse::mvmetrics::{export, Registry, SampleValue};
use multiverse::mvrt::{CommitDaemon, Lane, MvdConfig};
use multiverse::{telemetry, Program};

const SRC: &str = r#"
    multiverse bool fast_path;
    multiverse bool logging;
    i64 sink;

    multiverse i64 step_fast(void) {
        if (fast_path) { return 3; }
        return 5;
    }

    multiverse i64 step_log(void) {
        if (logging) { return 7; }
        return 11;
    }

    i64 worker(i64 iters) {
        i64 i = 0;
        while (i < iters) {
            sink = step_fast() + step_log();
            i = i + 1;
        }
        return i;
    }

    i64 main(void) { return worker(8); }
"#;

fn counter(snap: &[multiverse::mvmetrics::Sample], name: &str) -> u64 {
    snap.iter()
        .find(|s| s.name == name && s.labels.is_empty())
        .map(|s| match s.value {
            SampleValue::Counter(v) => v,
            _ => panic!("{name} is not a counter"),
        })
        .unwrap_or_else(|| panic!("{name} not registered"))
}

#[test]
fn disabled_registry_records_no_events() {
    let program = Program::build(&[("t.c", SRC)]).unwrap();
    let mut w = program.boot();
    let registry = Registry::new();
    w.enable_metrics(&registry);
    registry.set_enabled(false);
    let before = registry.snapshot();

    w.set("fast_path", 1).unwrap();
    w.commit().unwrap();
    w.call("worker", &[100]).unwrap();
    w.sync_metrics();

    let after = registry.snapshot();
    assert_eq!(before.len(), after.len(), "no metrics appeared");
    for (b, a) in before.iter().zip(after.iter()) {
        assert_eq!(b.value, a.value, "{} moved while disabled", b.name);
    }

    // Re-enabling picks the live values straight back up.
    registry.set_enabled(true);
    w.commit().unwrap();
    w.sync_metrics();
    let snap = registry.snapshot();
    assert!(counter(&snap, "mv_vm_instructions_total") > 0);
}

#[test]
fn registry_mirrors_runtime_and_vm_exactly() {
    let program = Program::build(&[("t.c", SRC)]).unwrap();
    let mut w = program.boot();
    let registry = Registry::new();
    w.enable_metrics(&registry);

    w.set("fast_path", 1).unwrap();
    w.commit().unwrap();
    w.set("fast_path", 0).unwrap();
    w.commit().unwrap();
    w.call("worker", &[50]).unwrap();
    w.sync_metrics();

    let snap = registry.snapshot();
    let rt_stats = w.rt.as_ref().unwrap().stats;
    assert_eq!(
        counter(&snap, "mv_rt_bytes_written_total"),
        rt_stats.bytes_written
    );
    assert_eq!(
        counter(&snap, "mv_rt_sites_patched_total"),
        rt_stats.sites_patched
    );
    assert_eq!(counter(&snap, "mv_rt_mprotects_total"), rt_stats.mprotects);
    assert_eq!(
        counter(&snap, "mv_vm_instructions_total"),
        w.machine.stats.instructions
    );

    // Both exporters render the same snapshot.
    let prom = export::prometheus(&snap);
    assert!(prom.contains("# TYPE mv_rt_commits_total counter"));
    assert!(prom.contains("mv_rt_commits_total{op=\"commit\",outcome=\"ok\"} 2"));
    let json = export::json(&snap);
    assert!(json.starts_with("{\"version\":1,\"kind\":\"mv-metrics-snapshot\""));
    assert!(json.contains("\"name\":\"mv_vm_instructions_total\""));
}

/// The storm acceptance path as a library-level test: a deterministic
/// flip storm through the daemon, then three reconciliations — registry
/// counters against `MvdStats`, recorded flips against the committed
/// counter, and residency cycles against the profiler total.
#[test]
fn storm_metrics_reconcile_with_daemon_and_profiler() {
    let program = Program::build(&[("t.c", SRC)]).unwrap();
    let mut w = program.boot_smp(4);
    w.smp.set_seed(7);
    w.spawn_all("worker", &[500]).unwrap();

    let registry = Registry::new();
    w.enable_metrics(&registry);
    let mut daemon = CommitDaemon::new(MvdConfig::default());
    daemon.enable_metrics(&registry);
    daemon.enable_history(w.switch_history());
    let exe = w.exe().clone();
    w.smp.machine.enable_profile(&exe);

    let switches = w.rt.as_ref().unwrap().switch_addrs();
    let mut x = 7u64 | 1;
    for _ in 0..64 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let switch = switches[((x >> 8) as usize) % switches.len()];
        let value = ((x >> 32) & 1) as i64;
        let rt = w.rt.as_mut().unwrap();
        daemon.submit(
            rt,
            multiverse::mvrt::MvdOp::Flip { switch, value },
            Lane::Normal,
        );
        for _ in 0..2 {
            if w.smp.any_live() {
                w.smp.step_round();
            }
        }
        let rt = w.rt.as_mut().unwrap();
        while daemon.step(rt, &mut w.smp) {}
    }
    daemon.take_completions();
    let rets = w.run(10_000_000).unwrap();
    assert!(rets.iter().all(|&r| r == 500), "workers stayed exact");
    w.sync_metrics();

    let s = daemon.stats();
    assert!(s.committed > 0, "the storm landed commits");
    let snap = registry.snapshot();
    for (name, want) in [
        ("mv_mvd_submitted_total", s.submitted),
        ("mv_mvd_admitted_total", s.admitted),
        ("mv_mvd_coalesced_total", s.coalesced),
        ("mv_mvd_shed_total", s.shed),
        ("mv_mvd_expired_total", s.expired),
        ("mv_mvd_rejected_total", s.rejected),
        ("mv_mvd_fast_failed_total", s.fast_failed),
        ("mv_mvd_committed_total", s.committed),
        ("mv_mvd_failed_total", s.failed),
        ("mv_mvd_quarantined_total", s.quarantined),
        ("mv_mvd_degraded_total", s.degraded),
        ("mv_mvd_healed_total", s.healed),
        ("mv_mvd_attempts_total", s.attempts),
    ] {
        assert_eq!(counter(&snap, name), want, "{name} diverged from MvdStats");
    }

    // Every committed entry in this workload is a flip, so the timeline
    // reconciles exactly with the committed counter…
    let history = daemon.take_history().unwrap();
    assert_eq!(history.flip_count(), s.committed);
    let last = history.flips().last().unwrap();
    assert_eq!(last.commit_id, s.committed, "commit ids are 1-based");

    // …and the residency rows partition the profiler's attribution.
    let prof = w.smp.machine.take_profile().unwrap();
    let rows = telemetry::residency_rows(&prof);
    let total = telemetry::total_attributed_cycles(&prof);
    assert_eq!(rows.iter().map(|r| r.cycles).sum::<u64>(), total);
    assert!(total > 0, "the profiler saw the workers");

    // The history document carries both, versioned.
    let doc = history.to_json(&rows, total);
    assert!(doc.starts_with("{\"version\":1,\"kind\":\"mv-switch-history\""));
    assert!(doc.contains(&format!("\"total_flips\":{}", s.committed)));
    assert!(doc.contains(&format!("\"total_cycles\":{total}")));
}
