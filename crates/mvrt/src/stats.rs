//! Patching statistics — the §6.1 accounting (1161 call sites, ≈16 ms
//! patch time, descriptor overhead).

use std::time::Duration;

/// Counters accumulated across commits and reverts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PatchStats {
    /// Call sites whose target was rewritten.
    pub sites_patched: u64,
    /// Call sites where a variant body was inlined.
    pub sites_inlined: u64,
    /// Entry jumps written over generic prologues.
    pub entry_jumps: u64,
    /// Prologues restored by reverts.
    pub prologues_restored: u64,
    /// Total bytes written into the text segment.
    pub bytes_written: u64,
    /// `mprotect` invocations (two per patched range: unlock + relock).
    pub mprotects: u64,
    /// Instruction-cache flushes.
    pub icache_flushes: u64,
    /// Functions committed to a specialized variant.
    pub committed_variants: u64,
    /// Functions that fell back to the generic body because no variant's
    /// guards admitted the current configuration (Fig. 3 d).
    pub generic_fallbacks: u64,
    /// Distinct text pages whose RW window a page-batched apply opened
    /// (each page also gets exactly one icache flush on close).
    pub pages_touched: u64,
    /// Call sites delta planning skipped because they were already in
    /// the selected state (the commit fast path).
    pub sites_skipped: u64,
    /// Undo-log entries recorded by journaled apply phases.
    pub journal_entries: u64,
    /// Bytes covered by journal entries.
    pub journal_bytes: u64,
    /// Apply phases that failed and were rolled back successfully.
    pub rollbacks: u64,
    /// Transactions re-attempted after a transient fault.
    pub retries: u64,
}

impl PatchStats {
    /// Difference `self - earlier`, saturating at zero per counter.
    ///
    /// Saturating keeps the diff meaningful even when `earlier` was taken
    /// from a *different* runtime (or after the counters were reset):
    /// a nonsensical pairing yields zeros instead of a panic or a
    /// wrapped-around astronomical count.
    pub fn since(&self, earlier: &PatchStats) -> PatchStats {
        PatchStats {
            sites_patched: self.sites_patched.saturating_sub(earlier.sites_patched),
            sites_inlined: self.sites_inlined.saturating_sub(earlier.sites_inlined),
            entry_jumps: self.entry_jumps.saturating_sub(earlier.entry_jumps),
            prologues_restored: self
                .prologues_restored
                .saturating_sub(earlier.prologues_restored),
            bytes_written: self.bytes_written.saturating_sub(earlier.bytes_written),
            mprotects: self.mprotects.saturating_sub(earlier.mprotects),
            icache_flushes: self.icache_flushes.saturating_sub(earlier.icache_flushes),
            committed_variants: self
                .committed_variants
                .saturating_sub(earlier.committed_variants),
            generic_fallbacks: self
                .generic_fallbacks
                .saturating_sub(earlier.generic_fallbacks),
            pages_touched: self.pages_touched.saturating_sub(earlier.pages_touched),
            sites_skipped: self.sites_skipped.saturating_sub(earlier.sites_skipped),
            journal_entries: self.journal_entries.saturating_sub(earlier.journal_entries),
            journal_bytes: self.journal_bytes.saturating_sub(earlier.journal_bytes),
            rollbacks: self.rollbacks.saturating_sub(earlier.rollbacks),
            retries: self.retries.saturating_sub(earlier.retries),
        }
    }
}

/// Timing of one commit/revert operation, measured on the host.
///
/// The per-phase durations are accumulated across every attempt of the
/// operation (a retried transaction re-runs all three phases), so
/// `plan + validate + apply ≤ elapsed` — the difference is `backoff`
/// plus driver overhead.
#[derive(Clone, Copy, Debug, Default)]
pub struct PatchTiming {
    /// Wall-clock time the operation took, end to end.
    pub elapsed: Duration,
    /// Time spent planning (action-list construction, variant selection).
    pub plan: Duration,
    /// Time spent in read-only validation.
    pub validate: Duration,
    /// Time spent in the journaled write pass (including any rollback).
    pub apply: Duration,
    /// Retry backoff charged to this operation: the sum of every
    /// inter-attempt sleep the [`crate::RetryPolicy`] scheduled.
    pub backoff: Duration,
    /// Attempts beyond the first this operation needed.
    pub retries: u32,
    /// Call sites visited.
    pub sites: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn since_saturates_instead_of_panicking() {
        let newer = PatchStats {
            sites_patched: 5,
            ..PatchStats::default()
        };
        let older = PatchStats {
            sites_patched: 2,
            retries: 7, // "earlier" ahead of "self": mismatched pairing
            ..PatchStats::default()
        };
        let d = newer.since(&older);
        assert_eq!(d.sites_patched, 3);
        assert_eq!(d.retries, 0);
    }
}
