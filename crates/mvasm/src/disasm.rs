//! Linear-sweep disassembler for MV64 code.

use crate::decode::{decode, DecodeError};
use crate::insn::Insn;
use std::fmt::Write as _;

/// One disassembled instruction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DisLine {
    /// Byte offset (or absolute address if a base was supplied).
    pub addr: u64,
    /// The decoded instruction.
    pub insn: Insn,
    /// Encoded length.
    pub len: usize,
}

/// Disassembles `bytes` with a linear sweep starting at address `base`.
///
/// Stops at the first undecodable byte, returning the instructions decoded
/// so far together with the error position.
pub fn sweep(bytes: &[u8], base: u64) -> (Vec<DisLine>, Option<(u64, DecodeError)>) {
    let mut out = Vec::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        match decode(&bytes[pos..]) {
            Ok((insn, len)) => {
                out.push(DisLine {
                    addr: base + pos as u64,
                    insn,
                    len,
                });
                pos += len;
            }
            Err(e) => return (out, Some((base + pos as u64, e))),
        }
    }
    (out, None)
}

/// Renders `bytes` as human-readable assembly, one instruction per line.
///
/// Branch and call targets are shown as resolved absolute addresses.
///
/// # Examples
///
/// ```
/// let code = mvasm::encode(&mvasm::Insn::Ret);
/// assert_eq!(mvasm::disasm(&code, 0x1000), "1000: ret\n");
/// ```
pub fn disasm(bytes: &[u8], base: u64) -> String {
    let (lines, err) = sweep(bytes, base);
    let mut s = String::new();
    for l in &lines {
        let _ = write!(s, "{:x}: ", l.addr);
        match l.insn {
            Insn::Jmp { rel } => {
                let _ = write!(s, "jmp {:#x}", target(l, rel));
            }
            Insn::Jcc { cc, rel } => {
                let _ = write!(s, "j{} {:#x}", cc.mnemonic(), target(l, rel));
            }
            Insn::CallRel { rel } => {
                let _ = write!(s, "call {:#x}", target(l, rel));
            }
            ref other => {
                let _ = write!(s, "{other}");
            }
        }
        s.push('\n');
    }
    if let Some((addr, e)) = err {
        let _ = writeln!(s, "{addr:x}: <{e}>");
    }
    s
}

fn target(l: &DisLine, rel: i32) -> u64 {
    (l.addr + l.len as u64).wrapping_add(rel as i64 as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode_into;
    use crate::reg::Reg;

    #[test]
    fn sweep_decodes_sequence() {
        let mut bytes = Vec::new();
        encode_into(
            &Insn::MovRI {
                dst: Reg::R0,
                imm: 7,
            },
            &mut bytes,
        );
        encode_into(&Insn::CallRel { rel: -15 }, &mut bytes);
        encode_into(&Insn::Ret, &mut bytes);
        let (lines, err) = sweep(&bytes, 0x400);
        assert!(err.is_none());
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[1].addr, 0x40a);
    }

    #[test]
    fn disasm_resolves_call_target() {
        let bytes = crate::encode(&Insn::CallRel { rel: 0x10 });
        let text = disasm(&bytes, 0x1000);
        assert_eq!(text, "1000: call 0x1015\n");
    }

    #[test]
    fn disasm_reports_bad_byte() {
        let text = disasm(&[0x12, 0xFF], 0);
        assert!(text.contains("halt"));
        assert!(text.contains("invalid opcode"));
    }
}
