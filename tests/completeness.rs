//! §7.4 completeness: the committed variant is reached through *every*
//! invocation path — recorded call sites, function pointers the compiler
//! saw, function pointers written at run time, and host-driven ("foreign
//! code") calls to the generic entry.

use multiverse::Program;

const SRC: &str = r#"
    multiverse bool fast_mode;
    u64 generic_hits;

    multiverse i64 which_path(void) {
        if (fast_mode) { return 1; }
        return 2;
    }

    // A recorded direct call site.
    i64 via_direct(void) { return which_path(); }

    // An indirect call through a plain (non-multiverse) function pointer:
    // the compiler records no site for it, so only the entry jump covers
    // it.
    fnptr handler = &which_path;
    i64 via_pointer(void) { return handler(); }

    i64 main(void) { return 0; }
"#;

#[test]
fn every_call_path_reaches_the_committed_variant() {
    let program = Program::build(&[("t.c", SRC)]).unwrap();
    let mut w = program.boot();

    w.set("fast_mode", 1).unwrap();
    w.commit().unwrap();
    // Make the generic's dynamic answer diverge from the committed one,
    // so any path that still executes the generic is caught.
    w.set("fast_mode", 0).unwrap();

    // 1. Recorded call site (patched directly).
    assert_eq!(w.call("via_direct", &[]).unwrap(), 1);

    // 2. Function pointer the compiler initialized (unrecorded indirect
    //    call → generic entry → jump).
    assert_eq!(w.call("via_pointer", &[]).unwrap(), 1);

    // 3. Function pointer overwritten at run time ("wild pointer").
    let which = w.sym("which_path").unwrap();
    let handler = w.sym("handler").unwrap();
    w.machine.mem.write_int(handler, which, 8).unwrap();
    assert_eq!(w.call("via_pointer", &[]).unwrap(), 1);

    // 4. Foreign/host call straight to the generic entry address.
    assert_eq!(w.machine.call(which, &[]).unwrap(), 1);

    // After revert, all four paths see the dynamic behaviour again.
    w.revert().unwrap();
    assert_eq!(w.call("via_direct", &[]).unwrap(), 2);
    assert_eq!(w.call("via_pointer", &[]).unwrap(), 2);
    assert_eq!(w.machine.call(which, &[]).unwrap(), 2);
}

#[test]
fn call_site_patching_is_an_optimization_only() {
    // §7.4: "the collection and the patching of call sites is a mere
    // optimization" — with entry-only patching the program behaves
    // identically, just slower.
    let program = Program::build(&[("t.c", SRC)]).unwrap();
    let mut w = program.boot();
    w.rt.as_mut().unwrap().strategy = multiverse::mvrt::PatchStrategy::EntryOnly;
    w.set("fast_mode", 1).unwrap();
    w.commit().unwrap();
    w.set("fast_mode", 0).unwrap();
    assert_eq!(w.call("via_direct", &[]).unwrap(), 1);
    assert_eq!(w.call("via_pointer", &[]).unwrap(), 1);
    // No call sites were touched.
    assert_eq!(w.rt.as_ref().unwrap().stats.sites_patched, 0);
}
