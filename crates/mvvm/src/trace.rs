//! Execution tracing — the debugger's view of a patched program.
//!
//! §7.2 reports that GDB keeps displaying the *original* call at a
//! patched site while execution steps into the variant. The trace ring
//! here records what actually retires, so tests and tools can assert
//! "the variant body ran" even though the static disassembly of the
//! caller would still show `call multi`.

use mvasm::Insn;
use std::collections::VecDeque;

/// Hard ceiling on [`Trace`] capacity. A trace entry is an address plus
/// a decoded instruction; the ring pre-allocates its full capacity, so
/// the cap bounds memory at a few hundred KiB however large a capacity
/// the caller asks for.
pub const MAX_TRACE_CAP: usize = 4096;

/// A bounded ring buffer of retired instructions.
#[derive(Debug, Default)]
pub struct Trace {
    ring: VecDeque<(u64, Insn)>,
    cap: usize,
}

impl Trace {
    /// Creates a trace keeping the last `cap` retired instructions.
    /// `cap` is clamped to `1..=`[`MAX_TRACE_CAP`]; the clamped value is
    /// both the allocation and the bound the ring enforces (check it
    /// with [`Trace::capacity`]).
    pub fn new(cap: usize) -> Trace {
        let cap = cap.clamp(1, MAX_TRACE_CAP);
        Trace {
            ring: VecDeque::with_capacity(cap),
            cap,
        }
    }

    /// The capacity bound actually in effect (post-clamp).
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Records one retired instruction.
    pub fn record(&mut self, pc: u64, insn: Insn) {
        if self.ring.len() == self.cap {
            self.ring.pop_front();
        }
        self.ring.push_back((pc, insn));
    }

    /// The retired instructions, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &(u64, Insn)> {
        self.ring.iter()
    }

    /// Number of recorded entries.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// `true` if any retired instruction's address lies in
    /// `[start, start+len)` — "did this body execute?".
    pub fn touched(&self, start: u64, len: u64) -> bool {
        self.ring
            .iter()
            .any(|&(pc, _)| pc >= start && pc < start + len)
    }

    /// Renders the trace like a debugger's instruction history.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        for (pc, insn) in &self.ring {
            let _ = writeln!(s, "{pc:#010x}: {insn}");
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_drops_oldest() {
        let mut t = Trace::new(3);
        for i in 0..5u64 {
            t.record(i, Insn::Ret);
        }
        let pcs: Vec<u64> = t.entries().map(|&(pc, _)| pc).collect();
        assert_eq!(pcs, vec![2, 3, 4]);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn touched_checks_ranges() {
        let mut t = Trace::new(8);
        t.record(0x100, Insn::Ret);
        assert!(t.touched(0x100, 1));
        assert!(t.touched(0xF0, 0x20));
        assert!(!t.touched(0x101, 0x10));
    }

    #[test]
    fn cap_is_clamped_honestly() {
        assert_eq!(Trace::new(usize::MAX).capacity(), MAX_TRACE_CAP);
        // A zero cap would let the ring grow unbounded (the drop check
        // compares len == cap exactly); clamping to 1 keeps it bounded.
        let mut t = Trace::new(0);
        assert_eq!(t.capacity(), 1);
        for i in 0..10u64 {
            t.record(i, Insn::Ret);
        }
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn render_is_line_per_insn() {
        let mut t = Trace::new(2);
        t.record(0x10, Insn::Cli);
        t.record(0x11, Insn::Sti);
        let r = t.render();
        assert!(r.contains("0x00000010: cli"));
        assert!(r.contains("sti"));
    }
}
