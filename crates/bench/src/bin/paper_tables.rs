//! Regenerates every table and figure of the paper's evaluation (§6) as
//! text tables of deterministic VM cycle counts.
//!
//! ```text
//! paper_tables [--fig1] [--fig4-spinlock] [--fig4-pvops] [--fig5]
//!              [--grep] [--cpython] [--stats] [--btb] [--inline]
//!              [--smp] [--quick]
//! ```
//!
//! With no selector, all tables are printed. `--quick` shrinks workload
//! sizes for smoke runs.

use multiverse::bench::render_table;
use mv_bench as b;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let all = args.iter().all(|a| a == "--quick");
    let want = |flag: &str| all || args.iter().any(|a| a == flag);

    let (musl_n, grep_sz, py_n) = if quick {
        (1_000, 16_384, 2_000)
    } else {
        (20_000, 262_144, 50_000)
    };

    println!("Multiverse (EuroSys'19) — reproduced evaluation tables");
    println!("(deterministic MVVM cycles; see EXPERIMENTS.md for the paper comparison)\n");

    if want("--fig1") {
        println!(
            "{}",
            render_table(
                "Fig. 1 — spin_irq_lock avg. cycles (bindings A/B/C)",
                &b::fig1_data()
            )
        );
    }
    if want("--fig4-spinlock") {
        println!(
            "{}",
            render_table(
                "Fig. 4 (left) — spinlock lock+unlock avg. cycles",
                &b::fig4_spinlock_data()
            )
        );
    }
    if want("--fig4-pvops") {
        println!(
            "{}",
            render_table(
                "Fig. 4 (right) — PV-Ops sti+cli avg. cycles",
                &b::fig4_pvops_data()
            )
        );
    }
    if want("--fig5") {
        println!(
            "{}",
            render_table(
                &format!("Fig. 5 — musl, cycles per call ({musl_n} calls)"),
                &b::fig5_data(musl_n)
            )
        );
    }
    if want("--grep") {
        let (rows, improvement) = b::grep_data(grep_sz);
        println!(
            "{}",
            render_table(
                &format!("§6.2.3 — grep end-to-end ({grep_sz}-byte hex corpus)"),
                &rows
            )
        );
        println!(
            "multiverse improvement: {:.2} %  (paper: 2.73 % on 2 GiB)\n",
            improvement * 100.0
        );
    }
    if want("--cpython") {
        let (rows, delta) = b::cpython_data(py_n);
        println!(
            "{}",
            render_table("§6.2.1 — cPython object allocation", &rows)
        );
        println!(
            "multiverse delta: {:.2} %  (paper: no statistically stable effect)\n",
            delta * 100.0
        );
    }
    if want("--stats") {
        let r = b::patch_stats_data(1161);
        println!("## §6.1 / §5 — patching and size accounting (1161 call sites, as the kernel)");
        println!("call sites recorded             {:>12}", r.call_sites);
        println!(
            "commit wall time                {:>12.3} ms   (paper: ~16 ms in-kernel)",
            r.commit_time.as_secs_f64() * 1e3
        );
        println!("image size, multiverse build    {:>12} B", r.mv_image);
        println!("image size, dynamic build       {:>12} B", r.dyn_image);
        println!(
            "multiverse overhead             {:>12} B   (paper: +40 KiB on ~10 MiB)",
            r.mv_image - r.dyn_image
        );
        println!(
            "multiverse.variables            {:>12} B   (= #switches × 32)",
            r.sec_vars
        );
        println!(
            "multiverse.functions            {:>12} B   (= Σ 48 + #v·(32 + #g·16))",
            r.sec_funcs
        );
        println!(
            "multiverse.callsites            {:>12} B   (= #sites × 16)\n",
            r.sec_sites
        );
        let rounds = if quick { 10 } else { 50 };
        println!("## §6.1 — commit latency distribution from the trace ring ({rounds} rounds, 1161 sites)");
        print!(
            "{}",
            b::render_latency_table(&b::commit_latency_percentiles(1161, rounds))
        );
        let (baseline, recording, disabled) = b::tracing_overhead(1161);
        let rec_pct = recording.as_secs_f64() / baseline.as_secs_f64() - 1.0;
        let dis_pct = disabled.as_secs_f64() / baseline.as_secs_f64() - 1.0;
        println!(
            "tracing overhead: baseline {baseline:>9.2?}  recording {recording:>9.2?} ({:+.1}%)  disabled {disabled:>9.2?} ({:+.1}%)\n",
            rec_pct * 100.0,
            dis_pct * 100.0
        );
    }
    if want("--btb") {
        println!(
            "{}",
            render_table(
                "E10 — footnote 1: warm vs. cold predictors (SMP spinlock)",
                &b::btb_data()
            )
        );
    }
    if want("--inline") {
        println!(
            "{}",
            render_table(
                "E11 — §7.1 ablation: patching strategies (musl fputc, single-threaded)",
                &b::inline_ablation_data()
            )
        );
    }
    if want("--smp") {
        let (counts, iters, flips): (&[usize], u64, u32) = if quick {
            (&[2, 4], 64, 4)
        } else {
            (&[2, 4, 8], 512, 8)
        };
        let rows = b::smp_commit_data(counts, iters, flips);
        println!(
            "{}",
            render_table(
                &format!("E15 — quiesced commit under SMP lock contention ({iters} iters/worker, {flips} flips)"),
                &b::smp_commit_series(&rows)
            )
        );
        for r in &rows {
            assert!(
                r.consistent,
                "{} @ {} vCPUs lost an increment",
                r.strategy, r.vcpus
            );
        }
    }
}
