//! The Fig. 1 / Fig. 4 spinlock scenario: a kernel that hot-plugs a
//! second CPU at run time and re-commits its lock implementation.
//!
//! ```sh
//! cargo run --release --example spinlock
//! ```

use multiverse::mvvm::MachineMode;
use mv_workloads::spinlock::{boot, measure_lock, measure_pair, KernelBuild};

fn main() {
    let n = 20_000;

    println!("Fig. 1 — spin_irq_lock average cycles:");
    println!("{:24} {:>10} {:>10}", "", "SMP=false", "SMP=true");
    let rows = [
        ("A static (#ifdef)", None),
        ("B dynamic (if)", Some(KernelBuild::ElisionIf)),
        ("C multiverse", Some(KernelBuild::ElisionMultiverse)),
    ];
    for (label, kind) in rows {
        let up = kind.unwrap_or(KernelBuild::IfdefOff);
        let smp = kind.unwrap_or(KernelBuild::NoElision);
        let a = measure_lock(&mut boot(up, MachineMode::Unicore).unwrap(), n).unwrap();
        let b = measure_lock(&mut boot(smp, MachineMode::Multicore).unwrap(), n).unwrap();
        println!("{label:24} {a:>10.2} {b:>10.2}");
    }

    // The capability the static kernel cannot have: reconfigure at run
    // time. Start unicore, hot-plug a CPU, go SMP, and back.
    println!("\nCPU hot-plug with the multiverse kernel:");
    let mut w = boot(KernelBuild::ElisionMultiverse, MachineMode::Unicore).unwrap();
    let up_cost = measure_pair(&mut w, n).unwrap();
    println!("  unicore, committed UP:   {up_cost:6.2} cycles/pair");

    w.machine.set_mode(MachineMode::Multicore);
    w.set("config_smp", 1).unwrap();
    let report = w.commit().unwrap();
    println!(
        "  hot-plug: re-committed {} functions, {} sites patched",
        report.variants_committed, report.sites_touched
    );
    let smp_cost = measure_pair(&mut w, n).unwrap();
    println!("  multicore, committed SMP:{smp_cost:6.2} cycles/pair (lock is real now)");

    w.machine.set_mode(MachineMode::Unicore);
    w.set("config_smp", 0).unwrap();
    w.commit().unwrap();
    let back = measure_pair(&mut w, n).unwrap();
    println!("  unplugged, back to UP:   {back:6.2} cycles/pair");

    assert!(up_cost < smp_cost);
    assert!((back - up_cost).abs() < 1.0);
}
