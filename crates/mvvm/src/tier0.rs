//! The per-CPU block cache backing the tiered execution engine.
//!
//! One [`BlockCache`] lives on the resident [`crate::Machine`] and one in
//! every [`crate::CpuContext`]; [`crate::Machine::swap_context`] exchanges
//! them in O(1) along with the rest of the private per-CPU state, so each
//! vCPU of an [`crate::SmpMachine`] keeps its own block cache with its own
//! staleness — the block-level mirror of the private per-CPU icache model.
//!
//! The cache is the `FxHashMap<u64, Rc<DecodedBlock>>` + `last_block`
//! shape of aero's tier-0 interpreter, std-only: a `last` fast path skips
//! even the Fx map lookup when control returns to the block just
//! executed, and per-entry hot counters drive tier-1 superblock
//! promotion (see [`crate::Machine::set_tier`]).

use crate::block::{BlockCacheStats, BlockRef, FxBuildHasher};
use std::collections::HashMap;

/// Hits on a tier-0 block entry before it is re-recorded as a fused
/// superblock (tier-1 only).
pub const HOT_THRESHOLD: u32 = 8;

/// Cache of decoded blocks keyed by entry `pc`, with a `last_block` fast
/// path, hot counters and monotone [`BlockCacheStats`].
#[derive(Default)]
pub struct BlockCache {
    map: HashMap<u64, BlockRef, FxBuildHasher>,
    last: Option<(u64, BlockRef)>,
    hot: HashMap<u64, u32, FxBuildHasher>,
    /// Monotone hit/miss/eviction/promotion counters.
    pub stats: BlockCacheStats,
}

impl BlockCache {
    /// The block last replayed, if its entry is `pc` (no map lookup).
    pub fn last(&self, pc: u64) -> Option<&BlockRef> {
        match &self.last {
            Some((last_pc, b)) if *last_pc == pc => Some(b),
            _ => None,
        }
    }

    /// Looks `pc` up in the map (the slow path behind `last`).
    pub fn get(&self, pc: u64) -> Option<&BlockRef> {
        self.map.get(&pc)
    }

    /// Caches `block` under `pc` and makes it the `last` block.
    pub fn insert(&mut self, pc: u64, block: BlockRef) {
        self.last = Some((pc, block.clone()));
        self.map.insert(pc, block);
    }

    /// Remembers `block` as the most recently replayed one.
    pub fn set_last(&mut self, pc: u64, block: BlockRef) {
        self.last = Some((pc, block));
    }

    /// Drops the entry at `pc` (stale on re-validation), counting an
    /// eviction.
    pub fn evict(&mut self, pc: u64) {
        if self.map.remove(&pc).is_some() {
            self.stats.evictions += 1;
        }
        if matches!(&self.last, Some((p, _)) if *p == pc) {
            self.last = None;
        }
    }

    /// Bumps the hot counter of entry `pc`, returning the new count.
    pub fn bump_hot(&mut self, pc: u64) -> u32 {
        let c = self.hot.entry(pc).or_insert(0);
        *c = c.saturating_add(1);
        *c
    }

    /// Number of cached blocks.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` if no blocks are cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Evicts exactly the blocks with an op starting in `[start, end)` —
    /// the explicit-shootdown half of invalidation (sticky-icache mode).
    /// Blocks elsewhere survive: no blanket clears.
    pub fn invalidate_range(&mut self, start: u64, end: u64) {
        let before = self.map.len();
        self.map.retain(|_, b| !b.overlaps(start, end));
        self.stats.evictions += (before - self.map.len()) as u64;
        if matches!(&self.last, Some((_, b)) if b.overlaps(start, end)) {
            self.last = None;
        }
    }

    /// Evicts every cached block (full shootdown).
    pub fn invalidate_all(&mut self) {
        self.stats.evictions += self.map.len() as u64;
        self.map.clear();
        self.last = None;
    }

    /// Forgets all blocks and heat without counting evictions — loading
    /// a fresh image is not an invalidation event.
    pub fn reset(&mut self) {
        self.map.clear();
        self.hot.clear();
        self.last = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::DecodedBlock;
    use mvasm::Insn;
    use std::cell::Cell;
    use std::rc::Rc;

    fn block(entry: u64, ops: &[u64]) -> BlockRef {
        let ops: Vec<(u64, Insn)> = ops.iter().map(|&pc| (pc, Insn::Nop { len: 1 })).collect();
        Rc::new(DecodedBlock {
            entry,
            fast_runs: DecodedBlock::fast_runs_of(&ops),
            ops,
            pages: vec![(entry / crate::mem::PAGE_SIZE, 0)],
            superblock: false,
            epoch: Cell::new(0),
        })
    }

    #[test]
    fn last_block_fast_path_tracks_inserts() {
        let mut c = BlockCache::default();
        assert!(c.last(0x100).is_none());
        c.insert(0x100, block(0x100, &[0x100]));
        assert!(c.last(0x100).is_some());
        assert!(c.last(0x200).is_none());
        c.insert(0x200, block(0x200, &[0x200]));
        assert!(c.last(0x100).is_none(), "last follows the newest insert");
        assert!(c.last(0x200).is_some());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn invalidate_range_is_precise() {
        let mut c = BlockCache::default();
        c.insert(0x100, block(0x100, &[0x100, 0x101]));
        c.insert(0x200, block(0x200, &[0x200, 0x201]));
        c.insert(0x300, block(0x300, &[0x300]));
        c.invalidate_range(0x200, 0x202);
        assert_eq!(c.len(), 2, "only the overlapped block goes");
        assert!(c.get(0x100).is_some());
        assert!(c.get(0x200).is_none());
        assert!(c.get(0x300).is_some());
        assert_eq!(c.stats.evictions, 1);
    }

    #[test]
    fn invalidate_range_clears_last_only_when_hit() {
        let mut c = BlockCache::default();
        c.insert(0x100, block(0x100, &[0x100]));
        c.invalidate_range(0x500, 0x600);
        assert!(c.last(0x100).is_some(), "untouched last survives");
        c.invalidate_range(0x100, 0x101);
        assert!(c.last(0x100).is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn hot_counter_saturates() {
        let mut c = BlockCache::default();
        for _ in 0..5 {
            c.bump_hot(0x100);
        }
        assert_eq!(c.bump_hot(0x100), 6);
        assert_eq!(c.bump_hot(0x200), 1, "per-entry heat");
    }

    #[test]
    fn reset_does_not_count_evictions() {
        let mut c = BlockCache::default();
        c.insert(0x100, block(0x100, &[0x100]));
        c.reset();
        assert!(c.is_empty());
        assert_eq!(c.stats.evictions, 0);
        c.insert(0x100, block(0x100, &[0x100]));
        c.invalidate_all();
        assert_eq!(c.stats.evictions, 1);
    }
}
