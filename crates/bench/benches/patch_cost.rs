//! §6.1 — patching cost: commit wall time as a function of call-site
//! count (the kernel recorded 1161 spinlock sites and patched them in
//! ≈16 ms).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use multiverse::Program;

fn bench(c: &mut Criterion) {
    let r = mv_bench::patch_stats_data(1161);
    println!("## §6.1 — patch statistics at kernel scale (1161 sites)");
    println!("commit wall time: {:?}", r.commit_time);
    println!(
        "image overhead:   {} B (multiverse {} vs dynamic {})\n",
        r.mv_image - r.dyn_image,
        r.mv_image,
        r.dyn_image
    );

    let mut g = c.benchmark_group("patch_cost");
    for n_sites in [16usize, 128, 1161] {
        let src = mv_bench::many_callsites_src(n_sites);
        let program = Program::build(&[("sites.c", &src)]).expect("build");
        let mut w = program.boot();
        w.set("feature", 1).unwrap();
        g.bench_with_input(BenchmarkId::new("commit", n_sites), &n_sites, |b, _| {
            b.iter(|| {
                w.commit().expect("commit");
                w.revert().expect("revert");
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    // Simulated workloads are deterministic; short sampling keeps the
    // full suite fast without changing any conclusion.
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(1));
    targets = bench
}
criterion_main!(benches);
