//! Fault-model tests: NX enforcement, unmapped execution, stack
//! exhaustion and bad jumps must all surface as structured faults, never
//! as silent misbehaviour.

use mvasm::{Assembler, Insn, Reg};
use mvobj::{link, Layout, Object};
use mvvm::{CostModel, Fault, Machine, MachineConfig};

fn boot(build: impl FnOnce(&mut Object)) -> (Machine, mvobj::Executable) {
    let mut o = Object::new("t");
    build(&mut o);
    let exe = link(&[o], &Layout::default()).unwrap();
    let mut m = Machine::new(CostModel::default(), MachineConfig::default());
    m.load(&exe);
    (m, exe)
}

#[test]
fn executing_data_faults_nx() {
    // A function pointer aimed at the .data segment: fetch must fault
    // (the data segment is RW, not X — W^X cuts both ways).
    let (mut m, exe) = boot(|o| {
        let mut a = Assembler::new();
        a.lea_sym(Reg::R1, "blob");
        a.emit(Insn::CallInd { target: Reg::R1 });
        a.emit(Insn::Halt);
        o.add_code("main", &a.finish().unwrap());
        // Valid instruction bytes, but in a non-executable section.
        o.define_data("blob", &mvasm::encode(&Insn::Ret));
    });
    match m.run_entry(&exe) {
        Err(Fault::Mem(e)) => {
            assert!(e.mapped, "mapped but not executable");
        }
        other => panic!("expected NX fault, got {other:?}"),
    }
}

#[test]
fn jumping_into_the_void_faults() {
    let (mut m, exe) = boot(|o| {
        let mut a = Assembler::new();
        a.mov_ri(Reg::R1, 0xdead_0000);
        a.emit(Insn::CallInd { target: Reg::R1 });
        a.emit(Insn::Halt);
        o.add_code("main", &a.finish().unwrap());
    });
    match m.run_entry(&exe) {
        Err(Fault::Mem(e)) => assert!(!e.mapped),
        other => panic!("expected unmapped fault, got {other:?}"),
    }
}

#[test]
fn runaway_recursion_overflows_the_stack() {
    // main calls itself forever; the stack guard (unmapped page below
    // the stack) stops it with a memory fault, not a host crash.
    let (mut m, exe) = boot(|o| {
        let mut a = Assembler::new();
        a.label("self");
        a.call_sym("main", false);
        a.emit(Insn::Halt);
        o.add_code("main", &a.finish().unwrap());
    });
    match m.run_entry(&exe) {
        Err(Fault::Mem(e)) => assert!(!e.mapped, "fell off the stack mapping"),
        other => panic!("expected stack overflow fault, got {other:?}"),
    }
}

#[test]
fn zero_bytes_are_never_valid_instructions() {
    // Jump into the zero-filled BSS-like padding within the text page.
    let (mut m, exe) = boot(|o| {
        let mut a = Assembler::new();
        a.emit(Insn::Jmp { rel: 64 }); // far past the emitted code
        a.emit(Insn::Halt);
        o.add_code("main", &a.finish().unwrap());
    });
    match m.run_entry(&exe) {
        Err(Fault::Decode { err, .. }) => {
            assert!(matches!(err, mvasm::DecodeError::BadOpcode(0)));
        }
        other => panic!("expected decode fault, got {other:?}"),
    }
}

#[test]
fn ret_with_empty_stack_faults_not_panics() {
    let (mut m, exe) = boot(|o| {
        let mut a = Assembler::new();
        // Pop the host-pushed sentinel… there is none under run_entry, so
        // sp points at the pristine stack top; ret reads the zeroed slot
        // and jumps to address 0 → unmapped execute fault.
        a.ret();
        o.add_code("main", &a.finish().unwrap());
    });
    match m.run_entry(&exe) {
        Err(Fault::Mem(e)) => assert!(!e.mapped),
        other => panic!("expected fault, got {other:?}"),
    }
}
