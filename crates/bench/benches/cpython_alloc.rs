//! §6.2.1 — cPython `_PyObject_GC_Alloc` with the GC enable flag.

use criterion::{criterion_group, criterion_main, Criterion};
use multiverse::bench::render_table;
use mv_workloads::cpython::{boot, run, PyBuild};

fn bench(c: &mut Criterion) {
    let (rows, delta) = mv_bench::cpython_data(20_000);
    println!(
        "{}",
        render_table("§6.2.1 — cPython object allocation", &rows)
    );
    println!(
        "multiverse delta: {:.2} % (paper: below measurement noise)\n",
        delta * 100.0
    );

    let mut g = c.benchmark_group("cpython_alloc");
    for build in [PyBuild::Without, PyBuild::With] {
        for gc in [false, true] {
            let name = format!("{build:?}_gc_{gc}");
            let mut w = boot(build, gc).expect("boot");
            g.bench_function(&name, |b| b.iter(|| run(&mut w, 200).expect("run")));
        }
    }
    g.finish();
}

criterion_group! {
    name = benches;
    // Simulated workloads are deterministic; short sampling keeps the
    // full suite fast without changing any conclusion.
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(1));
    targets = bench
}
criterion_main!(benches);
