//! Execution tracing — the debugger's view of a patched program.
//!
//! §7.2 reports that GDB keeps displaying the *original* call at a
//! patched site while execution steps into the variant. The trace ring
//! here records what actually retires, so tests and tools can assert
//! "the variant body ran" even though the static disassembly of the
//! caller would still show `call multi`.

use mvasm::Insn;
use std::collections::VecDeque;

/// A bounded ring buffer of retired instructions.
#[derive(Debug, Default)]
pub struct Trace {
    ring: VecDeque<(u64, Insn)>,
    cap: usize,
}

impl Trace {
    /// Creates a trace keeping the last `cap` retired instructions.
    pub fn new(cap: usize) -> Trace {
        Trace {
            ring: VecDeque::with_capacity(cap.min(4096)),
            cap,
        }
    }

    /// Records one retired instruction.
    pub fn record(&mut self, pc: u64, insn: Insn) {
        if self.ring.len() == self.cap {
            self.ring.pop_front();
        }
        self.ring.push_back((pc, insn));
    }

    /// The retired instructions, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &(u64, Insn)> {
        self.ring.iter()
    }

    /// Number of recorded entries.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// `true` if any retired instruction's address lies in
    /// `[start, start+len)` — "did this body execute?".
    pub fn touched(&self, start: u64, len: u64) -> bool {
        self.ring
            .iter()
            .any(|&(pc, _)| pc >= start && pc < start + len)
    }

    /// Renders the trace like a debugger's instruction history.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        for (pc, insn) in &self.ring {
            let _ = writeln!(s, "{pc:#010x}: {insn}");
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_drops_oldest() {
        let mut t = Trace::new(3);
        for i in 0..5u64 {
            t.record(i, Insn::Ret);
        }
        let pcs: Vec<u64> = t.entries().map(|&(pc, _)| pc).collect();
        assert_eq!(pcs, vec![2, 3, 4]);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn touched_checks_ranges() {
        let mut t = Trace::new(8);
        t.record(0x100, Insn::Ret);
        assert!(t.touched(0x100, 1));
        assert!(t.touched(0xF0, 0x20));
        assert!(!t.touched(0x101, 0x10));
    }

    #[test]
    fn render_is_line_per_insn() {
        let mut t = Trace::new(2);
        t.record(0x10, Insn::Cli);
        t.record(0x11, Insn::Sti);
        let r = t.render();
        assert!(r.contains("0x00000010: cli"));
        assert!(r.contains("sti"));
    }
}
