//! Binary decoding of MV64 instructions.

use crate::encode::*;
use crate::insn::{AluOp, Cond, Insn, Width};
use crate::reg::Reg;
use core::fmt;

/// Error produced when a byte sequence is not a valid MV64 instruction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DecodeError {
    /// The buffer is empty or shorter than the instruction requires.
    Truncated,
    /// The first byte is not a known opcode.
    BadOpcode(u8),
    /// A register field is out of range.
    BadRegister(u8),
    /// An ALU-operation field is out of range.
    BadAluOp(u8),
    /// A condition-code field is out of range.
    BadCond(u8),
    /// A wide-NOP length field is out of range.
    BadNopLen(u8),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "truncated instruction"),
            DecodeError::BadOpcode(b) => write!(f, "invalid opcode {b:#04x}"),
            DecodeError::BadRegister(b) => write!(f, "invalid register {b}"),
            DecodeError::BadAluOp(b) => write!(f, "invalid ALU op {b}"),
            DecodeError::BadCond(b) => write!(f, "invalid condition code {b}"),
            DecodeError::BadNopLen(b) => write!(f, "invalid wide-NOP length {b}"),
        }
    }
}

impl std::error::Error for DecodeError {}

fn reg(b: u8) -> Result<Reg, DecodeError> {
    Reg::new(b).ok_or(DecodeError::BadRegister(b))
}

fn take<const N: usize>(bytes: &[u8], at: usize) -> Result<[u8; N], DecodeError> {
    bytes
        .get(at..at + N)
        .and_then(|s| s.try_into().ok())
        .ok_or(DecodeError::Truncated)
}

fn i32_at(bytes: &[u8], at: usize) -> Result<i32, DecodeError> {
    Ok(i32::from_le_bytes(take::<4>(bytes, at)?))
}

fn i64_at(bytes: &[u8], at: usize) -> Result<i64, DecodeError> {
    Ok(i64::from_le_bytes(take::<8>(bytes, at)?))
}

fn u64_at(bytes: &[u8], at: usize) -> Result<u64, DecodeError> {
    Ok(u64::from_le_bytes(take::<8>(bytes, at)?))
}

fn byte_at(bytes: &[u8], at: usize) -> Result<u8, DecodeError> {
    bytes.get(at).copied().ok_or(DecodeError::Truncated)
}

fn wflags(b: u8) -> (Width, bool) {
    (Width::decode(b), b & 0b100 != 0)
}

/// Decodes one instruction from the front of `bytes`.
///
/// Returns the instruction and its encoded length.
pub fn decode(bytes: &[u8]) -> Result<(Insn, usize), DecodeError> {
    let op = byte_at(bytes, 0)?;
    let insn = match op {
        OP_MOV_RR => Insn::MovRR {
            dst: reg(byte_at(bytes, 1)?)?,
            src: reg(byte_at(bytes, 2)?)?,
        },
        OP_MOV_RI => Insn::MovRI {
            dst: reg(byte_at(bytes, 1)?)?,
            imm: i64_at(bytes, 2)?,
        },
        OP_LEA => Insn::Lea {
            dst: reg(byte_at(bytes, 1)?)?,
            addr: u64_at(bytes, 2)?,
        },
        OP_LOAD => {
            let (width, signed) = wflags(byte_at(bytes, 7)?);
            Insn::Load {
                dst: reg(byte_at(bytes, 1)?)?,
                base: reg(byte_at(bytes, 2)?)?,
                off: i32_at(bytes, 3)?,
                width,
                signed,
            }
        }
        OP_STORE => {
            let (width, _) = wflags(byte_at(bytes, 7)?);
            Insn::Store {
                src: reg(byte_at(bytes, 1)?)?,
                base: reg(byte_at(bytes, 2)?)?,
                off: i32_at(bytes, 3)?,
                width,
            }
        }
        OP_LOAD_ABS => {
            let (width, signed) = wflags(byte_at(bytes, 10)?);
            Insn::LoadAbs {
                dst: reg(byte_at(bytes, 1)?)?,
                addr: u64_at(bytes, 2)?,
                width,
                signed,
            }
        }
        OP_STORE_ABS => {
            let (width, _) = wflags(byte_at(bytes, 10)?);
            Insn::StoreAbs {
                src: reg(byte_at(bytes, 1)?)?,
                addr: u64_at(bytes, 2)?,
                width,
            }
        }
        OP_ALU_RR => Insn::AluRR {
            op: AluOp::decode(byte_at(bytes, 1)?).ok_or(DecodeError::BadAluOp(bytes[1]))?,
            dst: reg(byte_at(bytes, 2)?)?,
            src: reg(byte_at(bytes, 3)?)?,
        },
        OP_ALU_RI => Insn::AluRI {
            op: AluOp::decode(byte_at(bytes, 1)?).ok_or(DecodeError::BadAluOp(bytes[1]))?,
            dst: reg(byte_at(bytes, 2)?)?,
            imm: i64_at(bytes, 3)?,
        },
        OP_CMP_RR => Insn::CmpRR {
            a: reg(byte_at(bytes, 1)?)?,
            b: reg(byte_at(bytes, 2)?)?,
        },
        OP_CMP_RI => Insn::CmpRI {
            a: reg(byte_at(bytes, 1)?)?,
            imm: i64_at(bytes, 2)?,
        },
        OP_JMP => Insn::Jmp {
            rel: i32_at(bytes, 1)?,
        },
        OP_JCC => Insn::Jcc {
            cc: Cond::decode(byte_at(bytes, 1)?).ok_or(DecodeError::BadCond(bytes[1]))?,
            rel: i32_at(bytes, 2)?,
        },
        OP_CALL_REL => Insn::CallRel {
            rel: i32_at(bytes, 1)?,
        },
        OP_CALL_IND => Insn::CallInd {
            target: reg(byte_at(bytes, 1)?)?,
        },
        OP_CALL_MEM => Insn::CallMem {
            addr: u64_at(bytes, 1)?,
        },
        OP_PUSH => Insn::Push {
            src: reg(byte_at(bytes, 1)?)?,
        },
        OP_POP => Insn::Pop {
            dst: reg(byte_at(bytes, 1)?)?,
        },
        OP_RET => Insn::Ret,
        OP_HALT => Insn::Halt,
        OP_STI => Insn::Sti,
        OP_CLI => Insn::Cli,
        OP_HYPERCALL => Insn::Hypercall {
            nr: byte_at(bytes, 1)?,
        },
        OP_RDTSC => Insn::Rdtsc {
            dst: reg(byte_at(bytes, 1)?)?,
        },
        OP_PAUSE => Insn::Pause,
        OP_OUT => Insn::Out {
            src: reg(byte_at(bytes, 1)?)?,
        },
        OP_XCHG_LOCK => Insn::XchgLock {
            val: reg(byte_at(bytes, 1)?)?,
            base: reg(byte_at(bytes, 2)?)?,
        },
        OP_MFENCE => Insn::Mfence,
        OP_TRAP => Insn::Trap,
        OP_SETCC => Insn::Setcc {
            cc: Cond::decode(byte_at(bytes, 1)?).ok_or(DecodeError::BadCond(bytes[1]))?,
            dst: reg(byte_at(bytes, 2)?)?,
        },
        OP_NOP1 => Insn::Nop { len: 1 },
        OP_NOPW => {
            let len = byte_at(bytes, 1)?;
            if !(2..=crate::MAX_NOP_LEN as u8).contains(&len) {
                return Err(DecodeError::BadNopLen(len));
            }
            if bytes.len() < len as usize {
                return Err(DecodeError::Truncated);
            }
            Insn::Nop { len }
        }
        other => return Err(DecodeError::BadOpcode(other)),
    };
    if bytes.len() < insn.len() {
        return Err(DecodeError::Truncated);
    }
    Ok((insn, insn.len()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode;
    use proptest::prelude::*;

    fn arb_reg() -> impl Strategy<Value = Reg> {
        (0u8..16).prop_map(|i| Reg::new(i).unwrap())
    }

    fn arb_width() -> impl Strategy<Value = Width> {
        prop_oneof![
            Just(Width::W8),
            Just(Width::W16),
            Just(Width::W32),
            Just(Width::W64),
        ]
    }

    fn arb_aluop() -> impl Strategy<Value = AluOp> {
        (0u8..13).prop_map(|b| AluOp::decode(b).unwrap())
    }

    fn arb_cond() -> impl Strategy<Value = Cond> {
        (0u8..10).prop_map(|b| Cond::decode(b).unwrap())
    }

    fn arb_insn() -> impl Strategy<Value = Insn> {
        prop_oneof![
            (arb_reg(), arb_reg()).prop_map(|(dst, src)| Insn::MovRR { dst, src }),
            (arb_reg(), any::<i64>()).prop_map(|(dst, imm)| Insn::MovRI { dst, imm }),
            (arb_reg(), any::<u64>()).prop_map(|(dst, addr)| Insn::Lea { dst, addr }),
            (
                arb_reg(),
                arb_reg(),
                any::<i32>(),
                arb_width(),
                any::<bool>()
            )
                .prop_map(|(dst, base, off, width, signed)| Insn::Load {
                    dst,
                    base,
                    off,
                    width,
                    signed
                }),
            (arb_reg(), arb_reg(), any::<i32>(), arb_width()).prop_map(
                |(src, base, off, width)| Insn::Store {
                    src,
                    base,
                    off,
                    width
                }
            ),
            (arb_reg(), any::<u64>(), arb_width(), any::<bool>()).prop_map(
                |(dst, addr, width, signed)| Insn::LoadAbs {
                    dst,
                    addr,
                    width,
                    signed
                }
            ),
            (arb_reg(), any::<u64>(), arb_width()).prop_map(|(src, addr, width)| Insn::StoreAbs {
                src,
                addr,
                width
            }),
            (arb_aluop(), arb_reg(), arb_reg()).prop_map(|(op, dst, src)| Insn::AluRR {
                op,
                dst,
                src
            }),
            (arb_aluop(), arb_reg(), any::<i64>()).prop_map(|(op, dst, imm)| Insn::AluRI {
                op,
                dst,
                imm
            }),
            (arb_reg(), arb_reg()).prop_map(|(a, b)| Insn::CmpRR { a, b }),
            (arb_reg(), any::<i64>()).prop_map(|(a, imm)| Insn::CmpRI { a, imm }),
            any::<i32>().prop_map(|rel| Insn::Jmp { rel }),
            (arb_cond(), any::<i32>()).prop_map(|(cc, rel)| Insn::Jcc { cc, rel }),
            any::<i32>().prop_map(|rel| Insn::CallRel { rel }),
            arb_reg().prop_map(|target| Insn::CallInd { target }),
            any::<u64>().prop_map(|addr| Insn::CallMem { addr }),
            arb_reg().prop_map(|src| Insn::Push { src }),
            arb_reg().prop_map(|dst| Insn::Pop { dst }),
            Just(Insn::Ret),
            Just(Insn::Halt),
            Just(Insn::Sti),
            Just(Insn::Cli),
            any::<u8>().prop_map(|nr| Insn::Hypercall { nr }),
            arb_reg().prop_map(|dst| Insn::Rdtsc { dst }),
            Just(Insn::Pause),
            arb_reg().prop_map(|src| Insn::Out { src }),
            (arb_reg(), arb_reg()).prop_map(|(val, base)| Insn::XchgLock { val, base }),
            (arb_cond(), arb_reg()).prop_map(|(cc, dst)| Insn::Setcc { cc, dst }),
            Just(Insn::Mfence),
            Just(Insn::Trap),
            (1u8..=15).prop_map(|len| Insn::Nop { len }),
        ]
    }

    proptest! {
        /// Every instruction round-trips through encode/decode, and the
        /// reported length matches the emitted byte count.
        #[test]
        fn roundtrip(insn in arb_insn()) {
            let bytes = encode(&insn);
            prop_assert_eq!(bytes.len(), insn.len());
            let (back, n) = decode(&bytes).unwrap();
            prop_assert_eq!(back, insn);
            prop_assert_eq!(n, bytes.len());
        }

        /// Decoding never panics on arbitrary bytes.
        #[test]
        fn decode_total(bytes in proptest::collection::vec(any::<u8>(), 0..32)) {
            let _ = decode(&bytes);
        }

        /// A truncated valid encoding reports `Truncated`, not garbage.
        #[test]
        fn truncation_detected(insn in arb_insn(), cut in 1usize..10) {
            let bytes = encode(&insn);
            if cut < bytes.len() {
                let short = &bytes[..bytes.len() - cut];
                match decode(short) {
                    Err(_) => {}
                    // A prefix may itself decode to a shorter instruction
                    // only if its reported length fits the prefix.
                    Ok((_, n)) => prop_assert!(n <= short.len()),
                }
            }
        }
    }

    #[test]
    fn zero_byte_is_invalid() {
        assert_eq!(decode(&[0u8]), Err(DecodeError::BadOpcode(0)));
    }

    #[test]
    fn empty_is_truncated() {
        assert_eq!(decode(&[]), Err(DecodeError::Truncated));
    }

    #[test]
    fn x86_like_opcodes() {
        let (insn, n) = decode(&[0xE8, 1, 0, 0, 0]).unwrap();
        assert_eq!(insn, Insn::CallRel { rel: 1 });
        assert_eq!(n, 5);
        let (insn, n) = decode(&[0xE9, 0xFF, 0xFF, 0xFF, 0xFF]).unwrap();
        assert_eq!(insn, Insn::Jmp { rel: -1 });
        assert_eq!(n, 5);
    }
}
