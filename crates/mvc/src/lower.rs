//! Semantic analysis and AST → IR lowering.

use crate::ast::*;
use crate::error::CompileError;
use crate::ir::{self, Callee, FuncIr, Inst, Intrinsic, IrBin, IrUn, Operand, Term};
use crate::types::{EnumDef, Type};
use std::collections::HashMap;

/// Information about a global variable.
#[derive(Clone, Debug)]
pub struct GlobalInfo {
    /// Element type.
    pub ty: Type,
    /// Array length for arrays.
    pub array: Option<u64>,
    /// Attributes.
    pub attrs: Attrs,
    /// Constant initializer value (scalars).
    pub init_const: Option<i64>,
    /// Initializer referencing a function/global address.
    pub init_addr_of: Option<String>,
}

impl GlobalInfo {
    /// Total storage size in bytes.
    pub fn size(&self) -> u64 {
        self.ty.size() * self.array.unwrap_or(1)
    }

    /// `true` if this global is a multiverse configuration switch.
    pub fn is_switch(&self) -> bool {
        self.attrs.multiverse && self.array.is_none()
    }
}

/// A function signature.
#[derive(Clone, Debug)]
pub struct FnSig {
    /// Return type.
    pub ret: Type,
    /// Parameter types.
    pub params: Vec<Type>,
    /// Attributes.
    pub attrs: Attrs,
    /// Defined (has a body) in this unit.
    pub defined: bool,
}

/// Per-translation-unit semantic context.
#[derive(Clone, Debug, Default)]
pub struct Ctx {
    /// Global variables by name.
    pub globals: HashMap<String, GlobalInfo>,
    /// Functions by name.
    pub funcs: HashMap<String, FnSig>,
    /// Enum definitions by name.
    pub enums: HashMap<String, EnumDef>,
    /// Enumerator constants by name.
    pub enumerators: HashMap<String, i64>,
}

impl Ctx {
    /// Domain of the configuration switch `name` (§3): the explicit
    /// `multiverse(values…)` list, all enumerators for enum-typed switches,
    /// `{0, 1}` otherwise.
    pub fn switch_domain(&self, name: &str) -> Vec<i64> {
        let Some(g) = self.globals.get(name) else {
            return vec![];
        };
        if let Some(dom) = &g.attrs.domain {
            return dom.clone();
        }
        if let Type::Enum(e) = &g.ty {
            if let Some(def) = self.enums.get(e) {
                return def.items.iter().map(|(_, v)| *v).collect();
            }
        }
        vec![0, 1]
    }
}

/// Output of lowering one unit.
pub struct Lowered {
    /// Function bodies in IR (defined functions only).
    pub funcs: Vec<FuncIr>,
    /// Semantic context (globals, signatures, enums).
    pub ctx: Ctx,
}

fn sema_err<T>(msg: impl Into<String>) -> Result<T, CompileError> {
    Err(CompileError::Sema { msg: msg.into() })
}

/// Evaluates a constant initializer expression.
fn const_eval(e: &Expr, ctx: &Ctx) -> Result<ConstInit, CompileError> {
    match e {
        Expr::Int(v, _) => Ok(ConstInit::Int(*v)),
        Expr::Un(UnOp::Neg, inner, _) => match const_eval(inner, ctx)? {
            ConstInit::Int(v) => Ok(ConstInit::Int(v.wrapping_neg())),
            _ => sema_err("cannot negate an address initializer"),
        },
        Expr::Ident(name, _) => ctx
            .enumerators
            .get(name)
            .map(|&v| ConstInit::Int(v))
            .ok_or_else(|| CompileError::Sema {
                msg: format!("initializer `{name}` is not a constant"),
            }),
        Expr::AddrOf(name, _) => Ok(ConstInit::AddrOf(name.clone())),
        _ => sema_err("global initializers must be constant expressions"),
    }
}

enum ConstInit {
    Int(i64),
    AddrOf(String),
}

/// Builds the semantic context and lowers every defined function.
pub fn lower_unit(unit: &Unit) -> Result<Lowered, CompileError> {
    let mut ctx = Ctx::default();

    // Pass 1: collect enums first (types may reference them).
    for item in &unit.items {
        if let Item::Enum(e) = item {
            for (n, v) in &e.items {
                if ctx.enumerators.insert(n.clone(), *v).is_some() {
                    return sema_err(format!("duplicate enumerator `{n}`"));
                }
            }
            if ctx.enums.insert(e.name.clone(), e.clone()).is_some() {
                return sema_err(format!("duplicate enum `{}`", e.name));
            }
        }
    }

    // Pass 2: collect globals and function signatures.
    for item in &unit.items {
        match item {
            Item::Global(g) => {
                if let Type::Enum(e) = &g.ty {
                    if !ctx.enums.contains_key(e) {
                        return sema_err(format!("unknown type `{e}` for global `{}`", g.name));
                    }
                }
                if g.attrs.multiverse {
                    if g.array.is_some() {
                        return sema_err(format!(
                            "array `{}` cannot be a configuration switch",
                            g.name
                        ));
                    }
                    if !g.ty.switchable() {
                        return sema_err(format!(
                            "`{}` has type {}, not usable as a configuration switch \
                             (integer, bool, enum or fnptr required)",
                            g.name, g.ty
                        ));
                    }
                }
                let (mut init_const, mut init_addr_of) = (None, None);
                if let Some(init) = &g.init {
                    match const_eval(init, &ctx)? {
                        ConstInit::Int(v) => init_const = Some(v),
                        ConstInit::AddrOf(s) => init_addr_of = Some(s),
                    }
                }
                let info = GlobalInfo {
                    ty: g.ty.clone(),
                    array: g.array,
                    attrs: g.attrs.clone(),
                    init_const,
                    init_addr_of,
                };
                if ctx.globals.insert(g.name.clone(), info).is_some() {
                    return sema_err(format!("duplicate global `{}`", g.name));
                }
            }
            Item::Func(f) => {
                let sig = FnSig {
                    ret: f.ret.clone(),
                    params: f.params.iter().map(|(_, t)| t.clone()).collect(),
                    attrs: f.attrs.clone(),
                    defined: f.body.is_some(),
                };
                match ctx.funcs.get(&f.name) {
                    Some(prev) if prev.defined && f.body.is_some() => {
                        return sema_err(format!("duplicate function `{}`", f.name));
                    }
                    Some(prev) if prev.defined => {} // definition then decl: keep
                    _ => {
                        ctx.funcs.insert(f.name.clone(), sig);
                    }
                }
            }
            Item::Enum(_) => {}
        }
    }

    // Pass 3: lower bodies.
    let mut funcs = Vec::new();
    for item in &unit.items {
        if let Item::Func(f) = item {
            if let Some(body) = &f.body {
                funcs.push(lower_fn(f, body, &ctx)?);
            }
        }
    }
    Ok(Lowered { funcs, ctx })
}

struct FnLower<'a> {
    ir: FuncIr,
    ctx: &'a Ctx,
    cur: ir::BlockId,
    scopes: Vec<HashMap<String, (ir::SlotId, Type)>>,
    loop_stack: Vec<(ir::BlockId, ir::BlockId)>, // (continue target, break target)
    terminated: bool,
}

fn lower_fn(f: &Func, body: &Block, ctx: &Ctx) -> Result<FuncIr, CompileError> {
    let mut ir = FuncIr::new(&f.name, f.params.len() as u32, f.ret != Type::Void);
    ir.attrs.multiverse = f.attrs.multiverse;
    ir.attrs.pvop_cc = f.attrs.pvop_cc;
    ir.attrs.bind = f.attrs.bind.clone();
    let mut lw = FnLower {
        ir,
        ctx,
        cur: 0,
        scopes: vec![HashMap::new()],
        loop_stack: Vec::new(),
        terminated: false,
    };
    for (i, (name, ty)) in f.params.iter().enumerate() {
        lw.scopes[0].insert(name.clone(), (i as u32, ty.clone()));
    }
    lw.block(body)?;
    if !lw.terminated {
        let ret = if f.ret == Type::Void {
            Term::Ret(None)
        } else {
            Term::Ret(Some(Operand::Const(0)))
        };
        lw.ir.blocks[lw.cur as usize].term = ret;
    }
    lw.ir.validate();
    Ok(lw.ir)
}

impl<'a> FnLower<'a> {
    fn emit(&mut self, inst: Inst) {
        if !self.terminated {
            self.ir.blocks[self.cur as usize].insts.push(inst);
        }
    }

    fn set_term(&mut self, term: Term) {
        if !self.terminated {
            self.ir.blocks[self.cur as usize].term = term;
            self.terminated = true;
        }
    }

    fn switch_to(&mut self, b: ir::BlockId) {
        self.cur = b;
        self.terminated = false;
    }

    fn lookup_local(&self, name: &str) -> Option<(ir::SlotId, Type)> {
        for scope in self.scopes.iter().rev() {
            if let Some(v) = scope.get(name) {
                return Some(v.clone());
            }
        }
        None
    }

    fn block(&mut self, b: &Block) -> Result<(), CompileError> {
        self.scopes.push(HashMap::new());
        for s in &b.stmts {
            self.stmt(s)?;
        }
        self.scopes.pop();
        Ok(())
    }

    fn stmt(&mut self, s: &Stmt) -> Result<(), CompileError> {
        match s {
            Stmt::Local { name, ty, init, .. } => {
                let slot = self.ir.slot();
                self.scopes
                    .last_mut()
                    .expect("scope stack non-empty")
                    .insert(name.clone(), (slot, ty.clone()));
                if let Some(e) = init {
                    let (v, _) = self.expr(e)?;
                    self.emit(Inst::StoreLocal { slot, src: v });
                }
                Ok(())
            }
            Stmt::Expr(e) => {
                self.expr(e)?;
                Ok(())
            }
            Stmt::If { cond, then, els } => {
                let (c, _) = self.expr(cond)?;
                let then_bb = self.ir.new_block();
                let exit_bb = self.ir.new_block();
                let else_bb = if els.is_some() {
                    self.ir.new_block()
                } else {
                    exit_bb
                };
                self.set_term(Term::Br {
                    cond: c,
                    t: then_bb,
                    f: else_bb,
                });
                self.switch_to(then_bb);
                self.block(then)?;
                self.set_term(Term::Jmp(exit_bb));
                if let Some(e) = els {
                    self.switch_to(else_bb);
                    self.block(e)?;
                    self.set_term(Term::Jmp(exit_bb));
                }
                self.switch_to(exit_bb);
                Ok(())
            }
            Stmt::While { cond, body } => {
                let cond_bb = self.ir.new_block();
                let body_bb = self.ir.new_block();
                let exit_bb = self.ir.new_block();
                self.set_term(Term::Jmp(cond_bb));
                self.switch_to(cond_bb);
                let (c, _) = self.expr(cond)?;
                self.set_term(Term::Br {
                    cond: c,
                    t: body_bb,
                    f: exit_bb,
                });
                self.loop_stack.push((cond_bb, exit_bb));
                self.switch_to(body_bb);
                self.block(body)?;
                self.set_term(Term::Jmp(cond_bb));
                self.loop_stack.pop();
                self.switch_to(exit_bb);
                Ok(())
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                self.scopes.push(HashMap::new());
                if let Some(i) = init {
                    self.stmt(i)?;
                }
                let cond_bb = self.ir.new_block();
                let body_bb = self.ir.new_block();
                let step_bb = self.ir.new_block();
                let exit_bb = self.ir.new_block();
                self.set_term(Term::Jmp(cond_bb));
                self.switch_to(cond_bb);
                match cond {
                    Some(c) => {
                        let (v, _) = self.expr(c)?;
                        self.set_term(Term::Br {
                            cond: v,
                            t: body_bb,
                            f: exit_bb,
                        });
                    }
                    None => self.set_term(Term::Jmp(body_bb)),
                }
                self.loop_stack.push((step_bb, exit_bb));
                self.switch_to(body_bb);
                self.block(body)?;
                self.set_term(Term::Jmp(step_bb));
                self.loop_stack.pop();
                self.switch_to(step_bb);
                if let Some(e) = step {
                    self.expr(e)?;
                }
                self.set_term(Term::Jmp(cond_bb));
                self.switch_to(exit_bb);
                self.scopes.pop();
                Ok(())
            }
            Stmt::Return(e) => {
                let v = match e {
                    Some(e) => Some(self.expr(e)?.0),
                    None => None,
                };
                self.set_term(Term::Ret(v));
                // Statements after a return land in a fresh unreachable
                // block (dropped by CFG cleanup).
                let dead = self.ir.new_block();
                self.switch_to(dead);
                Ok(())
            }
            Stmt::Break(pos) => {
                let Some(&(_, brk)) = self.loop_stack.last() else {
                    return sema_err(format!("`break` outside a loop at {pos}"));
                };
                self.set_term(Term::Jmp(brk));
                let dead = self.ir.new_block();
                self.switch_to(dead);
                Ok(())
            }
            Stmt::Continue(pos) => {
                let Some(&(cont, _)) = self.loop_stack.last() else {
                    return sema_err(format!("`continue` outside a loop at {pos}"));
                };
                self.set_term(Term::Jmp(cont));
                let dead = self.ir.new_block();
                self.switch_to(dead);
                Ok(())
            }
            Stmt::Block(b) => self.block(b),
        }
    }

    /// Lowers an expression; returns its value operand and (approximate)
    /// type for signedness decisions.
    fn expr(&mut self, e: &Expr) -> Result<(Operand, Type), CompileError> {
        match e {
            Expr::Int(v, _) => Ok((Operand::Const(*v), Type::I64)),
            Expr::Ident(name, pos) => {
                if let Some((slot, ty)) = self.lookup_local(name) {
                    let dst = self.ir.temp();
                    self.emit(Inst::LoadLocal { dst, slot });
                    return Ok((Operand::Temp(dst), ty));
                }
                if let Some(&v) = self.ctx.enumerators.get(name) {
                    return Ok((Operand::Const(v), Type::I32));
                }
                if let Some(g) = self.ctx.globals.get(name) {
                    if g.array.is_some() {
                        // Arrays decay to their address.
                        let dst = self.ir.temp();
                        self.emit(Inst::AddrOf {
                            dst,
                            symbol: name.clone(),
                        });
                        return Ok((Operand::Temp(dst), Type::Ptr(Box::new(g.ty.clone()))));
                    }
                    let dst = self.ir.temp();
                    self.emit(Inst::LoadGlobal {
                        dst,
                        global: name.clone(),
                        width: g.ty.size() as u8,
                        signed: g.ty.signed(),
                    });
                    return Ok((Operand::Temp(dst), g.ty.clone()));
                }
                sema_err(format!("undefined name `{name}` at {pos}"))
            }
            Expr::Un(op, inner, _) => {
                let (a, ty) = self.expr(inner)?;
                let irop = match op {
                    UnOp::Neg => IrUn::Neg,
                    UnOp::Not => IrUn::Not,
                    UnOp::BitNot => IrUn::BitNot,
                };
                let dst = self.ir.temp();
                self.emit(Inst::Un { op: irop, dst, a });
                Ok((Operand::Temp(dst), ty))
            }
            Expr::Bin(op, l, r, _) => self.bin(*op, l, r),
            Expr::Assign(lhs, rhs, pos) => {
                let (v, vty) = self.expr(rhs)?;
                match &**lhs {
                    Expr::Ident(name, _) => {
                        if let Some((slot, _)) = self.lookup_local(name) {
                            self.emit(Inst::StoreLocal { slot, src: v });
                        } else if let Some(g) = self.ctx.globals.get(name) {
                            if g.array.is_some() {
                                return sema_err(format!("cannot assign to array `{name}`"));
                            }
                            self.emit(Inst::StoreGlobal {
                                global: name.clone(),
                                src: v,
                                width: g.ty.size() as u8,
                            });
                        } else {
                            return sema_err(format!("undefined name `{name}` at {pos}"));
                        }
                    }
                    Expr::Index(base, idx, _) => {
                        let (addr, elem) = self.element_addr(base, idx)?;
                        self.emit(Inst::StoreMem {
                            addr,
                            src: v,
                            width: elem.size() as u8,
                        });
                    }
                    other => {
                        return sema_err(format!("invalid assignment target at {:?}", other.pos()))
                    }
                }
                Ok((v, vty))
            }
            Expr::Call { callee, args, pos } => {
                let mut ops = Vec::new();
                for a in args {
                    ops.push(self.expr(a)?.0);
                }
                if ops.len() > 6 {
                    return sema_err(format!("more than six arguments at {pos}"));
                }
                // Direct function, or a fnptr global.
                if let Some(sig) = self.ctx.funcs.get(callee) {
                    if sig.params.len() != ops.len() {
                        return sema_err(format!(
                            "`{callee}` expects {} arguments, got {} at {pos}",
                            sig.params.len(),
                            ops.len()
                        ));
                    }
                    let ret = sig.ret.clone();
                    let dst = (ret != Type::Void).then(|| self.ir.temp());
                    self.emit(Inst::Call {
                        dst,
                        callee: Callee::Direct(callee.clone()),
                        args: ops,
                    });
                    return Ok((
                        dst.map(Operand::Temp).unwrap_or(Operand::Const(0)),
                        if ret == Type::Void { Type::I64 } else { ret },
                    ));
                }
                if let Some(g) = self.ctx.globals.get(callee) {
                    if g.ty != Type::Fnptr {
                        return sema_err(format!("`{callee}` is not callable at {pos}"));
                    }
                    let dst = self.ir.temp();
                    self.emit(Inst::Call {
                        dst: Some(dst),
                        callee: Callee::Ptr(callee.clone()),
                        args: ops,
                    });
                    return Ok((Operand::Temp(dst), Type::I64));
                }
                sema_err(format!("call to undefined `{callee}` at {pos}"))
            }
            Expr::Intrinsic { name, args, pos } => self.intrinsic(name, args, *pos),
            Expr::Index(base, idx, _) => {
                let (addr, elem) = self.element_addr(base, idx)?;
                let dst = self.ir.temp();
                self.emit(Inst::LoadMem {
                    dst,
                    addr,
                    width: elem.size() as u8,
                    signed: elem.signed(),
                });
                Ok((Operand::Temp(dst), elem))
            }
            Expr::AddrOf(name, pos) => {
                if self.ctx.funcs.contains_key(name) || self.ctx.globals.contains_key(name) {
                    let dst = self.ir.temp();
                    self.emit(Inst::AddrOf {
                        dst,
                        symbol: name.clone(),
                    });
                    Ok((Operand::Temp(dst), Type::Ptr(Box::new(Type::U8))))
                } else {
                    sema_err(format!("cannot take address of `{name}` at {pos}"))
                }
            }
        }
    }

    /// Computes the element address and element type for `base[idx]`.
    fn element_addr(&mut self, base: &Expr, idx: &Expr) -> Result<(Operand, Type), CompileError> {
        let (b, bty) = self.expr(base)?;
        let elem = match bty.pointee() {
            Some(t) => t.clone(),
            None => {
                return sema_err(format!(
                    "indexing non-pointer type {bty} at {:?}",
                    base.pos()
                ))
            }
        };
        let (i, _) = self.expr(idx)?;
        let scaled = if elem.size() == 1 {
            i
        } else {
            let t = self.ir.temp();
            self.emit(Inst::Bin {
                op: IrBin::Mul,
                dst: t,
                a: i,
                b: Operand::Const(elem.size() as i64),
            });
            Operand::Temp(t)
        };
        let addr = self.ir.temp();
        self.emit(Inst::Bin {
            op: IrBin::Add,
            dst: addr,
            a: b,
            b: scaled,
        });
        Ok((Operand::Temp(addr), elem))
    }

    fn bin(&mut self, op: BinOp, l: &Expr, r: &Expr) -> Result<(Operand, Type), CompileError> {
        // Short-circuit operators with potentially effectful right side.
        if matches!(op, BinOp::LogAnd | BinOp::LogOr) && !is_pure(r) {
            return self.short_circuit(op, l, r);
        }
        let (a, lty) = self.expr(l)?;
        let (b, rty) = self.expr(r)?;
        let unsigned = !lty.signed() && lty.size() >= 1 && matches!(lty, Type::Int { .. })
            || !rty.signed() && matches!(rty, Type::Int { .. })
            || matches!(lty, Type::Ptr(_))
            || matches!(rty, Type::Ptr(_));
        let irop = match op {
            BinOp::Add => IrBin::Add,
            BinOp::Sub => IrBin::Sub,
            BinOp::Mul => IrBin::Mul,
            BinOp::Div => {
                if unsigned {
                    IrBin::Divu
                } else {
                    IrBin::Divs
                }
            }
            BinOp::Rem => {
                if unsigned {
                    IrBin::Remu
                } else {
                    IrBin::Rems
                }
            }
            BinOp::And => IrBin::And,
            BinOp::Or => IrBin::Or,
            BinOp::Xor => IrBin::Xor,
            BinOp::Shl => IrBin::Shl,
            BinOp::Shr => {
                if unsigned {
                    IrBin::Shru
                } else {
                    IrBin::Shrs
                }
            }
            BinOp::Lt => {
                if unsigned {
                    IrBin::CmpLtu
                } else {
                    IrBin::CmpLts
                }
            }
            BinOp::Le => {
                if unsigned {
                    IrBin::CmpLeu
                } else {
                    IrBin::CmpLes
                }
            }
            BinOp::Gt => {
                if unsigned {
                    IrBin::CmpGtu
                } else {
                    IrBin::CmpGts
                }
            }
            BinOp::Ge => {
                if unsigned {
                    IrBin::CmpGeu
                } else {
                    IrBin::CmpGes
                }
            }
            BinOp::Eq => IrBin::CmpEq,
            BinOp::Ne => IrBin::CmpNe,
            BinOp::LogAnd | BinOp::LogOr => {
                // Both sides pure: evaluate eagerly as (l != 0) op (r != 0).
                let ta = self.ir.temp();
                self.emit(Inst::Bin {
                    op: IrBin::CmpNe,
                    dst: ta,
                    a,
                    b: Operand::Const(0),
                });
                let tb = self.ir.temp();
                self.emit(Inst::Bin {
                    op: IrBin::CmpNe,
                    dst: tb,
                    a: b,
                    b: Operand::Const(0),
                });
                let dst = self.ir.temp();
                self.emit(Inst::Bin {
                    op: if op == BinOp::LogAnd {
                        IrBin::And
                    } else {
                        IrBin::Or
                    },
                    dst,
                    a: Operand::Temp(ta),
                    b: Operand::Temp(tb),
                });
                return Ok((Operand::Temp(dst), Type::Bool));
            }
        };
        let dst = self.ir.temp();
        self.emit(Inst::Bin {
            op: irop,
            dst,
            a,
            b,
        });
        let ty = match op {
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne => Type::Bool,
            _ => {
                if unsigned {
                    Type::Int {
                        width: 8,
                        signed: false,
                    }
                } else {
                    lty
                }
            }
        };
        Ok((Operand::Temp(dst), ty))
    }

    fn short_circuit(
        &mut self,
        op: BinOp,
        l: &Expr,
        r: &Expr,
    ) -> Result<(Operand, Type), CompileError> {
        let result = self.ir.slot();
        let (a, _) = self.expr(l)?;
        let rhs_bb = self.ir.new_block();
        let skip_bb = self.ir.new_block();
        let join_bb = self.ir.new_block();
        let (t, f, skip_val) = if op == BinOp::LogAnd {
            (rhs_bb, skip_bb, 0)
        } else {
            (skip_bb, rhs_bb, 1)
        };
        self.set_term(Term::Br { cond: a, t, f });
        self.switch_to(rhs_bb);
        let (b, _) = self.expr(r)?;
        let tb = self.ir.temp();
        self.emit(Inst::Bin {
            op: IrBin::CmpNe,
            dst: tb,
            a: b,
            b: Operand::Const(0),
        });
        self.emit(Inst::StoreLocal {
            slot: result,
            src: Operand::Temp(tb),
        });
        self.set_term(Term::Jmp(join_bb));
        self.switch_to(skip_bb);
        self.emit(Inst::StoreLocal {
            slot: result,
            src: Operand::Const(skip_val),
        });
        self.set_term(Term::Jmp(join_bb));
        self.switch_to(join_bb);
        let dst = self.ir.temp();
        self.emit(Inst::LoadLocal { dst, slot: result });
        Ok((Operand::Temp(dst), Type::Bool))
    }

    fn intrinsic(
        &mut self,
        name: &str,
        args: &[Expr],
        pos: crate::token::Pos,
    ) -> Result<(Operand, Type), CompileError> {
        let mut ops = Vec::new();
        for a in args {
            ops.push(self.expr(a)?.0);
        }
        let (kind, n_args, has_ret) = match name {
            "__xchg" => (Intrinsic::Xchg, 2, true),
            "__cli" => (Intrinsic::Cli, 0, false),
            "__sti" => (Intrinsic::Sti, 0, false),
            "__hypercall" => (Intrinsic::Hypercall, 1, false),
            "__rdtsc" => (Intrinsic::Rdtsc, 0, true),
            "__out" => (Intrinsic::Out, 1, false),
            "__pause" => (Intrinsic::Pause, 0, false),
            "__mfence" => (Intrinsic::Mfence, 0, false),
            "__halt" => (Intrinsic::Halt, 0, false),
            other => return sema_err(format!("unknown intrinsic `{other}` at {pos}")),
        };
        if ops.len() != n_args {
            return sema_err(format!(
                "`{name}` expects {n_args} argument(s), got {} at {pos}",
                ops.len()
            ));
        }
        let dst = has_ret.then(|| self.ir.temp());
        self.emit(Inst::Intr {
            dst,
            kind,
            args: ops,
        });
        Ok((
            dst.map(Operand::Temp).unwrap_or(Operand::Const(0)),
            Type::I64,
        ))
    }
}

/// `true` if evaluating `e` has no side effects (safe to evaluate eagerly).
fn is_pure(e: &Expr) -> bool {
    match e {
        Expr::Int(..) | Expr::Ident(..) | Expr::AddrOf(..) => true,
        Expr::Un(_, x, _) => is_pure(x),
        Expr::Bin(_, a, b, _) => is_pure(a) && is_pure(b),
        Expr::Index(a, b, _) => is_pure(a) && is_pure(b),
        Expr::Assign(..) | Expr::Call { .. } | Expr::Intrinsic { .. } => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;

    fn lower_src(src: &str) -> Lowered {
        lower_unit(&parse(&lex(src).unwrap()).unwrap()).unwrap()
    }

    #[test]
    fn lowers_simple_function() {
        let l = lower_src("i64 add(i64 a, i64 b) { return a + b; }");
        assert_eq!(l.funcs.len(), 1);
        let f = &l.funcs[0];
        assert_eq!(f.n_params, 2);
        assert!(f.has_ret);
        f.validate();
    }

    #[test]
    fn switch_domain_rules() {
        let l = lower_src(
            "multiverse bool a; multiverse(2,4,6) i32 b; \
             enum m { X, Y = 7 }; multiverse enum m c;",
        );
        assert_eq!(l.ctx.switch_domain("a"), vec![0, 1]);
        assert_eq!(l.ctx.switch_domain("b"), vec![2, 4, 6]);
        assert_eq!(l.ctx.switch_domain("c"), vec![0, 7]);
    }

    #[test]
    fn rejects_bad_switch_types() {
        let bad = parse(&lex("multiverse u8* p;").unwrap()).unwrap();
        assert!(lower_unit(&bad).is_err());
        let arr = parse(&lex("multiverse i32 a[4];").unwrap()).unwrap();
        assert!(lower_unit(&arr).is_err());
    }

    #[test]
    fn fnptr_global_is_switchable() {
        let l = lower_src("multiverse fnptr op;");
        assert!(l.ctx.globals["op"].is_switch());
    }

    #[test]
    fn rejects_undefined_names() {
        let u = parse(&lex("void f(void) { x = 1; }").unwrap()).unwrap();
        assert!(lower_unit(&u).is_err());
        let u = parse(&lex("void f(void) { g(); }").unwrap()).unwrap();
        assert!(lower_unit(&u).is_err());
    }

    #[test]
    fn rejects_arity_mismatch() {
        let u = parse(&lex("void g(i64 x) {} void f(void) { g(); }").unwrap()).unwrap();
        assert!(lower_unit(&u).is_err());
    }

    #[test]
    fn break_outside_loop_is_error() {
        let u = parse(&lex("void f(void) { break; }").unwrap()).unwrap();
        assert!(lower_unit(&u).is_err());
    }

    #[test]
    fn loops_and_branches_validate() {
        let l = lower_src(
            r#"
            i64 acc;
            void f(i64 n) {
                for (i64 i = 0; i < n; i++) {
                    if (i % 2 == 0) { continue; }
                    if (i > 100) { break; }
                    acc = acc + i;
                }
                while (acc > 10) { acc = acc - 1; }
            }
            "#,
        );
        l.funcs[0].validate();
        assert!(l.funcs[0].blocks.len() > 5);
    }

    #[test]
    fn short_circuit_generates_blocks() {
        let l = lower_src(
            "i64 g(void) { return 1; } \
             i64 f(i64 x) { if (x && g()) { return 1; } return 0; }",
        );
        let f = l.funcs.iter().find(|f| f.name == "f").unwrap();
        f.validate();
        // Call to g must be in a separate block, reachable only when x != 0.
        assert!(f.blocks.len() >= 4);
    }

    #[test]
    fn global_initializers_are_recorded() {
        let l = lower_src("i64 x = -5; fnptr op = &f; void f(void) {}");
        assert_eq!(l.ctx.globals["x"].init_const, Some(-5));
        assert_eq!(l.ctx.globals["op"].init_addr_of.as_deref(), Some("f"));
    }

    #[test]
    fn enum_constants_fold() {
        let l = lower_src("enum e { A = 3 }; i64 f(void) { return A; }");
        let f = &l.funcs[0];
        // The enumerator lowers to a constant return.
        let has_const_ret = f
            .blocks
            .iter()
            .any(|b| matches!(b.term, Term::Ret(Some(Operand::Const(3)))));
        assert!(has_const_ret);
    }

    #[test]
    fn array_indexing_scales() {
        let l = lower_src("u64 tab[8]; u64 f(i64 i) { return tab[i]; }");
        let f = &l.funcs[0];
        f.validate();
        let has_mul = f.blocks.iter().any(|b| {
            b.insts.iter().any(|i| {
                matches!(
                    i,
                    Inst::Bin {
                        op: IrBin::Mul,
                        b: Operand::Const(8),
                        ..
                    }
                )
            })
        });
        assert!(has_mul, "index must scale by element size 8");
    }

    #[test]
    fn intrinsics_lower() {
        let l = lower_src(
            "i64 lock_word; void f(void) { __cli(); \
             while (__xchg(&lock_word, 1) != 0) { __pause(); } __sti(); }",
        );
        l.funcs[0].validate();
    }
}
