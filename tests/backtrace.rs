//! Backtrace support: the saved-`bp` chain of framed functions is
//! walkable mid-execution, and the return addresses symbolize to the
//! expected call stack — including through patched variants.

use multiverse::Program;

const SRC: &str = r#"
    multiverse bool deep;
    u64 probe_bp;

    // leaf() is big enough that the inliner leaves it out of line, and
    // its locals force a frame.
    i64 leaf(i64 x) {
        i64 v = x * 3;
        i64 a = v + 1;
        i64 b = a * 2;
        i64 c = b - x;
        i64 d = c ^ 9;
        i64 e = d + a;
        i64 g = e * b;
        i64 h = g - c;
        __out(v);
        return v + (h & 0);
    }

    multiverse i64 middle(i64 x) {
        if (deep) {
            return leaf(x + 1);
        }
        return x;
    }

    i64 outer(i64 x) {
        i64 r = middle(x);
        return r + 100;
    }

    i64 main(void) { return 0; }
"#;

#[test]
fn bp_chain_symbolizes_through_committed_variants() {
    let program = Program::build(&[("t.c", SRC)]).unwrap();
    let mut w = program.boot();
    w.set("deep", 1).unwrap();
    w.commit().unwrap();

    // Run until the machine is inside leaf() (detect via the `out`
    // instruction), then walk the stack.
    let outer = w.sym("outer").unwrap();
    let exe = program.exe().clone();
    let m = &mut w.machine;
    // Manually drive a call so we can stop mid-execution.
    m.cpu.set(multiverse::mvasm::Reg::R0, 7);
    let sp = m.cpu.get(multiverse::mvasm::Reg::SP);
    m.mem
        .write_int(sp - 8, multiverse::mvvm::machine::RET_SENTINEL, 8)
        .unwrap();
    m.cpu.set(multiverse::mvasm::Reg::SP, sp - 8);
    m.cpu.pc = outer;
    let out_before = m.output().len();
    for _ in 0..10_000 {
        m.step().unwrap();
        if m.output().len() > out_before {
            break; // the __out inside leaf just retired
        }
    }
    assert!(m.output().len() > out_before, "reached leaf()");

    let bt = m.backtrace(8);
    assert!(!bt.is_empty(), "at least the call into leaf is visible");
    // The innermost return address lies inside the committed variant
    // middle.deep=1, and the next one inside outer.
    let names: Vec<&str> = bt
        .iter()
        .filter_map(|&a| exe.symbolize(a).map(|(n, _)| n))
        .collect();
    assert!(
        names.iter().any(|n| n.starts_with("middle")),
        "middle frame present: {names:?}"
    );
    assert!(names.contains(&"outer"), "outer frame present: {names:?}");
}
