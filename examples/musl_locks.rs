//! The Fig. 5 musl scenario: lock elision keyed on the live thread
//! count, re-committed as threads come and go.
//!
//! ```sh
//! cargo run --release --example musl_locks
//! ```

use mv_workloads::musl::{boot, run_bench, LibcFn, MuslBuild, ThreadMode};

fn main() {
    let n = 10_000;

    println!("Fig. 5 — cycles per call, {n} calls each:");
    println!(
        "{:34} {:>10} {:>10} {:>10} {:>11}",
        "", "random()", "malloc(0)", "malloc(1)", "fputc('a')"
    );
    for threads in [ThreadMode::Single, ThreadMode::Multi] {
        for build in [MuslBuild::Without, MuslBuild::With] {
            let label = format!("{} | {}", threads.label(), build.label());
            print!("{label:34}");
            for f in LibcFn::all() {
                let mut w = boot(build, threads).unwrap();
                let (cycles, _) = run_bench(&mut w, f, n).unwrap();
                print!(" {:>10.2}", cycles as f64 / n as f64);
            }
            println!();
        }
    }

    // The transaction the paper sketches in §2: spawn a second thread →
    // flip the switch → commit; join it → flip back → commit.
    println!("\npthread_create / pthread_exit transitions:");
    let mut w = boot(MuslBuild::With, ThreadMode::Single).unwrap();
    let (fast, _) = run_bench(&mut w, LibcFn::Random, n).unwrap();
    println!(
        "  1 thread : {:6.2} cycles/random()",
        fast as f64 / n as f64
    );

    // pthread_create: threads_minus_1++ then commit.
    w.set("threads_minus_1", 1).unwrap();
    w.commit().unwrap();
    let (locked, _) = run_bench(&mut w, LibcFn::Random, n).unwrap();
    println!(
        "  2 threads: {:6.2} cycles/random() (locks live)",
        locked as f64 / n as f64
    );

    // pthread_exit of the second thread: back to lock-free.
    w.set("threads_minus_1", 0).unwrap();
    w.commit().unwrap();
    let (fast2, _) = run_bench(&mut w, LibcFn::Random, n).unwrap();
    println!(
        "  1 thread : {:6.2} cycles/random() (elided again)",
        fast2 as f64 / n as f64
    );

    assert!(fast < locked);
    let stats = w.rt.as_ref().unwrap().stats;
    println!(
        "\npatcher: {} sites patched ({} inlined) across the commits",
        stats.sites_patched, stats.sites_inlined
    );
}
