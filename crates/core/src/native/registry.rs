//! The commit/revert registry — Table 1's universal operations for the
//! native layer.

use parking_lot::Mutex;
use std::sync::OnceLock;

type Selector = Box<dyn Fn(bool) + Send + Sync>;

/// The process-wide registry, for programs that want Table 1's global
/// `multiverse_commit()` semantics without threading a registry around.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// A registry of selector functions.
///
/// Each selector receives `true` on commit — it should read its switches
/// and [`bind`](crate::native::MvFn0::bind) its cells — and `false` on
/// revert — it should re-bind generics. Selectors run under the registry
/// lock, so a commit is atomic with respect to other commits (individual
/// calls proceed concurrently, as in the paper's unsynchronized model).
#[derive(Default)]
pub struct Registry {
    selectors: Mutex<Vec<Selector>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Registers a selector. Returns its index (for diagnostics).
    pub fn register(&self, f: impl Fn(bool) + Send + Sync + 'static) -> usize {
        let mut s = self.selectors.lock();
        s.push(Box::new(f));
        s.len() - 1
    }

    /// `multiverse_commit()`: runs every selector in commit mode.
    pub fn commit(&self) {
        for f in self.selectors.lock().iter() {
            f(true);
        }
    }

    /// `multiverse_revert()`: runs every selector in revert mode.
    pub fn revert(&self) {
        for f in self.selectors.lock().iter() {
            f(false);
        }
    }

    /// Number of registered selectors.
    pub fn len(&self) -> usize {
        self.selectors.lock().len()
    }

    /// `true` if no selectors are registered.
    pub fn is_empty(&self) -> bool {
        self.selectors.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::native::{MvBool, MvFn0};

    static MODE: MvBool = MvBool::new(false);

    fn generic() -> i32 {
        if MODE.read() {
            10
        } else {
            20
        }
    }
    fn fast_on() -> i32 {
        10
    }
    fn fast_off() -> i32 {
        20
    }

    static WORK: MvFn0<i32> = MvFn0::new(&[generic, fast_off, fast_on]);

    #[test]
    fn commit_revert_cycle() {
        let mv = Registry::new();
        mv.register(|commit| {
            if commit {
                WORK.bind(if MODE.read() { 2 } else { 1 });
            } else {
                WORK.revert();
            }
        });
        assert_eq!(mv.len(), 1);

        MODE.write(true);
        mv.commit();
        assert_eq!(WORK.call(), 10);

        // Frozen-until-recommit semantics.
        MODE.write(false);
        assert_eq!(WORK.call(), 10);
        mv.commit();
        assert_eq!(WORK.call(), 20);

        mv.revert();
        assert_eq!(WORK.bound(), 0);
        MODE.write(true);
        assert_eq!(WORK.call(), 10, "generic is dynamic again");
        MODE.write(false);
        WORK.revert();
    }
}
