#![warn(missing_docs)]
//! Workspace root crate for the Multiverse (EuroSys'19) reproduction.
//!
//! All functionality lives in the member crates; this crate only hosts the
//! cross-crate integration tests under `tests/` and the runnable examples
//! under `examples/`. See [`multiverse`] for the user-facing API.
pub use multiverse as mv;
