//! The paper's kernel microbenchmarks measure themselves with
//! `rdtsc_ordered()` from inside the running system. The same must work
//! here: a guest program timing its own multiversed hot path with
//! `__rdtsc()` observes the commit's effect, and its numbers agree with
//! the host's cycle accounting.

use multiverse::Program;

const SRC: &str = r#"
    multiverse bool config_smp;
    i64 lock_word;

    multiverse void spin_lock(void) {
        if (config_smp) {
            while (__xchg(&lock_word, 1) != 0) { __pause(); }
        }
    }
    multiverse void spin_unlock(void) {
        if (config_smp) {
            lock_word = 0;
        }
    }

    // The in-kernel benchmark driver: time n lock/unlock pairs with the
    // TSC, as §6.1 does.
    i64 bench(i64 n) {
        i64 t0 = __rdtsc();
        for (i64 i = 0; i < n; i++) {
            spin_lock();
            spin_unlock();
        }
        i64 t1 = __rdtsc();
        return t1 - t0;
    }

    i64 main(void) { return 0; }
"#;

#[test]
fn guest_tsc_measures_the_commit_effect() {
    let program = Program::build(&[("t.c", SRC)]).unwrap();
    let mut w = program.boot();
    let n = 2000u64;

    // Dynamic binding, UP values.
    w.set("config_smp", 0).unwrap();
    let warm = w.call("bench", &[200]).unwrap(); // train predictors
    let _ = warm;
    let dynamic_cycles = w.call("bench", &[n]).unwrap();

    // Committed UP binding: the guest's own numbers must improve.
    w.commit().unwrap();
    w.call("bench", &[200]).unwrap();
    let committed_cycles = w.call("bench", &[n]).unwrap();
    assert!(
        committed_cycles < dynamic_cycles,
        "guest-visible speedup: {committed_cycles} !< {dynamic_cycles}"
    );

    // And the guest's measurement agrees with the host's TSC delta for
    // the same region (rdtsc is read from the same counter).
    let host_before = w.cycles();
    let guest_measured = w.call("bench", &[n]).unwrap();
    let host_delta = w.cycles() - host_before;
    assert!(
        guest_measured < host_delta,
        "guest interval is inside the host interval"
    );
    // The difference is the call/ret/rdtsc bracketing, a small constant.
    assert!(
        host_delta - guest_measured < 200,
        "bracketing overhead only: host {host_delta} vs guest {guest_measured}"
    );
}

#[test]
fn guest_observes_smp_cost_after_hotplug() {
    let program = Program::build(&[("t.c", SRC)]).unwrap();
    let mut w = program.boot();
    let n = 1000u64;

    w.set("config_smp", 0).unwrap();
    w.commit().unwrap();
    w.call("bench", &[100]).unwrap();
    let up = w.call("bench", &[n]).unwrap();

    // Hot-plug: multicore mode + SMP binding.
    w.machine.set_mode(multiverse::mvvm::MachineMode::Multicore);
    w.set("config_smp", 1).unwrap();
    w.commit().unwrap();
    w.call("bench", &[100]).unwrap();
    let smp = w.call("bench", &[n]).unwrap();

    assert!(
        smp > 2 * up,
        "the guest's own TSC sees the atomic cost appear: {smp} vs {up}"
    );
}
