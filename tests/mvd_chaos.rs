//! Chaos proof obligations for the `mvd` commit control plane.
//!
//! The daemon's contract under fault injection, proven deterministically
//! with [`FaultPlan`] schedules on the commit-storm workload:
//!
//! * **liveness** — the queue always drains: every submitted request is
//!   completed exactly once, no matter which op faults;
//! * **atomicity by replay** — the final text image is byte-identical
//!   to an *unfaulted serial replay* of exactly the requests that
//!   committed, in commit order, on a fresh world;
//! * **worker integrity** — every worker vCPU finishes with its exact
//!   iteration count;
//! * **robustness features** — one-shot faults heal inside the retry
//!   ladder, persistent faulters are quarantined with their full
//!   `source()` chains while unrelated commits land, and persistent
//!   breakpoint-quiesce failures degrade to stop-machine (and heal
//!   back) with a byte-identical image.

use multiverse::mvrt::{
    CommitDaemon, CommitPhase, CommitStrategy, Lane, MvdConfig, MvdOp, MvdOutcome, QuiesceOp,
    RetryPolicy, RtError,
};
use multiverse::mvvm::{FaultOp, FaultPlan, MemError};
use multiverse::{Program, SmpWorld};
use mv_workloads::commit_storm;
use std::time::Duration;

const ITERS: u64 = 600;
const WARM_ROUNDS: u64 = 4;
const MAX_ROUNDS: u64 = 10_000_000;
const STRATEGIES: [CommitStrategy; 2] = [CommitStrategy::StopMachine, CommitStrategy::Breakpoint];

fn boot_workers(p: &Program, vcpus: usize, seed: u64) -> SmpWorld {
    let mut w = p.boot_smp(vcpus);
    w.smp.set_seed(seed);
    w.spawn_all("worker", &[ITERS]).unwrap();
    for _ in 0..WARM_ROUNDS {
        w.smp.step_round();
    }
    w
}

fn text_of(p: &Program, w: &SmpWorld) -> Vec<u8> {
    let (taddr, tsize) = p.exe().section(multiverse::mvobj::SEC_TEXT);
    w.smp.machine.mem.read_vec(taddr, tsize as usize).unwrap()
}

/// A daemon whose attempt ladder is a single try and whose quarantine
/// is effectively off — the sweep observes raw fault outcomes.
fn sweep_daemon(strategy: CommitStrategy) -> CommitDaemon {
    CommitDaemon::new(MvdConfig {
        max_attempts: 1,
        quarantine_after: u32::MAX,
        strategy,
        ..MvdConfig::default()
    })
}

fn flip(switch: u64, value: i64) -> MvdOp {
    MvdOp::Flip { switch, value }
}

/// The fixed request script: coalescible flips across all three
/// switches, priority requests preempting, and one whole-image revert.
fn script(w: &SmpWorld) -> Vec<Vec<(MvdOp, Lane)>> {
    let a = w.sym("opt_a").unwrap();
    let b = w.sym("opt_b").unwrap();
    let c = w.sym("opt_c").unwrap();
    vec![
        vec![
            (flip(a, 1), Lane::Normal),
            (flip(b, 1), Lane::Normal),
            (flip(a, 0), Lane::Normal),
        ],
        vec![
            (flip(c, 1), Lane::Priority),
            (flip(b, 0), Lane::Normal),
            (flip(c, 1), Lane::Normal),
        ],
        vec![
            (flip(a, 1), Lane::Normal),
            (flip(c, 0), Lane::Priority),
            (flip(b, 1), Lane::Normal),
        ],
        vec![
            (MvdOp::RevertAll, Lane::Priority),
            (flip(a, 1), Lane::Normal),
        ],
    ]
}

/// Drives the script phase by phase, stepping the daemon one entry at a
/// time. Returns (ops committed in commit order, ids submitted, ids
/// completed).
fn drive(w: &mut SmpWorld, daemon: &mut CommitDaemon) -> (Vec<MvdOp>, Vec<u64>, Vec<u64>) {
    let phases = script(w);
    let mut submitted = Vec::new();
    let mut completed = Vec::new();
    let mut committed = Vec::new();
    for phase in phases {
        for (op, lane) in phase {
            let rt = w.rt.as_mut().unwrap();
            submitted.push(daemon.submit(rt, op, lane));
        }
        // Submit-time completions: fast-fails and rejections.
        completed.extend(daemon.take_completions().into_iter().map(|c| c.id));
        for _ in 0..3 {
            if w.smp.any_live() {
                w.smp.step_round();
            }
        }
        while daemon.step(w.rt.as_mut().unwrap(), &mut w.smp) {
            // One step processes one entry; its waiters complete
            // together with one shared outcome.
            let batch = daemon.take_completions();
            if let Some(first) = batch.first() {
                if first.outcome.is_committed() {
                    committed.push(first.op);
                }
            }
            completed.extend(batch.into_iter().map(|c| c.id));
        }
    }
    (committed, submitted, completed)
}

/// The oracle image: exactly the committed ops, replayed serially in
/// commit order on a fresh, idle, unfaulted world.
fn replay(p: &Program, committed: &[MvdOp], strategy: CommitStrategy) -> Vec<u8> {
    let mut w = p.boot_smp(1);
    for &op in committed {
        let rt = w.rt.as_mut().unwrap();
        match op {
            MvdOp::Flip { switch, value } => {
                rt.write_switch(&mut w.smp.machine, switch, value).unwrap();
                rt.run_quiesced(&mut w.smp, QuiesceOp::CommitRefs(switch), strategy)
                    .unwrap();
            }
            MvdOp::CommitAll => {
                rt.run_quiesced(&mut w.smp, QuiesceOp::Commit, strategy)
                    .unwrap();
            }
            MvdOp::RevertAll => {
                rt.run_quiesced(&mut w.smp, QuiesceOp::Revert, strategy)
                    .unwrap();
            }
        }
    }
    text_of(p, &w)
}

/// Counts the ops a clean daemon run performs per fault class:
/// the three memory-level classes from [`multiverse::mvrt`]'s
/// `PatchStats`, the two quiesce-phase classes via never-firing probe
/// plans.
fn probe_counts(p: &Program, vcpus: usize, strategy: CommitStrategy) -> Vec<(FaultOp, u64)> {
    let mut w = boot_workers(p, vcpus, 1);
    w.smp
        .machine
        .inject_fault(FaultPlan::fail_nth_trap_plant(1_000_000));
    let mut d = sweep_daemon(strategy);
    drive(&mut w, &mut d);
    let stats = w.rt.as_ref().unwrap().stats;
    let trap_plants = w.smp.machine.clear_fault().unwrap().seen();

    let mut w = boot_workers(p, vcpus, 1);
    w.smp
        .machine
        .inject_fault(FaultPlan::drop_nth_shootdown(1_000_000));
    let mut d = sweep_daemon(strategy);
    drive(&mut w, &mut d);
    let shootdowns = w.smp.machine.clear_fault().unwrap().seen();

    vec![
        (FaultOp::TextWrite, stats.journal_entries),
        (FaultOp::Mprotect, stats.mprotects),
        (FaultOp::IcacheFlush, stats.icache_flushes),
        (FaultOp::TrapPlant, trap_plants),
        (FaultOp::Shootdown, shootdowns),
    ]
}

/// The exhaustive sweep: every fault index of every injectable op
/// class, both protocols, 4 and 8 vCPUs. Oracles: the queue drains with
/// every request completed exactly once, the final image byte-matches
/// the serial replay of the surviving requests, and every worker
/// finishes with its exact count.
#[test]
fn fault_sweep_drains_and_matches_serial_replay() {
    let p = commit_storm::build().unwrap();
    for vcpus in [4usize, 8] {
        for strategy in STRATEGIES {
            let schedule = probe_counts(&p, vcpus, strategy);
            assert!(
                schedule.iter().any(|&(_, n)| n >= 4),
                "{strategy}: run too small to sweep ({schedule:?})"
            );
            for (op, count) in schedule {
                for n in 1..=count {
                    let seed = 13 * vcpus as u64 + n;
                    let mut w = boot_workers(&p, vcpus, seed);
                    let mut daemon = sweep_daemon(strategy);
                    w.smp.machine.inject_fault(FaultPlan::new(op, n));
                    let (committed, mut submitted, mut completed) = drive(&mut w, &mut daemon);

                    let ctx = format!("{strategy} {op:?}@{n} vcpus {vcpus}");
                    assert_eq!(daemon.pending(), 0, "{ctx}: queue did not drain");
                    submitted.sort_unstable();
                    completed.sort_unstable();
                    assert_eq!(
                        submitted, completed,
                        "{ctx}: a request was lost or double-completed"
                    );

                    let rets = w.run(MAX_ROUNDS).unwrap();
                    assert!(
                        rets.iter().all(|&r| r == ITERS),
                        "{ctx}: a worker lost iterations ({rets:?})"
                    );
                    assert_eq!(
                        text_of(&p, &w),
                        replay(&p, &committed, CommitStrategy::StopMachine),
                        "{ctx}: image diverged from the serial replay of \
                         the {} surviving requests",
                        committed.len()
                    );
                }
            }
        }
    }
}

/// With the default three-attempt ladder, any one-shot fault heals
/// inside the daemon: every request commits and the image equals the
/// clean run's image.
#[test]
fn retry_ladder_heals_every_one_shot_fault() {
    let p = commit_storm::build().unwrap();
    for strategy in STRATEGIES {
        // The clean reference run.
        let mut w = boot_workers(&p, 4, 2);
        let mut daemon = CommitDaemon::new(MvdConfig {
            strategy,
            ..MvdConfig::default()
        });
        let (clean_committed, submitted, _) = drive(&mut w, &mut daemon);
        let clean_text = text_of(&p, &w);
        assert_eq!(
            clean_committed.len(),
            daemon.stats().committed as usize,
            "{strategy}: clean run must commit every entry"
        );
        assert_eq!(
            daemon.stats().admitted + daemon.stats().coalesced,
            submitted.len() as u64
        );

        for (op, count) in probe_counts(&p, 4, strategy) {
            if count == 0 {
                continue;
            }
            let mut w = boot_workers(&p, 4, 2);
            let mut daemon = CommitDaemon::new(MvdConfig {
                strategy,
                ..MvdConfig::default()
            });
            w.smp.machine.inject_fault(FaultPlan::new(op, 1));
            let (committed, ..) = drive(&mut w, &mut daemon);
            let ctx = format!("{strategy} {op:?}@1");
            assert_eq!(
                committed, clean_committed,
                "{ctx}: a one-shot fault leaked through the retry ladder"
            );
            assert_eq!(text_of(&p, &w), clean_text, "{ctx}: image diverged");
            let rets = w.run(MAX_ROUNDS).unwrap();
            assert!(rets.iter().all(|&r| r == ITERS), "{ctx}: worker damaged");
        }
    }
}

/// Transaction-level retries inside a daemon attempt are charged to the
/// timing's backoff/retry counters when the policy sleeps.
#[test]
fn txn_backoff_is_charged_to_patch_timing() {
    let p = commit_storm::build().unwrap();
    let mut w = boot_workers(&p, 4, 3);
    let a = w.sym("opt_a").unwrap();
    let mut daemon = CommitDaemon::new(MvdConfig {
        max_attempts: 1,
        retry: RetryPolicy::exponential(3, Duration::from_micros(1), 0xC0FFEE),
        ..MvdConfig::default()
    });
    // One-shot mprotect fault: the txn-level retry (not the daemon
    // ladder — max_attempts is 1) must heal it and record the backoff.
    w.smp
        .machine
        .inject_fault(FaultPlan::new(FaultOp::Mprotect, 1));
    daemon.submit(w.rt.as_mut().unwrap(), flip(a, 1), Lane::Normal);
    assert!(daemon.step(w.rt.as_mut().unwrap(), &mut w.smp));
    let completions = daemon.take_completions();
    assert!(completions[0].outcome.is_committed(), "txn retry healed it");
    let timing = w.rt.as_ref().unwrap().last_timing;
    assert!(timing.retries >= 1, "retry count charged");
    assert!(timing.backoff > Duration::ZERO, "backoff charged");
}

/// Persistent breakpoint-quiesce failure (sticky trap-plant fault)
/// degrades to stop-machine with a byte-identical image, marks the
/// daemon degraded, and a later successful breakpoint probe heals it.
#[test]
fn sticky_trap_plant_degrades_then_heals() {
    let p = commit_storm::build().unwrap();
    let mut w = boot_workers(&p, 4, 5);
    let a = w.sym("opt_a").unwrap();
    let b = w.sym("opt_b").unwrap();
    w.rt.as_mut().unwrap().enable_tracing(8192);
    let mut daemon = CommitDaemon::new(MvdConfig {
        strategy: CommitStrategy::Breakpoint,
        ..MvdConfig::default()
    });

    w.smp
        .machine
        .inject_fault(FaultPlan::fail_nth_trap_plant(1).sticky());
    daemon.submit(w.rt.as_mut().unwrap(), flip(a, 1), Lane::Normal);
    assert!(daemon.step(w.rt.as_mut().unwrap(), &mut w.smp));
    let c = daemon.take_completions();
    assert!(
        c[0].outcome.is_committed(),
        "the stop-machine fallback lands the commit: {:?}",
        c[0].outcome
    );
    assert!(daemon.degraded(), "daemon noted the broken protocol");
    assert_eq!(daemon.stats().degraded, 1);

    // The fallback image is byte-identical to a clean *breakpoint*
    // commit of the same flip on a fresh world.
    assert_eq!(
        text_of(&p, &w),
        replay(&p, &[flip(a, 1)], CommitStrategy::Breakpoint),
        "fallback image diverged from a clean breakpoint commit"
    );

    // Still degraded: the next request's probe fails, and the entry
    // falls back immediately (one bp failure, not degrade_after).
    daemon.submit(w.rt.as_mut().unwrap(), flip(b, 1), Lane::Normal);
    assert!(daemon.step(w.rt.as_mut().unwrap(), &mut w.smp));
    assert!(daemon.take_completions()[0].outcome.is_committed());
    assert!(daemon.degraded());

    // Fault cleared: the heal probe succeeds and the daemon returns to
    // its configured protocol.
    w.smp.machine.clear_fault();
    daemon.submit(w.rt.as_mut().unwrap(), flip(a, 0), Lane::Normal);
    assert!(daemon.step(w.rt.as_mut().unwrap(), &mut w.smp));
    assert!(daemon.take_completions()[0].outcome.is_committed());
    assert!(!daemon.degraded(), "breakpoint probe healed the daemon");
    assert_eq!(daemon.stats().healed, 1);

    let events = w.rt.as_mut().unwrap().take_trace();
    let names: Vec<&str> = events.iter().map(|e| e.kind.name()).collect();
    assert!(names.contains(&"strategy_degraded"), "{names:?}");

    let rets = w.run(MAX_ROUNDS).unwrap();
    assert!(rets.iter().all(|&r| r == ITERS));
}

/// A sticky fault scoped to one function's entry bytes poisons exactly
/// one switch's commits: after `quarantine_after` consecutive failures
/// the assignment is parked with its error chain, later requests fail
/// fast, and unrelated switches keep landing. The vector is a
/// range-filtered trap-plant fault — plant failures happen before any
/// text write, so the unwind is clean and the damage is perfectly
/// isolated to the one switch.
#[test]
fn sticky_range_fault_quarantines_one_switch_only() {
    let p = commit_storm::build().unwrap();
    let mut w = boot_workers(&p, 4, 6);
    let a = w.sym("opt_a").unwrap();
    let b = w.sym("opt_b").unwrap();
    let c = w.sym("opt_c").unwrap();
    let fa = w.sym("fa").unwrap();
    w.rt.as_mut().unwrap().enable_tracing(8192);
    let mut daemon = CommitDaemon::new(MvdConfig {
        max_attempts: 2,
        quarantine_after: 2,
        // Keep the bp→stop-machine fallback out of the way: this test
        // is about quarantine, not degradation.
        degrade_after: 10,
        strategy: CommitStrategy::Breakpoint,
        ..MvdConfig::default()
    });

    // Every breakpoint trap plant landing in fa's entry bytes faults,
    // forever. Only opt_a commits plant there.
    w.smp.machine.inject_fault(
        FaultPlan::fail_nth_trap_plant(1)
            .sticky()
            .in_range(fa, fa + 5),
    );

    daemon.submit(w.rt.as_mut().unwrap(), flip(a, 1), Lane::Normal);
    assert!(daemon.step(w.rt.as_mut().unwrap(), &mut w.smp));
    let c1 = daemon.take_completions();
    assert!(
        matches!(c1[0].outcome, MvdOutcome::Failed(_)),
        "{:?}",
        c1[0].outcome
    );
    assert!(daemon.is_quarantined(flip(a, 1)));
    assert!(
        daemon.is_quarantined(flip(a, 0)),
        "quarantine keys the assignment, not the value"
    );
    assert_eq!(daemon.stats().quarantined, 1);

    // The parked entry carries the error, walkable to its root cause.
    let parked = daemon.quarantined().next().expect("one parked entry");
    assert_eq!(parked.failures, 2);
    assert!(
        matches!(
            parked.error.root_cause(),
            RtError::Mem(MemError { mapped: true, addr, .. }) if *addr == fa
        ),
        "root cause: {:?}",
        parked.error.root_cause()
    );
    assert!(
        std::error::Error::source(&parked.error).is_some(),
        "source() chain reaches the memory fault"
    );

    // Later requests for the poisoned switch fail fast...
    daemon.submit(w.rt.as_mut().unwrap(), flip(a, 0), Lane::Normal);
    let fast = daemon.take_completions();
    assert!(matches!(fast[0].outcome, MvdOutcome::Quarantined));
    assert_eq!(daemon.stats().fast_failed, 1);

    // ...while unrelated switches commit normally.
    for (sw, v) in [(b, 1), (c, 1)] {
        daemon.submit(w.rt.as_mut().unwrap(), flip(sw, v), Lane::Normal);
    }
    while daemon.step(w.rt.as_mut().unwrap(), &mut w.smp) {}
    let landed = daemon.take_completions();
    assert_eq!(landed.len(), 2);
    assert!(landed.iter().all(|cp| cp.outcome.is_committed()));

    // Release + fault cleared: the switch commits again.
    assert!(daemon.release(flip(a, 0)).is_some());
    w.smp.machine.clear_fault();
    daemon.submit(w.rt.as_mut().unwrap(), flip(a, 1), Lane::Normal);
    assert!(daemon.step(w.rt.as_mut().unwrap(), &mut w.smp));
    assert!(daemon.take_completions()[0].outcome.is_committed());

    assert_eq!(
        text_of(&p, &w),
        replay(
            &p,
            &[flip(b, 1), flip(c, 1), flip(a, 1)],
            CommitStrategy::StopMachine
        ),
    );

    let events = w.rt.as_mut().unwrap().take_trace();
    let names: Vec<&str> = events.iter().map(|e| e.kind.name()).collect();
    assert!(names.contains(&"quarantined"), "{names:?}");

    let rets = w.run(MAX_ROUNDS).unwrap();
    assert!(rets.iter().all(|&r| r == ITERS));
}

/// When a commit dies in *rollback* (the restore write faults too), the
/// quarantine evidence preserves the deepest chain the runtime can
/// produce: commit → rollback-failed → memory fault, all reachable
/// through `source()`.
#[test]
fn quarantine_preserves_deep_error_chains() {
    let p = commit_storm::build().unwrap();
    let mut w = boot_workers(&p, 4, 8);
    let a = w.sym("opt_a").unwrap();
    let mut daemon = CommitDaemon::new(MvdConfig {
        max_attempts: 1,
        quarantine_after: 1,
        ..MvdConfig::default()
    });

    // Unranged sticky text-write fault: the apply write faults, and so
    // does the journal's restore of the same bytes — a rollback
    // failure, the worst evidence a commit can leave.
    w.smp
        .machine
        .inject_fault(FaultPlan::new(FaultOp::TextWrite, 1).sticky());
    daemon.submit(w.rt.as_mut().unwrap(), flip(a, 1), Lane::Normal);
    assert!(daemon.step(w.rt.as_mut().unwrap(), &mut w.smp));
    assert!(matches!(
        daemon.take_completions()[0].outcome,
        MvdOutcome::Failed(_)
    ));

    let parked = daemon.quarantined().next().expect("parked after K=1");
    assert_eq!(parked.error.commit_phase(), Some(CommitPhase::Rollback));
    assert!(matches!(
        parked.error.root_cause(),
        RtError::Mem(MemError { mapped: true, .. })
    ));
    let mut depth = 0;
    let mut e: &dyn std::error::Error = &parked.error;
    while let Some(next) = e.source() {
        depth += 1;
        e = next;
    }
    assert!(depth >= 2, "source() chain too shallow ({depth})");
}

/// Queue mechanics on an idle world: coalescing with last-writer-wins,
/// priority preemption and escalation, shed-oldest-normal backpressure,
/// rejection when only priority work is queued, and deadline expiry.
#[test]
fn queue_mechanics_coalesce_shed_reject_expire() {
    let p = commit_storm::build().unwrap();
    let mut w = p.boot_smp(2);
    let a = w.sym("opt_a").unwrap();
    let b = w.sym("opt_b").unwrap();
    let c = w.sym("opt_c").unwrap();
    w.rt.as_mut().unwrap().enable_tracing(8192);
    let mut daemon = CommitDaemon::new(MvdConfig {
        capacity: 2,
        ..MvdConfig::default()
    });

    // Coalescing: two values for one switch become one commit with the
    // last value; both waiters share the outcome.
    let id1 = daemon.submit(w.rt.as_mut().unwrap(), flip(a, 1), Lane::Normal);
    let id2 = daemon.submit(w.rt.as_mut().unwrap(), flip(a, 0), Lane::Normal);
    assert_eq!(daemon.pending(), 1);
    assert_eq!(daemon.stats().coalesced, 1);
    while daemon.step(w.rt.as_mut().unwrap(), &mut w.smp) {}
    let batch = daemon.take_completions();
    assert_eq!(batch.len(), 2);
    assert!(batch.iter().any(|cp| cp.id == id1) && batch.iter().any(|cp| cp.id == id2));
    assert!(batch.iter().all(|cp| cp.outcome.is_committed()));
    assert!(batch
        .iter()
        .all(|cp| matches!(cp.op, MvdOp::Flip { value: 0, .. })));
    assert_eq!(w.get("opt_a").unwrap(), 0, "last writer won");

    // Priority preemption: the priority entry runs first even though it
    // was submitted second; a priority coalesce escalates a normal
    // entry.
    daemon.submit(w.rt.as_mut().unwrap(), flip(b, 1), Lane::Normal);
    daemon.submit(w.rt.as_mut().unwrap(), flip(c, 1), Lane::Priority);
    assert!(daemon.step(w.rt.as_mut().unwrap(), &mut w.smp));
    let first = &daemon.take_completions()[0];
    assert!(matches!(first.op, MvdOp::Flip { switch, .. } if switch == c));
    while daemon.step(w.rt.as_mut().unwrap(), &mut w.smp) {}
    daemon.take_completions();

    daemon.submit(w.rt.as_mut().unwrap(), flip(b, 0), Lane::Normal);
    daemon.submit(w.rt.as_mut().unwrap(), flip(a, 1), Lane::Normal);
    daemon.submit(w.rt.as_mut().unwrap(), flip(b, 1), Lane::Priority); // escalates b
    assert!(daemon.step(w.rt.as_mut().unwrap(), &mut w.smp));
    let first = &daemon.take_completions()[0];
    assert!(
        matches!(first.op, MvdOp::Flip { switch, value: 1 } if switch == b),
        "escalated entry ran first with the priority value: {:?}",
        first.op
    );
    while daemon.step(w.rt.as_mut().unwrap(), &mut w.smp) {}
    daemon.take_completions();

    // Backpressure: capacity 2, third normal request sheds the oldest
    // normal entry.
    let old = daemon.submit(w.rt.as_mut().unwrap(), flip(a, 0), Lane::Normal);
    daemon.submit(w.rt.as_mut().unwrap(), flip(b, 0), Lane::Normal);
    daemon.submit(w.rt.as_mut().unwrap(), flip(c, 0), Lane::Normal);
    let sheds = daemon.take_completions();
    assert_eq!(sheds.len(), 1);
    assert_eq!(sheds[0].id, old);
    assert!(matches!(sheds[0].outcome, MvdOutcome::Shed));
    assert_eq!(daemon.stats().shed, 1);
    while daemon.step(w.rt.as_mut().unwrap(), &mut w.smp) {}
    daemon.take_completions();

    // Rejection: a full queue of priority work sheds nothing; the
    // newcomer is refused instead.
    daemon.submit(w.rt.as_mut().unwrap(), flip(a, 1), Lane::Priority);
    daemon.submit(w.rt.as_mut().unwrap(), flip(b, 1), Lane::Priority);
    let refused = daemon.submit(w.rt.as_mut().unwrap(), flip(c, 1), Lane::Normal);
    let batch = daemon.take_completions();
    assert_eq!(batch.len(), 1);
    assert_eq!(batch[0].id, refused);
    assert!(matches!(batch[0].outcome, MvdOutcome::Rejected));
    assert_eq!(daemon.stats().rejected, 1);
    while daemon.step(w.rt.as_mut().unwrap(), &mut w.smp) {}
    daemon.take_completions();

    // Deadlines: with a 1-epoch ttl, the first entry runs in time and
    // the second expires before it is popped.
    daemon.submit_with_ttl(w.rt.as_mut().unwrap(), flip(a, 0), Lane::Normal, Some(1));
    daemon.submit_with_ttl(w.rt.as_mut().unwrap(), flip(b, 0), Lane::Normal, Some(1));
    while daemon.step(w.rt.as_mut().unwrap(), &mut w.smp) {}
    let batch = daemon.take_completions();
    assert_eq!(batch.len(), 2);
    assert!(batch[0].outcome.is_committed());
    assert!(matches!(batch[1].outcome, MvdOutcome::Expired));
    assert_eq!(daemon.stats().expired, 1);

    let events = w.rt.as_mut().unwrap().take_trace();
    let names: Vec<&str> = events.iter().map(|e| e.kind.name()).collect();
    for required in ["queue_admit", "coalesced", "shed"] {
        assert!(names.contains(&required), "missing {required}: {names:?}");
    }
}
