//! Trace export.
//!
//! [`TraceSink`] is the one-method export trait; three implementations
//! ship with the crate:
//!
//! * [`JsonlSink`] — one JSON object per line, the machine-readable
//!   interchange format (stable field names, addresses in hex strings);
//! * [`ChromeSink`] — the Chrome `trace_event` JSON format: open the
//!   file in `chrome://tracing` or <https://ui.perfetto.dev> and the
//!   commit/phase spans render as a flame chart with the point events
//!   as instants;
//! * [`TextSink`] — a human-readable span-tree rendering for terminals.
//!
//! All JSON is hand-rolled: every value is a number, a boolean or a
//! `&'static str` identifier from the event taxonomy, so no escaping or
//! serde machinery is needed.

use crate::event::{Event, EventKind};
use crate::span::build_spans;
use std::io::{self, Write};

/// Serializes an event stream into some output format.
pub trait TraceSink {
    /// Writes the whole stream (oldest first) to `w`.
    fn export(&self, events: &[Event], w: &mut dyn Write) -> io::Result<()>;

    /// Convenience: export into a `String`.
    fn export_string(&self, events: &[Event]) -> String {
        let mut buf = Vec::new();
        self.export(events, &mut buf)
            .expect("writing to a Vec cannot fail");
        String::from_utf8(buf).expect("exporters emit UTF-8")
    }
}

/// Renders the payload fields of `kind` as JSON object members,
/// starting with a leading comma (appended after the common fields).
fn kind_fields(kind: &EventKind) -> String {
    match *kind {
        EventKind::CommitBegin { op } => format!(r#","op":"{op}""#),
        EventKind::CommitEnd { ok } => format!(r#","ok":{ok}"#),
        EventKind::PhaseBegin { phase } => format!(r#","phase":"{phase}""#),
        EventKind::PhaseEnd { phase, ok } => format!(r#","phase":"{phase}","ok":{ok}"#),
        EventKind::SitePatched { site, target } => {
            format!(r#","site":"{site:#x}","target":"{target:#x}""#)
        }
        EventKind::SiteRestored { site } => format!(r#","site":"{site:#x}""#),
        EventKind::Inlined { site, variant } => {
            format!(r#","site":"{site:#x}","variant":"{variant:#x}""#)
        }
        EventKind::EntryJumpWritten { function, variant } => {
            format!(r#","function":"{function:#x}","variant":"{variant:#x}""#)
        }
        EventKind::PrologueRestored { function } => format!(r#","function":"{function:#x}""#),
        EventKind::FaultObserved { addr, what } => {
            format!(r#","addr":"{addr:#x}","what":"{what}""#)
        }
        EventKind::Rollback { entries } => format!(r#","entries":{entries}"#),
        EventKind::Retry { attempt } => format!(r#","attempt":{attempt}"#),
        EventKind::ActionSkipped { function, sites } => {
            format!(r#","function":"{function:#x}","sites":{sites}"#)
        }
        EventKind::PageBatch { pages, writes } => {
            format!(r#","pages":{pages},"writes":{writes}"#)
        }
        EventKind::StageBegin { stage } => format!(r#","stage":"{stage}""#),
        EventKind::StageEnd { stage, items } => {
            format!(r#","stage":"{stage}","items":{items}"#)
        }
        EventKind::CacheQuery { hit, variants } => {
            format!(r#","hit":{hit},"variants":{variants}"#)
        }
        EventKind::QuiesceBegin { strategy, vcpus } => {
            format!(r#","strategy":"{strategy}","vcpus":{vcpus}"#)
        }
        EventKind::QuiesceEnd { ok, rounds } => format!(r#","ok":{ok},"rounds":{rounds}"#),
        EventKind::VcpuParked { vcpu, pc } => {
            format!(r#","vcpu":{vcpu},"pc":"{pc:#x}""#)
        }
        EventKind::IcacheShootdown { start, end, vcpus } => {
            format!(r#","start":"{start:#x}","end":"{end:#x}","vcpus":{vcpus}"#)
        }
        EventKind::TrapHit { vcpu, addr } => {
            format!(r#","vcpu":{vcpu},"addr":"{addr:#x}""#)
        }
        EventKind::QueueAdmit { lane, key } => {
            format!(r#","lane":"{lane}","key":"{key:#x}""#)
        }
        EventKind::Coalesced { key, waiters } => {
            format!(r#","key":"{key:#x}","waiters":{waiters}"#)
        }
        EventKind::Shed { key } => format!(r#","key":"{key:#x}""#),
        EventKind::Quarantined { key, failures } => {
            format!(r#","key":"{key:#x}","failures":{failures}"#)
        }
        EventKind::StrategyDegraded { from, to } => {
            format!(r#","from":"{from}","to":"{to}""#)
        }
        EventKind::VexecSplit { pc, switch, arms } => {
            format!(r#","pc":"{pc:#x}","switch":"{switch:#x}","arms":{arms}"#)
        }
        EventKind::VexecJoin {
            pc,
            switch,
            parties,
        } => {
            format!(r#","pc":"{pc:#x}","switch":"{switch:#x}","parties":{parties}"#)
        }
        EventKind::VexecLeaf {
            leaf,
            configs,
            exit,
        } => {
            format!(r#","leaf":{leaf},"configs":{configs},"exit":{exit}"#)
        }
    }
}

/// One JSON object per line: `{"seq":…,"ts_ns":…,"ev":"…",…payload…}`.
///
/// With [`JsonlSink::with_dropped`] the stream opens with a header line
/// (`"ev":"trace_header"`) carrying the exported event count and the
/// ring's dropped-event count, so a truncated trace is never silently
/// misread as complete.
#[derive(Clone, Copy, Debug, Default)]
pub struct JsonlSink {
    /// Ring drop count to report in a leading header line; `None`
    /// (the default) emits events only, byte-compatible with older
    /// consumers.
    pub dropped: Option<u64>,
}

impl JsonlSink {
    /// A sink that prefixes the stream with a `trace_header` line
    /// reporting `dropped` ring overflows.
    pub fn with_dropped(dropped: u64) -> JsonlSink {
        JsonlSink {
            dropped: Some(dropped),
        }
    }
}

impl TraceSink for JsonlSink {
    fn export(&self, events: &[Event], w: &mut dyn Write) -> io::Result<()> {
        if let Some(dropped) = self.dropped {
            writeln!(
                w,
                r#"{{"ev":"trace_header","events":{},"dropped":{dropped}}}"#,
                events.len()
            )?;
        }
        for e in events {
            writeln!(
                w,
                r#"{{"seq":{},"ts_ns":{},"ev":"{}"{}}}"#,
                e.seq,
                e.ts_ns,
                e.kind.name(),
                kind_fields(&e.kind)
            )?;
        }
        Ok(())
    }
}

/// Chrome `trace_event` format (the `{"traceEvents":[…]}` flavour,
/// accepted by both chrome://tracing and Perfetto).
///
/// Commits and phases become `B`/`E` duration pairs on one thread, so
/// the span tree renders as nesting; point events become `i` instants
/// scoped to the thread. Timestamps are microseconds with nanosecond
/// precision kept in the fraction.
///
/// With [`ChromeSink::with_dropped`] the trace document closes with a
/// `metadata` object carrying the exported event count and the ring's
/// dropped-event count — the same truncation signal the JSONL header
/// reports, surfaced where `chrome://tracing`/Perfetto show metadata.
#[derive(Clone, Copy, Debug, Default)]
pub struct ChromeSink {
    /// Ring drop count to report in the trailing `metadata` object;
    /// `None` (the default) emits the events array only,
    /// byte-compatible with older consumers.
    pub dropped: Option<u64>,
}

impl ChromeSink {
    /// A sink whose trace document reports `dropped` ring overflows in
    /// its `metadata` object.
    pub fn with_dropped(dropped: u64) -> ChromeSink {
        ChromeSink {
            dropped: Some(dropped),
        }
    }
}

/// Formats nanoseconds as the microsecond float Chrome expects.
fn us(ts_ns: u64) -> String {
    format!("{}.{:03}", ts_ns / 1000, ts_ns % 1000)
}

impl TraceSink for ChromeSink {
    fn export(&self, events: &[Event], w: &mut dyn Write) -> io::Result<()> {
        write!(w, r#"{{"traceEvents":["#)?;
        let mut first = true;
        for e in events {
            let (ph, name, cat) = match e.kind {
                EventKind::CommitBegin { op } => ("B", op, "commit"),
                EventKind::CommitEnd { .. } => ("E", "", "commit"),
                EventKind::PhaseBegin { phase } => ("B", phase.name(), "phase"),
                EventKind::PhaseEnd { phase, .. } => ("E", phase.name(), "phase"),
                EventKind::StageBegin { stage } => ("B", stage, "compile"),
                EventKind::StageEnd { stage, .. } => ("E", stage, "compile"),
                _ => ("i", e.kind.name(), "point"),
            };
            if !first {
                write!(w, ",")?;
            }
            first = false;
            write!(
                w,
                "\n{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"{ph}\",\"ts\":{},\"pid\":1,\"tid\":1",
                us(e.ts_ns)
            )?;
            if ph == "i" {
                write!(w, r#","s":"t""#)?;
            }
            write!(
                w,
                r#","args":{{"seq":{}{}}}}}"#,
                e.seq,
                kind_fields(&e.kind)
            )?;
        }
        if let Some(dropped) = self.dropped {
            writeln!(
                w,
                "\n],\"metadata\":{{\"events\":{},\"dropped\":{}}}}}",
                events.len(),
                dropped
            )?;
        } else {
            writeln!(w, "\n]}}")?;
        }
        Ok(())
    }
}

/// Human-readable span-tree rendering.
#[derive(Clone, Copy, Debug, Default)]
pub struct TextSink;

/// Formats nanoseconds adaptively (ns / µs / ms).
fn human_ns(ns: u64) -> String {
    if ns >= 1_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

impl TraceSink for TextSink {
    fn export(&self, events: &[Event], w: &mut dyn Write) -> io::Result<()> {
        let forest = build_spans(events);
        if forest.orphaned > 0 {
            writeln!(
                w,
                "({} events truncated by the ring before the first complete commit)",
                forest.orphaned
            )?;
        }
        for s in &forest.stages {
            writeln!(
                w,
                "stage {:<10} {:>12}  {} item{}",
                s.stage,
                human_ns(s.duration_ns()),
                s.items,
                if s.items == 1 { "" } else { "s" }
            )?;
            for e in &s.events {
                if let EventKind::CacheQuery { hit, variants } = e.kind {
                    writeln!(
                        w,
                        "      cache {} ({variants} variant{})",
                        if hit { "hit" } else { "miss" },
                        if variants == 1 { "" } else { "s" }
                    )?;
                }
            }
        }
        for c in &forest.commits {
            writeln!(
                w,
                "{} [{}] {} in {} ({} attempt{})",
                c.op,
                c.begin_seq,
                if c.ok { "ok" } else { "FAILED" },
                human_ns(c.duration_ns()),
                c.attempts.len(),
                if c.attempts.len() == 1 { "" } else { "s" }
            )?;
            for (i, a) in c.attempts.iter().enumerate() {
                writeln!(w, "  attempt {}", i + 1)?;
                for p in &a.phases {
                    writeln!(
                        w,
                        "    {:<9} {:>12}  {}",
                        p.phase.name(),
                        human_ns(p.duration_ns()),
                        if p.ok { "ok" } else { "FAILED" }
                    )?;
                    for e in &p.events {
                        let detail = match e.kind {
                            EventKind::SitePatched { site, target } => {
                                format!("site {site:#x} -> {target:#x}")
                            }
                            EventKind::SiteRestored { site } => {
                                format!("site {site:#x} restored")
                            }
                            EventKind::Inlined { site, variant } => {
                                format!("variant {variant:#x} inlined at {site:#x}")
                            }
                            EventKind::EntryJumpWritten { function, variant } => {
                                format!("entry jump {function:#x} -> {variant:#x}")
                            }
                            EventKind::PrologueRestored { function } => {
                                format!("prologue restored at {function:#x}")
                            }
                            EventKind::FaultObserved { addr, what } => {
                                format!("!! {what} at {addr:#x}")
                            }
                            EventKind::Rollback { entries } => {
                                format!("rolled back {entries} journal entries")
                            }
                            EventKind::ActionSkipped { function, sites } => {
                                format!("{function:#x} unchanged, {sites} sites skipped")
                            }
                            EventKind::PageBatch { pages, writes } => {
                                format!("{writes} writes batched over {pages} pages")
                            }
                            EventKind::QuiesceBegin { strategy, vcpus } => {
                                format!("quiescing {vcpus} vcpus ({strategy})")
                            }
                            EventKind::QuiesceEnd { ok, rounds } => format!(
                                "released after {rounds} rounds ({})",
                                if ok { "committed" } else { "rolled back" }
                            ),
                            EventKind::VcpuParked { vcpu, pc } => {
                                format!("vcpu {vcpu} parked at {pc:#x}")
                            }
                            EventKind::IcacheShootdown { start, end, vcpus } => {
                                format!("icache shootdown {start:#x}..{end:#x} on {vcpus} vcpus")
                            }
                            EventKind::TrapHit { vcpu, addr } => {
                                format!("vcpu {vcpu} hit trap at {addr:#x}")
                            }
                            EventKind::QueueAdmit { lane, key } => {
                                format!("admitted {key:#x} to the {lane} lane")
                            }
                            EventKind::Coalesced { key, waiters } => {
                                format!("{key:#x} coalesced ({waiters} waiters)")
                            }
                            EventKind::Shed { key } => format!("shed {key:#x}"),
                            EventKind::Quarantined { key, failures } => {
                                format!("{key:#x} quarantined after {failures} failures")
                            }
                            EventKind::StrategyDegraded { from, to } => {
                                format!("degraded {from} -> {to}")
                            }
                            _ => e.kind.name().to_string(),
                        };
                        writeln!(w, "      {:<22} {}", e.kind.name(), detail)?;
                    }
                }
                if let Some(n) = a.retry {
                    writeln!(w, "    retry #{n}")?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Phase;

    fn sample() -> Vec<Event> {
        vec![
            Event {
                seq: 1,
                ts_ns: 0,
                kind: EventKind::CommitBegin { op: "commit" },
            },
            Event {
                seq: 2,
                ts_ns: 1_500,
                kind: EventKind::PhaseBegin { phase: Phase::Plan },
            },
            Event {
                seq: 3,
                ts_ns: 2_500,
                kind: EventKind::PhaseEnd {
                    phase: Phase::Plan,
                    ok: true,
                },
            },
            Event {
                seq: 4,
                ts_ns: 9_000,
                kind: EventKind::CommitEnd { ok: true },
            },
        ]
    }

    #[test]
    fn jsonl_one_object_per_line() {
        let s = JsonlSink::default().export_string(&sample());
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(
            lines[0],
            r#"{"seq":1,"ts_ns":0,"ev":"commit_begin","op":"commit"}"#
        );
        assert_eq!(
            lines[2],
            r#"{"seq":3,"ts_ns":2500,"ev":"phase_end","phase":"plan","ok":true}"#
        );
    }

    #[test]
    fn jsonl_header_reports_counts() {
        let s = JsonlSink::with_dropped(7).export_string(&sample());
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5, "header plus one line per event");
        assert_eq!(lines[0], r#"{"ev":"trace_header","events":4,"dropped":7}"#);
        assert_eq!(
            lines[1],
            r#"{"seq":1,"ts_ns":0,"ev":"commit_begin","op":"commit"}"#
        );
        // The default stays byte-compatible: no header at all.
        assert!(JsonlSink::default()
            .export_string(&sample())
            .starts_with(r#"{"seq":1"#));
    }

    #[test]
    fn control_plane_events_render_in_every_sink() {
        let evs: Vec<Event> = [
            EventKind::QueueAdmit {
                lane: "priority",
                key: 0x5000,
            },
            EventKind::Coalesced {
                key: 0x5000,
                waiters: 3,
            },
            EventKind::Shed { key: 0x5000 },
            EventKind::Quarantined {
                key: 0x5000,
                failures: 4,
            },
            EventKind::StrategyDegraded {
                from: "breakpoint",
                to: "stop-machine",
            },
        ]
        .into_iter()
        .enumerate()
        .map(|(i, kind)| Event {
            seq: i as u64 + 1,
            ts_ns: i as u64 * 100,
            kind,
        })
        .collect();
        let jsonl = JsonlSink::default().export_string(&evs);
        assert!(jsonl.contains(r#""ev":"queue_admit","lane":"priority","key":"0x5000""#));
        assert!(jsonl.contains(r#""ev":"coalesced","key":"0x5000","waiters":3"#));
        assert!(jsonl.contains(r#""ev":"shed","key":"0x5000""#));
        assert!(jsonl.contains(r#""ev":"quarantined","key":"0x5000","failures":4"#));
        assert!(
            jsonl.contains(r#""ev":"strategy_degraded","from":"breakpoint","to":"stop-machine""#)
        );
        // All five are point events: Chrome renders them as instants.
        let chrome = ChromeSink::default().export_string(&evs);
        assert_eq!(chrome.matches(r#""ph":"i""#).count(), 5);
    }

    #[test]
    fn chrome_pairs_b_and_e() {
        let s = ChromeSink::default().export_string(&sample());
        assert!(s.starts_with(r#"{"traceEvents":["#));
        assert_eq!(s.matches(r#""ph":"B""#).count(), 2);
        assert_eq!(s.matches(r#""ph":"E""#).count(), 2);
        assert!(s.contains(r#""ts":1.500"#));
        assert!(s.trim_end().ends_with("]}"));
    }

    #[test]
    fn chrome_metadata_reports_counts() {
        let s = ChromeSink::with_dropped(7).export_string(&sample());
        assert!(s
            .trim_end()
            .ends_with(r#"],"metadata":{"events":4,"dropped":7}}"#));
        // The default stays byte-compatible: no metadata object.
        assert!(ChromeSink::default()
            .export_string(&sample())
            .trim_end()
            .ends_with("]}"));
    }

    #[test]
    fn text_renders_the_tree() {
        let s = TextSink.export_string(&sample());
        assert!(s.contains("commit [1] ok"), "{s}");
        assert!(s.contains("plan"), "{s}");
    }
}
