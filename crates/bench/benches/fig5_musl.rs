//! Fig. 5 — mini-musl: `random()`, `malloc(0)`, `malloc(1)` and
//! `fputc('a')` in single- and multi-threaded mode, with and without
//! multiverse.

use criterion::{criterion_group, criterion_main, Criterion};
use multiverse::bench::render_table;
use mv_workloads::musl::{boot, run_bench, LibcFn, MuslBuild, ThreadMode};

fn bench(c: &mut Criterion) {
    println!(
        "{}",
        render_table(
            "Fig. 5 — musl, cycles per call",
            &mv_bench::fig5_data(5_000)
        )
    );

    let mut g = c.benchmark_group("fig5_musl");
    for threads in [ThreadMode::Single, ThreadMode::Multi] {
        for build in [MuslBuild::Without, MuslBuild::With] {
            for f in LibcFn::all() {
                let name = format!("{:?}_{:?}_{:?}", f, threads, build);
                let mut w = boot(build, threads).expect("boot");
                g.bench_function(&name, |b| {
                    b.iter(|| run_bench(&mut w, f, 100).expect("bench"))
                });
            }
        }
    }
    g.finish();
}

criterion_group! {
    name = benches;
    // Simulated workloads are deterministic; short sampling keeps the
    // full suite fast without changing any conclusion.
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(1));
    targets = bench
}
criterion_main!(benches);
