//! E14 — staged-pipeline compile cost: sequential vs parallel clone+fold
//! and cold vs cached builds as the switch count / domain width scales
//! (§7.1's combinatorial explosion, made measurable). The table printed
//! here backs the EXPERIMENTS.md entry; the Criterion groups measure the
//! same three paths for regression tracking.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use multiverse::mvc::{pipeline, Options, Pipeline};
use mv_bench::{compile_cost_data, compile_cost_src, render_compile_cost_table};

fn bench(c: &mut Criterion) {
    // Floor at 2 so the scoped-thread path is exercised even on a
    // single-CPU host (where parallel ≈ sequential is the honest result).
    let jobs = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .max(2);
    println!("## compile cost: sequential vs -j{jobs}, cold vs cached");
    let configs = [
        (4usize, 3usize, 2usize), // 4 fns × 2^3  = 32 clones
        (4, 5, 2),                // 4 fns × 2^5  = 128 clones
        (4, 4, 3),                // 4 fns × 3^4  = 324 clones
        (8, 6, 2),                // 8 fns × 2^6  = 512 clones
    ];
    let rows = compile_cost_data(&configs, jobs);
    print!("{}", render_compile_cost_table(&rows, jobs));
    println!();

    let src = compile_cost_src(4, 5, 2);
    let opts = |jobs: usize, cache: bool| Options {
        variant_limit: 64,
        jobs,
        cache,
        ..Options::default()
    };
    let mut g = c.benchmark_group("compile_cost");
    g.bench_with_input(
        BenchmarkId::new("sequential_cold", "4x2^5"),
        &src,
        |b, s| {
            b.iter(|| {
                Pipeline::new(opts(1, false))
                    .compile_unit(s, "cost.c")
                    .expect("build")
            })
        },
    );
    g.bench_with_input(
        BenchmarkId::new(format!("parallel_cold_j{jobs}"), "4x2^5"),
        &src,
        |b, s| {
            b.iter(|| {
                Pipeline::new(opts(jobs, false))
                    .compile_unit(s, "cost.c")
                    .expect("build")
            })
        },
    );
    pipeline::clear_compile_cache();
    Pipeline::new(opts(1, true))
        .compile_unit(&src, "cost.c")
        .expect("populate cache");
    g.bench_with_input(BenchmarkId::new("cached", "4x2^5"), &src, |b, s| {
        b.iter(|| {
            Pipeline::new(opts(1, true))
                .compile_unit(s, "cost.c")
                .expect("build")
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(1));
    targets = bench
}
criterion_main!(benches);
