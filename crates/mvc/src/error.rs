//! Compiler diagnostics.

use crate::token::Pos;
use core::fmt;

/// A fatal compilation error.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CompileError {
    /// Lexical error.
    Lex {
        /// Description.
        msg: String,
        /// Position.
        pos: Pos,
    },
    /// Syntax error.
    Parse {
        /// Description.
        msg: String,
        /// Position.
        pos: Pos,
    },
    /// Semantic error (undefined names, type mismatches, bad attributes).
    Sema {
        /// Description.
        msg: String,
    },
    /// The cross product of switch domains for one function exceeds the
    /// variant limit — the combinatorial explosion §7.1 warns about.
    VariantExplosion {
        /// Function name.
        function: String,
        /// Number of variants the cross product would produce.
        variants: usize,
        /// Configured limit.
        limit: usize,
        /// The offending switches with their domain sizes, in the
        /// deterministic expansion order — so the error names exactly
        /// which factors of the cross product to restrict.
        switches: Vec<(String, usize)>,
    },
    /// Linking the compiled objects failed.
    Link(String),
    /// Internal assembler failure (a compiler bug).
    Asm(String),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Lex { msg, pos } => write!(f, "lex error at {pos}: {msg}"),
            CompileError::Parse { msg, pos } => write!(f, "parse error at {pos}: {msg}"),
            CompileError::Sema { msg } => write!(f, "error: {msg}"),
            CompileError::VariantExplosion {
                function,
                variants,
                limit,
                switches,
            } => {
                let product = switches
                    .iter()
                    .map(|(name, n)| format!("`{name}` ({n} values)"))
                    .collect::<Vec<_>>()
                    .join(" × ");
                write!(
                    f,
                    "function `{function}` would generate {variants} variants (limit {limit}): \
                     cross product {product}; restrict switch domains with \
                     `multiverse(v1, v2, …)` or bind fewer switches with `bind(…)`"
                )
            }
            CompileError::Link(msg) => write!(f, "link error: {msg}"),
            CompileError::Asm(msg) => write!(f, "internal assembler error: {msg}"),
        }
    }
}

impl std::error::Error for CompileError {}

/// A non-fatal diagnostic.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Warning {
    /// A configuration switch is written inside a multiversed function —
    /// the write survives, but the variant generated for the enclosing
    /// assignment will not see it (§3).
    SwitchWrittenInVariant {
        /// Function name.
        function: String,
        /// Switch name.
        switch: String,
    },
    /// A multiversed function reads no configuration switch; no variants
    /// were generated.
    NoSwitchesReferenced {
        /// Function name.
        function: String,
    },
}

impl fmt::Display for Warning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Warning::SwitchWrittenInVariant { function, switch } => write!(
                f,
                "warning: `{function}` writes configuration switch `{switch}`; \
                 specialized variants bind it to a constant"
            ),
            Warning::NoSwitchesReferenced { function } => write!(
                f,
                "warning: multiversed function `{function}` references no configuration switch"
            ),
        }
    }
}
