//! Golden-file tests for the exporters.
//!
//! The fixture is a synthetic faulted-then-retried commit stream with
//! fixed sequence numbers and timestamps, so every exporter's output is
//! byte-deterministic. Regenerate the expected files after an intended
//! format change with:
//!
//! ```sh
//! BLESS=1 cargo test -p mvtrace --test golden
//! ```

use mvtrace::{ChromeSink, Event, EventKind, JsonlSink, Phase, TextSink, TraceSink};
use std::path::PathBuf;

/// A two-attempt commit (apply faults, rolls back, retries, succeeds)
/// followed by a clean single-attempt revert — the canonical shapes the
/// runtime produces.
fn fixture() -> Vec<Event> {
    use EventKind::*;
    let mut t = 0;
    let mut s = 0;
    let mut next = |kind| {
        t += 250;
        s += 1;
        Event {
            seq: s,
            ts_ns: t,
            kind,
        }
    };
    vec![
        next(CommitBegin { op: "commit" }),
        next(PhaseBegin { phase: Phase::Plan }),
        next(PhaseEnd {
            phase: Phase::Plan,
            ok: true,
        }),
        next(PhaseBegin {
            phase: Phase::Validate,
        }),
        next(PhaseEnd {
            phase: Phase::Validate,
            ok: true,
        }),
        next(PhaseBegin {
            phase: Phase::Apply,
        }),
        next(SitePatched {
            site: 0x4000,
            target: 0x5200,
        }),
        next(FaultObserved {
            addr: 0x4005,
            what: "protection-fault",
        }),
        next(Rollback { entries: 1 }),
        next(PhaseEnd {
            phase: Phase::Apply,
            ok: false,
        }),
        next(Retry { attempt: 1 }),
        next(PhaseBegin { phase: Phase::Plan }),
        next(PhaseEnd {
            phase: Phase::Plan,
            ok: true,
        }),
        next(PhaseBegin {
            phase: Phase::Validate,
        }),
        next(PhaseEnd {
            phase: Phase::Validate,
            ok: true,
        }),
        next(PhaseBegin {
            phase: Phase::Apply,
        }),
        next(SitePatched {
            site: 0x4000,
            target: 0x5200,
        }),
        next(Inlined {
            site: 0x4040,
            variant: 0x5200,
        }),
        next(EntryJumpWritten {
            function: 0x4100,
            variant: 0x5200,
        }),
        next(PhaseEnd {
            phase: Phase::Apply,
            ok: true,
        }),
        next(CommitEnd { ok: true }),
        next(CommitBegin { op: "revert" }),
        next(PhaseBegin { phase: Phase::Plan }),
        next(PhaseEnd {
            phase: Phase::Plan,
            ok: true,
        }),
        next(PhaseBegin {
            phase: Phase::Validate,
        }),
        next(PhaseEnd {
            phase: Phase::Validate,
            ok: true,
        }),
        next(PhaseBegin {
            phase: Phase::Apply,
        }),
        next(SiteRestored { site: 0x4000 }),
        next(PrologueRestored { function: 0x4100 }),
        next(PhaseEnd {
            phase: Phase::Apply,
            ok: true,
        }),
        next(CommitEnd { ok: true }),
    ]
}

fn check_golden(name: &str, actual: &str) {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    if std::env::var_os("BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with BLESS=1",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "{name} drifted from its golden file; run with BLESS=1 if the change is intended"
    );
}

#[test]
fn jsonl_matches_golden() {
    check_golden(
        "trace.jsonl",
        &JsonlSink::default().export_string(&fixture()),
    );
}

#[test]
fn chrome_matches_golden() {
    check_golden(
        "trace.chrome.json",
        &ChromeSink::default().export_string(&fixture()),
    );
}

#[test]
fn text_matches_golden() {
    check_golden("trace.txt", &TextSink.export_string(&fixture()));
}

/// Structural (non-golden) sanity: the Chrome output balances B/E pairs
/// exactly as the span tree nests them.
#[test]
fn chrome_b_e_pairs_balance() {
    let s = ChromeSink::default().export_string(&fixture());
    assert_eq!(
        s.matches(r#""ph":"B""#).count(),
        s.matches(r#""ph":"E""#).count()
    );
    // 2 commits + 9 phases = 11 opens.
    assert_eq!(s.matches(r#""ph":"B""#).count(), 11);
    // 9 point events become instants.
    assert_eq!(s.matches(r#""ph":"i""#).count(), 9);
}
