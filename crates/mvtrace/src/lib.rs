#![warn(missing_docs)]
//! mvtrace — the structured observability layer of the multiverse
//! toolchain.
//!
//! The paper's whole argument rests on measurement (§6.1's 1161 patched
//! call sites and ≈16 ms commit latency, §6.2.2's −40 % branch
//! reduction), yet end-of-run counter structs cannot answer *when* a
//! phase ran, *which* site was patched in which attempt, or *why* a
//! commit took as long as it did. This crate provides the missing
//! timeline:
//!
//! * [`Event`]/[`EventKind`] — the typed event taxonomy the runtime
//!   emits: commit and phase boundaries, per-site patch records, and the
//!   failure-path events (fault, rollback, retry) the transactional
//!   engine made possible;
//! * [`TraceRing`] — a bounded ring with process-wide monotonic sequence
//!   numbers and per-event host timestamps; disabled tracing costs one
//!   predictable branch on the emitter's side (see [`enabled`]);
//! * [`span`] — reconstruction of the flat event stream into a span
//!   tree: commits → attempts → phases → point events, including
//!   faulted-then-retried shapes;
//! * [`sink`] — the [`TraceSink`](sink::TraceSink) export trait with
//!   JSONL, Chrome `trace_event` (chrome://tracing / Perfetto) and
//!   human-readable text implementations.
//!
//! The crate is dependency-free and knows nothing about the VM or the
//! runtime; `mvrt` threads events through it, `mvcc trace` and the bench
//! harness consume them. See `docs/OBSERVABILITY.md` for the end-to-end
//! story.

pub mod event;
pub mod ring;
pub mod sink;
pub mod span;

pub use event::{Event, EventKind, Phase};
pub use ring::{TraceRing, MAX_RING_CAP};
pub use sink::{ChromeSink, JsonlSink, TextSink, TraceSink};
pub use span::{build_spans, AttemptSpan, CommitSpan, PhaseSpan, SpanForest};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

/// The process-wide enabled flag, lazily initialized. Emitters check it
/// (and their own ring handle) before constructing an event, so disabled
/// tracing compiles down to a branch on this flag — no formatting, no
/// timestamping, no allocation.
fn flag() -> &'static AtomicBool {
    static FLAG: OnceLock<AtomicBool> = OnceLock::new();
    FLAG.get_or_init(|| AtomicBool::new(false))
}

/// `true` if tracing is globally enabled.
#[inline]
pub fn enabled() -> bool {
    flag().load(Ordering::Relaxed)
}

/// Globally enables or disables tracing. Emitters that hold a ring only
/// record while this is `true`.
pub fn set_enabled(on: bool) {
    flag().store(on, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_toggles() {
        set_enabled(true);
        assert!(enabled());
        set_enabled(false);
        assert!(!enabled());
    }
}
