//! Sections of an object file or loaded image.

use core::fmt;

/// Memory protection of a loaded segment.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Prot {
    /// Readable.
    pub read: bool,
    /// Writable.
    pub write: bool,
    /// Executable.
    pub exec: bool,
}

impl Prot {
    /// Read-only.
    pub const R: Prot = Prot {
        read: true,
        write: false,
        exec: false,
    };
    /// Read-write.
    pub const RW: Prot = Prot {
        read: true,
        write: true,
        exec: false,
    };
    /// Read-execute (the W^X text protection).
    pub const RX: Prot = Prot {
        read: true,
        write: false,
        exec: true,
    };
    /// Read-write-execute (transient, during patching only).
    pub const RWX: Prot = Prot {
        read: true,
        write: true,
        exec: true,
    };
}

impl fmt::Display for Prot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}{}",
            if self.read { 'r' } else { '-' },
            if self.write { 'w' } else { '-' },
            if self.exec { 'x' } else { '-' }
        )
    }
}

/// The kind of a section, determining its load-time protection.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SectionKind {
    /// Executable code; loaded `r-x`.
    Text,
    /// Initialized data; loaded `rw-`.
    Data,
    /// Read-only data (descriptors, strings); loaded `r--`.
    Rodata,
    /// Zero-initialized data; occupies no file bytes, loaded `rw-`.
    Bss,
}

impl SectionKind {
    /// Load-time protection for this kind.
    pub const fn prot(self) -> Prot {
        match self {
            SectionKind::Text => Prot::RX,
            SectionKind::Data | SectionKind::Bss => Prot::RW,
            SectionKind::Rodata => Prot::R,
        }
    }
}

/// One named section inside an [`crate::Object`].
#[derive(Clone, Debug)]
pub struct Section {
    /// Section name; same-named sections of different objects are
    /// concatenated by the linker.
    pub name: String,
    /// Kind (protection class).
    pub kind: SectionKind,
    /// Contents. For [`SectionKind::Bss`] this must be empty; use `size`.
    pub bytes: Vec<u8>,
    /// Size of a BSS section; ignored (and derived from `bytes`) otherwise.
    pub size: u64,
    /// Required alignment of this object's chunk inside the concatenated
    /// output section.
    pub align: u64,
}

impl Section {
    /// Creates a progbits section with contents.
    pub fn with_bytes(name: &str, kind: SectionKind, bytes: Vec<u8>) -> Section {
        let size = bytes.len() as u64;
        Section {
            name: name.to_string(),
            kind,
            bytes,
            size,
            align: 1,
        }
    }

    /// Creates a BSS section of `size` zero bytes.
    pub fn bss(name: &str, size: u64) -> Section {
        Section {
            name: name.to_string(),
            kind: SectionKind::Bss,
            bytes: Vec::new(),
            size,
            align: 8,
        }
    }

    /// Occupied size in the image.
    pub fn mem_size(&self) -> u64 {
        if self.kind == SectionKind::Bss {
            self.size
        } else {
            self.bytes.len() as u64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prot_display() {
        assert_eq!(Prot::RX.to_string(), "r-x");
        assert_eq!(Prot::RW.to_string(), "rw-");
        assert_eq!(Prot::R.to_string(), "r--");
        assert_eq!(Prot::RWX.to_string(), "rwx");
    }

    #[test]
    fn kinds_map_to_wxorx_protections() {
        assert_eq!(SectionKind::Text.prot(), Prot::RX);
        assert_eq!(SectionKind::Data.prot(), Prot::RW);
        assert_eq!(SectionKind::Bss.prot(), Prot::RW);
        assert_eq!(SectionKind::Rodata.prot(), Prot::R);
        // W^X: no section kind loads writable and executable.
        for k in [
            SectionKind::Text,
            SectionKind::Data,
            SectionKind::Rodata,
            SectionKind::Bss,
        ] {
            let p = k.prot();
            assert!(!(p.write && p.exec));
        }
    }

    #[test]
    fn bss_has_mem_size_without_bytes() {
        let s = Section::bss(".bss", 128);
        assert_eq!(s.mem_size(), 128);
        assert!(s.bytes.is_empty());
        let d = Section::with_bytes(".data", SectionKind::Data, vec![1, 2, 3]);
        assert_eq!(d.mem_size(), 3);
    }
}
