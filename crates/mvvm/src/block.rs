//! Decoded straight-line blocks: the unit of the tiered execution engine.
//!
//! A [`DecodedBlock`] is a *recorded trace* of `(pc, insn)` pairs: the
//! first time the interpreter enters a block, it executes instruction by
//! instruction through the ordinary decode path ([`crate::Machine`]'s
//! `decode_at`) while memoizing every decode it performed. Replaying the
//! block later re-runs the exact same decoded instructions through the
//! exact same per-instruction execution routine, so cycles, [`crate::Stats`],
//! traces and profiles are byte-identical to tierless execution by
//! construction — the block layer memoizes *decode*, never semantics.
//!
//! Invalidation is precise, driven by the same per-page `code_version`
//! generations the per-instruction decode cache uses:
//!
//! * every block records the generation of **every page any of its
//!   instruction encodings touches** (an instruction straddling a page
//!   boundary contributes both pages);
//! * in normal (non-sticky) mode a block is served only while all its
//!   recorded generations still match — a commit patch followed by
//!   [`crate::Memory::flush_icache`] invalidates exactly the blocks whose
//!   pages were flushed, nothing else. The [`crate::Memory::flush_epoch`]
//!   counter provides an O(1) "nothing flushed since validation" fast
//!   path;
//! * in sticky-icache mode (the SMP machine's private per-CPU icaches)
//!   version checks are skipped entirely; only an explicit shootdown
//!   ([`crate::SmpMachine::flush_remote`] →
//!   [`crate::Machine::invalidate_decode_range`]) evicts, using the same
//!   instruction-start-address rule the per-instruction cache uses, so a
//!   stale block stays observably stale exactly as long as a stale
//!   per-instruction decode would.

use mvasm::{AluOp, Insn};
use std::cell::Cell;
use std::hash::{BuildHasherDefault, Hasher};
use std::rc::Rc;

/// Which execution engine the machine runs.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ExecTier {
    /// The original fetch/decode/execute loop, one instruction at a time.
    /// This is the default and the oracle the tiered engines are
    /// differentially tested against.
    #[default]
    Tierless,
    /// Tier 0: straight-line blocks decoded once and replayed, ending at
    /// every control transfer.
    Block,
    /// Tier 1: tier-0 blocks, plus hot block entries are re-recorded as
    /// superblocks that fuse across direct `jmp`/`call` transfers into
    /// longer pre-decoded runs.
    Superblock,
    /// Tier 2: superblock behavior plus pre-lowered whole-function
    /// regions ([`crate::native`]) for explicitly registered entries —
    /// the host-closure tier the `native` runtime backend drives through
    /// the commit protocol.
    Native,
}

impl ExecTier {
    /// Parses a tier name as accepted by `mvcc run --tier`.
    pub fn parse(s: &str) -> Option<ExecTier> {
        match s {
            "tierless" | "off" => Some(ExecTier::Tierless),
            "block" | "tier0" => Some(ExecTier::Block),
            "superblock" | "tier1" => Some(ExecTier::Superblock),
            "native" | "tier2" => Some(ExecTier::Native),
            _ => None,
        }
    }
}

impl std::fmt::Display for ExecTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ExecTier::Tierless => "tierless",
            ExecTier::Block => "block",
            ExecTier::Superblock => "superblock",
            ExecTier::Native => "native",
        })
    }
}

/// Ops per tier-0 block before recording stops unconditionally.
pub const MAX_BLOCK_INSTS: usize = 256;
/// Ops per superblock before recording stops unconditionally.
pub const MAX_SUPERBLOCK_INSTS: usize = 1024;
/// Direct transfers a superblock may fuse across.
pub const MAX_SUPERBLOCK_FUSES: usize = 16;

/// A recorded straight-line (or, for superblocks, direct-jump-fused) run
/// of decoded instructions, keyed by its entry `pc`.
pub struct DecodedBlock {
    /// Entry address (the cache key).
    pub entry: u64,
    /// The memoized `(pc, insn)` trace, in execution order.
    pub ops: Vec<(u64, Insn)>,
    /// `(page_number, code_version)` for every page any op's encoding
    /// touches, as observed when the block was recorded.
    pub pages: Vec<(u64, u64)>,
    /// `true` once this entry was promoted to a fused superblock.
    pub superblock: bool,
    /// `fast_runs[i]` is the length of the maximal run of *fast* ops
    /// (see [`DecodedBlock::is_fast`]) starting at `ops[i]`, or `0` if
    /// `ops[i]` is not fast. Replay retires a whole run with batched
    /// `tsc`/instruction-count bookkeeping — sound because fast ops
    /// cannot fault, halt, transfer control, or observe `tsc`/[`crate::Stats`],
    /// and nothing else can observe machine state mid-quantum.
    pub fast_runs: Vec<u32>,
    /// [`crate::Memory::flush_epoch`] at the last successful validation:
    /// while the global epoch still matches, no page generation anywhere
    /// can have moved, so the per-page comparison is skipped.
    pub(crate) epoch: Cell<u64>,
}

impl DecodedBlock {
    /// `true` for the register-only micro-op subset replay may batch:
    /// moves, `lea`, non-dividing ALU ops, compares and `setcc`. These
    /// touch only the register file, `cmp` operands and statically-known
    /// cycle charges — no memory, no control flow, no faults — so their
    /// observable effects commute with deferring the `tsc` and
    /// instruction-count updates to the end of the run.
    pub fn is_fast(insn: &Insn) -> bool {
        match insn {
            Insn::MovRR { .. }
            | Insn::MovRI { .. }
            | Insn::Lea { .. }
            | Insn::CmpRR { .. }
            | Insn::CmpRI { .. }
            | Insn::Setcc { .. } => true,
            Insn::AluRR { op, .. } | Insn::AluRI { op, .. } => {
                !matches!(op, AluOp::Divs | AluOp::Divu | AluOp::Rems | AluOp::Remu)
            }
            _ => false,
        }
    }

    /// Builds the [`DecodedBlock::fast_runs`] table for `ops`.
    pub fn fast_runs_of(ops: &[(u64, Insn)]) -> Vec<u32> {
        let mut runs = vec![0u32; ops.len()];
        for i in (0..ops.len()).rev() {
            if Self::is_fast(&ops[i].1) {
                runs[i] = 1 + runs.get(i + 1).copied().unwrap_or(0);
            }
        }
        runs
    }
    /// `true` if any op of this block *starts* in `[start, end)` — the
    /// same instruction-start-address rule
    /// [`crate::Machine::invalidate_decode_range`] applies to the
    /// per-instruction decode cache, so explicit shootdowns evict blocks
    /// and single decodes in lockstep.
    pub fn overlaps(&self, start: u64, end: u64) -> bool {
        self.ops.iter().any(|&(pc, _)| pc >= start && pc < end)
    }
}

/// A paranoia-free multiply-xor hasher for `u64` keys (the Fx shape),
/// std-only. Block caches sit on the hot path of every block entry;
/// SipHash's per-lookup cost is exactly the overhead the tiered engine
/// exists to amortize away.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl Hasher for FxHasher {
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(buf));
        }
    }

    fn write_u64(&mut self, n: u64) {
        self.hash = (self.hash.rotate_left(5) ^ n).wrapping_mul(FX_SEED);
    }

    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`]-keyed maps.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Monotone counters of one block cache (see
/// [`crate::tier0::BlockCache`]): hits, misses (= recordings),
/// evictions (stale or shot down) and superblock promotions. Mirrored
/// into the metrics registry as `mv_vm_block_*`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BlockCacheStats {
    /// Block entries served from the cache (one per replay, not per op).
    pub hits: u64,
    /// Block entries that had to be recorded.
    pub misses: u64,
    /// Blocks dropped because a page generation moved or an explicit
    /// invalidation covered one of their ops.
    pub evictions: u64,
    /// Hot tier-0 entries re-recorded as fused superblocks.
    pub promotions: u64,
}

impl std::ops::AddAssign for BlockCacheStats {
    fn add_assign(&mut self, d: BlockCacheStats) {
        self.hits += d.hits;
        self.misses += d.misses;
        self.evictions += d.evictions;
        self.promotions += d.promotions;
    }
}

/// Shared handle to a block. `Rc` keeps replay alive across an eviction
/// that lands mid-replay (host code runs between quanta, never inside
/// one, but the borrow would otherwise still conflict).
pub type BlockRef = Rc<DecodedBlock>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exec_tier_parses_names_and_aliases() {
        assert_eq!(ExecTier::parse("tierless"), Some(ExecTier::Tierless));
        assert_eq!(ExecTier::parse("block"), Some(ExecTier::Block));
        assert_eq!(ExecTier::parse("tier0"), Some(ExecTier::Block));
        assert_eq!(ExecTier::parse("superblock"), Some(ExecTier::Superblock));
        assert_eq!(ExecTier::parse("tier1"), Some(ExecTier::Superblock));
        assert_eq!(ExecTier::parse("native"), Some(ExecTier::Native));
        assert_eq!(ExecTier::parse("tier2"), Some(ExecTier::Native));
        assert_eq!(ExecTier::parse("bogus"), None);
        assert_eq!(ExecTier::Superblock.to_string(), "superblock");
        assert_eq!(ExecTier::Native.to_string(), "native");
    }

    #[test]
    fn overlaps_uses_instruction_start_addresses() {
        let ops = vec![(0x100, Insn::Nop { len: 4 }), (0x104, Insn::Halt)];
        let b = DecodedBlock {
            entry: 0x100,
            fast_runs: DecodedBlock::fast_runs_of(&ops),
            ops,
            pages: vec![(0, 0)],
            superblock: false,
            epoch: Cell::new(0),
        };
        assert!(b.overlaps(0x100, 0x101));
        assert!(b.overlaps(0x104, 0x200));
        // Covers bytes of the nop but no op *starts* there — the
        // per-instruction cache would keep its entry, so the block layer
        // must too.
        assert!(!b.overlaps(0x101, 0x104));
        assert!(!b.overlaps(0x105, 0x200));
    }

    #[test]
    fn fast_runs_batch_register_only_ops_and_stop_at_everything_else() {
        use mvasm::Reg;
        let alu = |op| Insn::AluRI {
            op,
            dst: Reg::R0,
            imm: 1,
        };
        let ops: Vec<(u64, Insn)> = [
            alu(AluOp::Add),                    // fast
            alu(AluOp::Xor),                    // fast
            Insn::CmpRI { a: Reg::R0, imm: 3 }, // fast
            Insn::Jcc {
                cc: mvasm::Cond::Lt,
                rel: 0,
            }, // control flow: not fast
            alu(AluOp::Divu),                   // can fault: not fast
            Insn::MovRI {
                dst: Reg::R1,
                imm: 9,
            }, // fast
            Insn::Halt,                         // not fast
        ]
        .into_iter()
        .enumerate()
        .map(|(i, insn)| (i as u64 * 4, insn))
        .collect();
        assert_eq!(DecodedBlock::fast_runs_of(&ops), vec![3, 2, 1, 0, 0, 1, 0]);
    }

    #[test]
    fn fx_hasher_distributes_u64_keys() {
        use std::hash::Hash;
        let mut seen = std::collections::HashSet::new();
        for k in 0u64..1000 {
            let mut h = FxHasher::default();
            k.hash(&mut h);
            seen.insert(h.finish());
        }
        assert_eq!(seen.len(), 1000, "no collisions on small sequential keys");
    }
}
