//! Low-level text-segment patching primitives.
//!
//! Every write follows the §4 discipline: make the affected pages writable,
//! write, restore the original protection, flush the instruction cache.
//! The machine enforces both halves — unwritable text faults, and stale
//! decoded instructions keep executing until the flush.
//!
//! Everything ISA-specific — call/jmp encodings, their widths, NOP fill,
//! inline images, displacement reach — lives behind
//! [`mvasm::abi::Backend`]; this module keeps only the memory-discipline
//! primitives (transient protection windows, page math) and the
//! byte-level site inspection helpers that need a machine to read from.

use crate::error::RtError;
use crate::stats::PatchStats;
use mvasm::{Backend, Insn};
use mvobj::Prot;
use mvvm::{Machine, PAGE_SIZE};

/// Writes `bytes` into the text segment at `addr` under a transient-RW
/// window and flushes the icache for the range.
pub fn patch_bytes(
    m: &mut Machine,
    addr: u64,
    bytes: &[u8],
    stats: &mut PatchStats,
) -> Result<(), RtError> {
    patch_bytes_with(m, addr, bytes, stats, Prot::RW, Prot::RX)
}

/// [`patch_bytes`] with explicit window/restore protections — the knob a
/// runtime backend turns when its patch discipline differs from the
/// default transient-RW / restore-RX pair.
pub fn patch_bytes_with(
    m: &mut Machine,
    addr: u64,
    bytes: &[u8],
    stats: &mut PatchStats,
    window: Prot,
    restore: Prot,
) -> Result<(), RtError> {
    let len = bytes.len() as u64;
    m.mem.mprotect(addr, len, window)?;
    stats.mprotects += 1;
    m.mem.write(addr, bytes)?;
    stats.bytes_written += len;
    m.mem.mprotect(addr, len, restore)?;
    stats.mprotects += 1;
    m.mem.flush_icache(addr, len);
    stats.icache_flushes += 1;
    Ok(())
}

/// Decodes the instruction currently at `addr`, reading the longest
/// available byte prefix up to the backend's maximum instruction length
/// — near the end of a mapping fewer bytes may be readable, and an
/// instruction is decodable from exactly its own encoding.
pub fn insn_at(m: &Machine, abi: &dyn Backend, addr: u64) -> Result<Insn, RtError> {
    let mut bytes = None;
    for n in (1..=abi.max_insn_len()).rev() {
        match m.mem.read_vec(addr, n) {
            Ok(v) => {
                bytes = Some(v);
                break;
            }
            // Nothing readable at all: surface the memory error.
            Err(e) if n == 1 => return Err(e.into()),
            Err(_) => {}
        }
    }
    let bytes = bytes.expect("loop either sets bytes or returns");
    let (insn, _) = mvasm::decode(&bytes).map_err(|e| RtError::SiteVerifyFailed {
        site: addr,
        what: format!("undecodable bytes: {e}"),
    })?;
    Ok(insn)
}

/// Verifies that `site` currently holds a `call rel32` to `expected`.
pub fn verify_call(
    m: &Machine,
    abi: &dyn Backend,
    site: u64,
    expected: u64,
) -> Result<(), RtError> {
    match insn_at(m, abi, site)? {
        Insn::CallRel { rel } => {
            let t = abi.call_target(site, rel);
            if t == expected {
                Ok(())
            } else {
                Err(RtError::SiteVerifyFailed {
                    site,
                    what: format!("call targets {t:#x}, expected {expected:#x}"),
                })
            }
        }
        other => Err(RtError::SiteVerifyFailed {
            site,
            what: format!("found `{other}`, expected a call"),
        }),
    }
}

/// Page base addresses covered by the `len` bytes at `addr`.
pub fn pages_of(addr: u64, len: usize) -> impl Iterator<Item = u64> {
    let first = addr & !(PAGE_SIZE - 1);
    let last = addr.saturating_add(len.saturating_sub(1) as u64) & !(PAGE_SIZE - 1);
    (first..=last).step_by(PAGE_SIZE as usize)
}

/// Bookkeeping of one page-batched apply phase: the pages currently
/// behind a transient RW window, in open order, plus how many journaled
/// writes landed inside the batch.
#[derive(Clone, Debug, Default)]
pub struct PageBatch {
    /// Page base addresses with an open RW window, in open order.
    pub open: Vec<u64>,
    /// Journaled writes performed inside the batch.
    pub writes: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvasm::{Reg, MV64};
    use mvobj::{link, Layout, Object, SectionKind, Symbol};
    use mvvm::{CostModel, MachineConfig};

    fn machine_with_text(code: &[u8]) -> (Machine, u64) {
        let mut o = Object::new("t");
        o.append(mvobj::SEC_TEXT, SectionKind::Text, code);
        o.define(Symbol::func("main", mvobj::SEC_TEXT, 0, code.len() as u64));
        let exe = link(&[o], &Layout::default()).unwrap();
        let mut m = Machine::new(CostModel::default(), MachineConfig::default());
        m.load(&exe);
        (m, exe.entry)
    }

    #[test]
    fn patch_respects_wxorx() {
        let code = mvasm::encode(&Insn::Ret);
        let (mut m, text) = machine_with_text(&code);
        // A raw write faults; patch_bytes succeeds and restores RX.
        assert!(m.mem.write(text, &[0x90]).is_err());
        let mut stats = PatchStats::default();
        patch_bytes(&mut m, text, &[0x90], &mut stats).unwrap();
        assert!(m.mem.write(text, &[0x90]).is_err());
        assert_eq!(stats.mprotects, 2);
        assert_eq!(stats.icache_flushes, 1);
        assert_eq!(stats.bytes_written, 1);
    }

    #[test]
    fn verify_call_accepts_and_rejects() {
        let mut code = MV64.encode_call(0, 100).unwrap(); // placeholder, rewritten below
        code.extend(mvasm::encode(&Insn::Ret));
        let (mut m, text) = machine_with_text(&code);
        // Point the call at text+5 (the ret) so verification can succeed.
        let mut stats = PatchStats::default();
        patch_bytes(
            &mut m,
            text,
            &MV64.encode_call(text, text + 5).unwrap(),
            &mut stats,
        )
        .unwrap();
        verify_call(&m, MV64, text, text + 5).unwrap();
        let err = verify_call(&m, MV64, text, text + 100).unwrap_err();
        assert!(matches!(err, RtError::SiteVerifyFailed { .. }));
        // Not-a-call also fails verification.
        patch_bytes(&mut m, text, &MV64.nop_fill(5), &mut stats).unwrap();
        assert!(verify_call(&m, MV64, text, text + 5).is_err());
    }

    #[test]
    fn abi_errors_convert_to_rt_errors() {
        // The runtime's own error vocabulary survives the move of the
        // encoders into mvasm::abi.
        let site = 4u64 << 30;
        let target = site + (4 << 30);
        let err: RtError = MV64.encode_call(site, target).unwrap_err().into();
        assert!(
            matches!(
                err,
                RtError::DisplacementOutOfRange { site: s, target: t }
                    if s == site && t == target
            ),
            "{err:?}"
        );
        let err: RtError = MV64.inline_image(&[0x90u8; 6], 5).unwrap_err().into();
        assert!(
            matches!(
                err,
                RtError::InlineTooLarge {
                    body: 6,
                    site_len: 5
                }
            ),
            "{err:?}"
        );
    }

    #[test]
    fn pages_of_covers_straddles() {
        assert_eq!(pages_of(0x1000, 5).collect::<Vec<_>>(), vec![0x1000]);
        assert_eq!(pages_of(0x1ffe, 2).collect::<Vec<_>>(), vec![0x1000]);
        assert_eq!(
            pages_of(0x1ffe, 5).collect::<Vec<_>>(),
            vec![0x1000, 0x2000]
        );
        assert_eq!(
            pages_of(0x1fff, 4098).collect::<Vec<_>>(),
            vec![0x1000, 0x2000, 0x3000]
        );
    }

    #[test]
    fn patch_bytes_straddling_a_page_boundary_fixes_both_pages() {
        // A 5-byte call site spanning a page boundary: the RW window,
        // the RX restore and the icache flush must cover *both* pages.
        let code = vec![0u8; 2 * PAGE_SIZE as usize];
        let (mut m, text) = machine_with_text(&code);
        // 2 bytes before the next page boundary, 3 after it.
        let site = ((text + PAGE_SIZE) & !(PAGE_SIZE - 1)) - 2;
        let v0 = (m.mem.code_version(site), m.mem.code_version(site + 4));
        let mut stats = PatchStats::default();
        patch_bytes(&mut m, site, &[1, 2, 3, 4, 5], &mut stats).unwrap();
        assert_eq!(m.mem.read_vec(site, 5).unwrap(), vec![1, 2, 3, 4, 5]);
        // Both pages relocked…
        assert!(m.mem.write(site, &[0]).is_err(), "first page writable");
        assert!(m.mem.write(site + 4, &[0]).is_err(), "second page writable");
        // …and both pages' decode caches invalidated.
        let v1 = (m.mem.code_version(site), m.mem.code_version(site + 4));
        assert!(v1.0 > v0.0 && v1.1 > v0.1, "{v0:?} -> {v1:?}");
        assert_eq!(stats.mprotects, 2, "one RW and one RX call for the range");
    }

    #[test]
    fn patch_bytes_with_honors_custom_protections() {
        let code = vec![0u8; 8];
        let (mut m, text) = machine_with_text(&code);
        let mut stats = PatchStats::default();
        // Restore to RWX: the page stays writable after the patch.
        patch_bytes_with(&mut m, text, &[0x90], &mut stats, Prot::RW, Prot::RWX).unwrap();
        assert!(m.mem.write(text, &[0x90]).is_ok(), "restore prot ignored");
    }

    #[test]
    fn insn_at_reads_current_bytes() {
        let code = mvasm::encode(&Insn::MovRI {
            dst: Reg::R3,
            imm: 9,
        });
        let (m, text) = machine_with_text(&code);
        assert_eq!(
            insn_at(&m, MV64, text).unwrap(),
            Insn::MovRI {
                dst: Reg::R3,
                imm: 9
            }
        );
    }

    #[test]
    fn insn_at_decodes_a_long_instruction_ending_at_the_mapping_boundary() {
        // Regression: the old fallback jumped from a 16-byte read
        // straight to a call-site-wide one, so a long instruction whose
        // encoding ended exactly at the end of a mapping decoded from a
        // truncated prefix and failed verification.
        let insn = Insn::MovRI {
            dst: Reg::R3,
            imm: 0x1122_3344_5566_7788,
        };
        let code = mvasm::encode(&insn);
        let len = code.len() as u64;
        assert!(
            code.len() > MV64.call_site_len(),
            "need an encoding longer than a call site"
        );
        // Map exactly one page; the instruction's last byte is the last
        // mapped byte, so every read longer than `len` fails.
        let mut m = Machine::new(CostModel::default(), MachineConfig::default());
        m.mem.map(0x1000, PAGE_SIZE, Prot::RX);
        let addr = 0x1000 + PAGE_SIZE - len;
        m.mem.write_unchecked(addr, &code);
        m.mem.mprotect(0x1000, PAGE_SIZE, Prot::RX).unwrap();
        assert!(
            m.mem.read_vec(addr, MV64.max_insn_len()).is_err(),
            "a max-length read must not fit, or the test proves nothing"
        );
        assert_eq!(insn_at(&m, MV64, addr).unwrap(), insn);
    }

    #[test]
    fn insn_at_surfaces_the_memory_error_on_unmapped_addresses() {
        let m = Machine::new(CostModel::default(), MachineConfig::default());
        let err = insn_at(&m, MV64, 0xdead_0000).unwrap_err();
        assert!(matches!(err, RtError::Mem(_)), "{err:?}");
    }
}
