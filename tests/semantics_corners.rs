//! Semantic corner cases of the MVC tool-chain: short-circuit side
//! effects, argument-register limits, fn-pointer re-binding transitions,
//! and division faults surfacing through the whole stack.

use multiverse::mvvm::Fault;
use multiverse::{BuildError, Program};

#[test]
fn short_circuit_skips_effectful_right_side() {
    let src = r#"
        u64 calls;
        i64 probe(void) { calls = calls + 1; return 1; }
        i64 and_test(i64 x) { if (x && probe()) { return 1; } return 0; }
        i64 or_test(i64 x) { if (x || probe()) { return 1; } return 0; }
        i64 main(void) { return 0; }
    "#;
    let program = Program::build(&[("t.c", src)]).unwrap();
    let mut w = program.boot();

    // x == 0: && must not evaluate probe().
    assert_eq!(w.call("and_test", &[0]).unwrap(), 0);
    assert_eq!(w.get("calls").unwrap(), 0, "&& short-circuited");
    // x != 0: && evaluates probe() once.
    assert_eq!(w.call("and_test", &[5]).unwrap(), 1);
    assert_eq!(w.get("calls").unwrap(), 1);

    // x != 0: || must not evaluate probe().
    assert_eq!(w.call("or_test", &[5]).unwrap(), 1);
    assert_eq!(w.get("calls").unwrap(), 1, "|| short-circuited");
    // x == 0: || evaluates probe() once.
    assert_eq!(w.call("or_test", &[0]).unwrap(), 1);
    assert_eq!(w.get("calls").unwrap(), 2);
}

#[test]
fn six_register_arguments_pass_through() {
    let src = r#"
        i64 sum6(i64 a, i64 b, i64 c, i64 d, i64 e, i64 f) {
            return a + b * 2 + c * 4 + d * 8 + e * 16 + f * 32;
        }
        i64 relay(i64 a, i64 b, i64 c, i64 d, i64 e, i64 f) {
            return sum6(f, e, d, c, b, a);
        }
        i64 main(void) { return 0; }
    "#;
    let program = Program::build(&[("t.c", src)]).unwrap();
    let mut w = program.boot();
    assert_eq!(
        w.call("sum6", &[1, 2, 3, 4, 5, 6]).unwrap(),
        1 + 4 + 12 + 32 + 80 + 192
    );
    // Through a relay that permutes all six (stresses arg staging).
    assert_eq!(
        w.call("relay", &[6, 5, 4, 3, 2, 1]).unwrap(),
        1 + 4 + 12 + 32 + 80 + 192
    );
}

#[test]
fn seventh_argument_is_a_compile_error() {
    let src = "i64 f(i64 a, i64 b, i64 c, i64 d, i64 e, i64 g, i64 h) { return a; } \
               i64 main(void) { return f(1,2,3,4,5,6,7); }";
    match Program::build(&[("t.c", src)]) {
        Err(BuildError::Compile(_)) => {}
        Ok(_) => panic!("seven arguments must be rejected"),
        Err(other) => panic!("wrong error class: {other}"),
    }
}

#[test]
fn fnptr_rebind_transitions_inline_to_direct_and_back() {
    // A pointer switch first bound to an inlinable target (body inlined
    // at the site), then to a non-inlinable one (direct call), then back:
    // every transition must rewrite the site correctly, including from
    // the inlined state where no call instruction remains to verify.
    let src = r#"
        multiverse fnptr op = &tiny;
        u64 big_calls;

        // Body is a single sti → inlinable into the 9-byte site.
        void tiny(void) { __sti(); }
        // Too big to inline.
        void big(void) {
            big_calls = big_calls + 1;
            big_calls = big_calls * 2;
            big_calls = big_calls - 1;
        }
        i64 go(void) { op(); return 0; }
        i64 main(void) { return 0; }
    "#;
    let program = Program::build(&[("t.c", src)]).unwrap();
    let mut w = program.boot();
    let op = w.sym("op").unwrap();
    let tiny = w.sym("tiny").unwrap();
    let big = w.sym("big").unwrap();

    // 1. inline tiny.
    w.machine.mem.write_int(op, tiny, 8).unwrap();
    w.commit_refs("op").unwrap();
    w.machine.cpu.if_flag = false;
    let c0 = w.machine.stats.calls + w.machine.stats.indirect_calls;
    w.call("go", &[]).unwrap();
    assert!(w.machine.cpu.if_flag, "inlined sti executed");
    assert_eq!(
        w.machine.stats.calls + w.machine.stats.indirect_calls,
        c0,
        "no call retired — body was inlined"
    );

    // 2. transition inlined → direct call to big.
    w.machine.mem.write_int(op, big, 8).unwrap();
    w.commit_refs("op").unwrap();
    w.call("go", &[]).unwrap();
    assert_eq!(w.get("big_calls").unwrap(), 1);

    // 3. back to inlined tiny.
    w.machine.mem.write_int(op, tiny, 8).unwrap();
    w.commit_refs("op").unwrap();
    w.machine.cpu.if_flag = false;
    w.call("go", &[]).unwrap();
    assert!(w.machine.cpu.if_flag);
    assert_eq!(w.get("big_calls").unwrap(), 1, "big not called again");

    // 4. revert restores the original indirect call through the pointer.
    w.revert().unwrap();
    w.machine.mem.write_int(op, big, 8).unwrap();
    let i0 = w.machine.stats.indirect_calls;
    w.call("go", &[]).unwrap();
    assert_eq!(w.machine.stats.indirect_calls, i0 + 1, "indirect again");
    // big computes (x+1)*2-1: 1 → 3 on its second invocation.
    assert_eq!(w.get("big_calls").unwrap(), 3);
}

#[test]
fn division_faults_propagate_to_the_host() {
    let src = r#"
        i64 divide(i64 a, i64 b) { return a / b; }
        i64 main(void) { return 0; }
    "#;
    let program = Program::build(&[("t.c", src)]).unwrap();
    let mut w = program.boot();
    assert_eq!(w.call("divide", &[42, 7]).unwrap(), 6);
    match w.call("divide", &[42, 0]) {
        Err(BuildError::Fault(Fault::DivByZero { .. })) => {}
        other => panic!("expected division fault, got {other:?}"),
    }
    // The machine remains usable after the fault (a new call resets pc).
    assert_eq!(w.call("divide", &[9, 3]).unwrap(), 3);
}
