//! The two-phase transactional executor behind every commit/revert.
//!
//! Each public [`Runtime`] operation is compiled into a list of
//! [`Action`]s (*plan*), every action is checked read-only against the
//! current image (*validate*), and only then are the writes performed
//! under the [`crate::journal::Journal`] undo log (*apply*). A validate
//! failure writes nothing; an apply failure rolls the journal back and
//! restores the runtime's bookkeeping snapshot, so the operation either
//! fully succeeds or leaves the process image byte-identical — the
//! failure is reported as [`RtError::Commit`] naming the phase and, when
//! known, the function being processed.
//!
//! Transient apply faults (a protection fault on a mapped text page, a
//! lost icache flush) may additionally be retried under the bounded
//! [`RetryPolicy`], since after rollback the image is clean and a new
//! plan/validate/apply cycle is safe.

use crate::error::{CommitPhase, RtError};
use crate::journal::Span;
use crate::patch::{pages_of, PageBatch};
use crate::runtime::{CommitReport, FnBinding, PatchStrategy, Runtime, SiteBinding};
use crate::stats::PatchTiming;
use mvobj::descriptor::NOT_INLINABLE;
use mvtrace::{EventKind, Phase as TracePhase};
use mvvm::{Machine, MemError, PAGE_SIZE};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Bounded retry for transient apply-phase faults.
///
/// After a rollback the image is byte-identical to its pre-commit state,
/// so re-running the whole plan/validate/apply cycle is safe. Only
/// errors for which [`RtError::is_transient`] holds are retried; hard
/// errors (bad descriptors, tampered sites, unknown addresses) surface
/// immediately. The default policy performs no retries, so atomicity
/// tests observe every injected fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Additional attempts after the first failure (0 = fail fast).
    pub max_retries: u32,
    /// Base sleep between attempts. [`Duration::ZERO`] skips sleeping
    /// entirely. Attempt *n* waits `backoff * n` (linear, the default)
    /// or `backoff * 2^(n-1)` with [`RetryPolicy::exponential`] set —
    /// see [`RetryPolicy::delay`].
    pub backoff: Duration,
    /// Exponential doubling instead of the default linear scaling.
    pub exponential: bool,
    /// Upper bound for a single delay ([`Duration::ZERO`] = uncapped).
    /// Applied before jitter, so a jittered schedule stays under the
    /// cap too.
    pub max_backoff: Duration,
    /// Seed for deterministic jitter (0 = none). With a nonzero seed an
    /// exponential delay is "equal-jittered" into `[d/2, d]`: half the
    /// delay is kept, the rest drawn from a splitmix of `(seed,
    /// attempt)` — the decorrelation that keeps a thundering herd of
    /// retriers from re-colliding, reproducible run over run.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_retries: 0,
            backoff: Duration::from_micros(50),
            exponential: false,
            max_backoff: Duration::ZERO,
            jitter_seed: 0,
        }
    }
}

/// splitmix64 finalizer over a seed/counter pair — the jitter source.
fn mix64(seed: u64, counter: u64) -> u64 {
    let mut z = seed ^ counter.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl RetryPolicy {
    /// A policy retrying up to `max_retries` times with no sleep —
    /// convenient under the deterministic VM, where faults heal
    /// instantly rather than with time.
    pub fn retries(max_retries: u32) -> RetryPolicy {
        RetryPolicy {
            max_retries,
            backoff: Duration::ZERO,
            ..RetryPolicy::default()
        }
    }

    /// A jittered-exponential policy: attempt *n* waits a deterministic
    /// draw from `[base·2^(n-1) / 2, base·2^(n-1)]` seeded by `seed`
    /// (`seed = 0` disables the jitter and keeps the pure doubling).
    /// Uncapped; chain [`RetryPolicy::capped`] to bound single delays.
    pub fn exponential(max_retries: u32, base: Duration, seed: u64) -> RetryPolicy {
        RetryPolicy {
            max_retries,
            backoff: base,
            exponential: true,
            max_backoff: Duration::ZERO,
            jitter_seed: seed,
        }
    }

    /// Caps every single delay at `max` (applied before jitter).
    pub fn capped(mut self, max: Duration) -> RetryPolicy {
        self.max_backoff = max;
        self
    }

    /// The sleep before retry `attempt` (1-based), fully deterministic:
    /// linear `backoff * attempt` by default, doubling (capped, then
    /// equal-jittered when seeded) with [`RetryPolicy::exponential`]
    /// set. A zero base means no sleeping in any mode.
    pub fn delay(&self, attempt: u32) -> Duration {
        if self.backoff.is_zero() || attempt == 0 {
            return Duration::ZERO;
        }
        let mut d = if self.exponential {
            self.backoff.saturating_mul(1u32 << (attempt - 1).min(31))
        } else {
            self.backoff.saturating_mul(attempt)
        };
        if !self.max_backoff.is_zero() && d > self.max_backoff {
            d = self.max_backoff;
        }
        if self.exponential && self.jitter_seed != 0 {
            let ns = d.as_nanos().min(u64::MAX as u128) as u64;
            let half = ns / 2;
            let r = mix64(self.jitter_seed, attempt as u64);
            d = Duration::from_nanos(half + r % (half + 1));
        }
        d
    }
}

/// The operation a public API call maps to.
#[derive(Clone, Copy, Debug)]
pub(crate) enum TxnOp {
    /// `multiverse_commit()`.
    CommitAll,
    /// `multiverse_revert()`.
    RevertAll,
    /// `multiverse_commit_refs(&var)`.
    CommitRefs(u64),
    /// `multiverse_revert_refs(&var)`.
    RevertRefs(u64),
    /// `multiverse_commit_func(&fn)`.
    CommitFunc(u64),
    /// `multiverse_revert_func(&fn)`.
    RevertFunc(u64),
}

impl TxnOp {
    /// Stable operation name, as it appears in trace events (the Table 1
    /// entry point minus the `multiverse_` prefix).
    pub(crate) fn name(self) -> &'static str {
        match self {
            TxnOp::CommitAll => "commit",
            TxnOp::RevertAll => "revert",
            TxnOp::CommitRefs(_) => "commit_refs",
            TxnOp::RevertRefs(_) => "revert_refs",
            TxnOp::CommitFunc(_) => "commit_func",
            TxnOp::RevertFunc(_) => "revert_func",
        }
    }
}

/// One planned unit of work. Planning resolves variant selection up
/// front, so validate and apply agree on what will happen.
#[derive(Clone, Copy, Debug)]
enum Action {
    /// Install variant `vi` of function `fi` (sites + entry jump).
    /// `repatch` marks an install where the bookkeeping already said
    /// "this variant is bound" but the image bytes did not verify, so
    /// the writes are re-applied to heal it.
    Install { fi: usize, vi: usize, repatch: bool },
    /// Restore function `fi` to its generic body. `fallback` marks the
    /// Fig. 3 d case (no variant admitted the configuration) as opposed
    /// to an explicit revert.
    RevertFn { fi: usize, fallback: bool },
    /// Re-bind the call sites of the function-pointer switch at
    /// `var_addr` to its current target.
    BindFnPtr { var_addr: u64 },
    /// Restore the call sites of the function-pointer switch.
    RevertFnPtr { var_addr: u64 },
}

impl Action {
    /// Generic entry of the function this action concerns, for error
    /// attribution.
    fn function(&self, rt: &Runtime) -> Option<u64> {
        match *self {
            Action::Install { fi, .. } | Action::RevertFn { fi, .. } => {
                Some(rt.fns[fi].desc.generic)
            }
            Action::BindFnPtr { .. } | Action::RevertFnPtr { .. } => None,
        }
    }
}

/// Output of the planning phase: the actions that must run, plus the
/// delta-planning accounting for everything that did *not* need to —
/// functions already bound to the selected variant with verified sites,
/// function-pointer switches already aimed at their target, generic
/// fallbacks already fully generic. A no-change `commit()` plans an
/// empty action list and therefore performs zero text writes.
#[derive(Debug, Default)]
struct TxnPlan {
    /// Work that must actually run.
    actions: Vec<Action>,
    /// Functions / fn-pointer switches skipped as already current.
    unchanged: usize,
    /// Generic fallbacks (Fig. 3 d) skipped as already fully generic.
    /// These still count into [`CommitReport::generic_fallbacks`], so
    /// the fallback *signal* survives the fast path.
    skipped_fallbacks: usize,
    /// Call sites covered by the skipped work.
    sites_skipped: u64,
}

/// Bookkeeping snapshot taken before an apply phase; restored together
/// with the journal rollback so `Runtime` state matches the restored
/// image.
struct StateSnapshot {
    site_bindings: Vec<SiteBinding>,
    /// Prologue copies are inline [`Span`]s (an entry jump is 5 bytes):
    /// taking the snapshot is on the happy path of every commit and must
    /// not allocate per function.
    fn_states: Vec<(FnBinding, Option<Span>)>,
}

/// Health of one multiversed function, as reported by
/// [`Runtime::validate`].
#[derive(Clone, Debug)]
pub struct FnHealth {
    /// Generic entry address.
    pub generic: u64,
    /// Current binding.
    pub binding: FnBinding,
    /// Entry address of the variant the current configuration selects
    /// (`None`: generic fallback, or the function has no variants).
    pub selected: Option<u64>,
    /// Why a commit of this function would fail, if it would.
    pub issue: Option<String>,
}

/// Health of one recorded call site, as reported by
/// [`Runtime::validate`].
#[derive(Clone, Debug)]
pub struct SiteHealth {
    /// Call-site address.
    pub site: u64,
    /// Recorded callee (generic entry or function-pointer switch).
    pub callee: u64,
    /// `true` if the site is currently rewritten (patched or inlined).
    pub patched: bool,
    /// Why patching this site would fail, if it would.
    pub issue: Option<String>,
}

/// Result of a [`Runtime::validate`] dry run: everything the validate
/// phase of a full `commit` would check, with nothing written.
#[derive(Clone, Debug, Default)]
pub struct ValidationReport {
    /// Per-function health, in descriptor order.
    pub functions: Vec<FnHealth>,
    /// Per-site health, in descriptor order.
    pub sites: Vec<SiteHealth>,
}

impl ValidationReport {
    /// `true` if no function and no site reported an issue — a full
    /// `commit` would pass its validate phase.
    pub fn healthy(&self) -> bool {
        self.functions.iter().all(|f| f.issue.is_none())
            && self.sites.iter().all(|s| s.issue.is_none())
    }

    /// Number of functions/sites with issues.
    pub fn issues(&self) -> usize {
        self.functions.iter().filter(|f| f.issue.is_some()).count()
            + self.sites.iter().filter(|s| s.issue.is_some()).count()
    }
}

impl Runtime {
    /// All text writes of the runtime funnel through here. Inside a
    /// transaction the write is journaled *before* it is attempted and
    /// the icache flush is verified afterwards (a lost flush means stale
    /// code keeps executing — surfaced as [`RtError::IcacheStale`]).
    /// Outside a transaction (legacy path) it is a plain patch.
    ///
    /// With an open [`PageBatch`] the per-write mprotect/flush dance is
    /// replaced by lazy RW windows: the first write landing on a page
    /// unlocks it once, subsequent writes go straight in, and
    /// [`Runtime::close_batch`] relocks and flushes every touched page
    /// exactly once at the end of the apply phase — O(pages) protection
    /// changes and flushes instead of O(sites).
    pub(crate) fn write_text(
        &mut self,
        m: &mut Machine,
        addr: u64,
        bytes: &[u8],
    ) -> Result<(), RtError> {
        let (window, restore) = (self.backend.window_prot(), self.backend.restore_prot());
        if self.txn.is_none() {
            crate::patch::patch_bytes_with(m, addr, bytes, &mut self.stats, window, restore)?;
            return Ok(());
        }
        let mut old = [0u8; crate::journal::MAX_SPAN];
        let old = &mut old[..bytes.len()];
        m.mem.read(addr, old)?;
        let txn = self.txn.as_mut().expect("transaction active");
        txn.record(addr, old, bytes);
        self.stats.journal_entries += 1;
        self.stats.journal_bytes += bytes.len() as u64;
        if let Some(batch) = self.batch.as_mut() {
            for page in pages_of(addr, bytes.len()) {
                if !batch.open.contains(&page) {
                    m.mem.mprotect(page, PAGE_SIZE, window)?;
                    self.stats.mprotects += 1;
                    batch.open.push(page);
                }
            }
            m.mem.write(addr, bytes)?;
            self.stats.bytes_written += bytes.len() as u64;
            batch.writes += 1;
            return Ok(());
        }
        let epoch_before = m.mem.flush_epoch();
        crate::patch::patch_bytes_with(m, addr, bytes, &mut self.stats, window, restore)?;
        if m.mem.flush_epoch() == epoch_before {
            return Err(RtError::IcacheStale { addr });
        }
        Ok(())
    }

    /// Relocks and flushes every page the batch unlocked — once per
    /// page — then accounts the batch. Flush effectiveness is verified
    /// per page through the flush epoch, like the per-site path does per
    /// write. On error the batch is left in place so the caller can hand
    /// its open windows to the batched rollback.
    fn close_batch(&mut self, m: &mut Machine) -> Result<(), RtError> {
        let Some(batch) = self.batch.as_ref() else {
            return Ok(());
        };
        let pages = batch.open.clone();
        let writes = batch.writes;
        let restore = self.backend.restore_prot();
        for &page in &pages {
            let epoch_before = m.mem.flush_epoch();
            m.mem.mprotect(page, PAGE_SIZE, restore)?;
            self.stats.mprotects += 1;
            m.mem.flush_icache(page, PAGE_SIZE);
            self.stats.icache_flushes += 1;
            if m.mem.flush_epoch() == epoch_before {
                return Err(RtError::IcacheStale { addr: page });
            }
        }
        self.stats.pages_touched += pages.len() as u64;
        if !pages.is_empty() {
            self.emit(|| EventKind::PageBatch {
                pages: pages.len() as u64,
                writes,
            });
        }
        Ok(())
    }

    /// Phase 0 — planning. Reads switches, resolves variant selection and
    /// consults the runtime bookkeeping to produce the action list:
    /// anything already in its selected state is *skipped* (delta
    /// planning) and accounted in the returned [`TxnPlan`].
    /// Address-resolution failures (`UnknownVariable`,
    /// `UnknownFunction`) surface raw — they are API misuse, not
    /// transaction failures — while selection failures are wrapped with
    /// [`CommitPhase::Plan`].
    fn plan_ops(&mut self, m: &Machine, op: TxnOp) -> Result<TxnPlan, RtError> {
        let mut plan = TxnPlan::default();
        match op {
            TxnOp::CommitAll => {
                for fi in 0..self.fns.len() {
                    self.plan_commit_fn(m, fi, &mut plan)?;
                }
                for vi in 0..self.vars.len() {
                    let var_addr = self.vars[vi].addr;
                    if self.vars[vi].fn_ptr && self.sites_of.contains_key(&var_addr) {
                        self.plan_bind_fnptr(m, var_addr, &mut plan);
                    }
                }
            }
            TxnOp::RevertAll => {
                for fi in 0..self.fns.len() {
                    plan.actions.push(Action::RevertFn {
                        fi,
                        fallback: false,
                    });
                }
                for v in &self.vars {
                    if v.fn_ptr && self.sites_of.contains_key(&v.addr) {
                        plan.actions.push(Action::RevertFnPtr { var_addr: v.addr });
                    }
                }
            }
            TxnOp::CommitRefs(var_addr) => {
                let &vi = self
                    .var_by_addr
                    .get(&var_addr)
                    .ok_or(RtError::UnknownVariable(var_addr))?;
                if self.vars[vi].fn_ptr {
                    self.plan_bind_fnptr(m, var_addr, &mut plan);
                } else {
                    for fi in 0..self.fns.len() {
                        if self.references_var(fi, var_addr) {
                            self.plan_commit_fn(m, fi, &mut plan)?;
                        }
                    }
                }
            }
            TxnOp::RevertRefs(var_addr) => {
                let &vi = self
                    .var_by_addr
                    .get(&var_addr)
                    .ok_or(RtError::UnknownVariable(var_addr))?;
                if self.vars[vi].fn_ptr {
                    plan.actions.push(Action::RevertFnPtr { var_addr });
                } else {
                    for fi in 0..self.fns.len() {
                        if self.references_var(fi, var_addr) {
                            plan.actions.push(Action::RevertFn {
                                fi,
                                fallback: false,
                            });
                        }
                    }
                }
            }
            TxnOp::CommitFunc(fn_addr) => {
                let &fi = self
                    .fn_by_addr
                    .get(&fn_addr)
                    .ok_or(RtError::UnknownFunction(fn_addr))?;
                self.plan_commit_fn(m, fi, &mut plan)?;
            }
            TxnOp::RevertFunc(fn_addr) => {
                let &fi = self
                    .fn_by_addr
                    .get(&fn_addr)
                    .ok_or(RtError::UnknownFunction(fn_addr))?;
                plan.actions.push(Action::RevertFn {
                    fi,
                    fallback: false,
                });
            }
        }
        Ok(plan)
    }

    /// Plans the commit of one function: selects the variant the current
    /// configuration admits, or a revert-to-generic fallback (Fig. 3 d).
    /// Delta planning: if the bookkeeping says the selected state is
    /// already installed *and* the image bytes verify, no action is
    /// emitted; bookkeeping-says-installed with mismatching bytes plans a
    /// healing re-install (`repatch`).
    fn plan_commit_fn(
        &mut self,
        m: &Machine,
        fi: usize,
        plan: &mut TxnPlan,
    ) -> Result<(), RtError> {
        if self.fns[fi].desc.variants.is_empty() {
            return Ok(());
        }
        let generic = self.fns[fi].desc.generic;
        match self.select_variant(m, fi) {
            Ok(Some(vi)) => {
                let v_addr = self.fns[fi].desc.variants[vi].addr;
                if self.fns[fi].binding == FnBinding::Variant(v_addr) {
                    if self.commit_fn_unchanged(m, fi, vi) {
                        let sites = match self.strategy {
                            PatchStrategy::CallSites => self.callsites_of(generic) as u64,
                            PatchStrategy::EntryOnly => 0,
                        };
                        plan.unchanged += 1;
                        plan.sites_skipped += sites;
                        self.emit(|| EventKind::ActionSkipped {
                            function: generic,
                            sites,
                        });
                    } else {
                        plan.actions.push(Action::Install {
                            fi,
                            vi,
                            repatch: true,
                        });
                    }
                } else {
                    plan.actions.push(Action::Install {
                        fi,
                        vi,
                        repatch: false,
                    });
                }
            }
            Ok(None) => {
                if self.fn_generic_unchanged(fi) {
                    plan.skipped_fallbacks += 1;
                    self.emit(|| EventKind::ActionSkipped {
                        function: generic,
                        sites: 0,
                    });
                } else {
                    plan.actions.push(Action::RevertFn { fi, fallback: true });
                }
            }
            Err(e) => {
                return Err(RtError::Commit {
                    phase: CommitPhase::Plan,
                    function: Some(generic),
                    source: Box::new(e),
                })
            }
        }
        Ok(())
    }

    /// Plans the re-bind of one function-pointer switch, delta-skipping
    /// it when every recorded site is already bound to the switch's
    /// current target and verifies. A null target keeps the action so
    /// the validate phase reports [`RtError::BadFnPtrTarget`].
    fn plan_bind_fnptr(&mut self, m: &Machine, var_addr: u64, plan: &mut TxnPlan) {
        if self.fnptr_unchanged(m, var_addr) {
            let sites = self.callsites_of(var_addr) as u64;
            plan.unchanged += 1;
            plan.sites_skipped += sites;
            self.emit(|| EventKind::ActionSkipped {
                function: var_addr,
                sites,
            });
        } else {
            plan.actions.push(Action::BindFnPtr { var_addr });
        }
    }

    /// `true` if function `fi` is verifiably already in the state an
    /// install of variant `vi` would produce: prologue saved, the entry
    /// jump bytes in place, and (under call-site patching) every
    /// recorded site bound the way the install would bind it, with its
    /// bytes verifying. Any read failure or mismatch conservatively
    /// reports "changed", so the install runs and surfaces the problem
    /// through the normal validate/apply machinery.
    fn commit_fn_unchanged(&self, m: &Machine, fi: usize, vi: usize) -> bool {
        let f = &self.fns[fi];
        let v = &f.desc.variants[vi];
        if f.saved_prologue.is_none() {
            return false;
        }
        let Ok(jmp) = self.abi().encode_jmp(f.desc.generic, v.addr) else {
            return false;
        };
        match m.mem.read_vec(f.desc.generic, self.abi().call_site_len()) {
            Ok(cur) if cur == jmp => {}
            _ => return false,
        }
        if self.strategy == PatchStrategy::CallSites {
            if let Some(idxs) = self.sites_of.get(&f.desc.generic) {
                for &si in idxs {
                    let s = &self.sites[si];
                    let expected = if self.inline_enabled
                        && v.inline_len != NOT_INLINABLE
                        && (v.inline_len as usize) <= s.len
                    {
                        SiteBinding::Inlined(v.addr)
                    } else {
                        SiteBinding::Call(v.addr)
                    };
                    if s.binding != expected || self.check_site_patchable(m, si).is_err() {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// `true` if function `fi` is already fully generic (nothing saved,
    /// nothing bound, every site untouched) — the generic-fallback
    /// revert would write nothing.
    fn fn_generic_unchanged(&self, fi: usize) -> bool {
        let f = &self.fns[fi];
        if f.saved_prologue.is_some() || f.binding != FnBinding::Generic {
            return false;
        }
        match self.sites_of.get(&f.desc.generic) {
            Some(idxs) => idxs
                .iter()
                .all(|&si| self.sites[si].binding == SiteBinding::Original),
            None => true,
        }
    }

    /// `true` if every site of the function-pointer switch at `var_addr`
    /// is already bound the way [`Runtime::commit_fnptr_var`] would bind
    /// it for the switch's current target, with verifying bytes.
    fn fnptr_unchanged(&self, m: &Machine, var_addr: u64) -> bool {
        let Ok(target) = m.mem.read_uint(var_addr, 8) else {
            return false;
        };
        if target == 0 {
            return false;
        }
        let inline = self.fn_by_addr.get(&target).and_then(|&fi| {
            let il = self.fns[fi].desc.generic_inline_len;
            (self.inline_enabled && il != NOT_INLINABLE).then_some(il)
        });
        let Some(idxs) = self.sites_of.get(&var_addr) else {
            return true;
        };
        for &si in idxs {
            let s = &self.sites[si];
            let expected = match inline {
                Some(il) if (il as usize) <= s.len => SiteBinding::Inlined(target),
                _ => SiteBinding::Call(target),
            };
            if s.binding != expected || self.check_site_patchable(m, si).is_err() {
                return false;
            }
        }
        true
    }

    /// Phase 1 — validation. Re-checks, read-only, everything the apply
    /// phase will rely on: call-site bytes, page protections, body
    /// readability, descriptor constraints. Failures come back as
    /// [`RtError::Commit`] with [`CommitPhase::Validate`]; nothing has
    /// been written.
    fn validate_actions(&self, m: &Machine, actions: &[Action]) -> Result<(), RtError> {
        for a in actions {
            let checked = match *a {
                Action::Install { fi, vi, .. } => self.validate_install(m, fi, vi),
                Action::RevertFn { fi, .. } => self.validate_revert_fn(m, fi),
                Action::BindFnPtr { var_addr } => self.validate_bind_fnptr(m, var_addr),
                Action::RevertFnPtr { var_addr } => self.validate_revert_fnptr(m, var_addr),
            };
            checked.map_err(|e| RtError::Commit {
                phase: CommitPhase::Validate,
                function: a.function(self),
                source: Box::new(e),
            })?;
        }
        Ok(())
    }

    /// A call site must still hold what the bookkeeping says it holds,
    /// on an executable page, before we overwrite it (§4's "check if
    /// they point to the expected call target", extended to all binding
    /// states). The check compares raw bytes against what the runtime
    /// knows it wrote (or found at attach), which is both stricter and
    /// cheaper than re-decoding the instruction.
    fn check_site_patchable(&self, m: &Machine, si: usize) -> Result<(), RtError> {
        let s = &self.sites[si];
        let mut current = [0u8; crate::journal::MAX_SPAN];
        let current = &mut current[..s.len];
        m.mem.read(s.desc.site, current)?;
        let ok = match s.binding {
            // Untouched: must still hold the exact attach-time bytes
            // (covers direct and indirect originals alike).
            SiteBinding::Original => current == &s.original[..],
            // Rewritten: must hold exactly the call we encoded.
            SiteBinding::Call(target) => {
                let abi = self.abi();
                let mut expected = abi.encode_call(s.desc.site, target)?;
                expected.extend(abi.nop_fill(s.len - abi.call_site_len()));
                current == &expected[..]
            }
            // Inlined bodies are arbitrary bytes; readability (above) is
            // the only byte-level invariant.
            SiteBinding::Inlined(_) => true,
        };
        if !ok {
            return Err(RtError::SiteVerifyFailed {
                site: s.desc.site,
                what: "site bytes changed behind the runtime's back".into(),
            });
        }
        self.check_exec(m, s.desc.site)
    }

    /// The page holding `addr` must be mapped executable text.
    fn check_exec(&self, m: &Machine, addr: u64) -> Result<(), RtError> {
        match m.mem.prot_of(addr) {
            Some(p) if p.exec => Ok(()),
            Some(_) => Err(RtError::SiteVerifyFailed {
                site: addr,
                what: "page is mapped but not executable".into(),
            }),
            None => Err(RtError::Mem(mvvm::MemError {
                addr,
                access: mvvm::mem::Access::Read,
                mapped: false,
            })),
        }
    }

    fn validate_install(&self, m: &Machine, fi: usize, vi: usize) -> Result<(), RtError> {
        let f = &self.fns[fi];
        let v = &f.desc.variants[vi];
        let abi = self.abi();
        // Completeness patching needs room for the entry jump.
        if f.desc.generic_size < abi.call_site_len() as u32 {
            return Err(RtError::GenericTooSmall {
                function: f.desc.generic,
                size: f.desc.generic_size,
            });
        }
        // Entry prologue must be readable, executable text, and the
        // variant must be within rel32 reach of the entry jump.
        m.mem.read_vec(f.desc.generic, abi.call_site_len())?;
        self.check_exec(m, f.desc.generic)?;
        abi.encode_jmp(f.desc.generic, v.addr)?;
        // The variant body must be readable if it may be inlined.
        let may_inline = self.inline_enabled && v.inline_len != NOT_INLINABLE;
        if may_inline {
            m.mem.read_vec(v.addr, v.inline_len as usize)?;
        }
        if self.strategy == PatchStrategy::CallSites {
            if let Some(idxs) = self.sites_of.get(&f.desc.generic) {
                for &si in idxs {
                    self.check_site_patchable(m, si)?;
                    // Sites that will be rewritten (not inlined) must be
                    // within rel32 reach of the variant.
                    if !(may_inline && (v.inline_len as usize) <= self.sites[si].len) {
                        abi.encode_call(self.sites[si].desc.site, v.addr)?;
                    }
                }
            }
        }
        Ok(())
    }

    fn validate_revert_fn(&self, m: &Machine, fi: usize) -> Result<(), RtError> {
        let f = &self.fns[fi];
        if let Some(idxs) = self.sites_of.get(&f.desc.generic) {
            for &si in idxs {
                if self.sites[si].binding != SiteBinding::Original {
                    m.mem
                        .read_vec(self.sites[si].desc.site, self.sites[si].len)?;
                    self.check_exec(m, self.sites[si].desc.site)?;
                }
            }
        }
        if f.saved_prologue.is_some() {
            m.mem.read_vec(f.desc.generic, self.abi().call_site_len())?;
            self.check_exec(m, f.desc.generic)?;
        }
        Ok(())
    }

    fn validate_bind_fnptr(&self, m: &Machine, var_addr: u64) -> Result<(), RtError> {
        let target = m.mem.read_uint(var_addr, 8)?;
        if target == 0 {
            return Err(RtError::BadFnPtrTarget { var_addr, target });
        }
        let mut inline_len = None;
        if let Some(&fi) = self.fn_by_addr.get(&target) {
            let il = self.fns[fi].desc.generic_inline_len;
            if self.inline_enabled && il != NOT_INLINABLE {
                m.mem.read_vec(target, il as usize)?;
                inline_len = Some(il);
            }
        }
        if let Some(idxs) = self.sites_of.get(&var_addr) {
            for &si in idxs {
                self.check_site_patchable(m, si)?;
                if inline_len.is_none_or(|il| (il as usize) > self.sites[si].len) {
                    self.abi().encode_call(self.sites[si].desc.site, target)?;
                }
            }
        }
        Ok(())
    }

    fn validate_revert_fnptr(&self, m: &Machine, var_addr: u64) -> Result<(), RtError> {
        if let Some(idxs) = self.sites_of.get(&var_addr) {
            for &si in idxs {
                if self.sites[si].binding != SiteBinding::Original {
                    m.mem
                        .read_vec(self.sites[si].desc.site, self.sites[si].len)?;
                    self.check_exec(m, self.sites[si].desc.site)?;
                }
            }
        }
        Ok(())
    }

    fn snapshot_state(&self) -> StateSnapshot {
        StateSnapshot {
            site_bindings: self.sites.iter().map(|s| s.binding).collect(),
            fn_states: self
                .fns
                .iter()
                .map(|f| {
                    let p = f.saved_prologue.as_deref().map(Span::from_slice);
                    (f.binding, p)
                })
                .collect(),
        }
    }

    fn restore_state(&mut self, snap: StateSnapshot) {
        for (s, b) in self.sites.iter_mut().zip(snap.site_bindings) {
            s.binding = b;
        }
        for (f, (b, p)) in self.fns.iter_mut().zip(snap.fn_states) {
            f.binding = b;
            f.saved_prologue = p.map(|s| s.to_vec());
        }
    }

    /// Phase 2 — apply. Executes the actions with every text write
    /// journaled; on failure the journal is rolled back and the
    /// bookkeeping snapshot restored, so an `Err` with
    /// [`CommitPhase::Apply`] guarantees a byte-identical image. Only a
    /// rollback that itself fails ([`CommitPhase::Rollback`]) can leave
    /// the image torn.
    fn apply_actions(
        &mut self,
        m: &mut Machine,
        actions: &[Action],
    ) -> Result<CommitReport, RtError> {
        let snapshot = self.snapshot_state();
        let mut journal = std::mem::take(&mut self.spare_journal);
        journal.clear();
        self.txn = Some(journal);
        if self.batch_pages {
            self.batch = Some(PageBatch::default());
        }
        let mut report = CommitReport::default();
        let mut failure = self.execute_actions(m, actions, &mut report).err();
        if failure.is_none() {
            failure = self.close_batch(m).err().map(|e| (None, e));
        }
        let journal = self.txn.take().expect("transaction active");
        let batch = self.batch.take();
        let outcome = match failure {
            None => Ok(report),
            Some((function, cause)) => {
                // Classify the root cause for the trace before it is
                // boxed away inside the Commit wrapper.
                let (fault_addr, fault_what) = match cause.root_cause() {
                    RtError::Mem(MemError {
                        addr, mapped: true, ..
                    }) => (*addr, "protection-fault"),
                    RtError::IcacheStale { addr } => (*addr, "icache-stale"),
                    _ => (0, "error"),
                };
                self.emit(|| EventKind::FaultObserved {
                    addr: fault_addr,
                    what: fault_what,
                });
                let entries = journal.len() as u64;
                let rolled = match &batch {
                    Some(b) => journal.rollback_batched(m, &b.open, &mut self.stats),
                    None => journal.rollback(m, &mut self.stats),
                };
                match rolled {
                    Ok(()) => {
                        self.restore_state(snapshot);
                        self.stats.rollbacks += 1;
                        self.emit(|| EventKind::Rollback { entries });
                        Err(RtError::Commit {
                            phase: CommitPhase::Apply,
                            function,
                            source: Box::new(cause),
                        })
                    }
                    Err(rb) => Err(RtError::Commit {
                        phase: CommitPhase::Rollback,
                        function,
                        source: Box::new(rb),
                    }),
                }
            }
        };
        self.spare_journal = journal;
        outcome
    }

    /// Runs the planned actions, attributing any failure to the function
    /// being processed.
    #[allow(clippy::type_complexity)]
    fn execute_actions(
        &mut self,
        m: &mut Machine,
        actions: &[Action],
        report: &mut CommitReport,
    ) -> Result<(), (Option<u64>, RtError)> {
        for a in actions {
            let function = a.function(self);
            match *a {
                Action::Install { fi, vi, repatch } => {
                    let sites = self.install_variant(m, fi, vi).map_err(|e| (function, e))?;
                    report.sites_touched += sites;
                    report.variants_committed += 1;
                    if repatch {
                        report.repatched += 1;
                    }
                }
                Action::RevertFn { fi, fallback } => {
                    let sites = self.revert_fn_idx(m, fi).map_err(|e| (function, e))?;
                    report.sites_touched += sites;
                    if fallback {
                        report.generic_fallbacks += 1;
                        self.stats.generic_fallbacks += 1;
                    }
                }
                Action::BindFnPtr { var_addr } => {
                    self.commit_fnptr_var(m, var_addr, report)
                        .map_err(|e| (function, e))?;
                }
                Action::RevertFnPtr { var_addr } => {
                    let sites = self
                        .revert_fnptr_var(m, var_addr)
                        .map_err(|e| (function, e))?;
                    report.sites_touched += sites;
                }
            }
        }
        Ok(())
    }

    /// The transaction driver: plan → validate → apply, retried under
    /// [`Runtime::retry`] for transient faults. With
    /// [`Runtime::journal`] off the plan is still validated, but applied
    /// without the undo log — a mid-apply fault surfaces raw and tears
    /// the image. That mode exists for the journal-overhead ablation in
    /// the patch-cost benchmark.
    pub(crate) fn run_txn(&mut self, m: &mut Machine, op: TxnOp) -> Result<CommitReport, RtError> {
        self.last_timing = PatchTiming::default();
        self.emit(|| EventKind::CommitBegin { op: op.name() });
        let mut attempt = 0u32;
        let result = loop {
            // Re-plan every attempt: switches may have changed, and the
            // rollback restored the pre-commit image.
            let result = self.attempt_txn(m, op);
            match result {
                // Only journaled apply failures are transient (the image
                // was rolled back); unjournaled errors surface raw and
                // never classify as retryable.
                Err(e) if attempt < self.retry.max_retries && e.is_transient() => {
                    attempt += 1;
                    self.stats.retries += 1;
                    self.last_timing.retries += 1;
                    self.emit(|| EventKind::Retry { attempt });
                    let delay = self.retry.delay(attempt);
                    if !delay.is_zero() {
                        // Charged to the op's timing so elapsed − phases
                        // decomposes into backoff + driver overhead.
                        self.last_timing.backoff += delay;
                        std::thread::sleep(delay);
                    }
                }
                other => break other,
            }
        };
        // Backend post-commit hook: the image and bookkeeping are final
        // for this operation, so the backend may reconcile tier state
        // (e.g. re-lower native regions) against the new bindings.
        if result.is_ok() {
            let b = Arc::clone(&self.backend);
            b.sync(m, self);
        }
        self.emit(|| EventKind::CommitEnd { ok: result.is_ok() });
        let (stats, timing) = (self.stats, self.last_timing);
        if let Some(metrics) = self.metrics.as_mut() {
            metrics.record_txn(op.name(), result.is_ok(), stats, timing);
        }
        result
    }

    /// One plan → validate → apply cycle, with each phase timed into
    /// [`Runtime::last_timing`] (accumulating across attempts) and
    /// bracketed by trace events.
    fn attempt_txn(&mut self, m: &mut Machine, op: TxnOp) -> Result<CommitReport, RtError> {
        self.emit(|| EventKind::PhaseBegin {
            phase: TracePhase::Plan,
        });
        let t = Instant::now();
        let planned = self.plan_ops(m, op);
        self.last_timing.plan += t.elapsed();
        self.emit(|| EventKind::PhaseEnd {
            phase: TracePhase::Plan,
            ok: planned.is_ok(),
        });
        let plan = planned?;

        self.emit(|| EventKind::PhaseBegin {
            phase: TracePhase::Validate,
        });
        let t = Instant::now();
        let validated = self.validate_actions(m, &plan.actions);
        self.last_timing.validate += t.elapsed();
        self.emit(|| EventKind::PhaseEnd {
            phase: TracePhase::Validate,
            ok: validated.is_ok(),
        });
        validated?;

        self.emit(|| EventKind::PhaseBegin {
            phase: TracePhase::Apply,
        });
        let t = Instant::now();
        let applied = if self.journal {
            self.apply_actions(m, &plan.actions)
        } else {
            let mut report = CommitReport::default();
            match self.execute_actions(m, &plan.actions, &mut report) {
                Ok(()) => Ok(report),
                Err((_, e)) => Err(e),
            }
        };
        self.last_timing.apply += t.elapsed();
        self.emit(|| EventKind::PhaseEnd {
            phase: TracePhase::Apply,
            ok: applied.is_ok(),
        });
        // Fold the delta-planning summary into the successful attempt:
        // skipped work is reported as unchanged, skipped fallbacks keep
        // the Fig. 3 d signal alive, and the skipped sites are counted.
        applied.map(|mut report| {
            report.unchanged += plan.unchanged + plan.skipped_fallbacks;
            report.generic_fallbacks += plan.skipped_fallbacks;
            self.stats.generic_fallbacks += plan.skipped_fallbacks as u64;
            self.stats.sites_skipped += plan.sites_skipped;
            report
        })
    }

    /// Dry-run validation: everything a full [`Runtime::commit`] would
    /// check in its validate phase, with nothing written. Powers the
    /// `mvcc verify` health report.
    pub fn validate(&self, m: &Machine) -> ValidationReport {
        let mut report = ValidationReport::default();
        for (fi, f) in self.fns.iter().enumerate() {
            let mut health = FnHealth {
                generic: f.desc.generic,
                binding: f.binding,
                selected: None,
                issue: None,
            };
            if !f.desc.variants.is_empty() {
                match self.select_variant(m, fi) {
                    Ok(Some(vi)) => {
                        health.selected = Some(f.desc.variants[vi].addr);
                        health.issue = self
                            .validate_install(m, fi, vi)
                            .err()
                            .map(|e| e.to_string());
                    }
                    Ok(None) => {
                        health.issue = self.validate_revert_fn(m, fi).err().map(|e| e.to_string());
                    }
                    Err(e) => health.issue = Some(e.to_string()),
                }
            }
            report.functions.push(health);
        }
        for (si, s) in self.sites.iter().enumerate() {
            let issue = self
                .check_site_patchable(m, si)
                .err()
                .map(|e| e.to_string());
            report.sites.push(SiteHealth {
                site: s.desc.site,
                callee: s.desc.callee,
                patched: s.binding != SiteBinding::Original,
                issue,
            });
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const US: u64 = 1_000; // ns per µs

    #[test]
    fn default_policy_keeps_linear_fixed_delay() {
        let p = RetryPolicy::default();
        assert!(!p.exponential);
        for n in 1..=5u32 {
            assert_eq!(p.delay(n), p.backoff * n, "linear schedule preserved");
        }
        assert_eq!(RetryPolicy::retries(3).delay(2), Duration::ZERO);
    }

    #[test]
    fn exponential_schedule_doubles_and_caps() {
        let p = RetryPolicy::exponential(8, Duration::from_micros(100), 0);
        let got: Vec<u64> = (1..=5).map(|n| p.delay(n).as_nanos() as u64).collect();
        assert_eq!(got, vec![100 * US, 200 * US, 400 * US, 800 * US, 1600 * US]);

        let capped = p.capped(Duration::from_micros(500));
        let got: Vec<u64> = (1..=5).map(|n| capped.delay(n).as_nanos() as u64).collect();
        assert_eq!(got, vec![100 * US, 200 * US, 400 * US, 500 * US, 500 * US]);
        // Far attempts must not overflow the doubling.
        assert_eq!(capped.delay(200), Duration::from_micros(500));
    }

    #[test]
    fn jitter_stays_in_the_equal_jitter_window() {
        let p = RetryPolicy::exponential(8, Duration::from_micros(100), 0xfeed);
        for n in 1..=8u32 {
            let pure = RetryPolicy::exponential(8, Duration::from_micros(100), 0).delay(n);
            let d = p.delay(n);
            assert!(d >= pure / 2, "attempt {n}: {d:?} below half of {pure:?}");
            assert!(d <= pure, "attempt {n}: {d:?} above {pure:?}");
        }
    }

    #[test]
    fn jitter_is_deterministic_per_seed_and_varies_across_seeds() {
        let a = RetryPolicy::exponential(8, Duration::from_micros(100), 7);
        let b = RetryPolicy::exponential(8, Duration::from_micros(100), 7);
        let c = RetryPolicy::exponential(8, Duration::from_micros(100), 8);
        let sched = |p: &RetryPolicy| (1..=8u32).map(|n| p.delay(n)).collect::<Vec<_>>();
        assert_eq!(sched(&a), sched(&b), "same seed, same schedule");
        assert_ne!(sched(&a), sched(&c), "different seed decorrelates");
        // And the jitter really moves within one schedule: not every
        // attempt lands on the window boundary.
        let pure = RetryPolicy::exponential(8, Duration::from_micros(100), 0);
        assert!(
            (1..=8u32).any(|n| a.delay(n) != pure.delay(n)),
            "seeded schedule must differ from the unjittered one"
        );
    }

    #[test]
    fn zero_base_never_sleeps_in_any_mode() {
        let p = RetryPolicy {
            max_retries: 4,
            backoff: Duration::ZERO,
            exponential: true,
            max_backoff: Duration::from_micros(10),
            jitter_seed: 42,
        };
        for n in 0..=6u32 {
            assert_eq!(p.delay(n), Duration::ZERO);
        }
    }
}
