//! cPython — the §6.2.1 case study.
//!
//! The cycle garbage collector can be switched off with `gc.disable()`;
//! the flag is consulted inside `_PyObject_GC_Alloc` on every tracked
//! allocation (generation-0 counting and the collection trigger). The
//! paper multiversed the enable flag (12 changed lines, one file) but
//! could not measure a stable effect — allocation jitter drowned it.
//!
//! Our simulated allocator is deterministic, so the (small) effect is
//! measurable here; `EXPERIMENTS.md` reports it side by side with the
//! paper's "no significant influence" verdict.

use multiverse::mvc::Options;
use multiverse::{BuildError, Program, World};

/// The allocation-path source.
pub const SRC: &str = r#"
    // gc.enable() / gc.disable() flip this switch.
    multiverse(0, 1) i32 gc_enabled = 1;

    u64 gc_gen0_count;
    u64 gc_collections;
    u64 arena_next = 16;

    // A collection pass: reset the nursery counter. The real collector
    // walks generations; the trigger structure is what matters here.
    void gc_collect(void) {
        gc_gen0_count = 0;
        gc_collections = gc_collections + 1;
    }

    // _PyObject_GC_Alloc: bump-allocate the object, then do the GC
    // bookkeeping if collection is enabled.
    multiverse i64 pyobject_gc_alloc(i64 basicsize) {
        i64 p = arena_next;
        arena_next = arena_next + basicsize + 16;
        if (arena_next > 60000) { arena_next = 16; }
        if (gc_enabled) {
            gc_gen0_count = gc_gen0_count + 1;
            if (gc_gen0_count > 700) {
                gc_collect();
            }
        }
        return p;
    }

    i64 bench_alloc(i64 n) {
        i64 acc = 0;
        for (i64 i = 0; i < n; i++) {
            acc = acc + pyobject_gc_alloc(16);
        }
        return acc;
    }

    i64 main(void) { return 0; }
"#;

/// Build flavor.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PyBuild {
    /// Unmodified interpreter.
    Without,
    /// Multiversed GC flag, committed after `gc.enable()`/`gc.disable()`.
    With,
}

impl PyBuild {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            PyBuild::Without => "w/o Multiverse",
            PyBuild::With => "w/ Multiverse",
        }
    }
}

/// Builds the allocator, sets the GC flag, commits if multiversed.
pub fn boot(build: PyBuild, gc_enabled: bool) -> Result<World, BuildError> {
    let opts = match build {
        PyBuild::Without => Options::dynamic(),
        PyBuild::With => Options::default(),
    };
    let program = Program::build_with(&[("cpython.c", SRC)], &opts)?;
    let mut world = program.boot();
    world.set("gc_enabled", gc_enabled as i64)?;
    if build == PyBuild::With {
        world.commit()?;
    }
    Ok(world)
}

/// Runs `n` allocations; returns total cycles.
pub fn run(world: &mut World, n: u64) -> Result<u64, BuildError> {
    let c0 = world.cycles();
    world.call("bench_alloc", &[n])?;
    Ok(world.cycles() - c0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocations_return_distinct_addresses() {
        let mut w = boot(PyBuild::With, true).unwrap();
        let a = w.call("pyobject_gc_alloc", &[16]).unwrap();
        let b = w.call("pyobject_gc_alloc", &[16]).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn gc_triggers_after_threshold() {
        let mut w = boot(PyBuild::Without, true).unwrap();
        w.call("bench_alloc", &[1500]).unwrap();
        let collections = w.get("gc_collections").unwrap();
        assert_eq!(collections, 2, "1500 allocations ⇒ two collections");
    }

    #[test]
    fn disabled_gc_never_collects() {
        for build in [PyBuild::Without, PyBuild::With] {
            let mut w = boot(build, false).unwrap();
            w.call("bench_alloc", &[1500]).unwrap();
            assert_eq!(w.get("gc_collections").unwrap(), 0, "{build:?}");
        }
    }

    #[test]
    fn committed_flag_freezes_until_recommit() {
        // gc.enable() without a commit has no effect on the committed
        // variant — the §2 semantics, visible through collection counts.
        let mut w = boot(PyBuild::With, false).unwrap();
        w.set("gc_enabled", 1).unwrap();
        w.call("bench_alloc", &[1500]).unwrap();
        assert_eq!(w.get("gc_collections").unwrap(), 0, "still disabled");
        w.commit().unwrap();
        w.call("bench_alloc", &[1500]).unwrap();
        assert!(w.get("gc_collections").unwrap() > 0);
    }

    #[test]
    fn effect_is_small_either_way() {
        // The paper could not measure a stable effect; our deterministic
        // machine shows the delta is real but small (< 20 %).
        let n = 5000;
        let without = run(&mut boot(PyBuild::Without, false).unwrap(), n).unwrap();
        let with = run(&mut boot(PyBuild::With, false).unwrap(), n).unwrap();
        let delta = 1.0 - with as f64 / without as f64;
        assert!(delta.abs() < 0.20, "delta {:.2}%", delta * 100.0);
        assert!(with <= without, "committed variant is not slower");
    }
}
