//! Negative tests of runtime attachment: malformed descriptor sections
//! and descriptor/text mismatches must be rejected up front, not cause
//! wild patches later.

use mvasm::{Assembler, Insn};
use mvobj::descriptor::{emit_callsite, CallsiteDescSym};
use mvobj::{link, Layout, Object, SectionKind};
use mvrt::{RtError, Runtime};
use mvvm::{CostModel, Machine, MachineConfig};

fn base_object() -> Object {
    let mut o = Object::new("t");
    let mut a = Assembler::new();
    a.emit(Insn::Halt);
    o.add_code("main", &a.finish().unwrap());
    o
}

fn attach(o: Object) -> Result<Runtime, RtError> {
    let exe = link(&[o], &Layout::default()).unwrap();
    let mut m = Machine::new(CostModel::default(), MachineConfig::default());
    m.load(&exe);
    Runtime::attach(&m, &exe)
}

#[test]
fn truncated_variable_section_is_rejected() {
    let mut o = base_object();
    // 31 bytes: not a multiple of the 32-byte record size.
    o.append(mvobj::SEC_MV_VARIABLES, SectionKind::Rodata, &[0u8; 31]);
    assert!(matches!(attach(o), Err(RtError::Desc(_))));
}

#[test]
fn truncated_callsite_section_is_rejected() {
    let mut o = base_object();
    o.append(mvobj::SEC_MV_CALLSITES, SectionKind::Rodata, &[0u8; 17]);
    assert!(matches!(attach(o), Err(RtError::Desc(_))));
}

#[test]
fn function_section_with_phantom_variants_is_rejected() {
    let mut o = base_object();
    // A 48-byte header claiming 3 variants with no variant records.
    let mut rec = vec![0u8; 48];
    rec[16..20].copy_from_slice(&3u32.to_le_bytes());
    o.append(mvobj::SEC_MV_FUNCTIONS, SectionKind::Rodata, &rec);
    assert!(matches!(attach(o), Err(RtError::Desc(_))));
}

#[test]
fn callsite_descriptor_must_point_at_a_call() {
    // A descriptor whose site address holds a `halt`, not a call.
    let mut o = base_object();
    let mut a = Assembler::new();
    a.ret();
    o.add_code("victim", &a.finish().unwrap());
    emit_callsite(
        &mut o,
        &CallsiteDescSym {
            callee: "victim".into(),
            caller: "main".into(),
            offset: 0, // main+0 is `halt`, not a call
        },
    );
    let err = match attach(o) {
        Err(e) => e,
        Ok(_) => panic!("attach must fail"),
    };
    assert!(matches!(err, RtError::SiteVerifyFailed { .. }), "{err:?}");
}

#[test]
fn callsite_descriptor_with_wrong_callee_is_rejected() {
    // The call at the site targets a different function than the
    // descriptor claims.
    let mut o = base_object();
    let mut a = Assembler::new();
    a.ret();
    o.add_code("real_target", &a.finish().unwrap());
    let mut a = Assembler::new();
    a.ret();
    o.add_code("claimed_target", &a.finish().unwrap());
    let mut a = Assembler::new();
    let off = a.len() as u32;
    a.call_sym("real_target", false);
    a.ret();
    o.add_code("caller_fn", &a.finish().unwrap());
    emit_callsite(
        &mut o,
        &CallsiteDescSym {
            callee: "claimed_target".into(),
            caller: "caller_fn".into(),
            offset: off,
        },
    );
    let err = match attach(o) {
        Err(e) => e,
        Ok(_) => panic!("attach must fail"),
    };
    assert!(matches!(err, RtError::SiteVerifyFailed { .. }), "{err:?}");
}

#[test]
fn empty_descriptor_sections_attach_cleanly() {
    let rt = attach(base_object()).unwrap();
    assert_eq!(rt.num_variables(), 0);
    assert_eq!(rt.num_functions(), 0);
    assert_eq!(rt.num_callsites(), 0);
}
