//! Tiered-execution throughput: host-side guest-instruction throughput
//! of the tierless interpreter vs. the tier-0 block cache vs. the
//! tier-1 superblock engine on the ALU-heavy loop workload.
//!
//! The deterministic sweep (identity verdicts + speedups) also runs as
//! the `vm_throughput_quick` CI gate; the criterion group measures one
//! warm run of the workload per tier.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use multiverse::bench::render_table;
use multiverse::mvvm::{ExecTier, Machine};

fn bench(c: &mut Criterion) {
    let rows = mv_bench::vm_throughput_data(40_000, 5);
    println!(
        "{}",
        render_table(
            "Tiered execution — guest-instruction throughput (40k-iteration ALU loop)",
            &mv_bench::vm_throughput_series(&rows)
        )
    );
    for r in &rows {
        assert!(r.identical, "{}: diverged from tierless", r.tier);
    }
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_vm_throughput.json"
    );
    std::fs::write(path, mv_bench::vm_throughput_json(&rows))
        .expect("write BENCH_vm_throughput.json");
    println!("wrote {path}\n");

    let exe = mv_bench::vm_throughput_exe(4_000);
    let mut g = c.benchmark_group("vm_throughput");
    for tier in [ExecTier::Tierless, ExecTier::Block, ExecTier::Superblock] {
        let mut m = Machine::boot(&exe);
        m.set_tier(tier);
        m.run_entry(&exe).expect("warm");
        g.bench_with_input(BenchmarkId::new("run", tier), &tier, |b, _| {
            b.iter(|| m.run_entry(&exe).expect("run"))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(1));
    targets = bench
}
criterion_main!(benches);
