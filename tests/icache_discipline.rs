//! §4's closing step — "flush the instruction cache for the respective
//! locations" — as failure injection: a patcher that forgets the flush
//! leaves stale decoded instructions executing; the real runtime never
//! does.

use multiverse::{mvobj::Prot, Program};

const SRC: &str = r#"
    multiverse bool fast;
    multiverse i64 pick(void) {
        if (fast) { return 1; }
        return 2;
    }
    i64 use_it(void) { return pick(); }
    i64 main(void) { return 0; }
"#;

#[test]
fn buggy_patcher_without_flush_runs_stale_code() {
    let program = Program::build(&[("t.c", SRC)]).unwrap();
    let mut w = program.boot();

    // Warm the decode cache through the call site.
    assert_eq!(w.call("use_it", &[]).unwrap(), 2);

    // A "buggy patcher": rewrite the call site to target the fast variant
    // with the correct mprotect dance but NO icache flush.
    let site = w.sym("use_it").unwrap(); // first insn of use_it is the call
    let variant = w.sym("pick.fast=1").unwrap();
    let rel = variant.wrapping_sub(site + 5) as i64 as i32;
    let patched = multiverse::mvasm::encode(&multiverse::mvasm::Insn::CallRel { rel });
    w.machine.mem.mprotect(site, 5, Prot::RW).unwrap();
    w.machine.mem.write(site, &patched).unwrap();
    w.machine.mem.mprotect(site, 5, Prot::RX).unwrap();

    // Stale: the machine still executes the cached decoded call to the
    // generic — the bug is observable.
    assert_eq!(w.call("use_it", &[]).unwrap(), 2, "stale icache");

    // The missing flush fixes it.
    w.machine.mem.flush_icache(site, 5);
    assert_eq!(w.call("use_it", &[]).unwrap(), 1, "fresh code after flush");
}

/// The buggy-patcher staleness window is part of the observable
/// machine semantics, so the tiered engines must reproduce it exactly:
/// a cached block over the call site stays stale precisely as long as
/// the cached per-instruction decode would, and the missing flush
/// evicts both in lockstep.
#[test]
fn stale_window_is_identical_at_every_tier() {
    use multiverse::mvvm::ExecTier;
    let program = Program::build(&[("t.c", SRC)]).unwrap();
    let run = |tier: ExecTier| {
        let mut w = program.boot();
        w.machine.set_tier(tier);
        // Warm caches hard enough to trigger superblock promotion.
        let warm: Vec<u64> = (0..12).map(|_| w.call("use_it", &[]).unwrap()).collect();

        let site = w.sym("use_it").unwrap();
        let variant = w.sym("pick.fast=1").unwrap();
        let rel = variant.wrapping_sub(site + 5) as i64 as i32;
        let patched = multiverse::mvasm::encode(&multiverse::mvasm::Insn::CallRel { rel });
        w.machine.mem.mprotect(site, 5, Prot::RW).unwrap();
        w.machine.mem.write(site, &patched).unwrap();
        w.machine.mem.mprotect(site, 5, Prot::RX).unwrap();

        let stale = w.call("use_it", &[]).unwrap();
        w.machine.mem.flush_icache(site, 5);
        let fresh = w.call("use_it", &[]).unwrap();
        (warm, stale, fresh, w.cycles(), w.machine.stats)
    };
    let base = run(ExecTier::Tierless);
    assert_eq!(base.0, vec![2; 12]);
    assert_eq!(base.1, 2, "stale until the flush");
    assert_eq!(base.2, 1, "fresh after the flush");
    for tier in [ExecTier::Block, ExecTier::Superblock] {
        assert_eq!(run(tier), base, "{tier}: staleness window diverged");
    }
}

#[test]
fn real_runtime_always_flushes() {
    let program = Program::build(&[("t.c", SRC)]).unwrap();
    let mut w = program.boot();
    assert_eq!(w.call("use_it", &[]).unwrap(), 2);

    // The library's commit takes effect immediately — with page batching
    // (the default) every *touched page* is flushed exactly once, which
    // is what makes the new code visible.
    w.set("fast", 1).unwrap();
    w.commit().unwrap();
    assert_eq!(w.call("use_it", &[]).unwrap(), 1);
    let stats = w.rt.as_ref().unwrap().stats;
    assert!(stats.pages_touched >= 1);
    assert!(stats.icache_flushes >= stats.pages_touched);

    // And every mprotect unlock has a matching relock (W^X window).
    assert_eq!(stats.mprotects % 2, 0);
}

#[test]
fn unbatched_runtime_flushes_per_patch() {
    let program = Program::build(&[("t.c", SRC)]).unwrap();
    let mut w = program.boot();
    assert_eq!(w.call("use_it", &[]).unwrap(), 2);

    // With batching off the legacy discipline holds: one flush per
    // patched range (sites and entry jumps alike).
    w.rt.as_mut().unwrap().batch_pages = false;
    w.set("fast", 1).unwrap();
    w.commit().unwrap();
    assert_eq!(w.call("use_it", &[]).unwrap(), 1);
    let stats = w.rt.as_ref().unwrap().stats;
    assert!(stats.icache_flushes >= stats.sites_patched + stats.entry_jumps);
    assert_eq!(stats.pages_touched, 0);
    assert_eq!(stats.mprotects % 2, 0);
}
