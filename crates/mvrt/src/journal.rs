//! The patch journal: undo log for transactional commits.
//!
//! Every byte-write the apply phase performs is recorded here *before*
//! the write is attempted — site address, the bytes being replaced, the
//! bytes going in. If any step of the apply fails, replaying the journal
//! in reverse restores the text segment byte-for-byte (each restore uses
//! the same mprotect-write-mprotect-flush discipline as the forward
//! path, so page protections and icache state are repaired too).
//!
//! Recording *before* attempting matters: a write that faults halfway
//! through its own mprotect dance may have left its pages RW; the
//! rollback entry for it re-walks the dance over the unchanged bytes and
//! ends with the pages RX again.
//!
//! Entries store their byte spans inline ([`MAX_SPAN`] bytes) rather
//! than on the heap: every patch the runtime makes is a call site
//! (5 or 9 bytes) or an entry jump (5 bytes), and the journal sits on
//! the happy path of every commit, where per-write allocation would be
//! pure overhead.

use crate::error::RtError;
use crate::patch::{pages_of, patch_bytes};
use crate::stats::PatchStats;
use mvobj::Prot;
use mvvm::{Machine, PAGE_SIZE};

/// Maximum byte length of one journaled write. Comfortably above the
/// longest patch the runtime performs (a 9-byte indirect call site).
pub const MAX_SPAN: usize = 16;

/// A byte span stored inline (length ≤ [`MAX_SPAN`]).
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct Span {
    len: u8,
    buf: [u8; MAX_SPAN],
}

impl Span {
    /// Copies `bytes` into an inline span. Panics if longer than
    /// [`MAX_SPAN`].
    pub fn from_slice(bytes: &[u8]) -> Span {
        assert!(
            bytes.len() <= MAX_SPAN,
            "patch span of {} bytes exceeds MAX_SPAN",
            bytes.len()
        );
        let mut buf = [0u8; MAX_SPAN];
        buf[..bytes.len()].copy_from_slice(bytes);
        Span {
            len: bytes.len() as u8,
            buf,
        }
    }
}

impl std::ops::Deref for Span {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf[..self.len as usize]
    }
}

impl std::fmt::Debug for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        (**self).fmt(f)
    }
}

/// One recorded text write.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JournalEntry {
    /// Address the write targets (also the start of its icache span).
    pub addr: u64,
    /// The bytes that were there before.
    pub old: Span,
    /// The bytes the apply phase wrote (or was about to write).
    pub new: Span,
}

/// An append-only undo log of one apply phase.
#[derive(Clone, Debug, Default)]
pub struct Journal {
    entries: Vec<JournalEntry>,
}

impl Journal {
    /// An empty journal.
    pub fn new() -> Journal {
        Journal::default()
    }

    /// Records a write about to happen.
    pub fn record(&mut self, addr: u64, old: &[u8], new: &[u8]) {
        debug_assert_eq!(old.len(), new.len(), "journal spans must match");
        self.entries.push(JournalEntry {
            addr,
            old: Span::from_slice(old),
            new: Span::from_slice(new),
        });
    }

    /// Drops all recorded entries, keeping the allocation for reuse.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Number of recorded writes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total bytes covered by recorded writes.
    pub fn bytes(&self) -> u64 {
        self.entries.iter().map(|e| e.new.len() as u64).sum()
    }

    /// The recorded entries, oldest first.
    pub fn entries(&self) -> &[JournalEntry] {
        &self.entries
    }

    /// Restores every recorded range to its `old` bytes, newest entry
    /// first. On failure returns [`RtError::RollbackFailed`] naming the
    /// entry whose restore failed; earlier (newer) entries were already
    /// restored, later (older) ones were not — the image may be torn.
    pub fn rollback(&self, m: &mut Machine, stats: &mut PatchStats) -> Result<(), RtError> {
        for e in self.entries.iter().rev() {
            patch_bytes(m, e.addr, &e.old, stats).map_err(|src| RtError::RollbackFailed {
                addr: e.addr,
                source: Box::new(src),
            })?;
        }
        Ok(())
    }

    /// Page-batched rollback: one RW window per touched page (the
    /// recorded entries' pages united with `extra_pages`, typically the
    /// apply batch's still-open windows), every entry restored newest
    /// first with plain writes, then one RX relock and one icache flush
    /// per page — the same O(pages) discipline as the forward batched
    /// path. `extra_pages` matters for a batch aborted between opening a
    /// window and writing into it: the window must be relocked even
    /// though no journal entry names its page.
    ///
    /// On failure returns [`RtError::RollbackFailed`] naming the address
    /// whose step failed; the image may be torn (and some windows may be
    /// left open), exactly like the unbatched rollback contract.
    pub fn rollback_batched(
        &self,
        m: &mut Machine,
        extra_pages: &[u64],
        stats: &mut PatchStats,
    ) -> Result<(), RtError> {
        let mut pages: Vec<u64> = Vec::new();
        for e in &self.entries {
            for p in pages_of(e.addr, e.old.len()) {
                if !pages.contains(&p) {
                    pages.push(p);
                }
            }
        }
        for &p in extra_pages {
            if !pages.contains(&p) {
                pages.push(p);
            }
        }
        let fail = |addr: u64| {
            move |src: mvvm::MemError| RtError::RollbackFailed {
                addr,
                source: Box::new(RtError::Mem(src)),
            }
        };
        for &p in &pages {
            m.mem.mprotect(p, PAGE_SIZE, Prot::RW).map_err(fail(p))?;
            stats.mprotects += 1;
        }
        for e in self.entries.iter().rev() {
            m.mem.write(e.addr, &e.old).map_err(fail(e.addr))?;
            stats.bytes_written += e.old.len() as u64;
        }
        for &p in &pages {
            m.mem.mprotect(p, PAGE_SIZE, Prot::RX).map_err(fail(p))?;
            stats.mprotects += 1;
            m.mem.flush_icache(p, PAGE_SIZE);
            stats.icache_flushes += 1;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvobj::Prot;
    use mvvm::{CostModel, MachineConfig};

    fn machine_with_text(bytes: &[u8]) -> Machine {
        let mut m = Machine::new(CostModel::default(), MachineConfig::default());
        m.mem.map(0x1000, bytes.len() as u64, Prot::RX);
        m.mem.write_unchecked(0x1000, bytes);
        m.mem
            .mprotect(0x1000, bytes.len() as u64, Prot::RX)
            .unwrap();
        m
    }

    #[test]
    fn rollback_restores_in_reverse_order() {
        let mut m = machine_with_text(&[1, 2, 3, 4, 5, 6]);
        let mut stats = PatchStats::default();
        let mut j = Journal::new();
        // Two overlapping writes: only reverse-order restore yields the
        // original bytes.
        j.record(0x1000, &[1, 2, 3], &[9, 9, 9]);
        patch_bytes(&mut m, 0x1000, &[9, 9, 9], &mut stats).unwrap();
        j.record(0x1001, &[9, 9], &[7, 7]);
        patch_bytes(&mut m, 0x1001, &[7, 7], &mut stats).unwrap();
        assert_eq!(m.mem.read_vec(0x1000, 6).unwrap(), vec![9, 7, 7, 4, 5, 6]);

        j.rollback(&mut m, &mut stats).unwrap();
        assert_eq!(m.mem.read_vec(0x1000, 6).unwrap(), vec![1, 2, 3, 4, 5, 6]);
        // W^X restored: writes still fault.
        assert!(m.mem.write(0x1000, &[0]).is_err());
        assert_eq!(j.len(), 2);
        assert_eq!(j.bytes(), 5);
    }

    #[test]
    fn rollback_failure_names_the_entry() {
        let mut m = machine_with_text(&[1, 2, 3]);
        let mut stats = PatchStats::default();
        let mut j = Journal::new();
        j.record(0x1000, &[1], &[9]);
        j.record(0xdead_0000, &[0], &[1]); // unmapped: restore fails
        let err = j.rollback(&mut m, &mut stats).unwrap_err();
        match err {
            RtError::RollbackFailed { addr, .. } => assert_eq!(addr, 0xdead_0000),
            other => panic!("unexpected error {other:?}"),
        }
    }
}
