//! Hand-written lexer for MVC.

use crate::error::CompileError;
use crate::token::{Kw, Pos, Tok, Token, P};

/// Tokenizes `src` into a token stream ending with [`Tok::Eof`].
///
/// Supports `//` line comments and `/* */` block comments, decimal and
/// `0x` hexadecimal integer literals, and character literals (`'a'`,
/// `'\n'`, `'\0'`, `'\\'`, `'\''`).
pub fn lex(src: &str) -> Result<Vec<Token>, CompileError> {
    let mut toks = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;

    macro_rules! pos {
        () => {
            Pos { line, col }
        };
    }

    let err = |msg: String, pos: Pos| CompileError::Lex { msg, pos };

    while i < bytes.len() {
        let c = bytes[i] as char;
        let start = pos!();
        match c {
            ' ' | '\t' | '\r' => {
                i += 1;
                col += 1;
            }
            '\n' => {
                i += 1;
                line += 1;
                col = 1;
            }
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                i += 2;
                col += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(err("unterminated block comment".into(), start));
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        col += 2;
                        break;
                    }
                    if bytes[i] == b'\n' {
                        line += 1;
                        col = 1;
                    } else {
                        col += 1;
                    }
                    i += 1;
                }
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let s = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                    col += 1;
                }
                let word = &src[s..i];
                let tok = match Kw::lookup(word) {
                    Some(kw) => Tok::Kw(kw),
                    None => Tok::Ident(word.to_string()),
                };
                toks.push(Token { tok, pos: start });
            }
            '0'..='9' => {
                let s = i;
                let value = if c == '0' && matches!(bytes.get(i + 1), Some(b'x') | Some(b'X')) {
                    i += 2;
                    col += 2;
                    let hs = i;
                    while i < bytes.len() && bytes[i].is_ascii_hexdigit() {
                        i += 1;
                        col += 1;
                    }
                    if hs == i {
                        return Err(err("empty hex literal".into(), start));
                    }
                    u64::from_str_radix(&src[hs..i], 16)
                        .map_err(|_| err("hex literal overflows".into(), start))?
                        as i64
                } else {
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                        col += 1;
                    }
                    src[s..i]
                        .parse::<i64>()
                        .map_err(|_| err("integer literal overflows".into(), start))?
                };
                toks.push(Token {
                    tok: Tok::Int(value),
                    pos: start,
                });
            }
            '\'' => {
                i += 1;
                col += 1;
                let v = match bytes.get(i).copied() {
                    Some(b'\\') => {
                        i += 1;
                        col += 1;
                        let e = bytes
                            .get(i)
                            .copied()
                            .ok_or_else(|| err("unterminated char literal".into(), start))?;
                        i += 1;
                        col += 1;
                        match e {
                            b'n' => b'\n',
                            b't' => b'\t',
                            b'r' => b'\r',
                            b'0' => 0,
                            b'\\' => b'\\',
                            b'\'' => b'\'',
                            other => {
                                return Err(err(
                                    format!("unknown escape `\\{}`", other as char),
                                    start,
                                ))
                            }
                        }
                    }
                    Some(b) => {
                        i += 1;
                        col += 1;
                        b
                    }
                    None => return Err(err("unterminated char literal".into(), start)),
                };
                if bytes.get(i) != Some(&b'\'') {
                    return Err(err("unterminated char literal".into(), start));
                }
                i += 1;
                col += 1;
                toks.push(Token {
                    tok: Tok::Int(v as i64),
                    pos: start,
                });
            }
            _ => {
                use P::*;
                let two = |a: u8, b: u8| i + 1 < bytes.len() && bytes[i] == a && bytes[i + 1] == b;
                let (p, n) = if two(b'<', b'=') {
                    (Le, 2)
                } else if two(b'>', b'=') {
                    (Ge, 2)
                } else if two(b'=', b'=') {
                    (EqEq, 2)
                } else if two(b'!', b'=') {
                    (Ne, 2)
                } else if two(b'&', b'&') {
                    (AndAnd, 2)
                } else if two(b'|', b'|') {
                    (OrOr, 2)
                } else if two(b'<', b'<') {
                    (Shl, 2)
                } else if two(b'>', b'>') {
                    (Shr, 2)
                } else if two(b'+', b'=') {
                    (PlusEq, 2)
                } else if two(b'-', b'=') {
                    (MinusEq, 2)
                } else if two(b'+', b'+') {
                    (PlusPlus, 2)
                } else if two(b'-', b'-') {
                    (MinusMinus, 2)
                } else {
                    let p = match c {
                        '(' => LParen,
                        ')' => RParen,
                        '{' => LBrace,
                        '}' => RBrace,
                        '[' => LBracket,
                        ']' => RBracket,
                        ';' => Semi,
                        ',' => Comma,
                        '=' => Assign,
                        '+' => Plus,
                        '-' => Minus,
                        '*' => Star,
                        '/' => Slash,
                        '%' => Percent,
                        '&' => Amp,
                        '|' => Pipe,
                        '^' => Caret,
                        '~' => Tilde,
                        '!' => Bang,
                        '<' => Lt,
                        '>' => Gt,
                        other => return Err(err(format!("unexpected character `{other}`"), start)),
                    };
                    (p, 1)
                };
                i += n;
                col += n as u32;
                toks.push(Token {
                    tok: Tok::P(p),
                    pos: start,
                });
            }
        }
    }
    toks.push(Token {
        tok: Tok::Eof,
        pos: pos!(),
    });
    Ok(toks)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn keywords_idents_and_ints() {
        let t = kinds("multiverse i32 config_smp = 0x10;");
        assert_eq!(
            t,
            vec![
                Tok::Kw(Kw::Multiverse),
                Tok::Kw(Kw::I32),
                Tok::Ident("config_smp".into()),
                Tok::P(P::Assign),
                Tok::Int(16),
                Tok::P(P::Semi),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn c_aliases_map_to_sized_types() {
        assert_eq!(kinds("int")[0], Tok::Kw(Kw::I32));
        assert_eq!(kinds("long")[0], Tok::Kw(Kw::I64));
        assert_eq!(kinds("char")[0], Tok::Kw(Kw::U8));
    }

    #[test]
    fn comments_are_skipped() {
        let t = kinds("a // x\n /* y\n z */ b");
        assert_eq!(
            t,
            vec![Tok::Ident("a".into()), Tok::Ident("b".into()), Tok::Eof]
        );
    }

    #[test]
    fn char_literals() {
        assert_eq!(kinds("'a'")[0], Tok::Int(97));
        assert_eq!(kinds("'\\n'")[0], Tok::Int(10));
        assert_eq!(kinds("'\\0'")[0], Tok::Int(0));
    }

    #[test]
    fn two_char_operators() {
        let t = kinds("a <= b == c && d || e << 2 >> 1 != f");
        assert!(t.contains(&Tok::P(P::Le)));
        assert!(t.contains(&Tok::P(P::EqEq)));
        assert!(t.contains(&Tok::P(P::AndAnd)));
        assert!(t.contains(&Tok::P(P::OrOr)));
        assert!(t.contains(&Tok::P(P::Shl)));
        assert!(t.contains(&Tok::P(P::Shr)));
        assert!(t.contains(&Tok::P(P::Ne)));
    }

    #[test]
    fn positions_track_lines() {
        let toks = lex("a\n  b").unwrap();
        assert_eq!(toks[0].pos.line, 1);
        assert_eq!(toks[1].pos.line, 2);
        assert_eq!(toks[1].pos.col, 3);
    }

    #[test]
    fn bad_character_errors() {
        assert!(lex("a @ b").is_err());
        assert!(lex("/* unterminated").is_err());
        assert!(lex("'x").is_err());
    }
}
