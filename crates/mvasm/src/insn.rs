//! MV64 instruction definitions.

use crate::reg::Reg;
use core::fmt;

/// Memory access width.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Width {
    /// 1 byte.
    W8,
    /// 2 bytes.
    W16,
    /// 4 bytes.
    W32,
    /// 8 bytes.
    W64,
}

impl Width {
    /// Access size in bytes.
    pub const fn bytes(self) -> usize {
        match self {
            Width::W8 => 1,
            Width::W16 => 2,
            Width::W32 => 4,
            Width::W64 => 8,
        }
    }

    /// Width from a byte count (1, 2, 4 or 8).
    pub const fn from_bytes(n: usize) -> Option<Width> {
        match n {
            1 => Some(Width::W8),
            2 => Some(Width::W16),
            4 => Some(Width::W32),
            8 => Some(Width::W64),
            _ => None,
        }
    }

    /// Two-bit encoding (log2 of the byte count).
    pub const fn encode(self) -> u8 {
        match self {
            Width::W8 => 0,
            Width::W16 => 1,
            Width::W32 => 2,
            Width::W64 => 3,
        }
    }

    /// Decodes the two-bit width field.
    pub const fn decode(bits: u8) -> Width {
        match bits & 0b11 {
            0 => Width::W8,
            1 => Width::W16,
            2 => Width::W32,
            _ => Width::W64,
        }
    }
}

/// Binary ALU operation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AluOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Signed division (faults on division by zero).
    Divs,
    /// Unsigned division (faults on division by zero).
    Divu,
    /// Signed remainder.
    Rems,
    /// Unsigned remainder.
    Remu,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Logical shift left (shift amount taken modulo 64).
    Shl,
    /// Arithmetic shift right.
    Shrs,
    /// Logical shift right.
    Shru,
}

impl AluOp {
    /// One-byte encoding.
    pub const fn encode(self) -> u8 {
        match self {
            AluOp::Add => 0,
            AluOp::Sub => 1,
            AluOp::Mul => 2,
            AluOp::Divs => 3,
            AluOp::Divu => 4,
            AluOp::Rems => 5,
            AluOp::Remu => 6,
            AluOp::And => 7,
            AluOp::Or => 8,
            AluOp::Xor => 9,
            AluOp::Shl => 10,
            AluOp::Shrs => 11,
            AluOp::Shru => 12,
        }
    }

    /// Decodes the one-byte ALU opcode.
    pub const fn decode(b: u8) -> Option<AluOp> {
        Some(match b {
            0 => AluOp::Add,
            1 => AluOp::Sub,
            2 => AluOp::Mul,
            3 => AluOp::Divs,
            4 => AluOp::Divu,
            5 => AluOp::Rems,
            6 => AluOp::Remu,
            7 => AluOp::And,
            8 => AluOp::Or,
            9 => AluOp::Xor,
            10 => AluOp::Shl,
            11 => AluOp::Shrs,
            12 => AluOp::Shru,
            _ => return None,
        })
    }

    /// Mnemonic as printed by the disassembler.
    pub const fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::Mul => "mul",
            AluOp::Divs => "divs",
            AluOp::Divu => "divu",
            AluOp::Rems => "rems",
            AluOp::Remu => "remu",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Shl => "shl",
            AluOp::Shrs => "shrs",
            AluOp::Shru => "shru",
        }
    }
}

/// Condition code for [`Insn::Jcc`], evaluated against the flags produced by
/// the most recent `cmp`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Cond {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed less-or-equal.
    Le,
    /// Signed greater-than.
    Gt,
    /// Signed greater-or-equal.
    Ge,
    /// Unsigned below.
    B,
    /// Unsigned below-or-equal.
    Be,
    /// Unsigned above.
    A,
    /// Unsigned above-or-equal.
    Ae,
}

impl Cond {
    /// One-byte encoding.
    pub const fn encode(self) -> u8 {
        match self {
            Cond::Eq => 0,
            Cond::Ne => 1,
            Cond::Lt => 2,
            Cond::Le => 3,
            Cond::Gt => 4,
            Cond::Ge => 5,
            Cond::B => 6,
            Cond::Be => 7,
            Cond::A => 8,
            Cond::Ae => 9,
        }
    }

    /// Decodes the one-byte condition code.
    pub const fn decode(b: u8) -> Option<Cond> {
        Some(match b {
            0 => Cond::Eq,
            1 => Cond::Ne,
            2 => Cond::Lt,
            3 => Cond::Le,
            4 => Cond::Gt,
            5 => Cond::Ge,
            6 => Cond::B,
            7 => Cond::Be,
            8 => Cond::A,
            9 => Cond::Ae,
            _ => return None,
        })
    }

    /// The condition testing the opposite outcome.
    pub const fn negate(self) -> Cond {
        match self {
            Cond::Eq => Cond::Ne,
            Cond::Ne => Cond::Eq,
            Cond::Lt => Cond::Ge,
            Cond::Le => Cond::Gt,
            Cond::Gt => Cond::Le,
            Cond::Ge => Cond::Lt,
            Cond::B => Cond::Ae,
            Cond::Be => Cond::A,
            Cond::A => Cond::Be,
            Cond::Ae => Cond::B,
        }
    }

    /// Evaluates the condition for compared values `a` and `b`.
    pub fn eval(self, a: u64, b: u64) -> bool {
        let (sa, sb) = (a as i64, b as i64);
        match self {
            Cond::Eq => a == b,
            Cond::Ne => a != b,
            Cond::Lt => sa < sb,
            Cond::Le => sa <= sb,
            Cond::Gt => sa > sb,
            Cond::Ge => sa >= sb,
            Cond::B => a < b,
            Cond::Be => a <= b,
            Cond::A => a > b,
            Cond::Ae => a >= b,
        }
    }

    /// Mnemonic suffix as printed by the disassembler.
    pub const fn mnemonic(self) -> &'static str {
        match self {
            Cond::Eq => "eq",
            Cond::Ne => "ne",
            Cond::Lt => "lt",
            Cond::Le => "le",
            Cond::Gt => "gt",
            Cond::Ge => "ge",
            Cond::B => "b",
            Cond::Be => "be",
            Cond::A => "a",
            Cond::Ae => "ae",
        }
    }
}

/// A decoded MV64 instruction.
///
/// `rel` fields are relative to the address of the **next** instruction, as
/// on x86: `target = insn_addr + insn_len + rel`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Insn {
    /// `dst ← src`.
    MovRR {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
    },
    /// `dst ← imm`.
    MovRI {
        /// Destination register.
        dst: Reg,
        /// 64-bit immediate.
        imm: i64,
    },
    /// `dst ← addr` (load an absolute address; materialized by relocation).
    Lea {
        /// Destination register.
        dst: Reg,
        /// Absolute address.
        addr: u64,
    },
    /// `dst ← mem[base + off]`, sign- or zero-extended to 64 bits.
    Load {
        /// Destination register.
        dst: Reg,
        /// Base address register.
        base: Reg,
        /// Byte displacement.
        off: i32,
        /// Access width.
        width: Width,
        /// Sign-extend (`true`) or zero-extend (`false`).
        signed: bool,
    },
    /// `mem[base + off] ← src` (low `width` bytes).
    Store {
        /// Source register.
        src: Reg,
        /// Base address register.
        base: Reg,
        /// Byte displacement.
        off: i32,
        /// Access width.
        width: Width,
    },
    /// `dst ← mem[addr]` with absolute addressing (globals).
    LoadAbs {
        /// Destination register.
        dst: Reg,
        /// Absolute address.
        addr: u64,
        /// Access width.
        width: Width,
        /// Sign-extend (`true`) or zero-extend (`false`).
        signed: bool,
    },
    /// `mem[addr] ← src` with absolute addressing (globals).
    StoreAbs {
        /// Source register.
        src: Reg,
        /// Absolute address.
        addr: u64,
        /// Access width.
        width: Width,
    },
    /// `dst ← dst op src`.
    AluRR {
        /// Operation.
        op: AluOp,
        /// Destination and left operand.
        dst: Reg,
        /// Right operand.
        src: Reg,
    },
    /// `dst ← dst op imm`.
    AluRI {
        /// Operation.
        op: AluOp,
        /// Destination and left operand.
        dst: Reg,
        /// Right operand immediate.
        imm: i64,
    },
    /// Compare two registers, setting the flags.
    CmpRR {
        /// Left operand.
        a: Reg,
        /// Right operand.
        b: Reg,
    },
    /// Compare a register with an immediate, setting the flags.
    CmpRI {
        /// Left operand.
        a: Reg,
        /// Right operand immediate.
        imm: i64,
    },
    /// `dst ← 1` if the condition holds for the last comparison, else
    /// `dst ← 0` (x86 `setcc`).
    Setcc {
        /// Condition.
        cc: Cond,
        /// Destination register.
        dst: Reg,
    },
    /// Unconditional relative jump (5 bytes, like x86 `E9`).
    Jmp {
        /// Displacement from the end of this instruction.
        rel: i32,
    },
    /// Conditional relative jump.
    Jcc {
        /// Condition.
        cc: Cond,
        /// Displacement from the end of this instruction.
        rel: i32,
    },
    /// Direct relative call (5 bytes, like x86 `E8`) — the patchable call
    /// site of the Multiverse mechanism.
    CallRel {
        /// Displacement from the end of this instruction.
        rel: i32,
    },
    /// Indirect call through a register.
    CallInd {
        /// Register holding the target address.
        target: Reg,
    },
    /// Indirect call through a 64-bit function pointer in memory
    /// (`call *mem[addr]`) — the PV-Ops dispatch form.
    CallMem {
        /// Address of the function pointer.
        addr: u64,
    },
    /// Push a register onto the stack.
    Push {
        /// Source register.
        src: Reg,
    },
    /// Pop from the stack into a register.
    Pop {
        /// Destination register.
        dst: Reg,
    },
    /// Return to the address on top of the stack.
    Ret,
    /// Stop the machine (normal program termination).
    Halt,
    /// Enable interrupts. Privileged: traps in a paravirtualized guest.
    Sti,
    /// Disable interrupts. Privileged: traps in a paravirtualized guest.
    Cli,
    /// Invoke the hypervisor.
    Hypercall {
        /// Hypercall number.
        nr: u8,
    },
    /// `dst ←` time-stamp counter (with serializing fence, like
    /// `rdtsc_ordered()`).
    Rdtsc {
        /// Destination register.
        dst: Reg,
    },
    /// Spin-loop hint.
    Pause,
    /// Write the low byte of `src` to the output sink.
    Out {
        /// Source register.
        src: Reg,
    },
    /// Atomically exchange `val` with the 64-bit word at `[base]`
    /// (bus-locked, like x86 `lock xchg`).
    XchgLock {
        /// Register swapped with memory; receives the old value.
        val: Reg,
        /// Base address register.
        base: Reg,
    },
    /// Full memory fence.
    Mfence,
    /// One-byte trap (the `int3` analog, opcode `0xCC`). Executing it
    /// faults into whoever drives the machine — the breakpoint-first
    /// cross-modifying-code protocol plants it over the first byte of a
    /// function being patched so concurrent vCPUs stall at the entry
    /// instead of running into half-patched text.
    Trap,
    /// No operation of the given encoded length (1..=15 bytes).
    Nop {
        /// Encoded instruction length in bytes.
        len: u8,
    },
}

impl Insn {
    /// Encoded length of the instruction in bytes (never zero — there is
    /// deliberately no `is_empty`).
    ///
    /// Lengths are fixed per opcode (only [`Insn::Nop`] varies), which is
    /// what makes single-pass layout and robust patch-site verification
    /// possible.
    #[allow(clippy::len_without_is_empty)]
    pub const fn len(&self) -> usize {
        match self {
            Insn::MovRR { .. } => 3,
            Insn::MovRI { .. } => 10,
            Insn::Lea { .. } => 10,
            Insn::Load { .. } => 8,
            Insn::Store { .. } => 8,
            Insn::LoadAbs { .. } => 11,
            Insn::StoreAbs { .. } => 11,
            Insn::AluRR { .. } => 4,
            Insn::AluRI { .. } => 11,
            Insn::CmpRR { .. } => 3,
            Insn::CmpRI { .. } => 10,
            Insn::Setcc { .. } => 3,
            Insn::Jmp { .. } => 5,
            Insn::Jcc { .. } => 6,
            Insn::CallRel { .. } => 5,
            Insn::CallInd { .. } => 2,
            Insn::CallMem { .. } => 9,
            Insn::Push { .. } => 2,
            Insn::Pop { .. } => 2,
            Insn::Ret => 1,
            Insn::Halt => 1,
            Insn::Sti => 1,
            Insn::Cli => 1,
            Insn::Hypercall { .. } => 2,
            Insn::Rdtsc { .. } => 2,
            Insn::Pause => 1,
            Insn::Out { .. } => 2,
            Insn::XchgLock { .. } => 3,
            Insn::Mfence => 1,
            Insn::Trap => 1,
            Insn::Nop { len } => *len as usize,
        }
    }

    /// `true` if this is an instruction with no effect.
    pub const fn is_nop(&self) -> bool {
        matches!(self, Insn::Nop { .. })
    }

    /// `true` for instructions that transfer control (the basic-block
    /// terminators plus calls).
    pub const fn is_control(&self) -> bool {
        matches!(
            self,
            Insn::Jmp { .. }
                | Insn::Jcc { .. }
                | Insn::CallRel { .. }
                | Insn::CallInd { .. }
                | Insn::CallMem { .. }
                | Insn::Ret
                | Insn::Halt
        )
    }
}

impl fmt::Display for Insn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Insn::MovRR { dst, src } => write!(f, "mov {dst}, {src}"),
            Insn::MovRI { dst, imm } => write!(f, "mov {dst}, {imm}"),
            Insn::Lea { dst, addr } => write!(f, "lea {dst}, {addr:#x}"),
            Insn::Load {
                dst,
                base,
                off,
                width,
                signed,
            } => {
                let s = if signed { "s" } else { "u" };
                write!(f, "ld{s}{} {dst}, [{base}{off:+}]", width.bytes() * 8)
            }
            Insn::Store {
                src,
                base,
                off,
                width,
            } => write!(f, "st{} [{base}{off:+}], {src}", width.bytes() * 8),
            Insn::LoadAbs {
                dst,
                addr,
                width,
                signed,
            } => {
                let s = if signed { "s" } else { "u" };
                write!(f, "ld{s}{} {dst}, [{addr:#x}]", width.bytes() * 8)
            }
            Insn::StoreAbs { src, addr, width } => {
                write!(f, "st{} [{addr:#x}], {src}", width.bytes() * 8)
            }
            Insn::AluRR { op, dst, src } => write!(f, "{} {dst}, {src}", op.mnemonic()),
            Insn::AluRI { op, dst, imm } => write!(f, "{} {dst}, {imm}", op.mnemonic()),
            Insn::CmpRR { a, b } => write!(f, "cmp {a}, {b}"),
            Insn::CmpRI { a, imm } => write!(f, "cmp {a}, {imm}"),
            Insn::Setcc { cc, dst } => write!(f, "set{} {dst}", cc.mnemonic()),
            Insn::Jmp { rel } => write!(f, "jmp {rel:+}"),
            Insn::Jcc { cc, rel } => write!(f, "j{} {rel:+}", cc.mnemonic()),
            Insn::CallRel { rel } => write!(f, "call {rel:+}"),
            Insn::CallInd { target } => write!(f, "call {target}"),
            Insn::CallMem { addr } => write!(f, "call *[{addr:#x}]"),
            Insn::Push { src } => write!(f, "push {src}"),
            Insn::Pop { dst } => write!(f, "pop {dst}"),
            Insn::Ret => write!(f, "ret"),
            Insn::Halt => write!(f, "halt"),
            Insn::Sti => write!(f, "sti"),
            Insn::Cli => write!(f, "cli"),
            Insn::Hypercall { nr } => write!(f, "hypercall {nr}"),
            Insn::Rdtsc { dst } => write!(f, "rdtsc {dst}"),
            Insn::Pause => write!(f, "pause"),
            Insn::Out { src } => write!(f, "out {src}"),
            Insn::XchgLock { val, base } => write!(f, "lock xchg {val}, [{base}]"),
            Insn::Mfence => write!(f, "mfence"),
            Insn::Trap => write!(f, "trap"),
            Insn::Nop { len } => write!(f, "nop{len}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn call_and_jmp_are_five_bytes() {
        assert_eq!(Insn::CallRel { rel: 0 }.len(), crate::CALL_SITE_LEN);
        assert_eq!(Insn::Jmp { rel: -123 }.len(), crate::CALL_SITE_LEN);
    }

    #[test]
    fn cond_negate_is_involution() {
        for b in 0..10 {
            let c = Cond::decode(b).unwrap();
            assert_eq!(c.negate().negate(), c);
        }
    }

    #[test]
    fn cond_eval_matches_semantics() {
        assert!(Cond::Eq.eval(5, 5));
        assert!(Cond::Ne.eval(5, 6));
        assert!(Cond::Lt.eval(-1i64 as u64, 0));
        assert!(Cond::B.eval(0, u64::MAX));
        assert!(Cond::A.eval(u64::MAX, 0));
        assert!(Cond::Ge.eval(0, -5i64 as u64));
        assert!(!Cond::Ae.eval(0, u64::MAX));
    }

    #[test]
    fn negated_cond_evaluates_opposite() {
        let pairs = [(3u64, 7u64), (7, 3), (5, 5), (u64::MAX, 1), (0, 0)];
        for b in 0..10 {
            let c = Cond::decode(b).unwrap();
            for &(x, y) in &pairs {
                assert_eq!(c.eval(x, y), !c.negate().eval(x, y), "{c:?} on ({x},{y})");
            }
        }
    }

    #[test]
    fn width_roundtrip() {
        for w in [Width::W8, Width::W16, Width::W32, Width::W64] {
            assert_eq!(Width::decode(w.encode()), w);
            assert_eq!(Width::from_bytes(w.bytes()), Some(w));
        }
        assert_eq!(Width::from_bytes(3), None);
    }

    #[test]
    fn aluop_roundtrip() {
        for b in 0..13 {
            let op = AluOp::decode(b).unwrap();
            assert_eq!(op.encode(), b);
        }
        assert_eq!(AluOp::decode(13), None);
    }
}
