//! `mvcc` — the multiverse compiler driver.
//!
//! ```text
//! mvcc build  <file.c>… [-j N] [--timings] [--stats]
//!                                   compile + link, print image summary;
//!                                   -j runs the optimize/codegen pipeline
//!                                   stages on N threads (0 = all cores,
//!                                   output byte-identical to -j 1);
//!                                   --timings/--stats print the staged
//!                                   pipeline's wall-time / counter report
//!                                   (--timings additionally records
//!                                   stage_begin/stage_end/cache_query
//!                                   events — exported with --out/--format
//!                                   like `mvcc trace`)
//! mvcc compile <file.c> -o out.mvo  separate compilation: write one
//!                                   relocatable MVO object
//! mvcc link   <file.mvo>… [--run]   link MVO objects (and optionally run
//!                                   main)
//! mvcc dump   <file.c>…             list switches, functions, variants,
//!                                   guards and call sites
//! mvcc disasm <file.c>… [--fn NAME] disassemble the text segment (or one
//!                                   function)
//! mvcc run    <file.c>… [--call F] [--set VAR=V]… [--commit] [--smp N]
//!                                   execute main (or F) on the machine;
//!                                   --smp N boots an N-vCPU SMP machine,
//!                                   runs F (or main) on every vCPU and
//!                                   prints per-vCPU results plus the
//!                                   machine-wide roll-up (a --commit is
//!                                   performed as a quiesced concurrent
//!                                   commit, see --strategy)
//! mvcc verify <file.c>… [--set VAR=V]… [--commit] [--smp N]
//!                                   dry-run the commit validate phase and
//!                                   print a per-function / per-site health
//!                                   report (nothing is patched unless
//!                                   --commit is given first; with --commit
//!                                   the per-phase commit timing is printed;
//!                                   with --smp N the commit runs as a
//!                                   quiesced concurrent commit against N
//!                                   vCPUs executing main/F, and the
//!                                   quiesce report is printed)
//! mvcc trace  <file.c>… [--set VAR=V]… [--commit] [--call F]
//!             [--out PATH] [--format chrome|jsonl|text]
//!                                   record the runtime's structured events
//!                                   while committing (and optionally
//!                                   calling F), then export them — chrome
//!                                   format opens in chrome://tracing or
//!                                   Perfetto
//! mvcc stats  <file.c>… [--set VAR=V]… [--call F] [--per-fn] [--commit]
//!                                   execute main (or F) under the
//!                                   per-function profiler; with --commit,
//!                                   run generic and committed images and
//!                                   print a per-function comparison (the
//!                                   §6.2 branch-reduction report)
//!
//! common flags:
//!   --dynamic            build without multiverse (binding B)
//!   --static VAR=V       fix a switch at compile time (binding A)
//!   --variant-limit N    override the variant-explosion limit
//!   -j / --jobs N        pipeline worker threads (default 1, 0 = cores)
//!   --no-cache           disable the in-process compile cache
//!   --smp N              run/verify on an N-vCPU SMP machine
//!   --strategy S         concurrent-commit protocol for --smp commits:
//!                        stop-machine (default) or breakpoint
//! ```

use multiverse::mvc::Options;
use multiverse::{mvasm, mvobj, mvrt, Program};
use std::process::ExitCode;

struct Args {
    cmd: String,
    files: Vec<String>,
    opts: Options,
    call: Option<String>,
    sets: Vec<(String, i64)>,
    commit: bool,
    func: Option<String>,
    output: Option<String>,
    run: bool,
    out: Option<String>,
    format: Option<String>,
    per_fn: bool,
    timings: bool,
    stats_flag: bool,
    smp: usize,
    strategy: mvrt::CommitStrategy,
}

fn parse_args() -> Result<Args, String> {
    let mut it = std::env::args().skip(1);
    let cmd = it
        .next()
        .ok_or("missing command (build|compile|link|dump|disasm|run|verify|trace|stats)")?;
    let mut args = Args {
        cmd,
        files: Vec::new(),
        opts: Options::default(),
        call: None,
        sets: Vec::new(),
        commit: false,
        func: None,
        output: None,
        run: false,
        out: None,
        format: None,
        per_fn: false,
        timings: false,
        stats_flag: false,
        smp: 0,
        strategy: mvrt::CommitStrategy::default(),
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--dynamic" => args.opts = Options::dynamic(),
            "--static" => {
                let kv = it.next().ok_or("--static needs VAR=V")?;
                let (k, v) = kv.split_once('=').ok_or("--static needs VAR=V")?;
                args.opts.multiverse = false;
                args.opts
                    .static_config
                    .insert(k.to_string(), v.parse().map_err(|_| "bad value")?);
            }
            "--variant-limit" => {
                args.opts.variant_limit = it
                    .next()
                    .ok_or("--variant-limit needs N")?
                    .parse()
                    .map_err(|_| "bad limit")?;
            }
            "--call" => args.call = Some(it.next().ok_or("--call needs a name")?),
            "--set" => {
                let kv = it.next().ok_or("--set needs VAR=V")?;
                let (k, v) = kv.split_once('=').ok_or("--set needs VAR=V")?;
                args.sets
                    .push((k.to_string(), v.parse().map_err(|_| "bad value")?));
            }
            "--commit" => args.commit = true,
            "--fn" => args.func = Some(it.next().ok_or("--fn needs a name")?),
            "-o" => args.output = Some(it.next().ok_or("-o needs a path")?),
            "--run" => args.run = true,
            "--out" => args.out = Some(it.next().ok_or("--out needs a path")?),
            "--format" => args.format = Some(it.next().ok_or("--format needs a name")?),
            "--per-fn" => args.per_fn = true,
            "-j" | "--jobs" => {
                args.opts.jobs = it
                    .next()
                    .ok_or("-j needs a worker count (0 = all cores)")?
                    .parse()
                    .map_err(|_| "bad worker count")?;
            }
            "--no-cache" => args.opts.cache = false,
            "--smp" => {
                args.smp = it
                    .next()
                    .ok_or("--smp needs a vCPU count")?
                    .parse()
                    .map_err(|_| "bad vCPU count")?;
                if args.smp == 0 {
                    return Err("--smp needs at least 1 vCPU".into());
                }
            }
            "--strategy" => {
                let s = it.next().ok_or("--strategy needs a protocol name")?;
                args.strategy = mvrt::CommitStrategy::parse(&s)
                    .ok_or(format!("unknown strategy `{s}` (stop-machine|breakpoint)"))?;
            }
            "--timings" => args.timings = true,
            "--stats" => args.stats_flag = true,
            f if !f.starts_with('-') => args.files.push(f.to_string()),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if args.files.is_empty() {
        return Err("no input files".into());
    }
    Ok(args)
}

fn read_units(args: &Args) -> Result<Vec<(String, String)>, String> {
    let mut units = Vec::new();
    for f in &args.files {
        let src = std::fs::read_to_string(f).map_err(|e| format!("{f}: {e}"))?;
        units.push((f.clone(), src));
    }
    Ok(units)
}

fn build(args: &Args) -> Result<Program, String> {
    let units = read_units(args)?;
    let refs: Vec<(&str, &str)> = units
        .iter()
        .map(|(n, s)| (n.as_str(), s.as_str()))
        .collect();
    let p = Program::build_with(&refs, &args.opts).map_err(|e| e.to_string())?;
    for w in p.warnings() {
        eprintln!("{w}");
    }
    Ok(p)
}

fn cmd_build(args: &Args) -> Result<(), String> {
    use multiverse::mvtrace::{ChromeSink, JsonlSink, TextSink, TraceSink};
    let units = read_units(args)?;
    let refs: Vec<(&str, &str)> = units
        .iter()
        .map(|(n, s)| (n.as_str(), s.as_str()))
        .collect();
    let mut pipeline = multiverse::mvc::Pipeline::new(args.opts.clone());
    if args.timings {
        multiverse::mvtrace::set_enabled(true);
        pipeline.enable_tracing(65536);
    }
    let p = Program::build_with_pipeline(&refs, &mut pipeline, args.opts.multiverse)
        .map_err(|e| e.to_string())?;
    for w in p.warnings() {
        eprintln!("{w}");
    }
    let exe = p.exe();
    println!("image: {} bytes, entry {:#x}", p.image_size(), exe.entry);
    for sec in [
        mvobj::SEC_TEXT,
        mvobj::SEC_RODATA,
        mvobj::SEC_DATA,
        mvobj::SEC_BSS,
        mvobj::SEC_MV_VARIABLES,
        mvobj::SEC_MV_FUNCTIONS,
        mvobj::SEC_MV_CALLSITES,
    ] {
        let (addr, size) = exe.section(sec);
        if size > 0 {
            println!("  {sec:22} {addr:#10x}  {size:>8} B");
        }
    }
    if args.timings || args.stats_flag {
        print!("{}", pipeline.stats().report());
    }
    if args.timings {
        let events = pipeline.take_trace();
        match &args.out {
            Some(path) => {
                let format = args.format.as_deref().unwrap_or("chrome");
                let sink: Box<dyn TraceSink> = match format {
                    "chrome" => Box::new(ChromeSink),
                    "jsonl" => Box::new(JsonlSink),
                    "text" => Box::new(TextSink),
                    other => return Err(format!("unknown --format `{other}` (chrome|jsonl|text)")),
                };
                let mut f = std::fs::File::create(path).map_err(|e| format!("{path}: {e}"))?;
                sink.export(&events, &mut f).map_err(|e| e.to_string())?;
                eprintln!("wrote {path} ({format}, {} events)", events.len());
            }
            None => print!("{}", TextSink.export_string(&events)),
        }
    }
    Ok(())
}

fn cmd_dump(args: &Args) -> Result<(), String> {
    let p = build(args)?;
    let world = p.boot();
    let Some(rt) = &world.rt else {
        println!("(no multiverse descriptors in this build)");
        return Ok(());
    };
    println!(
        "{} switches, {} functions, {} call sites",
        rt.num_variables(),
        rt.num_functions(),
        rt.num_callsites()
    );
    // Reverse symbol table for pretty names.
    let exe = p.exe();
    let sym_name = |addr: u64| -> String {
        exe.symbolize(addr)
            .filter(|(_, off)| *off == 0)
            .map(|(n, _)| n.to_string())
            .unwrap_or_else(|| format!("{addr:#x}"))
    };
    for (name, &addr) in &exe.symbols {
        if let Some(variants) = rt.variants_of(addr) {
            if variants.is_empty() {
                continue;
            }
            println!("fn {name} @ {addr:#x}");
            for v in variants {
                println!("  variant {} @ {v:#x}", sym_name(v));
            }
            println!("  call sites: {}", rt.callsites_of(addr));
        }
    }
    Ok(())
}

fn cmd_disasm(args: &Args) -> Result<(), String> {
    let p = build(args)?;
    let world = p.boot();
    let exe = p.exe();
    if let Some(f) = &args.func {
        let addr = exe.symbol(f).ok_or_else(|| format!("no symbol `{f}`"))?;
        // Disassemble until the next symbol or 256 bytes.
        let end = exe
            .symbols
            .values()
            .filter(|&&a| a > addr)
            .min()
            .copied()
            .unwrap_or(addr + 256);
        let bytes = world
            .machine
            .mem
            .read_vec(addr, (end - addr) as usize)
            .map_err(|e| e.to_string())?;
        print!("{}", mvasm::disasm(&bytes, addr));
    } else {
        let (taddr, tsize) = exe.section(mvobj::SEC_TEXT);
        let bytes = world
            .machine
            .mem
            .read_vec(taddr, tsize as usize)
            .map_err(|e| e.to_string())?;
        print!("{}", mvasm::disasm(&bytes, taddr));
    }
    Ok(())
}

/// Prints one quiesce report line (shared by `run --smp` and
/// `verify --smp`).
fn print_quiesce(q: &mvrt::QuiesceReport) {
    println!(
        "quiesce[{}]: {} rounds, {} parked, {} trap hits, {} shootdowns, {} stall cycles",
        q.strategy, q.rounds, q.parked, q.trap_hits, q.shootdowns, q.stall_cycles
    );
    println!(
        "commit: {} variants bound, {} generic fallbacks, {} sites, {} unchanged",
        q.commit.variants_committed,
        q.commit.generic_fallbacks,
        q.commit.sites_touched,
        q.commit.unchanged
    );
}

/// Boots an SMP world, spawns `main` (or `--call F`) on every vCPU and
/// applies the `--set` assignments. Shared by `run --smp` and
/// `verify --smp`.
fn boot_smp_workers(args: &Args, p: &Program) -> Result<multiverse::SmpWorld, String> {
    let mut w = p.boot_smp(args.smp);
    for (k, v) in &args.sets {
        w.set(k, *v).map_err(|e| e.to_string())?;
        println!("set {k} = {v}");
    }
    match &args.call {
        Some(f) => w.spawn_all(f, &[]).map_err(|e| e.to_string())?,
        None => {
            let entry = p.exe().entry;
            for i in 0..args.smp {
                w.smp.spawn(i, entry, &[]).map_err(|e| e.to_string())?;
            }
        }
    }
    Ok(w)
}

fn cmd_run_smp(args: &Args, p: &Program) -> Result<(), String> {
    let mut w = boot_smp_workers(args, p)?;
    // Let the workers get under way before committing, so a --commit
    // exercises the concurrent protocol rather than patching an idle
    // machine.
    for _ in 0..4 {
        w.smp.step_round();
    }
    if args.commit {
        let q = w
            .commit_quiesced(args.strategy)
            .map_err(|e| e.to_string())?;
        print_quiesce(&q);
    }
    let results = w.run(10_000_000).map_err(|e| e.to_string())?;
    let out = w.smp.machine.take_output();
    if !out.is_empty() {
        println!("--- output ({} bytes) ---", out.len());
        println!("{}", String::from_utf8_lossy(&out));
    }
    for (i, r) in results.iter().enumerate() {
        println!(
            "vcpu {i}: result {r} ({} cycles, {} stalled)",
            w.smp.cycles_of(i),
            w.smp.stall_cycles(i)
        );
    }
    let stats = w.total_stats();
    println!(
        "smp: {} vcpus, {} rounds, {} instructions, {} cycles wall-clock",
        w.vcpus(),
        w.smp.rounds(),
        stats.instructions,
        w.smp.max_cycles()
    );
    Ok(())
}

fn cmd_run(args: &Args) -> Result<(), String> {
    let p = build(args)?;
    if args.smp > 0 {
        return cmd_run_smp(args, &p);
    }
    let mut world = p.boot();
    for (k, v) in &args.sets {
        world.set(k, *v).map_err(|e| e.to_string())?;
        println!("set {k} = {v}");
    }
    if args.commit {
        let report = world.commit().map_err(|e| e.to_string())?;
        println!(
            "commit: {} variants bound, {} generic fallbacks, {} sites",
            report.variants_committed, report.generic_fallbacks, report.sites_touched
        );
    }
    let result = match &args.call {
        Some(f) => world.call(f, &[]).map_err(|e| e.to_string())?,
        None => {
            let entry = p.exe().entry;
            world.machine.call(entry, &[]).map_err(|e| e.to_string())?
        }
    };
    let out = world.machine.take_output();
    if !out.is_empty() {
        println!("--- output ({} bytes) ---", out.len());
        println!("{}", String::from_utf8_lossy(&out));
    }
    println!("result: {result} ({} cycles)", world.cycles());
    if let Some(rt) = &world.rt {
        let s = rt.stats;
        if s.sites_patched > 0 {
            println!(
                "patcher: {} sites patched, {} inlined, {} bytes written",
                s.sites_patched, s.sites_inlined, s.bytes_written
            );
        }
    }
    let _ = mvrt::PatchStrategy::CallSites; // (re-exported for scripting)
    Ok(())
}

/// Runs the validate dry-run against `m` and prints the health report.
fn print_validation(
    rt: &mvrt::Runtime,
    m: &multiverse::mvvm::Machine,
    exe: &mvobj::Executable,
) -> Result<(), String> {
    let sym_name = |addr: u64| -> String {
        exe.symbolize(addr)
            .filter(|(_, off)| *off == 0)
            .map(|(n, _)| n.to_string())
            .unwrap_or_else(|| format!("{addr:#x}"))
    };
    let report = rt.validate(m);
    println!(
        "verify: {} functions, {} call sites",
        report.functions.len(),
        report.sites.len()
    );
    for f in &report.functions {
        let binding = match f.binding {
            mvrt::FnBinding::Generic => "generic".to_string(),
            mvrt::FnBinding::Variant(v) => format!("variant {}", sym_name(v)),
        };
        let selected = match f.selected {
            Some(v) => format!("selects {}", sym_name(v)),
            None => "generic fallback".to_string(),
        };
        match &f.issue {
            Some(issue) => println!(
                "  fn {:20} bound: {binding:24} {selected}  !! {issue}",
                sym_name(f.generic)
            ),
            None => println!(
                "  fn {:20} bound: {binding:24} {selected}  ok",
                sym_name(f.generic)
            ),
        }
    }
    for s in &report.sites {
        let state = if s.patched { "patched" } else { "original" };
        match &s.issue {
            Some(issue) => println!(
                "  site {:#10x} -> {:20} {state:9} !! {issue}",
                s.site,
                sym_name(s.callee)
            ),
            None => println!(
                "  site {:#10x} -> {:20} {state:9} ok",
                s.site,
                sym_name(s.callee)
            ),
        }
    }
    if report.healthy() {
        println!("image healthy: a full commit would pass validation");
        Ok(())
    } else {
        Err(format!("{} issue(s) found", report.issues()))
    }
}

/// `verify --smp N`: commit concurrently against N running vCPUs, then
/// validate the quiesced image.
fn cmd_verify_smp(args: &Args, p: &Program) -> Result<(), String> {
    let mut w = boot_smp_workers(args, p)?;
    if w.rt.is_none() {
        println!("(no multiverse descriptors in this build — nothing to verify)");
        return Ok(());
    }
    for _ in 0..4 {
        w.smp.step_round();
    }
    if args.commit {
        let q = w
            .commit_quiesced(args.strategy)
            .map_err(|e| e.to_string())?;
        print_quiesce(&q);
    }
    let results = w.run(10_000_000).map_err(|e| e.to_string())?;
    println!(
        "smp: {} vcpus finished ({} rounds, {} stall cycles)",
        results.len(),
        w.smp.rounds(),
        w.smp.total_stall_cycles()
    );
    let rt = w.rt.as_ref().expect("runtime present");
    print_validation(rt, &w.smp.machine, p.exe())
}

fn cmd_verify(args: &Args) -> Result<(), String> {
    let p = build(args)?;
    if args.smp > 0 {
        return cmd_verify_smp(args, &p);
    }
    let mut world = p.boot();
    for (k, v) in &args.sets {
        world.set(k, *v).map_err(|e| e.to_string())?;
        println!("set {k} = {v}");
    }
    if args.commit {
        let report = world.commit().map_err(|e| e.to_string())?;
        println!(
            "commit: {} variants bound, {} generic fallbacks, {} sites, {} unchanged, {} repatched",
            report.variants_committed,
            report.generic_fallbacks,
            report.sites_touched,
            report.unchanged,
            report.repatched
        );
        if let Some(rt) = &world.rt {
            let s = rt.stats;
            println!(
                "batching: {} pages touched, {} mprotects, {} flushes, {} sites skipped",
                s.pages_touched, s.mprotects, s.icache_flushes, s.sites_skipped
            );
            let t = rt.last_timing;
            println!(
                "timing: {:.1} µs total (plan {:.1} µs, validate {:.1} µs, apply {:.1} µs) over {} sites",
                t.elapsed.as_secs_f64() * 1e6,
                t.plan.as_secs_f64() * 1e6,
                t.validate.as_secs_f64() * 1e6,
                t.apply.as_secs_f64() * 1e6,
                t.sites
            );
        }
    }
    let Some(rt) = &world.rt else {
        println!("(no multiverse descriptors in this build — nothing to verify)");
        return Ok(());
    };
    print_validation(rt, &world.machine, p.exe())
}

fn cmd_trace(args: &Args) -> Result<(), String> {
    use multiverse::mvtrace::{build_spans, ChromeSink, JsonlSink, TextSink, TraceSink};
    let p = build(args)?;
    let mut world = p.boot();
    {
        let Some(rt) = world.rt.as_mut() else {
            return Err("no multiverse descriptors in this build — nothing to trace".into());
        };
        rt.enable_tracing(65536);
    }
    for (k, v) in &args.sets {
        world.set(k, *v).map_err(|e| e.to_string())?;
        eprintln!("set {k} = {v}");
    }
    if args.commit {
        let report = world.commit().map_err(|e| e.to_string())?;
        eprintln!(
            "commit: {} variants bound, {} generic fallbacks, {} sites",
            report.variants_committed, report.generic_fallbacks, report.sites_touched
        );
    }
    if let Some(f) = &args.call {
        let r = world.call(f, &[]).map_err(|e| e.to_string())?;
        eprintln!("call {f} -> {r}");
    }
    let events = world.rt.as_mut().expect("runtime present").take_trace();
    if events.is_empty() {
        eprintln!("warning: no events recorded (pass --commit to trace a commit)");
    }
    let forest = build_spans(&events);
    eprintln!(
        "trace: {} events, {} commit span(s)",
        events.len(),
        forest.commits.len()
    );
    let format = args.format.as_deref().unwrap_or("chrome");
    let sink: Box<dyn TraceSink> = match format {
        "chrome" => Box::new(ChromeSink),
        "jsonl" => Box::new(JsonlSink),
        "text" => Box::new(TextSink),
        other => return Err(format!("unknown --format `{other}` (chrome|jsonl|text)")),
    };
    match &args.out {
        Some(path) => {
            let mut f = std::fs::File::create(path).map_err(|e| format!("{path}: {e}"))?;
            sink.export(&events, &mut f).map_err(|e| e.to_string())?;
            eprintln!("wrote {path} ({format})");
        }
        None => {
            let mut out = std::io::stdout();
            sink.export(&events, &mut out).map_err(|e| e.to_string())?;
        }
    }
    Ok(())
}

fn cmd_stats(args: &Args) -> Result<(), String> {
    let p = build(args)?;
    // One fresh world per run so the generic and committed measurements
    // start from identical data-segment state.
    let run = |commit: bool| -> Result<(multiverse::mvvm::Profiler, u64), String> {
        let mut world = p.boot();
        for (k, v) in &args.sets {
            world.set(k, *v).map_err(|e| e.to_string())?;
        }
        if commit {
            world.commit().map_err(|e| e.to_string())?;
        }
        world.machine.enable_profile(p.exe());
        let result = match &args.call {
            Some(f) => world.call(f, &[]).map_err(|e| e.to_string())?,
            None => {
                let entry = p.exe().entry;
                world.machine.call(entry, &[]).map_err(|e| e.to_string())?
            }
        };
        let prof = world.machine.take_profile().expect("profiler installed");
        Ok((prof, result))
    };
    if args.commit {
        let (generic, r0) = run(false)?;
        let (committed, r1) = run(true)?;
        if r0 != r1 {
            eprintln!("warning: generic returned {r0}, committed returned {r1}");
        }
        println!(
            "{:<24} {:>12} {:>12} {:>9} {:>9} {:>8} {:>8}",
            "function", "cyc(gen)", "cyc(com)", "br(gen)", "br(com)", "mp(gen)", "mp(com)"
        );
        // Union of names, ordered by generic cycles descending, then the
        // committed-only rows (variant bodies) by committed cycles.
        let mut names: Vec<String> = generic.report().iter().map(|r| r.name.clone()).collect();
        for r in committed.report() {
            if !names.contains(&r.name) {
                names.push(r.name.clone());
            }
        }
        let empty = multiverse::mvvm::FnCounters::default();
        let mut tot_g = empty;
        let mut tot_c = empty;
        for name in &names {
            let g = generic.counters_of(name).unwrap_or(empty);
            let c = committed.counters_of(name).unwrap_or(empty);
            tot_g.cycles += g.cycles;
            tot_c.cycles += c.cycles;
            tot_g.stats += g.stats;
            tot_c.stats += c.stats;
            println!(
                "{:<24} {:>12} {:>12} {:>9} {:>9} {:>8} {:>8}",
                name,
                g.cycles,
                c.cycles,
                g.stats.branches,
                c.stats.branches,
                g.stats.mispredicts,
                c.stats.mispredicts
            );
        }
        let pct = |a: u64, b: u64| -> String {
            if a == 0 {
                return "-".into();
            }
            format!("{:+.1}%", (b as f64 - a as f64) / a as f64 * 100.0)
        };
        println!(
            "{:<24} {:>12} {:>12} {:>9} {:>9} {:>8} {:>8}",
            "total",
            tot_g.cycles,
            tot_c.cycles,
            tot_g.stats.branches,
            tot_c.stats.branches,
            tot_g.stats.mispredicts,
            tot_c.stats.mispredicts
        );
        println!(
            "delta: cycles {}, branches {}, mispredicts {}",
            pct(tot_g.cycles, tot_c.cycles),
            pct(tot_g.stats.branches, tot_c.stats.branches),
            pct(tot_g.stats.mispredicts, tot_c.stats.mispredicts)
        );
    } else {
        let (prof, result) = run(false)?;
        if args.per_fn {
            print!("{}", prof.render());
        } else {
            let total: u64 = prof.report().iter().map(|r| r.counters.cycles).sum();
            println!("result: {result} ({total} profiled cycles)");
            print!("{}", prof.render());
        }
    }
    Ok(())
}

fn cmd_compile(args: &Args) -> Result<(), String> {
    if args.files.len() != 1 {
        return Err("compile takes exactly one source file".into());
    }
    let f = &args.files[0];
    let src = std::fs::read_to_string(f).map_err(|e| format!("{f}: {e}"))?;
    let (obj, warnings) =
        multiverse::mvc::compile(&src, f, &args.opts).map_err(|e| e.to_string())?;
    for w in &warnings {
        eprintln!("{w}");
    }
    let out = args
        .output
        .clone()
        .unwrap_or_else(|| format!("{}.mvo", f.trim_end_matches(".c")));
    let bytes = mvobj::write_object(&obj);
    std::fs::write(&out, &bytes).map_err(|e| format!("{out}: {e}"))?;
    println!(
        "{out}: {} bytes ({} sections, {} symbols, {} relocs)",
        bytes.len(),
        obj.sections.len(),
        obj.symbols.len(),
        obj.relocs.len()
    );
    Ok(())
}

fn cmd_link(args: &Args) -> Result<(), String> {
    let mut objects = Vec::new();
    for f in &args.files {
        let bytes = std::fs::read(f).map_err(|e| format!("{f}: {e}"))?;
        objects.push(mvobj::read_object(&bytes).map_err(|e| format!("{f}: {e}"))?);
    }
    let exe = mvobj::link(&objects, &mvobj::Layout::default()).map_err(|e| e.to_string())?;
    println!(
        "linked {} objects: image {} bytes, entry {:#x}",
        objects.len(),
        exe.image_size(),
        exe.entry
    );
    if args.run {
        let mut m = multiverse::mvvm::Machine::boot(&exe);
        let result = m.call(exe.entry, &[]).map_err(|e| e.to_string())?;
        println!("result: {result} ({} cycles)", m.cycles());
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("mvcc: {e}");
            eprintln!("usage: mvcc build|dump|disasm|run|verify|trace|stats <file.c>… [flags]");
            return ExitCode::FAILURE;
        }
    };
    let r = match args.cmd.as_str() {
        "build" => cmd_build(&args),
        "compile" => cmd_compile(&args),
        "link" => cmd_link(&args),
        "dump" => cmd_dump(&args),
        "disasm" => cmd_disasm(&args),
        "run" => cmd_run(&args),
        "verify" => cmd_verify(&args),
        "trace" => cmd_trace(&args),
        "stats" => cmd_stats(&args),
        other => Err(format!("unknown command `{other}`")),
    };
    match r {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("mvcc: {e}");
            ExitCode::FAILURE
        }
    }
}
