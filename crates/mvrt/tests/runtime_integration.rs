//! Integration tests for the multiverse run-time library over a hand-built
//! program image — the Fig. 2 / Fig. 3 example driven through every patch
//! state, without involving the compiler.

use mvasm::{AluOp, Assembler, Insn, Reg, Width};
use mvobj::descriptor::{
    emit_callsite, emit_function, emit_variable, CallsiteDescSym, FnDescSym, GuardSym, VarDescSym,
    VariantDescSym, NOT_INLINABLE,
};
use mvobj::{link, Executable, Layout, Object};
use mvrt::{FnBinding, RtError, Runtime};
use mvvm::{CostModel, Machine, MachineConfig};

/// Builds the test program:
///
/// ```c
/// multiverse int A;                       // switch, domain {0, 1}
/// multiverse long multi() { return A + 100; }
///   // variants: multi.A=0 -> 100, multi.A=1 -> 101
/// multiverse void maybe_log() { if (A) { ...work...; } }
///   // variants: maybe_log.A=0 -> empty (inlinable), A=1 -> work
/// long caller()  { return multi(); }      // recorded call site
/// long caller2() { maybe_log(); return 7; }
/// void (*op)() = &impl_a;                 // multiverse fn-ptr switch
/// long caller3() { return op(); }         // indirect, recorded
/// ```
fn build_fixture() -> Executable {
    let mut o = Object::new("fixture");
    o.define_bss("A", 4);

    // main: just halt (entry required by the linker).
    let mut a = Assembler::new();
    a.emit(Insn::Halt);
    o.add_code("main", &a.finish().unwrap());

    // multi (generic): r0 = A + 100; ret.   (load 11 + alu 11 + ret 1)
    let mut a = Assembler::new();
    a.load_sym(Reg::R0, "A", 0, Width::W32, true);
    a.emit(Insn::AluRI {
        op: AluOp::Add,
        dst: Reg::R0,
        imm: 100,
    });
    a.ret();
    let multi_blob = a.finish().unwrap();
    let multi_size = multi_blob.bytes.len() as u32;
    o.add_code("multi", &multi_blob);

    // multi.A=0: r0 = 100; ret.
    let mut a = Assembler::new();
    a.mov_ri(Reg::R0, 100);
    a.ret();
    let v0 = a.finish().unwrap();
    let v0_size = v0.bytes.len() as u32;
    o.add_code("multi.A=0", &v0);

    // multi.A=1: r0 = 101; ret.
    let mut a = Assembler::new();
    a.mov_ri(Reg::R0, 101);
    a.ret();
    let v1 = a.finish().unwrap();
    let v1_size = v1.bytes.len() as u32;
    o.add_code("multi.A=1", &v1);

    // maybe_log (generic): if (A) simulate work; always ≥ 5 bytes.
    let mut a = Assembler::new();
    a.load_sym(Reg::R1, "A", 0, Width::W32, true);
    a.cmp_ri(Reg::R1, 0);
    a.jcc("done", mvasm::Cond::Eq);
    a.emit(Insn::AluRI {
        op: AluOp::Add,
        dst: Reg::R2,
        imm: 1,
    });
    a.label("done");
    a.ret();
    let ml = a.finish().unwrap();
    let ml_size = ml.bytes.len() as u32;
    o.add_code("maybe_log", &ml);

    // maybe_log.A=0: empty body (ret only) — inline_len 0.
    let mut a = Assembler::new();
    a.ret();
    let mlv0 = a.finish().unwrap();
    o.add_code("maybe_log.A=0", &mlv0);

    // maybe_log.A=1: the work, no branch.
    let mut a = Assembler::new();
    a.emit(Insn::AluRI {
        op: AluOp::Add,
        dst: Reg::R2,
        imm: 1,
    });
    a.ret();
    let mlv1 = a.finish().unwrap();
    let mlv1_size = mlv1.bytes.len() as u32;
    o.add_code("maybe_log.A=1", &mlv1);

    // caller: call multi; ret.
    let mut a = Assembler::new();
    a.call_sym("multi", true);
    a.ret();
    let caller = a.finish().unwrap();
    let caller_sites = caller.callsites.clone();
    o.add_code("caller", &caller);
    for off in caller_sites {
        emit_callsite(
            &mut o,
            &CallsiteDescSym {
                callee: "multi".into(),
                caller: "caller".into(),
                offset: off,
            },
        );
    }

    // caller2: call maybe_log; r0 = 7; ret.
    let mut a = Assembler::new();
    a.call_sym("maybe_log", true);
    a.mov_ri(Reg::R0, 7);
    a.ret();
    let caller2 = a.finish().unwrap();
    let c2_sites = caller2.callsites.clone();
    o.add_code("caller2", &caller2);
    for off in c2_sites {
        emit_callsite(
            &mut o,
            &CallsiteDescSym {
                callee: "maybe_log".into(),
                caller: "caller2".into(),
                offset: off,
            },
        );
    }

    // impl_a / impl_b: pointer targets (10-byte mov → not inlinable into a
    // 9-byte indirect site).
    let mut a = Assembler::new();
    a.mov_ri(Reg::R0, 11);
    a.ret();
    let ia = a.finish().unwrap();
    let ia_size = ia.bytes.len() as u32;
    o.add_code("impl_a", &ia);
    let mut a = Assembler::new();
    a.mov_ri(Reg::R0, 22);
    a.ret();
    let ib = a.finish().unwrap();
    let ib_size = ib.bytes.len() as u32;
    o.add_code("impl_b", &ib);

    // impl_cli: cli; ret — inlinable body of 1 byte.
    let mut a = Assembler::new();
    a.emit(Insn::Cli);
    a.emit(Insn::Nop { len: 4 }); // pad generic body to ≥ 5 bytes
    a.ret();
    let icli = a.finish().unwrap();
    let icli_size = icli.bytes.len() as u32;
    o.add_code("impl_cli", &icli);

    // op: function pointer, initialized to impl_a.
    o.define_data_ptr("op", "impl_a");

    // caller3: call *[op]; ret.
    let mut a = Assembler::new();
    let site3 = a.len() as u32;
    a.call_mem_sym("op");
    a.ret();
    let caller3 = a.finish().unwrap();
    o.add_code("caller3", &caller3);
    emit_callsite(
        &mut o,
        &CallsiteDescSym {
            callee: "op".into(),
            caller: "caller3".into(),
            offset: site3,
        },
    );

    // Descriptors.
    emit_variable(
        &mut o,
        &VarDescSym {
            symbol: "A".into(),
            width: 4,
            signed: true,
            fn_ptr: false,
            name_sym: None,
        },
    );
    emit_variable(
        &mut o,
        &VarDescSym {
            symbol: "op".into(),
            width: 8,
            signed: false,
            fn_ptr: true,
            name_sym: None,
        },
    );
    emit_function(
        &mut o,
        &FnDescSym {
            symbol: "multi".into(),
            generic_size: multi_size,
            generic_inline_len: NOT_INLINABLE,
            name_sym: None,
            variants: vec![
                VariantDescSym {
                    symbol: "multi.A=0".into(),
                    body_size: v0_size,
                    inline_len: NOT_INLINABLE, // 10-byte mov does not fit
                    guards: vec![GuardSym {
                        var_symbol: "A".into(),
                        low: 0,
                        high: 0,
                    }],
                },
                VariantDescSym {
                    symbol: "multi.A=1".into(),
                    body_size: v1_size,
                    inline_len: NOT_INLINABLE,
                    guards: vec![GuardSym {
                        var_symbol: "A".into(),
                        low: 1,
                        high: 1,
                    }],
                },
            ],
        },
    );
    emit_function(
        &mut o,
        &FnDescSym {
            symbol: "maybe_log".into(),
            generic_size: ml_size,
            generic_inline_len: NOT_INLINABLE,
            name_sym: None,
            variants: vec![
                VariantDescSym {
                    symbol: "maybe_log.A=0".into(),
                    body_size: 1,
                    inline_len: 0, // empty body — erases to a wide NOP
                    guards: vec![GuardSym {
                        var_symbol: "A".into(),
                        low: 0,
                        high: 0,
                    }],
                },
                VariantDescSym {
                    symbol: "maybe_log.A=1".into(),
                    body_size: mlv1_size,
                    inline_len: NOT_INLINABLE,
                    guards: vec![GuardSym {
                        var_symbol: "A".into(),
                        low: 1,
                        high: 1,
                    }],
                },
            ],
        },
    );
    // Descriptors for the pointer targets (impl_cli is inlinable).
    for (sym, size, inline) in [
        ("impl_a", ia_size, NOT_INLINABLE),
        ("impl_b", ib_size, NOT_INLINABLE),
        ("impl_cli", icli_size, 5), // cli + nop4
    ] {
        emit_function(
            &mut o,
            &FnDescSym {
                symbol: sym.into(),
                generic_size: size,
                generic_inline_len: inline,
                name_sym: None,
                variants: vec![],
            },
        );
    }

    link(&[o], &Layout::default()).unwrap()
}

struct Fx {
    exe: Executable,
    m: Machine,
    rt: Runtime,
}

fn setup() -> Fx {
    let exe = build_fixture();
    let mut m = Machine::new(CostModel::default(), MachineConfig::default());
    m.load(&exe);
    let rt = Runtime::attach(&m, &exe).expect("attach");
    Fx { exe, m, rt }
}

fn set_a(fx: &mut Fx, v: i64) {
    let a = fx.exe.symbol("A").unwrap();
    fx.rt.write_switch(&mut fx.m, a, v).unwrap();
}

fn call(fx: &mut Fx, sym: &str) -> u64 {
    let f = fx.exe.symbol(sym).unwrap();
    fx.m.call(f, &[]).unwrap()
}

#[test]
fn attach_inventory() {
    let fx = setup();
    assert_eq!(fx.rt.num_variables(), 2);
    assert_eq!(fx.rt.num_functions(), 5);
    assert_eq!(fx.rt.num_callsites(), 3);
    let multi = fx.exe.symbol("multi").unwrap();
    assert_eq!(fx.rt.callsites_of(multi), 1);
    assert_eq!(fx.rt.binding_of(multi), Some(FnBinding::Generic));
}

#[test]
fn generic_behaviour_before_commit() {
    let mut fx = setup();
    set_a(&mut fx, 0);
    assert_eq!(call(&mut fx, "caller"), 100);
    set_a(&mut fx, 1);
    assert_eq!(call(&mut fx, "caller"), 101);
    // Arbitrary values work dynamically too.
    set_a(&mut fx, 42);
    assert_eq!(call(&mut fx, "caller"), 142);
}

#[test]
fn commit_installs_matching_variant() {
    let mut fx = setup();
    set_a(&mut fx, 1);
    let report = fx.rt.commit(&mut fx.m).unwrap();
    assert_eq!(report.generic_fallbacks, 0);
    assert!(report.variants_committed >= 2);
    let multi = fx.exe.symbol("multi").unwrap();
    let v1 = fx.exe.symbol("multi.A=1").unwrap();
    assert_eq!(fx.rt.binding_of(multi), Some(FnBinding::Variant(v1)));
    assert_eq!(call(&mut fx, "caller"), 101);
}

#[test]
fn committed_semantics_freeze_until_recommit() {
    // §2: after the commit the function no longer evaluates the switch —
    // a change has no effect until re-committed.
    let mut fx = setup();
    set_a(&mut fx, 1);
    fx.rt.commit(&mut fx.m).unwrap();
    set_a(&mut fx, 0);
    assert_eq!(call(&mut fx, "caller"), 101, "still bound to A=1 variant");
    fx.rt.commit(&mut fx.m).unwrap();
    assert_eq!(call(&mut fx, "caller"), 100, "re-commit re-binds");
}

#[test]
fn completeness_entry_jump_covers_untracked_calls() {
    // Calls the runtime never saw (here: a direct host call to the generic
    // entry, standing in for function pointers / assembler calls) must
    // reach the committed variant via the entry jump (§7.4).
    let mut fx = setup();
    set_a(&mut fx, 1);
    fx.rt.commit(&mut fx.m).unwrap();
    set_a(&mut fx, 0); // would change the generic's behaviour
    let multi = fx.exe.symbol("multi").unwrap();
    assert_eq!(fx.m.call(multi, &[]).unwrap(), 101);
}

#[test]
fn out_of_domain_value_falls_back_to_generic() {
    let mut fx = setup();
    set_a(&mut fx, 1);
    fx.rt.commit(&mut fx.m).unwrap();
    // Fig. 3 d: A=3 has no variant; commit reverts to generic and signals.
    set_a(&mut fx, 3);
    let report = fx.rt.commit(&mut fx.m).unwrap();
    assert!(report.generic_fallbacks >= 1);
    let multi = fx.exe.symbol("multi").unwrap();
    assert_eq!(fx.rt.binding_of(multi), Some(FnBinding::Generic));
    assert_eq!(call(&mut fx, "caller"), 103);
}

#[test]
fn revert_restores_original_image() {
    let mut fx = setup();
    let multi = fx.exe.symbol("multi").unwrap();
    let before = fx.m.mem.read_vec(multi, 16).unwrap();
    set_a(&mut fx, 1);
    fx.rt.commit(&mut fx.m).unwrap();
    assert_ne!(fx.m.mem.read_vec(multi, 16).unwrap(), before);
    fx.rt.revert(&mut fx.m).unwrap();
    assert_eq!(fx.m.mem.read_vec(multi, 16).unwrap(), before);
    set_a(&mut fx, 7);
    assert_eq!(call(&mut fx, "caller"), 107, "dynamic again");
}

#[test]
fn empty_variant_body_is_inlined_as_nop() {
    let mut fx = setup();
    set_a(&mut fx, 0);
    let stats0 = fx.rt.stats;
    fx.rt.commit(&mut fx.m).unwrap();
    let d = fx.rt.stats.since(&stats0);
    assert!(d.sites_inlined >= 1, "maybe_log.A=0 should inline");
    // The call site of maybe_log inside caller2 is now a NOP sled; the
    // function result is unaffected.
    assert_eq!(call(&mut fx, "caller2"), 7);
    // And it is cheaper than the generic path.
    let c0 = fx.m.cycles();
    call(&mut fx, "caller2");
    let inlined_cost = fx.m.cycles() - c0;
    fx.rt.revert(&mut fx.m).unwrap();
    call(&mut fx, "caller2"); // warm the predictor again
    let c1 = fx.m.cycles();
    call(&mut fx, "caller2");
    let generic_cost = fx.m.cycles() - c1;
    assert!(
        inlined_cost < generic_cost,
        "inlined {inlined_cost} !< generic {generic_cost}"
    );
}

#[test]
fn commit_func_and_refs_are_scoped() {
    let mut fx = setup();
    set_a(&mut fx, 1);
    let multi = fx.exe.symbol("multi").unwrap();
    let maybe_log = fx.exe.symbol("maybe_log").unwrap();
    // Only multi is committed.
    fx.rt.commit_func(&mut fx.m, multi).unwrap();
    assert!(matches!(
        fx.rt.binding_of(multi),
        Some(FnBinding::Variant(_))
    ));
    assert_eq!(fx.rt.binding_of(maybe_log), Some(FnBinding::Generic));
    // revert_func undoes only multi.
    fx.rt.revert_func(&mut fx.m, multi).unwrap();
    assert_eq!(fx.rt.binding_of(multi), Some(FnBinding::Generic));
    // commit_refs on A touches both guarded functions.
    let a = fx.exe.symbol("A").unwrap();
    fx.rt.commit_refs(&mut fx.m, a).unwrap();
    assert!(matches!(
        fx.rt.binding_of(multi),
        Some(FnBinding::Variant(_))
    ));
    assert!(matches!(
        fx.rt.binding_of(maybe_log),
        Some(FnBinding::Variant(_))
    ));
    fx.rt.revert_refs(&mut fx.m, a).unwrap();
    assert_eq!(fx.rt.binding_of(maybe_log), Some(FnBinding::Generic));
}

#[test]
fn unknown_addresses_are_rejected() {
    let mut fx = setup();
    assert!(matches!(
        fx.rt.commit_func(&mut fx.m, 0xdead),
        Err(RtError::UnknownFunction(0xdead))
    ));
    assert!(matches!(
        fx.rt.commit_refs(&mut fx.m, 0xbeef),
        Err(RtError::UnknownVariable(0xbeef))
    ));
}

#[test]
fn fnptr_switch_binds_direct_call() {
    let mut fx = setup();
    assert_eq!(call(&mut fx, "caller3"), 11, "indirect through op");
    let op = fx.exe.symbol("op").unwrap();
    let impl_b = fx.exe.symbol("impl_b").unwrap();
    let report = mvrt::fnptr::bind_and_commit(&mut fx.rt, &mut fx.m, op, impl_b).unwrap();
    assert_eq!(report.fnptr_sites, 1);
    assert_eq!(call(&mut fx, "caller3"), 22, "direct call to impl_b");
    // The site no longer performs an indirect call.
    let ic0 = fx.m.stats.indirect_calls;
    call(&mut fx, "caller3");
    assert_eq!(fx.m.stats.indirect_calls, ic0);
    // Revert restores the indirect call through the pointer.
    fx.rt.revert(&mut fx.m).unwrap();
    assert_eq!(call(&mut fx, "caller3"), 22, "pointer still holds impl_b");
    assert!(fx.m.stats.indirect_calls > ic0);
}

#[test]
fn fnptr_inlinable_target_is_inlined() {
    let mut fx = setup();
    let op = fx.exe.symbol("op").unwrap();
    let impl_cli = fx.exe.symbol("impl_cli").unwrap();
    let stats0 = fx.rt.stats;
    mvrt::fnptr::bind_and_commit(&mut fx.rt, &mut fx.m, op, impl_cli).unwrap();
    assert!(fx.rt.stats.since(&stats0).sites_inlined >= 1);
    // The inlined cli executes at the site: IF goes off, and neither a
    // call nor an indirect call is performed.
    fx.m.cpu.if_flag = true;
    let calls0 = (fx.m.stats.calls, fx.m.stats.indirect_calls);
    call(&mut fx, "caller3");
    assert!(!fx.m.cpu.if_flag, "inlined cli must execute");
    assert_eq!((fx.m.stats.calls, fx.m.stats.indirect_calls), calls0);
}

#[test]
fn tampered_site_fails_verification() {
    let mut fx = setup();
    set_a(&mut fx, 1);
    fx.rt.commit(&mut fx.m).unwrap();
    // Overwrite the patched call site behind the runtime's back.
    let caller = fx.exe.symbol("caller").unwrap();
    fx.m.mem.mprotect(caller, 5, mvobj::Prot::RW).unwrap();
    fx.m.mem.write(caller, &mvasm::MV64.nop_fill(5)).unwrap();
    fx.m.mem.mprotect(caller, 5, mvobj::Prot::RX).unwrap();
    set_a(&mut fx, 0);
    let err = fx.rt.commit(&mut fx.m).unwrap_err();
    // Tampering is caught by the read-only validate phase: the error names
    // the phase and the underlying mismatch, and nothing was written.
    assert_eq!(err.commit_phase(), Some(mvrt::CommitPhase::Validate));
    assert!(
        matches!(err.root_cause(), RtError::SiteVerifyFailed { .. }),
        "{err:?}"
    );
}

#[test]
fn patch_stats_accumulate() {
    let mut fx = setup();
    set_a(&mut fx, 1);
    fx.rt.commit(&mut fx.m).unwrap();
    let s = fx.rt.stats;
    assert!(s.sites_patched >= 2);
    assert!(s.entry_jumps >= 2);
    assert!(s.bytes_written > 0);
    assert_eq!(s.mprotects % 2, 0, "every unlock has a relock");
    assert!(s.icache_flushes > 0);
    fx.rt.revert(&mut fx.m).unwrap();
    assert!(fx.rt.stats.prologues_restored >= 2);
    assert!(fx.rt.patch_time > std::time::Duration::ZERO);
}

#[test]
fn double_commit_is_idempotent() {
    let mut fx = setup();
    set_a(&mut fx, 1);
    fx.rt.commit(&mut fx.m).unwrap();
    let img0 =
        fx.m.mem
            .read_vec(fx.exe.symbol("multi").unwrap(), 16)
            .unwrap();
    fx.rt.commit(&mut fx.m).unwrap();
    let img1 =
        fx.m.mem
            .read_vec(fx.exe.symbol("multi").unwrap(), 16)
            .unwrap();
    assert_eq!(img0, img1);
    assert_eq!(call(&mut fx, "caller"), 101);
}

#[test]
fn wxorx_is_preserved_after_patching() {
    let mut fx = setup();
    set_a(&mut fx, 1);
    fx.rt.commit(&mut fx.m).unwrap();
    // Text must be back to R-X after the commit.
    let caller = fx.exe.symbol("caller").unwrap();
    assert!(fx.m.mem.write(caller, &[0]).is_err());
    let prot = fx.m.mem.prot_of(caller).unwrap();
    assert!(prot.exec && !prot.write);
}
