//! Differential testing of the variational execution engine: every
//! workload kernel runs under `vexec` (the whole switch cross product in
//! one pass) and the per-leaf observations are replayed through both
//! trusted paths — generic enumeration (full architectural state) and
//! the committed-variant oracle (black-box exit + output).
//!
//! The proptest at the bottom closes the loop from the other side:
//! random straight-line-plus-branch programs over random switch domains
//! must split and re-join to *exactly* |cross product| leaves, each
//! computing what a Rust oracle predicts.

use multiverse::mvvm::{CostModel, MachineConfig, Platform};
use multiverse::mvvx;
use multiverse::{enumerate_check_with, oracle_check_with, BuildError, Program, World};
use mv_workloads::{
    alternative, commit_storm, cpython, grep, musl, pvops, smp_contention, spinlock,
};
use proptest::prelude::*;

/// Runs `func(args...)` variationally on a world produced by `boot`,
/// then replays every leaf through enumeration and the commit oracle.
/// Returns the pass statistics for workload-specific assertions.
fn differential<F>(boot: F, func: &str, args: &[u64]) -> multiverse::mvvx::VexecStats
where
    F: Fn() -> Result<World, BuildError>,
{
    let w = boot().unwrap();
    let space = w.config_space().unwrap();
    let report = w.vexec_in(&space, func, args).unwrap();
    assert_eq!(
        report.leaves.len(),
        space.leaf_count(),
        "{func}: pass must cover the full cross product"
    );
    let chk = enumerate_check_with(&boot, &space, func, args, &report).unwrap();
    assert_eq!(chk.leaves_checked, space.leaf_count());
    assert!(
        chk.insns >= report.stats.steps,
        "{func}: enumeration ({}) cannot be cheaper than the shared pass ({})",
        chk.insns,
        report.stats.steps
    );
    oracle_check_with(&boot, &space, func, args, &report).unwrap();
    report.stats
}

#[test]
fn spinlock_kernel() {
    let p = spinlock::build(spinlock::KernelBuild::ElisionMultiverse).unwrap();
    let stats = differential(|| Ok(p.boot()), "lock_unlock", &[]);
    // `if (config_smp)` forces one split per lock function.
    assert!(stats.splits >= 2, "stats: {stats:?}");
}

#[test]
fn cpython_kernel() {
    let p = Program::build(&[("cpython.c", cpython::SRC)]).unwrap();
    let stats = differential(|| Ok(p.boot()), "bench_alloc", &[40]);
    // The allocation loop is shared; only the GC bookkeeping diverges,
    // so one shared step must stand for well over one leaf on average.
    assert!(stats.shared_prefix_ratio() > 1.5, "stats: {stats:?}");
}

#[test]
fn grep_kernel() {
    let corpus = mv_workloads::textgen::hex_corpus(2048, 7);
    let boot = || {
        grep::boot(grep::GrepBuild::With, &corpus, false).and_then(|mut w| {
            // `grep::boot` commits the matcher; revert so the vexec base
            // image and the enumerate replays run the generic bodies
            // (the oracle path re-commits per leaf on its own).
            w.revert()?;
            Ok(w)
        })
    };
    let stats = differential(boot, "grep_all", &[512]);
    assert!(
        stats.joins > 0,
        "line loop must re-join per call: {stats:?}"
    );
}

#[test]
fn musl_kernel() {
    let p = Program::build(&[("musl.c", musl::SRC)]).unwrap();
    differential(|| Ok(p.boot()), "random_", &[]);
    differential(|| Ok(p.boot()), "malloc_", &[24]);
}

#[test]
fn alternative_kernel() {
    let p = Program::build(&[("alternative.c", alternative::SRC)]).unwrap();
    differential(|| Ok(p.boot()), "copy_from_user", &[16]);
}

#[test]
fn pvops_kernel_on_both_platforms() {
    let p = Program::build(&[("pvops.c", pvops::SRC_MULTIVERSE)]).unwrap();
    for platform in [Platform::Native, Platform::XenGuest] {
        let boot = || {
            Ok(p.boot_with(
                CostModel::default(),
                MachineConfig {
                    platform,
                    ..MachineConfig::default()
                },
            ))
        };
        differential(boot, "irq_toggle", &[]);
    }
}

#[test]
fn smp_contention_kernel_single_core() {
    let p = smp_contention::build().unwrap();
    let stats = differential(|| Ok(p.boot()), "worker", &[8]);
    // The worker's callees split on config_smp and re-join at return;
    // sharing must beat enumeration even at two leaves.
    assert!(stats.joins > 0, "stats: {stats:?}");
    assert!(stats.shared_prefix_ratio() > 1.2, "stats: {stats:?}");
}

#[test]
fn commit_storm_kernel_splits_and_rejoins_per_callee() {
    let p = commit_storm::build().unwrap();
    let stats = differential(|| Ok(p.boot()), "worker", &[4]);
    // Three independent bool switches: 8 leaves, but the splits happen
    // inside fa/fb/fc and re-join at each return, so the pass never
    // holds 8 contexts at once.
    assert_eq!(stats.leaf_count, 8);
    assert!(stats.joins > 0, "stats: {stats:?}");
    assert!(stats.max_live < 8, "stats: {stats:?}");
}

// ---------------------------------------------------------------------------
// Random-program property: exact cross-product coverage.
// ---------------------------------------------------------------------------

/// One statement of a generated straight-line-plus-branch kernel.
#[derive(Clone, Copy, Debug)]
enum S {
    AddConst(i8),
    MulConst(i8),
    AddSwitchA,
    AddSwitchB,
    /// `if (a_ == v) { acc = acc + k; }` with `v` reduced into domain.
    IfA(u8, i8),
    IfB(u8, i8),
}

fn arb_stmt() -> impl Strategy<Value = S> {
    prop_oneof![
        any::<i8>().prop_map(S::AddConst),
        (-3i8..4).prop_map(S::MulConst),
        Just(S::AddSwitchA),
        Just(S::AddSwitchB),
        (any::<u8>(), any::<i8>()).prop_map(|(v, k)| S::IfA(v, k)),
        (any::<u8>(), any::<i8>()).prop_map(|(v, k)| S::IfB(v, k)),
    ]
}

fn render(stmts: &[S], da: usize, db: usize) -> String {
    let dom = |n: usize| (0..n).map(|v| v.to_string()).collect::<Vec<_>>().join(", ");
    let mut body = String::new();
    for s in stmts {
        let line = match *s {
            S::AddConst(k) => format!("acc = acc + {k};"),
            S::MulConst(k) => format!("acc = acc * {k};"),
            S::AddSwitchA => "acc = acc + a_;".into(),
            S::AddSwitchB => "acc = acc + b_;".into(),
            S::IfA(v, k) => format!("if (a_ == {}) {{ acc = acc + {k}; }}", v as usize % da),
            S::IfB(v, k) => format!("if (b_ == {}) {{ acc = acc + {k}; }}", v as usize % db),
        };
        body.push_str(&line);
        body.push('\n');
    }
    format!(
        r#"
        multiverse({}) i32 a_;
        multiverse({}) i32 b_;
        multiverse i64 kernel(i64 x) {{
            i64 acc = x;
            {body}
            return acc;
        }}
        i64 main(void) {{ return 0; }}
        "#,
        dom(da),
        dom(db)
    )
}

fn eval(stmts: &[S], da: usize, db: usize, a: i64, b: i64, x: i64) -> i64 {
    let mut acc = x;
    for s in stmts {
        acc = match *s {
            S::AddConst(k) => acc.wrapping_add(k as i64),
            S::MulConst(k) => acc.wrapping_mul(k as i64),
            S::AddSwitchA => acc.wrapping_add(a),
            S::AddSwitchB => acc.wrapping_add(b),
            S::IfA(v, k) if a == (v as usize % da) as i64 => acc.wrapping_add(k as i64),
            S::IfB(v, k) if b == (v as usize % db) as i64 => acc.wrapping_add(k as i64),
            _ => acc,
        };
    }
    acc
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Splits and joins must multiply out to *exactly* the cross
    /// product: every leaf present once, every exit equal to the Rust
    /// oracle, and the enumeration replay agrees on full state.
    #[test]
    fn random_programs_cover_the_exact_cross_product(
        da in 2usize..4,
        db in 2usize..4,
        stmts in proptest::collection::vec(arb_stmt(), 1..10),
        x in -4i64..5,
    ) {
        let src = render(&stmts, da, db);
        let p = Program::build(&[("gen.c", &src)]).unwrap();
        let w = p.boot();
        // Build the space by hand: the recovered space only covers
        // switches some variant actually guards on, while this property
        // is about the declared cross product — including switches the
        // random program never reads.
        let domain = |name: &str, n: usize| mvvx::SwitchDomain {
            name: name.into(),
            addr: w.sym(name).unwrap(),
            width: 4,
            signed: true,
            values: (0..n as i64).collect(),
        };
        let space = mvvx::ConfigSpace::new(vec![domain("a_", da), domain("b_", db)]).unwrap();
        prop_assert_eq!(space.leaf_count(), da * db, "src:\n{}", src);
        let report = w.vexec_in(&space, "kernel", &[x as u64]).unwrap();
        prop_assert_eq!(report.leaves.len(), da * db);
        for leaf in &report.leaves {
            let a = leaf.assignment.iter().find(|(n, _)| n == "a_").unwrap().1;
            let b = leaf.assignment.iter().find(|(n, _)| n == "b_").unwrap().1;
            let oracle = eval(&stmts, da, db, a, b, x) as u64;
            prop_assert_eq!(
                leaf.exit, oracle,
                "leaf {} (a_={}, b_={}) of:\n{}", leaf.leaf, a, b, src
            );
        }
        let chk = multiverse::enumerate_check(&p, &space, "kernel", &[x as u64], &report).unwrap();
        prop_assert_eq!(chk.leaves_checked, da * db);
    }
}
