//! Backend differential suite: the `native` host-closure backend must be
//! observation-identical to the reference `mv64` backend on every
//! workload — byte-identical committed text images, identical machine
//! [`Stats`](multiverse::mvvm::Stats), identical patcher stats, identical
//! results — differing only in how fast the host executes them. A
//! backend that gets faster by observing differently is a broken
//! backend, not a fast one.
//!
//! Coverage: every `mv_workloads` case study (spinlock, pvops, musl,
//! grep, cpython, alternative), a commit/revert/partial-commit drive on
//! a fresh program, one full fault-index sweep (every position of every
//! fault op), and the quiesced SMP protocols.

use multiverse::mvvm::{MachineMode, Platform};
use multiverse::{Program, World};
use mv_workloads::{alternative, cpython, grep, musl, pvops, spinlock, textgen};

const BACKENDS: [&str; 2] = ["mv64", "native"];

fn text_of(w: &World) -> Vec<u8> {
    let (addr, size) = w.exe().section(multiverse::mvobj::SEC_TEXT);
    w.machine.mem.read_vec(addr, size as usize).unwrap()
}

/// Everything one backend run exposes to an observer: the drive's own
/// outputs, the final text image, the guest-side machine counters and
/// the patcher counters.
#[derive(Debug, PartialEq)]
struct Observation<O> {
    output: O,
    text: Vec<u8>,
    machine: multiverse::mvvm::Stats,
    patcher: Option<multiverse::mvrt::PatchStats>,
}

/// Boots one world per backend, drives both identically, and asserts
/// the observations match field by field.
fn differential<O: PartialEq + std::fmt::Debug>(
    label: &str,
    boot: impl Fn() -> World,
    drive: impl Fn(&mut World) -> O,
) {
    let run = |backend: &str| {
        let mut w = boot();
        w.set_backend(backend).unwrap();
        let output = drive(&mut w);
        Observation {
            output,
            text: text_of(&w),
            machine: w.machine.stats,
            patcher: w.rt.as_ref().map(|rt| rt.stats),
        }
    };
    let reference = run(BACKENDS[0]);
    let native = run(BACKENDS[1]);
    assert_eq!(
        reference.output, native.output,
        "{label}: observable outputs diverged"
    );
    assert_eq!(
        reference.text, native.text,
        "{label}: committed text images diverged"
    );
    assert_eq!(
        reference.machine, native.machine,
        "{label}: machine stats diverged"
    );
    assert_eq!(
        reference.patcher, native.patcher,
        "{label}: patcher stats diverged"
    );
}

#[test]
fn spinlock_kernels_are_backend_identical() {
    for kind in [
        spinlock::KernelBuild::NoElision,
        spinlock::KernelBuild::ElisionIf,
        spinlock::KernelBuild::ElisionMultiverse,
        spinlock::KernelBuild::IfdefOff,
    ] {
        for mode in [MachineMode::Unicore, MachineMode::Multicore] {
            if kind == spinlock::KernelBuild::IfdefOff && mode == MachineMode::Multicore {
                continue; // statically determined to UP
            }
            differential(
                kind.label(),
                || spinlock::boot(kind, mode).unwrap(),
                |w| {
                    let lock = spinlock::measure_lock(w, 200).unwrap();
                    let pair = spinlock::measure_pair(w, 200).unwrap();
                    (lock.to_bits(), pair.to_bits())
                },
            );
        }
    }
}

#[test]
fn pvops_kernels_are_backend_identical() {
    for build in [
        pvops::PvBuild::Current,
        pvops::PvBuild::Multiverse,
        pvops::PvBuild::IfdefDisabled,
    ] {
        for platform in [Platform::Native, Platform::XenGuest] {
            differential(
                build.label(),
                || pvops::boot(build, platform).unwrap(),
                |w| pvops::measure(w, 200).unwrap().to_bits(),
            );
        }
    }
}

#[test]
fn musl_is_backend_identical() {
    for threads in [musl::ThreadMode::Single, musl::ThreadMode::Multi] {
        for build in [musl::MuslBuild::Without, musl::MuslBuild::With] {
            differential(
                build.label(),
                || musl::boot(build, threads).unwrap(),
                |w| {
                    musl::LibcFn::all()
                        .iter()
                        .map(|&f| musl::run_bench(w, f, 50).unwrap())
                        .collect::<Vec<_>>()
                },
            );
        }
    }
}

#[test]
fn grep_is_backend_identical() {
    let corpus = textgen::hex_corpus(2048, 2019);
    for build in [grep::GrepBuild::Without, grep::GrepBuild::With] {
        for multibyte in [false, true] {
            differential(
                "grep",
                || grep::boot(build, &corpus, multibyte).unwrap(),
                |w| grep::run(w, corpus.len()).unwrap(),
            );
        }
    }
}

#[test]
fn cpython_is_backend_identical() {
    for build in [cpython::PyBuild::Without, cpython::PyBuild::With] {
        for gc in [false, true] {
            differential(
                "cpython",
                || cpython::boot(build, gc).unwrap(),
                |w| cpython::run(w, 200).unwrap(),
            );
        }
    }
}

#[test]
fn alternative_is_backend_identical() {
    for smap in [false, true] {
        differential(
            "alternative",
            || alternative::boot(smap).unwrap(),
            |w| {
                let buf = w.sym("user_buf").unwrap();
                let data: Vec<u8> = (0..=255).collect();
                w.machine.mem.write(buf, &data).unwrap();
                let n = w.call("copy_from_user", &[64]).unwrap();
                let kbuf = w.sym("kernel_buf").unwrap();
                (n, w.machine.mem.read_vec(kbuf, 64).unwrap())
            },
        );
    }
}

/// The differential methodology is only sound if compiling the same
/// source twice yields the same bytes. Regression for a hash-order leak
/// in the codegen spill path: the caller-saved spill sequence iterated a
/// `HashMap`, so the free-list refill order — and with it later register
/// choices — varied run to run.
#[test]
fn builds_are_reproducible_within_a_process() {
    let text_at_boot = || {
        let w = musl::boot(musl::MuslBuild::Without, musl::ThreadMode::Single).unwrap();
        text_of(&w)
    };
    let reference = text_at_boot();
    for round in 0..20 {
        assert_eq!(
            text_at_boot(),
            reference,
            "rebuild {round} produced different text bytes"
        );
    }
}

/// A multi-switch, multi-function program for the drive and fault
/// dimensions: three multiversed functions over two switches, callers
/// recording patchable sites.
const DRIVE_SRC: &str = r#"
    multiverse(0, 1, 2) i32 a_;
    multiverse(0, 1) i32 b_;

    multiverse i64 f1(void) { return a_ * 10 + 1; }
    multiverse i64 f2(void) { return b_ * 100 + 2; }
    multiverse i64 f3(void) { return a_ * 1000 + b_ * 10000; }

    i64 g1(void) { return f1(); }
    i64 g2(void) { return f2(); }
    i64 g3(void) { return f1() + f3(); }

    i64 main(void) { return 0; }
"#;

/// Commit / call / revert / partial-commit sequences leave both
/// backends in the same state after every step, not just at the end.
#[test]
fn commit_revert_drive_is_backend_identical() {
    let program = Program::build(&[("d.c", DRIVE_SRC)]).unwrap();
    differential(
        "drive",
        || program.boot(),
        |w| {
            let mut log: Vec<(u64, Vec<u8>)> = Vec::new();
            let mut observe = |w: &mut World| {
                let calls: u64 = ["g1", "g2", "g3"]
                    .iter()
                    .map(|f| w.call(f, &[]).unwrap())
                    .sum();
                let t = text_of(w);
                log.push((calls, t));
            };
            w.set("a_", 1).unwrap();
            w.set("b_", 1).unwrap();
            w.commit().unwrap();
            observe(w);
            w.set("a_", 2).unwrap();
            w.commit_refs("a_").unwrap();
            observe(w);
            w.revert().unwrap();
            observe(w);
            w.commit_func("f3").unwrap();
            observe(w);
            w.commit().unwrap();
            observe(w);
            log
        },
    );
}

/// The fault dimension: for every position of every fault op in a full
/// commit, both backends surface the same error, roll back to the same
/// pristine image, and heal into the same committed image.
#[test]
fn fault_sweep_is_backend_identical() {
    use multiverse::mvvm::{FaultOp, FaultPlan};

    let program = Program::build(&[("d.c", DRIVE_SRC)]).unwrap();
    let boot_configured = |backend: &str| {
        let mut w = program.boot();
        w.set_backend(backend).unwrap();
        w.set("a_", 1).unwrap();
        w.set("b_", 1).unwrap();
        w
    };

    // Probe: the op counts of one clean commit (identical per backend by
    // the drive test above; use the reference).
    let mut probe = boot_configured("mv64");
    probe.commit().unwrap();
    let d = probe.rt.as_ref().unwrap().stats;
    let schedule = [
        (FaultOp::TextWrite, d.journal_entries),
        (FaultOp::Mprotect, d.mprotects),
        (FaultOp::IcacheFlush, d.icache_flushes),
    ];

    for (op, count) in schedule {
        for n in 1..=count {
            let observe = |backend: &str| {
                let mut w = boot_configured(backend);
                w.machine.inject_fault(FaultPlan::new(op, n));
                let err = format!(
                    "{:?}",
                    w.commit()
                        .expect_err(&format!("{backend}: {op:?}@{n} must surface"))
                );
                let torn = text_of(&w);
                let rollbacks = w.rt.as_ref().unwrap().stats.rollbacks;
                // One-shot fault has fired; the same commit heals.
                let report = w.commit().unwrap();
                let healed = text_of(&w);
                let calls: Vec<u64> = ["g1", "g2", "g3"]
                    .iter()
                    .map(|f| w.call(f, &[]).unwrap())
                    .collect();
                (
                    err,
                    torn,
                    rollbacks,
                    report.variants_committed,
                    healed,
                    calls,
                )
            };
            let reference = observe("mv64");
            let native = observe("native");
            assert_eq!(reference, native, "{op:?} fault at position {n} diverged");
        }
    }
}

/// Quiesced SMP commits: both protocols, both backends, same worker
/// results and same committed image. (Under SMP the native tier defers
/// to the block engine whenever a vCPU's sticky instruction cache is
/// active, so this pins down that the backend never changes SMP
/// semantics.)
#[test]
fn smp_quiesced_commits_are_backend_identical() {
    use multiverse::mvrt::CommitStrategy;

    const SMP_SRC: &str = r#"
        multiverse bool fast;
        multiverse i64 work(i64 n) {
            i64 acc = 0;
            for (i64 i = 0; i < n; i++) {
                if (fast) { acc = acc + 2; } else { acc = acc + 1; }
            }
            return acc;
        }
        i64 worker(i64 n) { return work(n); }
        i64 main(void) { return 0; }
    "#;
    let program = Program::build(&[("s.c", SMP_SRC)]).unwrap();

    for strategy in [CommitStrategy::StopMachine, CommitStrategy::Breakpoint] {
        let run = |backend: &str| {
            let mut w = program.boot_smp(4);
            w.set_backend(backend).unwrap();
            w.set("fast", 1).unwrap();
            let report = w.commit_quiesced(strategy).unwrap();
            w.spawn_all("worker", &[64]).unwrap();
            let results = w.run(100_000).unwrap();
            let (addr, size) = w.exe().section(multiverse::mvobj::SEC_TEXT);
            let text = w.smp.machine.mem.read_vec(addr, size as usize).unwrap();
            (report.commit.variants_committed, results, text)
        };
        let reference = run(BACKENDS[0]);
        let native = run(BACKENDS[1]);
        assert_eq!(reference, native, "{strategy}: SMP run diverged");
        assert!(
            reference.1.iter().all(|&r| r == 128),
            "{strategy}: workers computed the committed fast path"
        );
    }
}
