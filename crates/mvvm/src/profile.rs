//! Per-function execution profiling.
//!
//! §6.2 argues multiversing by its microarchitectural effect — fewer
//! branches and mispredictions *in the functions that were committed*.
//! Whole-run [`Stats`] cannot attribute that effect; the profiler here
//! can: it derives address ranges for every text symbol of the loaded
//! image and, for each retired instruction, charges the step's cycle and
//! counter deltas to the function whose range holds the instruction's
//! address. A generic-vs-committed comparison then becomes a
//! per-function report (`mvcc stats --per-fn --commit`).
//!
//! Attribution is by *retirement address*: cycles of a `call` retire in
//! the caller, the callee's body is charged to the callee. An inlined
//! variant body (Fig. 3 c) therefore shows up in its *call site's*
//! function — exactly the migration of work the paper's inlining
//! optimization performs.

use crate::stats::Stats;
use mvobj::{Executable, SEC_TEXT};

/// The address range of one text symbol.
#[derive(Clone, Debug)]
pub struct FnRange {
    /// Symbol name.
    pub name: String,
    /// First address of the function.
    pub start: u64,
    /// One past the last address (the next symbol's start, or the end of
    /// the text section for the last symbol).
    pub end: u64,
}

/// Counters charged to one function (or to the `<other>` bucket).
#[derive(Clone, Copy, Debug, Default)]
pub struct FnCounters {
    /// Cycles retired while executing inside the range.
    pub cycles: u64,
    /// Event counters accumulated inside the range.
    pub stats: Stats,
}

/// One row of [`Profiler::report`].
#[derive(Clone, Debug)]
pub struct FnProfile {
    /// Function name (`<other>` for addresses outside every range).
    pub name: String,
    /// The charged counters.
    pub counters: FnCounters,
}

/// Attributes per-step cycle and counter deltas to functions by address.
#[derive(Clone, Debug, Default)]
pub struct Profiler {
    /// Sorted by `start`, non-overlapping.
    ranges: Vec<FnRange>,
    /// Parallel to `ranges`.
    buckets: Vec<FnCounters>,
    /// Everything outside the known ranges (injected variants, stack
    /// thunks, …).
    other: FnCounters,
    /// Index of the range the previous step hit — straight-line code
    /// stays in one function, so this turns the common case into one
    /// range check instead of a binary search.
    last: Option<usize>,
}

impl Profiler {
    /// Builds ranges from the image's symbol table: every symbol whose
    /// address lies in the text section becomes a range ending at the
    /// next symbol (symbol sizes are not in the linked image; adjacency
    /// recovers them exactly for the contiguous text the linker lays
    /// out).
    pub fn from_executable(exe: &Executable) -> Profiler {
        let (text_start, text_size) = exe.section(SEC_TEXT);
        let text_end = text_start + text_size;
        let mut syms: Vec<(&str, u64)> = exe
            .symbols
            .iter()
            .filter(|&(_, &a)| a >= text_start && a < text_end)
            .map(|(n, &a)| (n.as_str(), a))
            .collect();
        syms.sort_by_key(|&(_, a)| a);
        let ranges: Vec<FnRange> = syms
            .iter()
            .enumerate()
            .map(|(i, &(name, start))| FnRange {
                name: name.to_string(),
                start,
                end: syms.get(i + 1).map_or(text_end, |&(_, a)| a),
            })
            .collect();
        let buckets = vec![FnCounters::default(); ranges.len()];
        Profiler {
            ranges,
            buckets,
            other: FnCounters::default(),
            last: None,
        }
    }

    /// The derived ranges, sorted by start address.
    pub fn ranges(&self) -> &[FnRange] {
        &self.ranges
    }

    fn bucket_of(&mut self, pc: u64) -> Option<usize> {
        if let Some(i) = self.last {
            let r = &self.ranges[i];
            if pc >= r.start && pc < r.end {
                return Some(i);
            }
        }
        let i = self
            .ranges
            .binary_search_by(|r| {
                if pc < r.start {
                    std::cmp::Ordering::Greater
                } else if pc >= r.end {
                    std::cmp::Ordering::Less
                } else {
                    std::cmp::Ordering::Equal
                }
            })
            .ok();
        self.last = i;
        i
    }

    /// Charges one retired instruction at `pc` with the step's cycle and
    /// counter deltas.
    pub fn record(&mut self, pc: u64, cycles: u64, delta: &Stats) {
        let c = match self.bucket_of(pc) {
            Some(i) => &mut self.buckets[i],
            None => &mut self.other,
        };
        c.cycles += cycles;
        c.stats += *delta;
    }

    /// Per-function rows with any activity, sorted by cycles descending;
    /// the `<other>` bucket is appended last when it is non-empty.
    pub fn report(&self) -> Vec<FnProfile> {
        let mut rows: Vec<FnProfile> = self
            .ranges
            .iter()
            .zip(&self.buckets)
            .filter(|(_, c)| c.stats.instructions > 0)
            .map(|(r, c)| FnProfile {
                name: r.name.clone(),
                counters: *c,
            })
            .collect();
        rows.sort_by_key(|r| std::cmp::Reverse(r.counters.cycles));
        if self.other.stats.instructions > 0 {
            rows.push(FnProfile {
                name: "<other>".to_string(),
                counters: self.other,
            });
        }
        rows
    }

    /// The counters charged to `name`, if that function executed.
    pub fn counters_of(&self, name: &str) -> Option<FnCounters> {
        self.ranges
            .iter()
            .position(|r| r.name == name)
            .map(|i| self.buckets[i])
            .filter(|c| c.stats.instructions > 0)
    }

    /// Renders the report as an aligned table.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "{:<24} {:>12} {:>10} {:>9} {:>11} {:>7}",
            "function", "cycles", "insns", "branches", "mispredicts", "calls"
        );
        for row in self.report() {
            let c = &row.counters;
            let _ = writeln!(
                s,
                "{:<24} {:>12} {:>10} {:>9} {:>11} {:>7}",
                row.name,
                c.cycles,
                c.stats.instructions,
                c.stats.branches,
                c.stats.mispredicts,
                c.stats.calls + c.stats.indirect_calls
            );
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profiler_with(ranges: &[(&str, u64, u64)]) -> Profiler {
        let ranges: Vec<FnRange> = ranges
            .iter()
            .map(|&(name, start, end)| FnRange {
                name: name.to_string(),
                start,
                end,
            })
            .collect();
        let buckets = vec![FnCounters::default(); ranges.len()];
        Profiler {
            ranges,
            buckets,
            other: FnCounters::default(),
            last: None,
        }
    }

    #[test]
    fn attribution_by_address() {
        let mut p = profiler_with(&[("a", 0x100, 0x200), ("b", 0x200, 0x300)]);
        let one = Stats {
            instructions: 1,
            ..Stats::default()
        };
        p.record(0x100, 5, &one);
        p.record(0x1FF, 5, &one); // last byte of a
        p.record(0x200, 7, &one); // first byte of b
        p.record(0x400, 9, &one); // outside every range
        let rows = p.report();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].name, "a"); // 10 cycles > b's 7
        assert_eq!(rows[0].counters.cycles, 10);
        assert_eq!(rows[1].name, "b");
        assert_eq!(rows[2].name, "<other>");
        assert_eq!(rows[2].counters.cycles, 9);
        assert_eq!(p.counters_of("a").unwrap().stats.instructions, 2);
        assert!(p.counters_of("never-ran").is_none());
    }

    #[test]
    fn last_range_cache_stays_correct() {
        let mut p = profiler_with(&[("a", 0x100, 0x200), ("b", 0x200, 0x300)]);
        let one = Stats {
            instructions: 1,
            ..Stats::default()
        };
        // Ping-pong between ranges: the cache must never misattribute.
        for _ in 0..10 {
            p.record(0x150, 1, &one);
            p.record(0x250, 1, &one);
        }
        assert_eq!(p.counters_of("a").unwrap().stats.instructions, 10);
        assert_eq!(p.counters_of("b").unwrap().stats.instructions, 10);
    }
}
