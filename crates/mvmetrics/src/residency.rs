//! Variant residency: *which variant was resident for how long, under
//! which switch assignment*.
//!
//! [`SwitchHistory`] records the flip timeline of every registered
//! multiverse switch — (epoch, old→new value, commit id) per committed
//! flip — and maintains a per-switch transition matrix. Joined with the
//! VM profiler's per-symbol cycle attribution (variant bodies are
//! separate text symbols, so profiler rows already separate variants),
//! this yields per-(function, variant) resident-cycle totals
//! ([`ResidencyRow`]). [`SwitchHistory::to_json`] serializes both as a
//! versioned "switch history" file for downstream profile-guided
//! tooling such as a future `mvc --variant-budget` pass.

use crate::json::{array, Obj};
use std::collections::HashMap;

/// Schema version of the switch-history document.
pub const SWITCH_HISTORY_VERSION: u32 = 1;

/// One committed switch flip.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FlipRecord {
    /// Switch symbol, e.g. `fast_path`.
    pub switch: String,
    /// Daemon epoch (or caller-supplied sequence number) of the commit.
    pub epoch: u64,
    /// Value resident before the flip.
    pub from: i64,
    /// Value resident after the flip.
    pub to: i64,
    /// Commit id (e.g. the daemon's committed-counter value at the
    /// time of the flip).
    pub commit_id: u64,
}

#[derive(Debug)]
struct SwitchTrack {
    name: String,
    addr: u64,
    initial: i64,
    last: i64,
    flips: u64,
}

/// Flip timeline plus per-switch transition matrix for a set of
/// registered switches.
#[derive(Debug, Default)]
pub struct SwitchHistory {
    switches: Vec<SwitchTrack>,
    by_addr: HashMap<u64, usize>,
    flips: Vec<FlipRecord>,
    /// (switch index, from, to) -> count.
    transitions: HashMap<(usize, i64, i64), u64>,
}

impl SwitchHistory {
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a switch by guest address with its initial value.
    /// Re-registering an address updates the name/initial and resets
    /// nothing else.
    pub fn register_switch(&mut self, name: &str, addr: u64, initial: i64) {
        if let Some(&i) = self.by_addr.get(&addr) {
            self.switches[i].name = name.to_string();
            return;
        }
        self.by_addr.insert(addr, self.switches.len());
        self.switches.push(SwitchTrack {
            name: name.to_string(),
            addr,
            initial,
            last: initial,
            flips: 0,
        });
    }

    /// Records a committed flip of the switch at `addr` to `new`. The
    /// old value is derived from the tracked state, so the timeline is
    /// self-consistent by construction. Returns false (and records
    /// nothing) if the address is unknown.
    pub fn record_flip(&mut self, addr: u64, new: i64, epoch: u64, commit_id: u64) -> bool {
        let Some(&i) = self.by_addr.get(&addr) else {
            return false;
        };
        let t = &mut self.switches[i];
        let from = t.last;
        t.last = new;
        t.flips += 1;
        self.flips.push(FlipRecord {
            switch: t.name.clone(),
            epoch,
            from,
            to: new,
            commit_id,
        });
        *self.transitions.entry((i, from, new)).or_insert(0) += 1;
        true
    }

    /// Total committed flips across all switches.
    pub fn flip_count(&self) -> u64 {
        self.flips.len() as u64
    }

    /// The recorded timeline, in commit order.
    pub fn flips(&self) -> &[FlipRecord] {
        &self.flips
    }

    /// Current (last committed) value of the switch at `addr`, if
    /// registered.
    pub fn last_value(&self, addr: u64) -> Option<i64> {
        self.by_addr.get(&addr).map(|&i| self.switches[i].last)
    }

    /// The transition matrix as (switch name, from, to, count) rows,
    /// sorted for deterministic output.
    pub fn transition_matrix(&self) -> Vec<(String, i64, i64, u64)> {
        let mut rows: Vec<_> = self
            .transitions
            .iter()
            .map(|(&(i, from, to), &n)| (self.switches[i].name.clone(), from, to, n))
            .collect();
        rows.sort();
        rows
    }

    /// Serializes the history plus a residency join as a versioned
    /// switch-history JSON document. `total_cycles` is the profiler's
    /// total attributed cycles; by construction the residency rows
    /// partition it.
    pub fn to_json(&self, residency: &[ResidencyRow], total_cycles: u64) -> String {
        let switches = self.switches.iter().map(|t| {
            let mut o = Obj::new();
            o.str("name", &t.name)
                .u64("addr", t.addr)
                .i64("initial", t.initial)
                .i64("final", t.last)
                .u64("flips", t.flips);
            o.finish()
        });
        let flips = self.flips.iter().map(|f| {
            let mut o = Obj::new();
            o.str("switch", &f.switch)
                .u64("epoch", f.epoch)
                .i64("from", f.from)
                .i64("to", f.to)
                .u64("commit", f.commit_id);
            o.finish()
        });
        let transitions = self
            .transition_matrix()
            .into_iter()
            .map(|(s, from, to, n)| {
                let mut o = Obj::new();
                o.str("switch", &s)
                    .i64("from", from)
                    .i64("to", to)
                    .u64("count", n);
                o.finish()
            });
        let rows = residency.iter().map(|r| {
            let mut o = Obj::new();
            o.str("function", &r.function)
                .str("variant", &r.variant)
                .u64("cycles", r.cycles)
                .u64("instructions", r.instructions);
            o.finish()
        });
        let mut doc = Obj::new();
        doc.u64("version", SWITCH_HISTORY_VERSION as u64)
            .str("kind", "mv-switch-history")
            .u64("total_flips", self.flip_count())
            .raw("switches", array(switches))
            .raw("flips", array(flips))
            .raw("transitions", array(transitions))
            .raw("residency", array(rows))
            .u64("total_cycles", total_cycles);
        doc.finish()
    }
}

/// Cycles and instructions attributed to one (function, variant) pair.
/// For generic (unspecialized) code `variant` is `"generic"`; for the
/// profiler's unattributed bucket `function` is `"<other>"`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ResidencyRow {
    pub function: String,
    pub variant: String,
    pub cycles: u64,
    pub instructions: u64,
}

/// Splits a mangled variant symbol (`multi.A=1.B=0-1`) into the base
/// function name and the variant suffix. Symbols without a variant
/// suffix map to `(name, "generic")`.
pub fn split_variant_symbol(sym: &str) -> (String, String) {
    if let Some(eq) = sym.find('=') {
        if let Some(dot) = sym[..eq].rfind('.') {
            return (sym[..dot].to_string(), sym[dot + 1..].to_string());
        }
    }
    (sym.to_string(), "generic".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symbol_split() {
        assert_eq!(
            split_variant_symbol("multi.A=1.B=0-1"),
            ("multi".to_string(), "A=1.B=0-1".to_string())
        );
        assert_eq!(
            split_variant_symbol("work.fast_path=1"),
            ("work".to_string(), "fast_path=1".to_string())
        );
        assert_eq!(
            split_variant_symbol("main"),
            ("main".to_string(), "generic".to_string())
        );
        assert_eq!(
            split_variant_symbol("<other>"),
            ("<other>".to_string(), "generic".to_string())
        );
    }

    #[test]
    fn timeline_derives_old_values() {
        let mut h = SwitchHistory::new();
        h.register_switch("fast_path", 0x100, 0);
        assert!(h.record_flip(0x100, 1, 1, 1));
        assert!(h.record_flip(0x100, 0, 2, 2));
        assert!(h.record_flip(0x100, 1, 3, 3));
        assert!(!h.record_flip(0x999, 1, 4, 4));
        assert_eq!(h.flip_count(), 3);
        assert_eq!(h.flips()[0].from, 0);
        assert_eq!(h.flips()[1].from, 1);
        assert_eq!(h.flips()[2].from, 0);
        assert_eq!(h.last_value(0x100), Some(1));
        let m = h.transition_matrix();
        assert_eq!(
            m,
            vec![
                ("fast_path".to_string(), 0, 1, 2),
                ("fast_path".to_string(), 1, 0, 1),
            ]
        );
    }

    #[test]
    fn json_document() {
        let mut h = SwitchHistory::new();
        h.register_switch("logging", 0x200, 1);
        h.record_flip(0x200, 0, 5, 1);
        let rows = vec![ResidencyRow {
            function: "work".to_string(),
            variant: "logging=0".to_string(),
            cycles: 40,
            instructions: 10,
        }];
        let doc = h.to_json(&rows, 40);
        assert!(doc.starts_with("{\"version\":1,\"kind\":\"mv-switch-history\""));
        assert!(doc.contains("\"total_flips\":1"));
        assert!(doc.contains("\"switch\":\"logging\",\"epoch\":5,\"from\":1,\"to\":0,\"commit\":1"));
        assert!(doc.contains("\"function\":\"work\",\"variant\":\"logging=0\""));
        assert!(doc.contains("\"total_cycles\":40"));
    }
}
