//! §2/§7.1 partial specialization: `multiverse(bind(…))` fixes a subset
//! of the referenced switches; unbound switches remain dynamic *inside
//! the committed variant*.

use multiverse::Program;

const SRC: &str = r#"
    multiverse bool fast_path;
    // Wide domain: full specialization would explode to 2 × 8 variants.
    multiverse(0,1,2,3,4,5,6,7) i32 verbosity;

    // Only fast_path is bound; verbosity stays a run-time decision.
    multiverse(bind(fast_path)) i64 handle(i64 x) {
        i64 r = 0;
        if (fast_path) {
            r = x * 2;
        } else {
            r = x * 3;
        }
        if (verbosity > 4) {
            r = r + 1000;
        }
        return r;
    }

    i64 main(void) { return 0; }
"#;

#[test]
fn unbound_switch_stays_dynamic_after_commit() {
    let program = Program::build(&[("t.c", SRC)]).unwrap();
    // Only two variants exist despite the 16-assignment cross product.
    assert!(program.exe().symbol("handle.fast_path=0").is_some());
    assert!(program.exe().symbol("handle.fast_path=1").is_some());
    assert!(program
        .exe()
        .symbol("handle.fast_path=0.verbosity=0")
        .is_none());

    let mut w = program.boot();
    w.set("fast_path", 1).unwrap();
    w.set("verbosity", 0).unwrap();
    w.commit().unwrap();
    assert_eq!(w.call("handle", &[10]).unwrap(), 20);

    // Changing the *unbound* switch takes effect immediately — no
    // re-commit required, because the variant still reads it.
    w.set("verbosity", 7).unwrap();
    assert_eq!(w.call("handle", &[10]).unwrap(), 1020);

    // Changing the *bound* switch does nothing until the next commit.
    w.set("fast_path", 0).unwrap();
    assert_eq!(w.call("handle", &[10]).unwrap(), 1020, "still ×2 variant");
    w.commit().unwrap();
    assert_eq!(w.call("handle", &[10]).unwrap(), 1030, "×3 after commit");
}

#[test]
fn partial_variant_is_cheaper_than_generic_but_keeps_the_dynamic_test() {
    let program = Program::build(&[("t.c", SRC)]).unwrap();
    let mut w = program.boot();
    w.set("fast_path", 1).unwrap();
    w.set("verbosity", 0).unwrap();

    let generic = w.time_calls("handle", &[5], 500, false).unwrap();
    w.commit().unwrap();
    let partial = w.time_calls("handle", &[5], 500, false).unwrap();

    // The fast_path test is gone…
    assert!(partial.avg_cycles < generic.avg_cycles);
    // …but the verbosity test still runs: loads and branches remain.
    assert!(partial.stats.loads > 0, "unbound switch still read");
    assert!(partial.stats.branches > 0, "unbound test still branches");
}
