//! Runtime telemetry for the Multiverse stack.
//!
//! This crate is the metrics counterpart of `mvtrace`: where traces
//! record *what happened in which order*, metrics record *how much of
//! it happened*, cheaply enough to leave on in production. It has no
//! dependencies and three layers:
//!
//! * a [`Registry`] of named [`Counter`]s, [`Gauge`]s and fixed-bucket
//!   [`Histogram`]s, all plain atomics. Every handle carries a shared
//!   enabled flag; when the registry is disabled a recording call is a
//!   single relaxed load and **no** store, allocation or event occurs.
//! * exporters ([`export`]) that render a [`snapshot`](Registry::snapshot)
//!   as Prometheus text exposition or a versioned JSON document, built
//!   on the dependency-free writer helpers in [`json`].
//! * the variant-residency layer ([`residency`]): a per-switch flip
//!   timeline ([`residency::SwitchHistory`]) joined with profiler cycle
//!   attribution into per-(function, variant) resident-cycle rows and a
//!   switch-transition matrix, serialized as a versioned "switch
//!   history" file for profile-guided tooling (`mvc --variant-budget`).
//!
//! # Consistency with source counters
//!
//! Subsystems that already maintain monotone counters (`PatchStats`,
//! `MvdStats`, the VM's `Stats`) mirror them into the registry with
//! [`Counter::store_max`] — an absolute, idempotent sync rather than a
//! second increment path. The registry value is therefore *defined* to
//! equal the source counter at the last sync point; the two can never
//! drift apart.

pub mod export;
pub mod json;
pub mod residency;

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One label pair attached to a metric, e.g. `("op", "flip")`.
pub type Label = (String, String);

/// A monotone counter. Cloning shares the underlying cell.
#[derive(Clone)]
pub struct Counter {
    enabled: Arc<AtomicBool>,
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`. A no-op while the registry is disabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Raises the counter to `v` if below it. This is the sync
    /// primitive for mirroring an external monotone counter: storing
    /// the source's absolute value is idempotent and keeps the registry
    /// exactly equal to the source instead of maintaining a parallel
    /// increment stream that could drift.
    #[inline]
    pub fn store_max(&self, v: u64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.cell.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A gauge: an f64 that can move both ways, stored as bits.
#[derive(Clone)]
pub struct Gauge {
    enabled: Arc<AtomicBool>,
    cell: Arc<AtomicU64>,
}

impl Gauge {
    /// Sets the gauge. A no-op while the registry is disabled.
    #[inline]
    pub fn set(&self, v: f64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.cell.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.cell.load(Ordering::Relaxed))
    }
}

struct HistogramState {
    /// Upper bounds of the finite buckets, ascending. An implicit
    /// +Inf bucket follows.
    bounds: Vec<f64>,
    /// One cell per finite bound plus the overflow bucket.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Sum of observations, f64 bits updated by CAS.
    sum: AtomicU64,
}

/// A histogram with bucket bounds fixed at registration time.
#[derive(Clone)]
pub struct Histogram {
    enabled: Arc<AtomicBool>,
    state: Arc<HistogramState>,
}

impl Histogram {
    /// Records one observation. A no-op while the registry is disabled.
    pub fn observe(&self, v: f64) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        let idx = self
            .state
            .bounds
            .iter()
            .position(|b| v <= *b)
            .unwrap_or(self.state.bounds.len());
        self.state.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.state.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = self.state.sum.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.state.sum.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Number of observations recorded.
    pub fn count(&self) -> u64 {
        self.state.count.load(Ordering::Relaxed)
    }

    /// Sum of observations recorded.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.state.sum.load(Ordering::Relaxed))
    }
}

enum Cell {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

struct Entry {
    name: String,
    help: String,
    labels: Vec<Label>,
    cell: Cell,
}

struct RegistryInner {
    enabled: Arc<AtomicBool>,
    entries: Mutex<Vec<Entry>>,
}

/// A registry of named metrics. Cloning shares the underlying store;
/// handles registered through any clone appear in every snapshot.
#[derive(Clone)]
pub struct Registry {
    inner: Arc<RegistryInner>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// A new, enabled registry.
    pub fn new() -> Self {
        Registry {
            inner: Arc::new(RegistryInner {
                enabled: Arc::new(AtomicBool::new(true)),
                entries: Mutex::new(Vec::new()),
            }),
        }
    }

    /// A new registry that starts disabled: handles can be registered
    /// and passed around, but recording through them does nothing.
    pub fn disabled() -> Self {
        let r = Self::new();
        r.set_enabled(false);
        r
    }

    /// Flips recording on or off for every handle of this registry.
    pub fn set_enabled(&self, on: bool) {
        self.inner.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether recording is currently on.
    pub fn enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Registers (or retrieves) an unlabeled counter.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_with(name, help, &[])
    }

    /// Registers a counter with labels. Re-registering the same
    /// (name, labels) pair returns a handle to the same cell.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        let labels = own_labels(labels);
        let mut entries = self.inner.entries.lock().unwrap();
        if let Some(e) = find(&entries, name, &labels) {
            match &e.cell {
                Cell::Counter(c) => return c.clone(),
                _ => panic!("metric `{name}` re-registered with a different type"),
            }
        }
        let c = Counter {
            enabled: self.inner.enabled.clone(),
            cell: Arc::new(AtomicU64::new(0)),
        };
        entries.push(Entry {
            name: name.to_string(),
            help: help.to_string(),
            labels,
            cell: Cell::Counter(c.clone()),
        });
        c
    }

    /// Registers (or retrieves) an unlabeled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.gauge_with(name, help, &[])
    }

    /// Registers a gauge with labels; dedup as for counters.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        let labels = own_labels(labels);
        let mut entries = self.inner.entries.lock().unwrap();
        if let Some(e) = find(&entries, name, &labels) {
            match &e.cell {
                Cell::Gauge(g) => return g.clone(),
                _ => panic!("metric `{name}` re-registered with a different type"),
            }
        }
        let g = Gauge {
            enabled: self.inner.enabled.clone(),
            cell: Arc::new(AtomicU64::new(0f64.to_bits())),
        };
        entries.push(Entry {
            name: name.to_string(),
            help: help.to_string(),
            labels,
            cell: Cell::Gauge(g.clone()),
        });
        g
    }

    /// Registers (or retrieves) a histogram with the given finite
    /// bucket bounds (ascending); an overflow bucket is implicit.
    pub fn histogram(&self, name: &str, help: &str, bounds: &[f64]) -> Histogram {
        self.histogram_with(name, help, bounds, &[])
    }

    /// Labeled histogram; dedup as for counters. Bounds are fixed by
    /// the first registration.
    pub fn histogram_with(
        &self,
        name: &str,
        help: &str,
        bounds: &[f64],
        labels: &[(&str, &str)],
    ) -> Histogram {
        let labels = own_labels(labels);
        let mut entries = self.inner.entries.lock().unwrap();
        if let Some(e) = find(&entries, name, &labels) {
            match &e.cell {
                Cell::Histogram(h) => return h.clone(),
                _ => panic!("metric `{name}` re-registered with a different type"),
            }
        }
        let h = Histogram {
            enabled: self.inner.enabled.clone(),
            state: Arc::new(HistogramState {
                bounds: bounds.to_vec(),
                buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0f64.to_bits()),
            }),
        };
        entries.push(Entry {
            name: name.to_string(),
            help: help.to_string(),
            labels,
            cell: Cell::Histogram(h.clone()),
        });
        h
    }

    /// A point-in-time copy of every registered metric, in
    /// registration order.
    pub fn snapshot(&self) -> Vec<Sample> {
        let entries = self.inner.entries.lock().unwrap();
        entries
            .iter()
            .map(|e| Sample {
                name: e.name.clone(),
                help: e.help.clone(),
                labels: e.labels.clone(),
                value: match &e.cell {
                    Cell::Counter(c) => SampleValue::Counter(c.get()),
                    Cell::Gauge(g) => SampleValue::Gauge(g.get()),
                    Cell::Histogram(h) => SampleValue::Histogram {
                        bounds: h.state.bounds.clone(),
                        counts: h
                            .state
                            .buckets
                            .iter()
                            .map(|b| b.load(Ordering::Relaxed))
                            .collect(),
                        count: h.count(),
                        sum: h.sum(),
                    },
                },
            })
            .collect()
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.inner.entries.lock().unwrap().len()
    }

    /// True when nothing has been registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

fn own_labels(labels: &[(&str, &str)]) -> Vec<Label> {
    labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect()
}

fn find<'a>(entries: &'a [Entry], name: &str, labels: &[Label]) -> Option<&'a Entry> {
    entries
        .iter()
        .find(|e| e.name == name && e.labels == labels)
}

/// One exported metric value.
#[derive(Clone, Debug, PartialEq)]
pub struct Sample {
    pub name: String,
    pub help: String,
    pub labels: Vec<Label>,
    pub value: SampleValue,
}

/// The value part of a [`Sample`].
#[derive(Clone, Debug, PartialEq)]
pub enum SampleValue {
    Counter(u64),
    Gauge(f64),
    /// `counts` has one entry per finite bound plus the overflow
    /// bucket; `count`/`sum` aggregate all observations.
    Histogram {
        bounds: Vec<f64>,
        counts: Vec<u64>,
        count: u64,
        sum: f64,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let r = Registry::new();
        let c = r.counter("x_total", "an x");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Dedup: same handle back.
        let c2 = r.counter("x_total", "an x");
        c2.inc();
        assert_eq!(c.get(), 6);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn store_max_is_idempotent() {
        let r = Registry::new();
        let c = r.counter("y_total", "a y");
        c.store_max(10);
        c.store_max(10);
        c.store_max(7);
        assert_eq!(c.get(), 10);
        c.store_max(12);
        assert_eq!(c.get(), 12);
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let r = Registry::disabled();
        let c = r.counter("c_total", "c");
        let g = r.gauge("g", "g");
        let h = r.histogram("h", "h", &[1.0, 2.0]);
        c.inc();
        c.add(100);
        c.store_max(100);
        g.set(3.5);
        h.observe(1.5);
        assert_eq!(c.get(), 0);
        assert_eq!(g.get(), 0.0);
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0.0);
        // Re-enabling makes the same handles live.
        r.set_enabled(true);
        c.inc();
        assert_eq!(c.get(), 1);
    }

    #[test]
    fn labeled_metrics_are_distinct() {
        let r = Registry::new();
        let a = r.counter_with("ops_total", "ops", &[("op", "flip")]);
        let b = r.counter_with("ops_total", "ops", &[("op", "nop")]);
        a.inc();
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
        assert_eq!(b.get(), 1);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn histogram_buckets() {
        let r = Registry::new();
        let h = r.histogram("lat", "latency", &[1.0, 10.0, 100.0]);
        for v in [0.5, 5.0, 50.0, 500.0, 0.9] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert!((h.sum() - 556.4).abs() < 1e-9);
        let snap = r.snapshot();
        match &snap[0].value {
            SampleValue::Histogram { counts, .. } => {
                assert_eq!(counts, &vec![2, 1, 1, 1]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn type_mismatch_panics() {
        let r = Registry::new();
        let _ = r.counter("m", "m");
        let _ = r.gauge("m", "m");
    }
}
