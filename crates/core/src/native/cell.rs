//! Dispatch cells: atomically re-bindable variant tables.

use std::sync::atomic::{AtomicUsize, Ordering};

macro_rules! mv_fn {
    ($(#[$m:meta])* $name:ident, ($($arg:ident : $ty:ident),*)) => {
        $(#[$m])*
        #[derive(Debug)]
        pub struct $name<$($ty: 'static,)* R: 'static> {
            variants: &'static [fn($($ty),*) -> R],
            idx: AtomicUsize,
        }

        impl<$($ty,)* R> $name<$($ty,)* R> {
            /// Creates a cell over a static variant table. Index 0 is the
            /// *generic* variant and the initial binding.
            ///
            /// # Panics
            ///
            /// At call/bind time if the table is empty.
            pub const fn new(variants: &'static [fn($($ty),*) -> R]) -> Self {
                Self { variants, idx: AtomicUsize::new(0) }
            }

            /// Calls the currently bound variant: one relaxed load plus an
            /// indirect call — the §7.2 function-pointer cost.
            #[inline]
            pub fn call(&self, $($arg: $ty),*) -> R {
                (self.variants[self.idx.load(Ordering::Relaxed)])($($arg),*)
            }

            /// Binds variant `i`. This is the per-cell commit.
            ///
            /// # Panics
            ///
            /// If `i` is out of range — a bad selector is a logic bug and
            /// must not silently dispatch to the wrong specialist.
            pub fn bind(&self, i: usize) {
                assert!(i < self.variants.len(), "variant index {i} out of range");
                self.idx.store(i, Ordering::Release);
            }

            /// Re-binds the generic variant (index 0).
            pub fn revert(&self) {
                self.idx.store(0, Ordering::Release);
            }

            /// Currently bound variant index.
            pub fn bound(&self) -> usize {
                self.idx.load(Ordering::Relaxed)
            }

            /// Number of variants.
            pub fn len(&self) -> usize {
                self.variants.len()
            }

            /// `true` if the table is empty (an unusable cell).
            pub fn is_empty(&self) -> bool {
                self.variants.is_empty()
            }
        }
    };
}

mv_fn!(
    /// A dispatch cell for `fn() -> R`.
    MvFn0,
    ()
);
mv_fn!(
    /// A dispatch cell for `fn(A) -> R`.
    MvFn1,
    (a: A)
);
mv_fn!(
    /// A dispatch cell for `fn(A, B) -> R`.
    MvFn2,
    (a: A, b: B)
);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::native::MvBool;
    use std::sync::atomic::{AtomicU64, Ordering};

    static FEATURE: MvBool = MvBool::new(false);

    fn generic() -> u64 {
        if FEATURE.read() {
            1
        } else {
            0
        }
    }
    fn spec<const ON: bool>() -> u64 {
        if ON {
            1
        } else {
            0
        }
    }

    static CELL: MvFn0<u64> = MvFn0::new(&[generic, spec::<false>, spec::<true>]);

    #[test]
    fn bind_and_call() {
        FEATURE.write(true);
        assert_eq!(CELL.bound(), 0);
        assert_eq!(CELL.call(), 1, "generic reads the switch");
        CELL.bind(1);
        assert_eq!(CELL.call(), 0, "bound specialist ignores the switch");
        CELL.bind(2);
        assert_eq!(CELL.call(), 1);
        CELL.revert();
        assert_eq!(CELL.bound(), 0);
        FEATURE.write(false);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_bind_panics() {
        static C: MvFn0<u64> = MvFn0::new(&[generic]);
        C.bind(5);
    }

    #[test]
    fn cells_with_arguments() {
        fn add(a: u64, b: u64) -> u64 {
            a + b
        }
        fn mul(a: u64, b: u64) -> u64 {
            a * b
        }
        static OP: MvFn2<u64, u64, u64> = MvFn2::new(&[add, mul]);
        assert_eq!(OP.call(3, 4), 7);
        OP.bind(1);
        assert_eq!(OP.call(3, 4), 12);
        OP.revert();
    }

    #[test]
    fn concurrent_calls_during_rebind_are_safe() {
        // Completeness analog: every call sees either the old or the new
        // binding, never anything else.
        fn a() -> u64 {
            1
        }
        fn b() -> u64 {
            2
        }
        static HOT: MvFn0<u64> = MvFn0::new(&[a, b]);
        static SUM: AtomicU64 = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..10_000 {
                        let v = HOT.call();
                        assert!(v == 1 || v == 2);
                        SUM.fetch_add(v, Ordering::Relaxed);
                    }
                });
            }
            s.spawn(|| {
                for i in 0..1000 {
                    HOT.bind(i % 2);
                }
            });
        });
        HOT.revert();
        assert!(SUM.load(Ordering::Relaxed) >= 40_000);
    }
}
