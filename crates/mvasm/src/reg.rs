//! General-purpose register file of MV64.

use core::fmt;

/// A general-purpose register (`r0`..`r15`).
///
/// The register roles under the standard calling convention (see
/// [`crate::cc`]):
///
/// * `r0`..`r5` — argument registers, caller-saved; `r0` carries the return
///   value.
/// * `r6`..`r11` — callee-saved.
/// * `r12`, `r13` — caller-saved scratch.
/// * `r14` — frame pointer (`bp`), callee-saved.
/// * `r15` — stack pointer (`sp`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(u8);

impl Reg {
    /// Number of general-purpose registers.
    pub const COUNT: usize = 16;

    /// Return-value / first-argument register.
    pub const R0: Reg = Reg(0);
    /// Second argument register.
    pub const R1: Reg = Reg(1);
    /// Third argument register.
    pub const R2: Reg = Reg(2);
    /// Fourth argument register.
    pub const R3: Reg = Reg(3);
    /// Fifth argument register.
    pub const R4: Reg = Reg(4);
    /// Sixth argument register.
    pub const R5: Reg = Reg(5);
    /// First callee-saved register.
    pub const R6: Reg = Reg(6);
    /// Callee-saved register.
    pub const R7: Reg = Reg(7);
    /// Callee-saved register.
    pub const R8: Reg = Reg(8);
    /// Callee-saved register.
    pub const R9: Reg = Reg(9);
    /// Callee-saved register.
    pub const R10: Reg = Reg(10);
    /// Callee-saved register.
    pub const R11: Reg = Reg(11);
    /// Caller-saved scratch register.
    pub const R12: Reg = Reg(12);
    /// Caller-saved scratch register.
    pub const R13: Reg = Reg(13);
    /// Frame pointer.
    pub const BP: Reg = Reg(14);
    /// Stack pointer.
    pub const SP: Reg = Reg(15);

    /// Creates a register from its index.
    ///
    /// Returns [`None`] if `idx` is not in `0..16`.
    pub const fn new(idx: u8) -> Option<Reg> {
        if idx < Self::COUNT as u8 {
            Some(Reg(idx))
        } else {
            None
        }
    }

    /// The register's index in `0..16`.
    ///
    /// The mask is the identity for every constructible `Reg` (all
    /// constructors reject indices ≥ 16); it exists so register-file
    /// accesses indexed by it compile without a bounds check.
    pub const fn index(self) -> usize {
        (self.0 & 0xf) as usize
    }

    /// Raw encoding byte.
    pub const fn raw(self) -> u8 {
        self.0
    }

    /// All sixteen registers, in index order.
    pub fn all() -> impl Iterator<Item = Reg> {
        (0..Self::COUNT as u8).map(Reg)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Reg::BP => write!(f, "bp"),
            Reg::SP => write!(f, "sp"),
            Reg(n) => write!(f, "r{n}"),
        }
    }
}

impl fmt::Debug for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_rejects_out_of_range() {
        assert!(Reg::new(15).is_some());
        assert!(Reg::new(16).is_none());
        assert!(Reg::new(255).is_none());
    }

    #[test]
    fn display_names() {
        assert_eq!(Reg::R0.to_string(), "r0");
        assert_eq!(Reg::R13.to_string(), "r13");
        assert_eq!(Reg::BP.to_string(), "bp");
        assert_eq!(Reg::SP.to_string(), "sp");
    }

    #[test]
    fn all_yields_sixteen_distinct() {
        let v: Vec<Reg> = Reg::all().collect();
        assert_eq!(v.len(), 16);
        for (i, r) in v.iter().enumerate() {
            assert_eq!(r.index(), i);
        }
    }
}
