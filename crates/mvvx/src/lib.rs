#![warn(missing_docs)]
//! MVVX — variational execution over MV64 programs.
//!
//! The enumerate-and-rerun proof of the Multiverse correctness story
//! costs one full run per configuration: linear in the (exponential)
//! switch cross product. Variational execution (Wong et al., "Faster
//! Variational Execution with Transparent Bytecode Transformation")
//! runs *all* configurations in a single pass instead: machine state is
//! shared until it provably depends on a switch, execution **splits**
//! when a switch-derived value reaches a conditional branch, and the
//! split contexts **re-join** at the call boundary once their residual
//! differences can be folded back into per-switch values.
//!
//! The moving parts:
//!
//! * [`config`] — the configuration space: per-switch domains recovered
//!   from the loaded image's guard descriptors, mixed-radix leaf
//!   indexing, and the compact [`config::LeafSet`] bitmask every
//!   context is keyed by.
//! * [`value`] — the semi-symbolic value lattice: a register or memory
//!   byte is either [`value::Val::Concrete`] or a tabulated function of
//!   exactly **one** switch ([`value::Val::PerValue`]). Values that
//!   would depend on two switches at once force a materializing split
//!   first, so the invariant is cheap to maintain and joins stay
//!   decidable.
//! * [`engine`] — the interpreter: a shared base [`mvvm::Memory`] image
//!   plus per-context register/overlay deltas, branch-outcome splitting
//!   (contexts split into at most two arms, grouping domain values by
//!   outcome), and sibling re-join when split contexts return to their
//!   common caller with differences expressible over the split switch.
//! * [`metrics`] — the `mv_vexec_*` counter family for the
//!   [`mvmetrics::Registry`].
//!
//! What is *not* modeled — and why bailing out is sound: cycle costs,
//! predictor state and `rdtsc` values are configuration-dependent in
//! ways the shared pass deliberately does not track ([`engine`] refuses
//! `rdtsc` with [`engine::VexecError::Unsupported`]). Any question
//! about timing must fall back to enumeration; questions about
//! architectural results (registers, memory, output bytes, exit values)
//! are answered exactly, per leaf configuration.

pub mod config;
pub mod engine;
pub mod metrics;
pub mod value;

pub use config::{ConfigSpace, LeafSet, SpaceError, SwitchDomain};
pub use engine::{Vexec, VexecError, VexecLeaf, VexecOptions, VexecReport, VexecStats};
pub use metrics::VexecMetrics;
pub use value::Val;
