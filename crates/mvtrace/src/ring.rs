//! The bounded event ring.
//!
//! One ring is owned by one emitter (the runtime that records into it),
//! so recording is a plain push with drop-oldest overflow — no lock is
//! ever taken. The only cross-ring coordination point, the sequence
//! counter, is a process-global lock-free atomic, so two runtimes
//! tracing in the same process never contend and their interleaved
//! streams still carry a total order.
//!
//! Timestamps are host-monotonic nanoseconds since the ring's creation
//! (`Instant`-based, so they never go backwards). The guest's own
//! deterministic clock is the VM's TSC; host timestamps here measure
//! what the paper measures in §6.1 — wall time of the patching runtime.

use crate::event::{Event, EventKind};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Hard capacity ceiling: a ring never buffers more than this many
/// events, whatever capacity was requested.
pub const MAX_RING_CAP: usize = 1 << 16;

/// Process-global sequence counter (lock-free; see module docs).
static SEQ: AtomicU64 = AtomicU64::new(0);

/// A bounded ring of [`Event`]s with drop-oldest overflow.
#[derive(Debug)]
pub struct TraceRing {
    epoch: Instant,
    buf: VecDeque<Event>,
    cap: usize,
    dropped: u64,
}

impl TraceRing {
    /// Creates a ring keeping the last `cap` events. `cap` is clamped
    /// to `1..=`[`MAX_RING_CAP`]; the clamped value is what bounds the
    /// ring *and* what was allocated — the two never diverge.
    pub fn new(cap: usize) -> TraceRing {
        let cap = cap.clamp(1, MAX_RING_CAP);
        TraceRing {
            epoch: Instant::now(),
            buf: VecDeque::with_capacity(cap),
            cap,
            dropped: 0,
        }
    }

    /// Records one event, stamping it with the next global sequence
    /// number and the current host timestamp. Returns the sequence
    /// number. Oldest events are dropped (and counted) once the ring is
    /// full.
    pub fn record(&mut self, kind: EventKind) -> u64 {
        let seq = SEQ.fetch_add(1, Ordering::Relaxed);
        let ts_ns = self.epoch.elapsed().as_nanos() as u64;
        if self.buf.len() == self.cap {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(Event { seq, ts_ns, kind });
        seq
    }

    /// The buffered events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.buf.iter()
    }

    /// Copies the buffered events out, oldest first.
    pub fn snapshot(&self) -> Vec<Event> {
        self.buf.iter().copied().collect()
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` if nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The capacity bound actually in effect (post-clamp).
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Events dropped to overflow since creation.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Drops all buffered events (the drop counter keeps accumulating;
    /// cleared events are not counted as dropped).
    pub fn clear(&mut self) {
        self.buf.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Phase;

    #[test]
    fn seq_is_globally_monotonic_across_rings() {
        let mut a = TraceRing::new(8);
        let mut b = TraceRing::new(8);
        let s1 = a.record(EventKind::CommitBegin { op: "commit" });
        let s2 = b.record(EventKind::CommitBegin { op: "revert" });
        let s3 = a.record(EventKind::CommitEnd { ok: true });
        assert!(s1 < s2 && s2 < s3);
    }

    #[test]
    fn overflow_drops_oldest_and_counts() {
        let mut r = TraceRing::new(2);
        for i in 0..5 {
            r.record(EventKind::Retry { attempt: i });
        }
        assert_eq!(r.len(), 2);
        assert_eq!(r.dropped(), 3);
        let attempts: Vec<u32> = r
            .events()
            .map(|e| match e.kind {
                EventKind::Retry { attempt } => attempt,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(attempts, vec![3, 4]);
        // Sequence numbers stay strictly increasing across the drop.
        let seqs: Vec<u64> = r.events().map(|e| e.seq).collect();
        assert!(seqs.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn cap_is_clamped_honestly() {
        let r = TraceRing::new(usize::MAX);
        assert_eq!(r.capacity(), MAX_RING_CAP);
        let r = TraceRing::new(0);
        assert_eq!(r.capacity(), 1);
    }

    #[test]
    fn timestamps_never_regress() {
        let mut r = TraceRing::new(16);
        for _ in 0..10 {
            r.record(EventKind::PhaseBegin { phase: Phase::Plan });
        }
        let ts: Vec<u64> = r.events().map(|e| e.ts_ns).collect();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]));
    }
}
