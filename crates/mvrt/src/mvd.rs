//! `mvd` — a fault-tolerant commit control plane over [`SmpMachine`].
//!
//! The quiesce layer ([`crate::quiesce`]) answers "how do I run *one*
//! commit safely while vCPUs execute". This module answers the next
//! question a long-running system asks: what does the *driver* of those
//! commits look like when flips arrive faster than commits complete,
//! when some commits fault persistently, and when a quiesce protocol
//! stops converging on a degraded machine?
//!
//! [`CommitDaemon`] is that driver, deliberately built as a plain
//! deterministic state machine (no threads, no clocks): the host decides
//! when to [`CommitDaemon::step`] it, so every schedule is replayable
//! under a [`mvvm::FaultPlan`]. It owns:
//!
//! * **Queued commits with coalescing.** Requests land in two lanes
//!   (normal and priority — reverts and security flips preempt feature
//!   flips). N pending flips of the same switch collapse into one
//!   queued commit whose waiters all share the outcome; the flip value
//!   is last-writer-wins, exactly like a memory cell. A priority
//!   request coalescing onto a queued normal entry *escalates* it.
//! * **Deadlines.** Admission stamps the daemon's epoch; an entry whose
//!   ttl elapses before it is popped is shed un-run. Epochs advance one
//!   per processed entry, so deadlines are deterministic.
//! * **Retry with backoff.** Each attempt runs under the daemon's
//!   [`RetryPolicy`] (installed into the runtime for the duration of
//!   the attempt, restored after), so transient patch faults heal with
//!   jittered exponential backoff charged to
//!   [`crate::PatchTiming::backoff`].
//! * **Quarantine.** An operation that faults
//!   [`MvdConfig::quarantine_after`] times *consecutively* is parked
//!   with its full [`RtError`] chain instead of wedging the queue;
//!   later requests for it fail fast at submit until it is
//!   [`CommitDaemon::release`]d.
//! * **Graceful degradation.** Under [`CommitStrategy::Breakpoint`],
//!   after [`MvdConfig::degrade_after`] breakpoint failures within one
//!   request the daemon falls back to [`CommitStrategy::StopMachine`]
//!   for that commit — correctness over latency — and emits
//!   `strategy_degraded`. While degraded, the first attempt of each new
//!   request probes breakpoint again; a probe success heals the daemon
//!   back to its configured protocol.
//! * **Backpressure.** The queue is bounded: when full, the oldest
//!   normal-lane entry is shed (its waiters see [`MvdOutcome::Shed`]);
//!   if only priority entries remain, the *new* request is rejected.
//!
//! The watchdog story is layered: the quiesce protocols already bound
//! their rendezvous/drain rounds, the retry policy bounds attempts, and
//! the daemon bounds queue depth and entry lifetime (deadlines) — so no
//! single faulting assignment can stall the control plane forever.
//!
//! Every decision point is traced ([`EventKind::QueueAdmit`],
//! [`EventKind::Coalesced`], [`EventKind::Shed`],
//! [`EventKind::Quarantined`], [`EventKind::StrategyDegraded`]) through
//! the runtime's ring, so a truncated post-mortem trace still shows
//! *why* a flip never landed.

use crate::error::RtError;
use crate::quiesce::{CommitStrategy, QuiesceOp, QuiesceReport};
use crate::runtime::Runtime;
use crate::txn::RetryPolicy;
use mvmetrics::residency::SwitchHistory;
use mvmetrics::{Counter, Gauge, Registry};
use mvtrace::EventKind;
use mvvm::SmpMachine;
use std::collections::{HashMap, VecDeque};

/// Ticket handed back by [`CommitDaemon::submit`]; outcomes are
/// retrieved by id from [`CommitDaemon::take_completions`].
pub type RequestId = u64;

/// Which queue a request lands in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Lane {
    /// Ordinary feature flips: FIFO, shed first under backpressure.
    Normal,
    /// Reverts and security flips: popped before any normal entry,
    /// never shed to make room.
    Priority,
}

impl Lane {
    /// Stable lane name as it appears in `queue_admit` trace events.
    pub fn name(self) -> &'static str {
        match self {
            Lane::Normal => "normal",
            Lane::Priority => "priority",
        }
    }
}

/// What a queued request asks the control plane to commit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MvdOp {
    /// Set the switch at `switch` to `value`, then commit its
    /// referencing functions (`multiverse_commit_refs`).
    Flip {
        /// Address of the configuration switch.
        switch: u64,
        /// New value; last writer wins under coalescing.
        value: i64,
    },
    /// Whole-image `multiverse_commit()`.
    CommitAll,
    /// Whole-image `multiverse_revert()`.
    RevertAll,
}

impl MvdOp {
    /// The key reported in trace events: the switch address for flips,
    /// 0 for whole-image operations.
    pub fn key(self) -> u64 {
        match self {
            MvdOp::Flip { switch, .. } => switch,
            MvdOp::CommitAll | MvdOp::RevertAll => 0,
        }
    }

    /// Coalescing identity: two requests merge iff they are the same
    /// kind of operation on the same switch. The flip *value* is
    /// excluded — that is exactly what last-writer-wins overwrites.
    fn coalesce_key(self) -> (u8, u64) {
        match self {
            MvdOp::Flip { switch, .. } => (0, switch),
            MvdOp::CommitAll => (1, 0),
            MvdOp::RevertAll => (2, 0),
        }
    }
}

/// Tuning knobs of the control plane.
#[derive(Clone, Copy, Debug)]
pub struct MvdConfig {
    /// Bound on queued entries across both lanes. When full, the
    /// oldest normal entry is shed; if none exists, new requests are
    /// rejected.
    pub capacity: usize,
    /// Commit attempts per processed entry before it is reported
    /// failed (at least 1 is always run).
    pub max_attempts: u32,
    /// Consecutive failed attempts (across entries, per operation)
    /// after which the operation is quarantined. Should exceed
    /// [`MvdConfig::degrade_after`], or a breakpoint-only fault will
    /// quarantine before the stop-machine fallback gets its turn.
    pub quarantine_after: u32,
    /// Breakpoint-quiesce failures within one request after which the
    /// daemon falls back to stop-machine for that commit. Only
    /// meaningful when [`MvdConfig::strategy`] is
    /// [`CommitStrategy::Breakpoint`].
    pub degrade_after: u32,
    /// Default entry lifetime in epochs (0 = entries never expire).
    /// One epoch elapses per processed entry.
    pub default_ttl: u64,
    /// Preferred quiesce protocol.
    pub strategy: CommitStrategy,
    /// Transaction-level retry/backoff installed for the duration of
    /// each attempt.
    pub retry: RetryPolicy,
}

impl Default for MvdConfig {
    fn default() -> Self {
        MvdConfig {
            capacity: 64,
            max_attempts: 3,
            quarantine_after: 3,
            degrade_after: 2,
            default_ttl: 0,
            strategy: CommitStrategy::default(),
            retry: RetryPolicy::default(),
        }
    }
}

/// How a request ended.
#[derive(Clone, Debug)]
pub enum MvdOutcome {
    /// The commit landed; the report is shared by every coalesced
    /// waiter.
    Committed(QuiesceReport),
    /// Every attempt failed; the final error (with its `source()`
    /// chain) is attached.
    Failed(RtError),
    /// The operation is quarantined — either it was parked while this
    /// request waited, or the request failed fast at submit. The
    /// triggering error lives in the [`QuarantineEntry`].
    Quarantined,
    /// Shed by backpressure before running.
    Shed,
    /// Its deadline elapsed before it was popped.
    Expired,
    /// Rejected at submit: the queue was full of priority entries.
    Rejected,
}

impl MvdOutcome {
    /// `true` for [`MvdOutcome::Committed`].
    pub fn is_committed(&self) -> bool {
        matches!(self, MvdOutcome::Committed(_))
    }
}

/// A finished request: the ticket, what it asked for, and how it ended.
#[derive(Clone, Debug)]
pub struct Completion {
    /// Ticket returned by the submit call.
    pub id: RequestId,
    /// The operation as it ran (a coalesced flip carries the winning
    /// value, which may differ from what this waiter submitted).
    pub op: MvdOp,
    /// How it ended.
    pub outcome: MvdOutcome,
}

/// A parked operation and the evidence that parked it.
#[derive(Clone, Debug)]
pub struct QuarantineEntry {
    /// The operation (with the last value it tried, for flips).
    pub op: MvdOp,
    /// Consecutive failed attempts at parking time.
    pub failures: u32,
    /// The final error; its [`std::error::Error::source`] chain names
    /// the commit phase and root cause.
    pub error: RtError,
    /// Daemon epoch when it was parked.
    pub since_epoch: u64,
}

/// Control-plane counters, all monotone.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MvdStats {
    /// Requests submitted (every submit call).
    pub submitted: u64,
    /// Requests that created a new queue entry.
    pub admitted: u64,
    /// Requests merged into an already-queued entry.
    pub coalesced: u64,
    /// Entries shed by backpressure.
    pub shed: u64,
    /// Entries shed because their deadline elapsed.
    pub expired: u64,
    /// Requests rejected because the queue was full of priority
    /// entries.
    pub rejected: u64,
    /// Requests failed fast against an existing quarantine.
    pub fast_failed: u64,
    /// Entries that committed.
    pub committed: u64,
    /// Entries that exhausted their attempts.
    pub failed: u64,
    /// Operations parked in quarantine.
    pub quarantined: u64,
    /// Breakpoint→stop-machine fallbacks taken.
    pub degraded: u64,
    /// Degraded-mode exits (a breakpoint probe succeeded again).
    pub healed: u64,
    /// Individual commit attempts run.
    pub attempts: u64,
}

/// A registered counter plus the `MvdStats` field it mirrors.
type StatCounter = (Counter, fn(&MvdStats) -> u64);

/// Registered handles for the `mv_mvd_*` metric family: one counter
/// per [`MvdStats`] field, a queue-depth gauge and a coalescing-ratio
/// gauge.
///
/// The counters are synced from the daemon's own [`MvdStats`] with
/// `store_max` after every submit and step — the registry mirrors the
/// single source of truth instead of maintaining a second increment
/// stream, so the two can never disagree.
pub struct MvdMetrics {
    counters: [StatCounter; 13],
    queue_depth: Gauge,
    coalesce_ratio: Gauge,
}

impl std::fmt::Debug for MvdMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MvdMetrics").finish_non_exhaustive()
    }
}

impl MvdMetrics {
    /// Registers the control-plane metric family in `registry`.
    pub fn new(registry: &Registry) -> MvdMetrics {
        let c =
            |name: &str, help: &str, get: fn(&MvdStats) -> u64| (registry.counter(name, help), get);
        MvdMetrics {
            counters: [
                c("mv_mvd_submitted_total", "Requests submitted", |s| {
                    s.submitted
                }),
                c(
                    "mv_mvd_admitted_total",
                    "Requests that created a queue entry",
                    |s| s.admitted,
                ),
                c(
                    "mv_mvd_coalesced_total",
                    "Requests merged into a queued entry",
                    |s| s.coalesced,
                ),
                c("mv_mvd_shed_total", "Entries shed by backpressure", |s| {
                    s.shed
                }),
                c(
                    "mv_mvd_expired_total",
                    "Entries expired past their deadline",
                    |s| s.expired,
                ),
                c(
                    "mv_mvd_rejected_total",
                    "Requests rejected by a priority-full queue",
                    |s| s.rejected,
                ),
                c(
                    "mv_mvd_fast_failed_total",
                    "Requests failed fast against quarantine",
                    |s| s.fast_failed,
                ),
                c("mv_mvd_committed_total", "Entries committed", |s| {
                    s.committed
                }),
                c(
                    "mv_mvd_failed_total",
                    "Entries that exhausted their attempts",
                    |s| s.failed,
                ),
                c(
                    "mv_mvd_quarantined_total",
                    "Operations parked in quarantine",
                    |s| s.quarantined,
                ),
                c(
                    "mv_mvd_degraded_total",
                    "Breakpoint-to-stop-machine fallbacks",
                    |s| s.degraded,
                ),
                c(
                    "mv_mvd_healed_total",
                    "Degraded-mode exits by probe success",
                    |s| s.healed,
                ),
                c("mv_mvd_attempts_total", "Commit attempts run", |s| {
                    s.attempts
                }),
            ],
            queue_depth: registry.gauge(
                "mv_mvd_queue_depth",
                "Entries waiting across both daemon lanes",
            ),
            coalesce_ratio: registry.gauge(
                "mv_mvd_coalesce_ratio",
                "Fraction of submitted requests merged into queued entries",
            ),
        }
    }

    /// Syncs the registry to the daemon's counters (absolute,
    /// idempotent).
    fn sync(&self, stats: &MvdStats, pending: usize) {
        for (counter, get) in &self.counters {
            counter.store_max(get(stats));
        }
        self.queue_depth.set(pending as f64);
        let ratio = if stats.submitted == 0 {
            0.0
        } else {
            stats.coalesced as f64 / stats.submitted as f64
        };
        self.coalesce_ratio.set(ratio);
    }
}

/// A queued entry: one pending commit and everyone waiting on it.
#[derive(Clone, Debug)]
struct Entry {
    op: MvdOp,
    waiters: Vec<RequestId>,
    /// Absolute epoch after which the entry is expired, if any.
    deadline: Option<u64>,
}

/// The commit control plane. See the module docs for the protocol; see
/// `tests/mvd_chaos.rs` for the fault-sweep proof obligations.
///
/// The daemon holds no machine state — the runtime and SMP machine are
/// borrowed per call — so a host embeds it next to whatever owns the
/// world (e.g. `SmpWorld` in the `multiverse` crate).
#[derive(Debug, Default)]
pub struct CommitDaemon {
    config: MvdConfig,
    normal: VecDeque<Entry>,
    priority: VecDeque<Entry>,
    quarantine: HashMap<(u8, u64), QuarantineEntry>,
    /// Consecutive failed attempts per operation, reset by any success.
    consecutive: HashMap<(u8, u64), u32>,
    completions: Vec<Completion>,
    stats: MvdStats,
    /// Advances once per processed entry; the clock deadlines run on.
    epoch: u64,
    next_id: RequestId,
    /// Set while breakpoint quiesce is considered broken; cleared by a
    /// successful breakpoint probe.
    degraded: bool,
    /// Registry mirror of [`MvdStats`], synced after every submit and
    /// step (see [`CommitDaemon::enable_metrics`]).
    metrics: Option<MvdMetrics>,
    /// Switch flip timeline, recorded at the single point an entry
    /// commits (see [`CommitDaemon::enable_history`]).
    history: Option<SwitchHistory>,
}

impl CommitDaemon {
    /// A daemon with the given tuning.
    pub fn new(config: MvdConfig) -> CommitDaemon {
        CommitDaemon {
            config,
            ..CommitDaemon::default()
        }
    }

    /// Queued entries across both lanes.
    pub fn pending(&self) -> usize {
        self.normal.len() + self.priority.len()
    }

    /// Current epoch (entries processed so far).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Counter snapshot.
    pub fn stats(&self) -> MvdStats {
        self.stats
    }

    /// `true` while the daemon routes commits away from its configured
    /// breakpoint protocol.
    pub fn degraded(&self) -> bool {
        self.degraded
    }

    /// The tuning this daemon runs with.
    pub fn config(&self) -> &MvdConfig {
        &self.config
    }

    /// Parked operations, in no particular order.
    pub fn quarantined(&self) -> impl Iterator<Item = &QuarantineEntry> {
        self.quarantine.values()
    }

    /// `true` if requests for this operation currently fail fast.
    pub fn is_quarantined(&self, op: MvdOp) -> bool {
        self.quarantine.contains_key(&op.coalesce_key())
    }

    /// Releases a parked operation (an operator acknowledged the fault
    /// and wants the control plane to try again), returning the
    /// evidence. Also forgets its consecutive-failure count.
    pub fn release(&mut self, op: MvdOp) -> Option<QuarantineEntry> {
        let ck = op.coalesce_key();
        self.consecutive.remove(&ck);
        self.quarantine.remove(&ck)
    }

    /// Drains every finished request recorded since the last call.
    pub fn take_completions(&mut self) -> Vec<Completion> {
        std::mem::take(&mut self.completions)
    }

    /// Registers the `mv_mvd_*` metric family in `registry` and keeps
    /// it synced with [`MvdStats`] after every submit and step. The
    /// sync stores absolute values, so the registry and
    /// [`CommitDaemon::stats`] can never disagree.
    pub fn enable_metrics(&mut self, registry: &Registry) {
        let m = MvdMetrics::new(registry);
        m.sync(&self.stats, self.pending());
        self.metrics = Some(m);
    }

    /// Installs a [`SwitchHistory`] (with its switches already
    /// registered). From now on every *committed* flip entry records
    /// one timeline event — coalesced waiters share the single entry,
    /// so the history's flip count equals the number of committed flip
    /// commits, not the number of submitted requests.
    pub fn enable_history(&mut self, history: SwitchHistory) {
        self.history = Some(history);
    }

    /// The flip timeline recorded so far, if enabled.
    pub fn history(&self) -> Option<&SwitchHistory> {
        self.history.as_ref()
    }

    /// Detaches and returns the flip timeline.
    pub fn take_history(&mut self) -> Option<SwitchHistory> {
        self.history.take()
    }

    /// Submits with the configured default ttl. Returns the ticket;
    /// the outcome appears in [`CommitDaemon::take_completions`] once
    /// decided (immediately, for fast-fail/reject).
    pub fn submit(&mut self, rt: &mut Runtime, op: MvdOp, lane: Lane) -> RequestId {
        let ttl = match self.config.default_ttl {
            0 => None,
            t => Some(t),
        };
        self.submit_with_ttl(rt, op, lane, ttl)
    }

    /// Submits with an explicit per-request ttl (`None` = never
    /// expires), overriding [`MvdConfig::default_ttl`].
    pub fn submit_with_ttl(
        &mut self,
        rt: &mut Runtime,
        op: MvdOp,
        lane: Lane,
        ttl: Option<u64>,
    ) -> RequestId {
        let id = self.submit_inner(rt, op, lane, ttl);
        self.sync_metrics();
        id
    }

    fn submit_inner(
        &mut self,
        rt: &mut Runtime,
        op: MvdOp,
        lane: Lane,
        ttl: Option<u64>,
    ) -> RequestId {
        let id = self.next_id;
        self.next_id += 1;
        self.stats.submitted += 1;

        // Fail fast against quarantine: the queue never wedges behind
        // an operation known to fault.
        if self.is_quarantined(op) {
            self.stats.fast_failed += 1;
            self.completions.push(Completion {
                id,
                op,
                outcome: MvdOutcome::Quarantined,
            });
            return id;
        }

        let deadline = ttl.map(|t| self.epoch + t);
        if self.coalesce(rt, op, lane, id, deadline) {
            return id;
        }

        // Admission under backpressure: shed the oldest normal entry,
        // or reject the newcomer if only priority work is queued.
        if self.pending() >= self.config.capacity.max(1) {
            match self.normal.pop_front() {
                Some(old) => {
                    self.stats.shed += 1;
                    rt.emit(|| EventKind::Shed { key: old.op.key() });
                    self.complete_all(old, MvdOutcome::Shed);
                }
                None => {
                    self.stats.rejected += 1;
                    self.completions.push(Completion {
                        id,
                        op,
                        outcome: MvdOutcome::Rejected,
                    });
                    return id;
                }
            }
        }

        self.stats.admitted += 1;
        rt.emit(|| EventKind::QueueAdmit {
            lane: lane.name(),
            key: op.key(),
        });
        let entry = Entry {
            op,
            waiters: vec![id],
            deadline,
        };
        match lane {
            Lane::Normal => self.normal.push_back(entry),
            Lane::Priority => self.priority.push_back(entry),
        }
        id
    }

    /// Merges `op` into an already-queued entry for the same
    /// operation, if one exists. Last writer wins for flip values; a
    /// priority submit escalates a normal entry; the later deadline
    /// wins (a fresh request keeps the merged entry alive).
    fn coalesce(
        &mut self,
        rt: &mut Runtime,
        op: MvdOp,
        lane: Lane,
        id: RequestId,
        deadline: Option<u64>,
    ) -> bool {
        let ck = op.coalesce_key();
        let in_priority = self.priority.iter().position(|e| e.op.coalesce_key() == ck);
        let in_normal = self.normal.iter().position(|e| e.op.coalesce_key() == ck);
        let entry = match (in_priority, in_normal) {
            (Some(i), _) => &mut self.priority[i],
            (None, Some(i)) => &mut self.normal[i],
            (None, None) => return false,
        };
        entry.op = op;
        entry.waiters.push(id);
        entry.deadline = match (entry.deadline, deadline) {
            (Some(a), Some(b)) => Some(a.max(b)),
            _ => None,
        };
        let waiters = entry.waiters.len() as u64;
        self.stats.coalesced += 1;
        rt.emit(|| EventKind::Coalesced {
            key: op.key(),
            waiters,
        });
        if lane == Lane::Priority {
            if let Some(i) = in_normal {
                if in_priority.is_none() {
                    let escalated = self.normal.remove(i).expect("index from position");
                    self.priority.push_back(escalated);
                }
            }
        }
        true
    }

    /// Processes the next queued entry (priority lane first). Returns
    /// `false` when both lanes are empty. One call advances the epoch
    /// by one.
    pub fn step(&mut self, rt: &mut Runtime, smp: &mut SmpMachine) -> bool {
        let progressed = self.step_inner(rt, smp);
        if progressed {
            self.sync_metrics();
        }
        progressed
    }

    fn step_inner(&mut self, rt: &mut Runtime, smp: &mut SmpMachine) -> bool {
        let Some(entry) = self
            .priority
            .pop_front()
            .or_else(|| self.normal.pop_front())
        else {
            return false;
        };
        self.epoch += 1;
        if entry.deadline.is_some_and(|d| self.epoch > d) {
            self.stats.expired += 1;
            rt.emit(|| EventKind::Shed {
                key: entry.op.key(),
            });
            self.complete_all(entry, MvdOutcome::Expired);
            return true;
        }
        // An earlier entry this pump may have quarantined the
        // operation after this request was admitted.
        if self.is_quarantined(entry.op) {
            self.stats.fast_failed += 1;
            self.complete_all(entry, MvdOutcome::Quarantined);
            return true;
        }
        self.process(rt, smp, entry);
        true
    }

    /// Steps until both lanes are empty; returns entries processed.
    /// The queue always drains: every attempt is bounded by the
    /// quiesce round budget and the retry policy, and persistent
    /// faulters leave through quarantine.
    pub fn drain(&mut self, rt: &mut Runtime, smp: &mut SmpMachine) -> usize {
        let mut n = 0;
        while self.step(rt, smp) {
            n += 1;
        }
        n
    }

    /// Runs one entry's attempt ladder to an outcome.
    fn process(&mut self, rt: &mut Runtime, smp: &mut SmpMachine, entry: Entry) {
        let ck = entry.op.coalesce_key();
        let mut consecutive = self.consecutive.get(&ck).copied().unwrap_or(0);
        let mut bp_failures = 0u32;
        let mut degraded_this_entry = false;
        let mut last_err: Option<RtError> = None;
        let mut attempts_left = self.config.max_attempts.max(1);

        while attempts_left > 0 && consecutive < self.config.quarantine_after.max(1) {
            attempts_left -= 1;
            self.stats.attempts += 1;
            let strategy = self.pick_strategy(rt, bp_failures, &mut degraded_this_entry);
            match Self::run_once(&self.config, rt, smp, entry.op, strategy) {
                Ok(report) => {
                    self.consecutive.remove(&ck);
                    if degraded_this_entry {
                        // Landed via the fallback: breakpoint is
                        // considered broken until a probe heals it.
                        self.degraded = true;
                    } else if self.degraded && strategy == self.config.strategy {
                        // The heal probe succeeded on the configured
                        // protocol: leave degraded mode.
                        self.degraded = false;
                        self.stats.healed += 1;
                    }
                    self.stats.committed += 1;
                    // The single point a flip lands: one timeline
                    // entry per committed flip, regardless of how many
                    // waiters coalesced onto it — so the history's
                    // flip count reconciles exactly with the committed
                    // counter.
                    if let MvdOp::Flip { switch, value } = entry.op {
                        if let Some(h) = self.history.as_mut() {
                            h.record_flip(switch, value, self.epoch, self.stats.committed);
                        }
                    }
                    self.complete_all(entry, MvdOutcome::Committed(report));
                    return;
                }
                Err(e) => {
                    consecutive += 1;
                    if strategy == CommitStrategy::Breakpoint {
                        bp_failures += 1;
                    }
                    last_err = Some(e);
                }
            }
        }

        self.consecutive.insert(ck, consecutive);
        self.stats.failed += 1;
        let err = last_err.expect("at least one attempt ran");
        if consecutive >= self.config.quarantine_after.max(1) {
            self.stats.quarantined += 1;
            rt.emit(|| EventKind::Quarantined {
                key: entry.op.key(),
                failures: u64::from(consecutive),
            });
            self.quarantine.insert(
                ck,
                QuarantineEntry {
                    op: entry.op,
                    failures: consecutive,
                    error: err.clone(),
                    since_epoch: self.epoch,
                },
            );
        }
        self.complete_all(entry, MvdOutcome::Failed(err));
    }

    /// Chooses the protocol for the next attempt and emits
    /// `strategy_degraded` on the first fallback of an entry.
    ///
    /// With a stop-machine configuration this is the identity. Under
    /// breakpoint: fall back once `degrade_after` breakpoint attempts
    /// of this entry failed, or — while the daemon is already degraded
    /// — as soon as the entry's single probe attempt failed.
    fn pick_strategy(
        &mut self,
        rt: &mut Runtime,
        bp_failures: u32,
        degraded_this_entry: &mut bool,
    ) -> CommitStrategy {
        if self.config.strategy != CommitStrategy::Breakpoint {
            return self.config.strategy;
        }
        let fall_back =
            bp_failures >= self.config.degrade_after.max(1) || (self.degraded && bp_failures >= 1);
        if !fall_back {
            return CommitStrategy::Breakpoint;
        }
        if !*degraded_this_entry {
            *degraded_this_entry = true;
            self.stats.degraded += 1;
            rt.emit(|| EventKind::StrategyDegraded {
                from: CommitStrategy::Breakpoint.name(),
                to: CommitStrategy::StopMachine.name(),
            });
        }
        CommitStrategy::StopMachine
    }

    /// One attempt: write the flip value (if any) and run the quiesced
    /// transaction under the daemon's retry policy.
    fn run_once(
        config: &MvdConfig,
        rt: &mut Runtime,
        smp: &mut SmpMachine,
        op: MvdOp,
        strategy: CommitStrategy,
    ) -> Result<QuiesceReport, RtError> {
        let saved = rt.retry;
        rt.retry = config.retry;
        let result = match op {
            MvdOp::Flip { switch, value } => rt
                .write_switch(&mut smp.machine, switch, value)
                .and_then(|()| rt.run_quiesced(smp, QuiesceOp::CommitRefs(switch), strategy)),
            MvdOp::CommitAll => rt.run_quiesced(smp, QuiesceOp::Commit, strategy),
            MvdOp::RevertAll => rt.run_quiesced(smp, QuiesceOp::Revert, strategy),
        };
        rt.retry = saved;
        result
    }

    /// Pushes the current counters into the registry, if enabled.
    fn sync_metrics(&mut self) {
        if let Some(m) = &self.metrics {
            m.sync(&self.stats, self.normal.len() + self.priority.len());
        }
    }

    /// Records the same outcome for every waiter of an entry.
    fn complete_all(&mut self, entry: Entry, outcome: MvdOutcome) {
        let op = entry.op;
        for id in entry.waiters {
            self.completions.push(Completion {
                id,
                op,
                outcome: outcome.clone(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalesce_identity_ignores_flip_value_but_not_kind() {
        let a = MvdOp::Flip {
            switch: 0x9000,
            value: 1,
        };
        let b = MvdOp::Flip {
            switch: 0x9000,
            value: 7,
        };
        let c = MvdOp::Flip {
            switch: 0x9008,
            value: 1,
        };
        assert_eq!(a.coalesce_key(), b.coalesce_key());
        assert_ne!(a.coalesce_key(), c.coalesce_key());
        assert_ne!(
            MvdOp::CommitAll.coalesce_key(),
            MvdOp::RevertAll.coalesce_key()
        );
        assert_ne!(a.coalesce_key(), MvdOp::CommitAll.coalesce_key());
    }

    #[test]
    fn event_keys_and_lane_names_are_stable() {
        assert_eq!(
            MvdOp::Flip {
                switch: 0x9000,
                value: 1
            }
            .key(),
            0x9000
        );
        assert_eq!(MvdOp::CommitAll.key(), 0);
        assert_eq!(Lane::Normal.name(), "normal");
        assert_eq!(Lane::Priority.name(), "priority");
    }

    #[test]
    fn defaults_keep_quarantine_above_degradation() {
        let c = MvdConfig::default();
        assert!(c.quarantine_after > c.degrade_after);
        assert!(c.capacity >= 2);
        assert_eq!(c.default_ttl, 0, "entries do not expire unless asked");
        assert!(!MvdOutcome::Shed.is_committed());
    }
}
