//! Abstract syntax tree of MVC.

use crate::token::Pos;
use crate::types::{EnumDef, Type};

/// Attributes on declarations.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Attrs {
    /// Declared with the `multiverse` attribute.
    pub multiverse: bool,
    /// Explicit switch domain: `multiverse(v1, v2, …)`.
    pub domain: Option<Vec<i64>>,
    /// Partial specialization (§2/§7.1): `multiverse(bind(a, b))` on a
    /// function restricts variant generation to the listed switches;
    /// other referenced switches stay dynamically evaluated inside the
    /// variants.
    pub bind: Option<Vec<String>>,
    /// Function uses the PV-Ops all-callee-saved calling convention.
    pub pvop_cc: bool,
    /// `extern` — declaration only, defined in another translation unit.
    pub is_extern: bool,
    /// `static` — local to this translation unit.
    pub is_static: bool,
}

/// A top-level item.
#[derive(Clone, Debug)]
pub enum Item {
    /// Global variable (or array) declaration/definition.
    Global(Global),
    /// Function declaration/definition.
    Func(Func),
    /// Enum declaration.
    Enum(EnumDef),
}

/// A global variable.
#[derive(Clone, Debug)]
pub struct Global {
    /// Name.
    pub name: String,
    /// Element type.
    pub ty: Type,
    /// Array length (`None` for scalars).
    pub array: Option<u64>,
    /// Initializer (constant expression or `&function`).
    pub init: Option<Expr>,
    /// Attributes.
    pub attrs: Attrs,
    /// Source position.
    pub pos: Pos,
}

/// A function.
#[derive(Clone, Debug)]
pub struct Func {
    /// Name.
    pub name: String,
    /// Return type.
    pub ret: Type,
    /// Parameters.
    pub params: Vec<(String, Type)>,
    /// Body (`None` for a declaration).
    pub body: Option<Block>,
    /// Attributes.
    pub attrs: Attrs,
    /// Source position.
    pub pos: Pos,
}

/// A `{}` block.
#[derive(Clone, Debug, Default)]
pub struct Block {
    /// Statements in order.
    pub stmts: Vec<Stmt>,
}

/// A statement.
#[derive(Clone, Debug)]
pub enum Stmt {
    /// Local variable declaration with optional initializer.
    Local {
        /// Name.
        name: String,
        /// Type.
        ty: Type,
        /// Initializer.
        init: Option<Expr>,
        /// Position.
        pos: Pos,
    },
    /// Expression statement (calls, assignments).
    Expr(Expr),
    /// `if` / `else`.
    If {
        /// Condition.
        cond: Expr,
        /// Then-branch.
        then: Block,
        /// Else-branch.
        els: Option<Block>,
    },
    /// `while` loop.
    While {
        /// Condition.
        cond: Expr,
        /// Body.
        body: Block,
    },
    /// `for` loop.
    For {
        /// Init statement.
        init: Option<Box<Stmt>>,
        /// Condition (default true).
        cond: Option<Expr>,
        /// Step expression.
        step: Option<Expr>,
        /// Body.
        body: Block,
    },
    /// `return`.
    Return(Option<Expr>),
    /// `break`.
    Break(Pos),
    /// `continue`.
    Continue(Pos),
    /// Nested block.
    Block(Block),
}

/// Binary operators.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[allow(missing_docs)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    LogAnd,
    LogOr,
}

/// Unary operators.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[allow(missing_docs)]
pub enum UnOp {
    Neg,
    Not,
    BitNot,
}

/// An expression.
#[derive(Clone, Debug)]
pub enum Expr {
    /// Integer literal.
    Int(i64, Pos),
    /// Variable reference (local, parameter, global, or enumerator).
    Ident(String, Pos),
    /// Unary operation.
    Un(UnOp, Box<Expr>, Pos),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>, Pos),
    /// Assignment `lhs = rhs` (lhs: ident or index).
    Assign(Box<Expr>, Box<Expr>, Pos),
    /// Direct or indirect call.
    Call {
        /// Callee name (function or `fnptr` global).
        callee: String,
        /// Arguments.
        args: Vec<Expr>,
        /// Position.
        pos: Pos,
    },
    /// Intrinsic call (`__xchg`, `__cli`, …).
    Intrinsic {
        /// Intrinsic name (with the leading underscores).
        name: String,
        /// Arguments.
        args: Vec<Expr>,
        /// Position.
        pos: Pos,
    },
    /// Array/pointer indexing `base[idx]`.
    Index(Box<Expr>, Box<Expr>, Pos),
    /// `&name` — address of a global or function.
    AddrOf(String, Pos),
}

impl Expr {
    /// Source position of the expression.
    pub fn pos(&self) -> Pos {
        match self {
            Expr::Int(_, p)
            | Expr::Ident(_, p)
            | Expr::Un(_, _, p)
            | Expr::Bin(_, _, _, p)
            | Expr::Assign(_, _, p)
            | Expr::Call { pos: p, .. }
            | Expr::Intrinsic { pos: p, .. }
            | Expr::Index(_, _, p)
            | Expr::AddrOf(_, p) => *p,
        }
    }
}

/// A parsed translation unit.
#[derive(Clone, Debug, Default)]
pub struct Unit {
    /// Items in source order.
    pub items: Vec<Item>,
}
