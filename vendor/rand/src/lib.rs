//! Offline shim for the subset of `rand` 0.8 this workspace uses.
//!
//! Provides a deterministic 64-bit PRNG (xoshiro256** seeded via
//! SplitMix64, the same construction `rand`'s `StdRng` documentation
//! permits — the exact stream is unspecified upstream, only determinism
//! per seed is promised, which this shim honors).

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges usable with [`Rng::gen_range`]. The impls are blanket over
/// `T: UniformInt` (like upstream's single generic impl) so that type
/// inference can flow from the range's element type to the result type.
pub trait SampleRange<T> {
    /// Bounds as an inclusive `(low, high)` pair.
    fn bounds(&self) -> (T, T);
}

impl<T: UniformInt> SampleRange<T> for std::ops::Range<T> {
    fn bounds(&self) -> (T, T) {
        assert!(self.start < self.end, "empty range");
        (self.start, self.end.dec())
    }
}

impl<T: UniformInt> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn bounds(&self) -> (T, T) {
        assert!(self.start() <= self.end(), "empty range");
        (*self.start(), *self.end())
    }
}

/// The user-facing generator interface (subset).
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniformly samples from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: UniformInt,
        R: SampleRange<T>,
    {
        let (lo, hi) = range.bounds();
        T::sample_inclusive(self.next_u64(), lo, hi)
    }

    /// A uniformly random `bool`.
    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

/// Integer types uniformly sampleable from raw bits.
pub trait UniformInt: Copy + PartialOrd {
    /// Maps `bits` into `[lo, hi]` (inclusive), close enough to uniform
    /// for workload generation.
    fn sample_inclusive(bits: u64, lo: Self, hi: Self) -> Self;
    /// `self - 1` (callers guarantee no underflow).
    fn dec(self) -> Self;
}

macro_rules! impl_uniform_unsigned {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn sample_inclusive(bits: u64, lo: $t, hi: $t) -> $t {
                let span = (hi as u128) - (lo as u128) + 1;
                lo + ((bits as u128 % span) as $t)
            }
            fn dec(self) -> $t {
                self - 1
            }
        }
    )*};
}
impl_uniform_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_uniform_signed {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn sample_inclusive(bits: u64, lo: $t, hi: $t) -> $t {
                let span = (hi as i128) - (lo as i128) + 1;
                (lo as i128 + (bits as i128).rem_euclid(span)) as $t
            }
            fn dec(self) -> $t {
                self - 1
            }
        }
    )*};
}
impl_uniform_signed!(i8, i16, i32, i64, isize);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    /// The standard deterministic generator (xoshiro256**).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn next(&mut self) -> u64 {
            let r = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            r
        }
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion of the seed into the full state.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl crate::Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.next()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: usize = r.gen_range(8..=16);
            assert!((8..=16).contains(&v));
            let w: usize = r.gen_range(0..16);
            assert!(w < 16);
            let s: i64 = r.gen_range(-6i64..6);
            assert!((-6..6).contains(&s));
        }
    }

    #[test]
    fn full_domain_sampling_does_not_overflow() {
        let mut r = StdRng::seed_from_u64(2);
        let _: u64 = r.gen_range(0..=u64::MAX);
        let _: i64 = r.gen_range(i64::MIN..=i64::MAX);
    }
}
