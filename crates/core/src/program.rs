//! The end-to-end facade: compile → link → load → attach runtime.

use mvc::Options;
use mvobj::Executable;
use mvrt::{
    CommitDaemon, CommitReport, CommitStrategy, Lane, MvdOp, QuiesceOp, QuiesceReport, RequestId,
    RtError, Runtime,
};
use mvvm::{CostModel, Fault, Machine, MachineConfig, SmpMachine, Stats};
use std::fmt;

/// Errors from building or driving a program.
#[derive(Debug)]
pub enum BuildError {
    /// Compilation or linking failed.
    Compile(mvc::CompileError),
    /// Execution faulted.
    Fault(Fault),
    /// The runtime library reported an error.
    Rt(RtError),
    /// A symbol was not found in the image.
    NoSymbol(String),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::Compile(e) => write!(f, "{e}"),
            BuildError::Fault(e) => write!(f, "{e}"),
            BuildError::Rt(e) => write!(f, "{e}"),
            BuildError::NoSymbol(s) => write!(f, "no symbol `{s}`"),
        }
    }
}

impl std::error::Error for BuildError {}

impl From<mvc::CompileError> for BuildError {
    fn from(e: mvc::CompileError) -> Self {
        BuildError::Compile(e)
    }
}
impl From<Fault> for BuildError {
    fn from(e: Fault) -> Self {
        BuildError::Fault(e)
    }
}
impl From<RtError> for BuildError {
    fn from(e: RtError) -> Self {
        BuildError::Rt(e)
    }
}
impl From<mvvm::MemError> for BuildError {
    fn from(e: mvvm::MemError) -> Self {
        BuildError::Fault(Fault::Mem(e))
    }
}

/// A compiled and linked MVC program.
#[derive(Clone)]
pub struct Program {
    exe: Executable,
    warnings: Vec<mvc::Warning>,
    multiversed: bool,
}

impl Program {
    /// Compiles `units` with default (multiverse) options.
    pub fn build(units: &[(&str, &str)]) -> Result<Program, BuildError> {
        Program::build_with(units, &Options::default())
    }

    /// Compiles `units` with explicit options (e.g. [`Options::dynamic`]
    /// for the binding-B baseline or [`Options::static_build`] for the
    /// `#ifdef` binding A).
    pub fn build_with(units: &[(&str, &str)], opts: &Options) -> Result<Program, BuildError> {
        let (exe, warnings) = mvc::compile_and_link(units, opts)?;
        Ok(Program {
            exe,
            warnings,
            multiversed: opts.multiverse,
        })
    }

    /// Compiles `units` through a caller-provided [`mvc::Pipeline`], so
    /// the caller keeps the per-stage timings, counters and (if enabled)
    /// the compile-stage trace — the backing of `mvcc build --timings`
    /// and `--stats`.
    pub fn build_with_pipeline(
        units: &[(&str, &str)],
        pipeline: &mut mvc::Pipeline,
        multiversed: bool,
    ) -> Result<Program, BuildError> {
        let (exe, warnings) = pipeline.build(units)?;
        Ok(Program {
            exe,
            warnings,
            multiversed,
        })
    }

    /// The linked executable.
    pub fn exe(&self) -> &Executable {
        &self.exe
    }

    /// Compiler warnings (switch writes inside multiversed functions, …).
    pub fn warnings(&self) -> &[mvc::Warning] {
        &self.warnings
    }

    /// Total image size in bytes (for the §6.1 size accounting).
    pub fn image_size(&self) -> u64 {
        self.exe.image_size()
    }

    /// Boots a default machine (native, unicore, default cost model).
    pub fn boot(&self) -> World {
        self.boot_with(CostModel::default(), MachineConfig::default())
    }

    /// Boots with explicit cost model and machine configuration
    /// (multicore, Xen guest, …).
    pub fn boot_with(&self, cost: CostModel, config: MachineConfig) -> World {
        let mut machine = Machine::new(cost, config);
        machine.load(&self.exe);
        let rt = if self.multiversed {
            Runtime::attach(&machine, &self.exe).ok()
        } else {
            None
        };
        World {
            machine,
            rt,
            exe: self.exe.clone(),
            vm_metrics: None,
        }
    }

    /// Boots an [`SmpMachine`] with `n` vCPUs sharing one loaded image
    /// (multicore mode, private sticky instruction caches) and attaches
    /// the multiverse runtime to it. Commits against a running SMP
    /// world must quiesce — see [`SmpWorld::commit_quiesced`].
    pub fn boot_smp(&self, n: usize) -> SmpWorld {
        let smp = SmpMachine::boot(&self.exe, n);
        let rt = if self.multiversed {
            Runtime::attach(&smp.machine, &self.exe).ok()
        } else {
            None
        };
        SmpWorld {
            smp,
            rt,
            exe: self.exe.clone(),
            vm_metrics: None,
        }
    }
}

/// A booted program: machine + attached multiverse runtime.
pub struct World {
    /// The virtual machine.
    pub machine: Machine,
    /// The multiverse runtime (absent in dynamic/static builds).
    pub rt: Option<Runtime>,
    exe: Executable,
    pub(crate) vm_metrics: Option<mvvm::VmMetrics>,
}

/// Timing result from [`World::time_calls`].
#[derive(Clone, Copy, Debug)]
pub struct Timing {
    /// Average cycles per call.
    pub avg_cycles: f64,
    /// Total cycles for all calls.
    pub total_cycles: u64,
    /// Event-counter delta across the measurement.
    pub stats: Stats,
}

impl World {
    /// The loaded executable image.
    pub fn exe(&self) -> &Executable {
        &self.exe
    }

    /// Address of a symbol.
    pub fn sym(&self, name: &str) -> Result<u64, BuildError> {
        self.exe
            .symbol(name)
            .ok_or_else(|| BuildError::NoSymbol(name.to_string()))
    }

    /// Calls a function by name with register arguments; returns `r0`.
    pub fn call(&mut self, name: &str, args: &[u64]) -> Result<u64, BuildError> {
        let addr = self.sym(name)?;
        Ok(self.machine.call(addr, args)?)
    }

    /// Installs a runtime backend by CLI name (`mv64`, `native`): moves
    /// the machine to the backend's preferred execution tier and runs an
    /// immediate reconcile so the tier is live before the next call, not
    /// only after the next commit. Unknown names report an error; without
    /// an attached runtime only the tier change applies.
    pub fn set_backend(&mut self, name: &str) -> Result<(), BuildError> {
        let backend = mvrt::backend::parse(name)
            .ok_or_else(|| BuildError::NoSymbol(format!("backend `{name}`")))?;
        if let Some(tier) = backend.preferred_tier() {
            self.machine.set_tier(tier);
        }
        if let Some(rt) = self.rt.as_mut() {
            rt.set_backend(backend);
            rt.sync_backend(&mut self.machine);
        }
        Ok(())
    }

    /// Reads a global (width/signedness per its type where described,
    /// else 8 bytes unsigned).
    pub fn get(&self, name: &str) -> Result<i64, BuildError> {
        let addr = self.sym(name)?;
        if let Some(rt) = &self.rt {
            if let Ok(v) = rt.read_switch(&self.machine, addr) {
                return Ok(v);
            }
        }
        Ok(self.machine.mem.read_int(addr, 8, false)?)
    }

    /// Writes a global configuration switch (or plain 8-byte global).
    pub fn set(&mut self, name: &str, value: i64) -> Result<(), BuildError> {
        let addr = self.sym(name)?;
        if let Some(rt) = &self.rt {
            if rt.write_switch(&mut self.machine, addr, value).is_ok() {
                return Ok(());
            }
        }
        self.machine.mem.write_int(addr, value as u64, 8)?;
        Ok(())
    }

    /// `multiverse_commit()`.
    pub fn commit(&mut self) -> Result<CommitReport, BuildError> {
        let rt = self.rt.as_mut().ok_or({
            BuildError::Rt(RtError::UnknownFunction(0)) // no runtime attached
        })?;
        Ok(rt.commit(&mut self.machine)?)
    }

    /// `multiverse_revert()`.
    pub fn revert(&mut self) -> Result<CommitReport, BuildError> {
        let rt = self
            .rt
            .as_mut()
            .ok_or(BuildError::Rt(RtError::UnknownFunction(0)))?;
        Ok(rt.revert(&mut self.machine)?)
    }

    /// `multiverse_commit_refs(&var)` by switch name.
    pub fn commit_refs(&mut self, var: &str) -> Result<CommitReport, BuildError> {
        let addr = self.sym(var)?;
        let rt = self
            .rt
            .as_mut()
            .ok_or(BuildError::Rt(RtError::UnknownVariable(addr)))?;
        Ok(rt.commit_refs(&mut self.machine, addr)?)
    }

    /// `multiverse_commit_func(&fn)` by function name.
    pub fn commit_func(&mut self, func: &str) -> Result<CommitReport, BuildError> {
        let addr = self.sym(func)?;
        let rt = self
            .rt
            .as_mut()
            .ok_or(BuildError::Rt(RtError::UnknownFunction(addr)))?;
        Ok(rt.commit_func(&mut self.machine, addr)?)
    }

    /// Current cycle count.
    pub fn cycles(&self) -> u64 {
        self.machine.cycles()
    }

    /// Calls `name` `n` times and reports average cycles per call plus
    /// event deltas — the microbenchmark harness of §6 (tight loop, warm
    /// predictors; pass `cold_predictors` to flush between calls for the
    /// footnote-1 scenario).
    pub fn time_calls(
        &mut self,
        name: &str,
        args: &[u64],
        n: u64,
        cold_predictors: bool,
    ) -> Result<Timing, BuildError> {
        let addr = self.sym(name)?;
        // Warm-up round so one-time predictor training is excluded, as in
        // the paper's repeated-sample methodology.
        self.machine.call(addr, args)?;
        if cold_predictors {
            self.machine.flush_predictors();
        }
        let stats0 = self.machine.stats;
        let c0 = self.machine.cycles();
        for _ in 0..n {
            if cold_predictors {
                self.machine.flush_predictors();
            }
            self.machine.call(addr, args)?;
        }
        let total = self.machine.cycles() - c0;
        Ok(Timing {
            avg_cycles: total as f64 / n as f64,
            total_cycles: total,
            stats: self.machine.stats.since(&stats0),
        })
    }
}

/// A booted SMP program: N vCPUs over one shared image, plus the
/// attached multiverse runtime for quiesced commits.
pub struct SmpWorld {
    /// The SMP machine (vCPUs, scheduler, shared memory).
    pub smp: SmpMachine,
    /// The multiverse runtime (absent in dynamic/static builds).
    pub rt: Option<Runtime>,
    exe: Executable,
    pub(crate) vm_metrics: Option<mvvm::VmMetrics>,
}

impl SmpWorld {
    /// The loaded executable image.
    pub fn exe(&self) -> &Executable {
        &self.exe
    }

    /// Address of a symbol.
    pub fn sym(&self, name: &str) -> Result<u64, BuildError> {
        self.exe
            .symbol(name)
            .ok_or_else(|| BuildError::NoSymbol(name.to_string()))
    }

    /// Number of vCPUs.
    pub fn vcpus(&self) -> usize {
        self.smp.vcpus()
    }

    /// Installs a runtime backend by CLI name, like [`World::set_backend`].
    /// Under SMP the native tier defers to the block engine whenever a
    /// vCPU's sticky instruction cache is active, so this only changes
    /// patch policy and post-commit bookkeeping, never SMP semantics.
    pub fn set_backend(&mut self, name: &str) -> Result<(), BuildError> {
        let backend = mvrt::backend::parse(name)
            .ok_or_else(|| BuildError::NoSymbol(format!("backend `{name}`")))?;
        if let Some(tier) = backend.preferred_tier() {
            self.smp.machine.set_tier(tier);
        }
        if let Some(rt) = self.rt.as_mut() {
            rt.set_backend(backend);
            rt.sync_backend(&mut self.smp.machine);
        }
        Ok(())
    }

    /// Spawns function `name` on vCPU `i` with register arguments.
    pub fn spawn(&mut self, i: usize, name: &str, args: &[u64]) -> Result<(), BuildError> {
        let addr = self.sym(name)?;
        Ok(self.smp.spawn(i, addr, args)?)
    }

    /// Spawns function `name` on *every* vCPU with the same arguments.
    pub fn spawn_all(&mut self, name: &str, args: &[u64]) -> Result<(), BuildError> {
        for i in 0..self.smp.vcpus() {
            self.spawn(i, name, args)?;
        }
        Ok(())
    }

    /// Runs scheduler rounds until every spawned vCPU finishes; returns
    /// the per-vCPU results.
    pub fn run(&mut self, max_rounds: u64) -> Result<Vec<u64>, BuildError> {
        Ok(self.smp.run_until_done(max_rounds)?)
    }

    /// Reads a global (switch-aware, like [`World::get`]).
    pub fn get(&self, name: &str) -> Result<i64, BuildError> {
        let addr = self.sym(name)?;
        if let Some(rt) = &self.rt {
            if let Ok(v) = rt.read_switch(&self.smp.machine, addr) {
                return Ok(v);
            }
        }
        Ok(self.smp.machine.mem.read_int(addr, 8, false)?)
    }

    /// Writes a global configuration switch (or plain 8-byte global).
    /// Writing a switch is always safe concurrently — only *commits*
    /// rewrite text and need quiescing.
    pub fn set(&mut self, name: &str, value: i64) -> Result<(), BuildError> {
        let addr = self.sym(name)?;
        if let Some(rt) = &self.rt {
            if rt.write_switch(&mut self.smp.machine, addr, value).is_ok() {
                return Ok(());
            }
        }
        self.smp.machine.mem.write_int(addr, value as u64, 8)?;
        Ok(())
    }

    /// `multiverse_commit()` while the vCPUs are running, quiesced under
    /// `strategy`.
    pub fn commit_quiesced(
        &mut self,
        strategy: CommitStrategy,
    ) -> Result<QuiesceReport, BuildError> {
        let rt = self
            .rt
            .as_mut()
            .ok_or(BuildError::Rt(RtError::UnknownFunction(0)))?;
        Ok(rt.commit_quiesced(&mut self.smp, strategy)?)
    }

    /// `multiverse_revert()` under quiesce.
    pub fn revert_quiesced(
        &mut self,
        strategy: CommitStrategy,
    ) -> Result<QuiesceReport, BuildError> {
        let rt = self
            .rt
            .as_mut()
            .ok_or(BuildError::Rt(RtError::UnknownFunction(0)))?;
        Ok(rt.revert_quiesced(&mut self.smp, strategy)?)
    }

    /// `multiverse_commit_refs(&var)` by switch name, under quiesce.
    pub fn commit_refs_quiesced(
        &mut self,
        var: &str,
        strategy: CommitStrategy,
    ) -> Result<QuiesceReport, BuildError> {
        let addr = self.sym(var)?;
        let rt = self
            .rt
            .as_mut()
            .ok_or(BuildError::Rt(RtError::UnknownVariable(addr)))?;
        Ok(rt.run_quiesced(&mut self.smp, QuiesceOp::CommitRefs(addr), strategy)?)
    }

    /// Machine-wide event-counter roll-up across every vCPU.
    pub fn total_stats(&self) -> Stats {
        self.smp.total_stats()
    }

    /// Submits a flip of the named switch to an [`mvrt::mvd`] commit
    /// daemon, resolving the symbol to its address.
    pub fn submit_flip(
        &mut self,
        daemon: &mut CommitDaemon,
        switch: &str,
        value: i64,
        lane: Lane,
    ) -> Result<RequestId, BuildError> {
        let addr = self.sym(switch)?;
        let rt = self
            .rt
            .as_mut()
            .ok_or(BuildError::Rt(RtError::UnknownVariable(addr)))?;
        Ok(daemon.submit(
            rt,
            MvdOp::Flip {
                switch: addr,
                value,
            },
            lane,
        ))
    }

    /// Submits a whole-image operation ([`MvdOp::CommitAll`] or
    /// [`MvdOp::RevertAll`]) to a commit daemon.
    pub fn submit_op(
        &mut self,
        daemon: &mut CommitDaemon,
        op: MvdOp,
        lane: Lane,
    ) -> Result<RequestId, BuildError> {
        let rt = self
            .rt
            .as_mut()
            .ok_or(BuildError::Rt(RtError::UnknownFunction(0)))?;
        Ok(daemon.submit(rt, op, lane))
    }

    /// Processes one queued daemon entry against this world. Returns
    /// `false` when the queue is empty.
    pub fn step_daemon(&mut self, daemon: &mut CommitDaemon) -> Result<bool, BuildError> {
        let rt = self
            .rt
            .as_mut()
            .ok_or(BuildError::Rt(RtError::UnknownFunction(0)))?;
        Ok(daemon.step(rt, &mut self.smp))
    }

    /// Drains the daemon's queue against this world; returns entries
    /// processed.
    pub fn drain_daemon(&mut self, daemon: &mut CommitDaemon) -> Result<usize, BuildError> {
        let rt = self
            .rt
            .as_mut()
            .ok_or(BuildError::Rt(RtError::UnknownFunction(0)))?;
        Ok(daemon.drain(rt, &mut self.smp))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = r#"
        multiverse bool feature;
        multiverse i64 work(void) {
            if (feature) { return 10; }
            return 20;
        }
        i64 main(void) { return work(); }
    "#;

    #[test]
    fn facade_quickstart_flow() {
        let p = Program::build(&[("t", SRC)]).unwrap();
        let mut w = p.boot();
        assert_eq!(w.call("work", &[]).unwrap(), 20);
        w.set("feature", 1).unwrap();
        let report = w.commit().unwrap();
        assert_eq!(report.variants_committed, 1);
        assert_eq!(w.call("work", &[]).unwrap(), 10);
        w.revert().unwrap();
        assert_eq!(w.call("work", &[]).unwrap(), 10, "switch still 1");
    }

    #[test]
    fn committed_variant_is_faster_than_generic() {
        let p = Program::build(&[("t", SRC)]).unwrap();
        let mut w = p.boot();
        w.set("feature", 0).unwrap();
        let generic = w.time_calls("work", &[], 1000, false).unwrap();
        w.commit().unwrap();
        let committed = w.time_calls("work", &[], 1000, false).unwrap();
        assert!(
            committed.avg_cycles < generic.avg_cycles,
            "committed {} !< generic {}",
            committed.avg_cycles,
            generic.avg_cycles
        );
        // The specialized variant performs no loads (the switch read is
        // gone) and fewer branches.
        assert_eq!(committed.stats.loads, 0);
        assert!(committed.stats.branches < generic.stats.branches);
    }

    #[test]
    fn dynamic_build_has_no_runtime() {
        let p = Program::build_with(&[("t", SRC)], &Options::dynamic()).unwrap();
        let mut w = p.boot();
        assert!(w.rt.is_none());
        assert!(w.commit().is_err());
        assert_eq!(w.call("work", &[]).unwrap(), 20);
    }

    #[test]
    fn image_size_grows_with_multiverse() {
        let mv = Program::build(&[("t", SRC)]).unwrap();
        let dy = Program::build_with(&[("t", SRC)], &Options::dynamic()).unwrap();
        assert!(
            mv.image_size() > dy.image_size(),
            "variants + descriptors must cost space ({} vs {})",
            mv.image_size(),
            dy.image_size()
        );
    }

    const SMP_SRC: &str = r#"
        multiverse bool feature;
        multiverse i64 work(void) {
            if (feature) { return 10; }
            return 20;
        }
        i64 worker(i64 iters) {
            i64 acc = 0;
            while (iters > 0) { acc = acc + work(); iters = iters - 1; }
            return acc;
        }
        i64 main(void) { return worker(4); }
    "#;

    #[test]
    fn smp_world_runs_and_commits_quiesced() {
        for strategy in [CommitStrategy::StopMachine, CommitStrategy::Breakpoint] {
            let p = Program::build(&[("t", SMP_SRC)]).unwrap();
            let mut w = p.boot_smp(4);
            w.spawn_all("worker", &[200]).unwrap();
            // Let the workers get going, then flip the switch and commit
            // mid-flight.
            for _ in 0..3 {
                w.smp.step_round();
            }
            w.set("feature", 1).unwrap();
            let report = w.commit_quiesced(strategy).unwrap();
            assert_eq!(report.strategy, strategy);
            assert!(report.commit.variants_committed >= 1);
            let results = w.run(1_000_000).unwrap();
            assert_eq!(results.len(), 4);
            for r in results {
                // Every worker sums 200 calls; each call returned 20
                // before the commit landed and 10 after.
                assert!((200 * 10..=200 * 20).contains(&r), "sum {r} out of range");
                assert_eq!(r % 10, 0);
            }
        }
    }

    #[test]
    fn missing_symbol_is_reported() {
        let p = Program::build(&[("t", SRC)]).unwrap();
        let mut w = p.boot();
        assert!(matches!(w.call("nope", &[]), Err(BuildError::NoSymbol(_))));
    }
}
