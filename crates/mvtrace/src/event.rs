//! The typed event taxonomy.
//!
//! Events are deliberately small and `Copy`: every payload is a fixed
//! set of addresses/counters plus `&'static str` labels, so recording
//! one is a store into the ring, never an allocation. The taxonomy
//! mirrors the transactional commit engine: a commit opens a span, each
//! attempt walks the plan → validate → apply phases, point events mark
//! individual text patches, and the failure path (fault → rollback →
//! retry) is first-class rather than inferred.

use std::fmt;

/// A phase of the two-phase (plus planning) transactional commit.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Action-list construction and variant selection (read-only).
    Plan,
    /// Read-only re-checks of everything apply will rely on.
    Validate,
    /// The journaled write pass.
    Apply,
}

impl Phase {
    /// Stable lowercase name, used by every exporter.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Plan => "plan",
            Phase::Validate => "validate",
            Phase::Apply => "apply",
        }
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// What happened.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A transactional operation started (`op` is the Table 1 entry
    /// point: `commit`, `revert`, `commit_refs`, …).
    CommitBegin {
        /// Name of the public operation.
        op: &'static str,
    },
    /// The operation finished; `ok` is its overall outcome after all
    /// retry attempts.
    CommitEnd {
        /// `true` if the operation succeeded.
        ok: bool,
    },
    /// A phase of the current attempt started.
    PhaseBegin {
        /// Which phase.
        phase: Phase,
    },
    /// A phase finished. `ok = false` means the phase failed and the
    /// attempt is over (apply failures additionally carry
    /// [`EventKind::FaultObserved`]/[`EventKind::Rollback`] before this).
    PhaseEnd {
        /// Which phase.
        phase: Phase,
        /// Whether the phase succeeded.
        ok: bool,
    },
    /// A call site was rewritten to a direct call.
    SitePatched {
        /// Call-site address.
        site: u64,
        /// New call target.
        target: u64,
    },
    /// A call site was restored to its original bytes.
    SiteRestored {
        /// Call-site address.
        site: u64,
    },
    /// A variant body was inlined over a call site (Fig. 3 c).
    Inlined {
        /// Call-site address.
        site: u64,
        /// Entry address of the inlined variant body.
        variant: u64,
    },
    /// The completeness entry jump was written over a generic prologue.
    EntryJumpWritten {
        /// Generic entry address.
        function: u64,
        /// Committed variant the jump targets.
        variant: u64,
    },
    /// A saved generic prologue was written back (revert path).
    PrologueRestored {
        /// Generic entry address.
        function: u64,
    },
    /// An apply-phase write faulted. `what` classifies the root cause;
    /// `addr` is the faulting address when known (0 otherwise).
    FaultObserved {
        /// Faulting address, 0 if unknown.
        addr: u64,
        /// Root-cause class: `protection-fault`, `icache-stale`, `error`.
        what: &'static str,
    },
    /// The journal was replayed after an apply failure; the image is
    /// byte-identical to its pre-commit state again.
    Rollback {
        /// Undo-log entries restored.
        entries: u64,
    },
    /// A transient failure is being retried; `attempt` is 1-based.
    Retry {
        /// Which retry this is (1 = first re-attempt).
        attempt: u32,
    },
    /// Delta planning found a function (or function-pointer switch)
    /// already in its selected state, verified it, and planned no action
    /// for it — the commit fast path.
    ActionSkipped {
        /// Generic entry (or pointer-switch address) left untouched.
        function: u64,
        /// Call sites covered by the skip.
        sites: u64,
    },
    /// A page-batched apply phase closed its RW windows: every journaled
    /// write of the transaction went through one window per touched page,
    /// with one icache flush per page.
    PageBatch {
        /// Distinct text pages whose window was opened.
        pages: u64,
        /// Journaled writes performed inside the batch.
        writes: u64,
    },
    /// A named stage of the compiler's staged pipeline started
    /// (`lower`, `mv-expand`, `optimize`, `merge`, `codegen`).
    StageBegin {
        /// Stage name.
        stage: &'static str,
    },
    /// The compiler pipeline stage finished.
    StageEnd {
        /// Stage name.
        stage: &'static str,
        /// Units of work the stage processed (functions, clones, bodies —
        /// whatever the stage iterates over).
        items: u64,
    },
    /// The compile cache resolved one multiversed function: on a hit the
    /// expand/optimize/merge stages were skipped for its whole variant
    /// cross product.
    CacheQuery {
        /// `true` if the pre-expand body + switch-domain signature was
        /// already cached.
        hit: bool,
        /// Variants reused (hit) or later inserted (miss: 0 at query
        /// time).
        variants: u64,
    },
    /// A concurrent commit began quiescing the SMP machine.
    QuiesceBegin {
        /// Protocol name: `stop-machine` or `breakpoint`.
        strategy: &'static str,
        /// vCPUs that must be brought to a safe state.
        vcpus: u64,
    },
    /// The quiesce window closed: the text is consistent again and every
    /// surviving vCPU has been released.
    QuiesceEnd {
        /// `true` if the underlying transaction committed (on `false`
        /// the journal rolled the image back before release).
        ok: bool,
        /// Scheduler rounds spent inside the quiesce window.
        rounds: u64,
    },
    /// One vCPU reached a safepoint and was parked by the rendezvous.
    VcpuParked {
        /// Parked vCPU index.
        vcpu: u64,
        /// Its program counter at park time.
        pc: u64,
    },
    /// An IPI-style cross-CPU instruction-cache shootdown: every vCPU's
    /// private decode cache dropped the given text range.
    IcacheShootdown {
        /// First invalidated address.
        start: u64,
        /// One past the last invalidated address (0 with `start = 0`
        /// means a full flush).
        end: u64,
        /// vCPUs whose caches were invalidated.
        vcpus: u64,
    },
    /// A vCPU fetched a breakpoint byte planted by the breakpoint-first
    /// protocol and trapped into the commit's handler.
    TrapHit {
        /// Trapping vCPU index.
        vcpu: u64,
        /// Address of the trap byte.
        addr: u64,
    },
    /// The mvd control plane admitted a commit request into a queue
    /// lane.
    QueueAdmit {
        /// Lane name: `normal` or `priority`.
        lane: &'static str,
        /// Coalescing key (switch address; 0 for whole-image ops).
        key: u64,
    },
    /// A new request merged into an already-queued entry for the same
    /// key: one commit will serve them all.
    Coalesced {
        /// Coalescing key (switch address; 0 for whole-image ops).
        key: u64,
        /// Requesters now sharing the entry's outcome.
        waiters: u64,
    },
    /// Backpressure dropped a queued normal-lane entry (oldest first)
    /// to make room, or a deadline expired before processing.
    Shed {
        /// Coalescing key of the dropped entry.
        key: u64,
    },
    /// An assignment was parked on the quarantine list after repeated
    /// consecutive commit failures; later requests for it fail fast.
    Quarantined {
        /// Coalescing key of the parked assignment.
        key: u64,
        /// Consecutive failures that triggered the parking.
        failures: u64,
    },
    /// The daemon fell back from one quiesce protocol to another for a
    /// commit after repeated quiesce failures (it heals back on a later
    /// success of the preferred protocol).
    StrategyDegraded {
        /// Protocol abandoned (`breakpoint`).
        from: &'static str,
        /// Protocol substituted (`stop-machine`).
        to: &'static str,
    },
    /// A variational-execution context split at a configuration-
    /// dependent point.
    VexecSplit {
        /// Address of the splitting instruction.
        pc: u64,
        /// Address of the switch the context split on.
        switch: u64,
        /// Child contexts created.
        arms: u32,
    },
    /// Sibling variational contexts re-merged into one.
    VexecJoin {
        /// Program counter both parties stood at.
        pc: u64,
        /// Address of the switch whose table absorbed the differences.
        switch: u64,
        /// Contexts folded together (always 2 per event today).
        parties: u32,
    },
    /// One leaf configuration's observation was finalized at the end of
    /// a variational pass.
    VexecLeaf {
        /// Leaf index in the configuration space.
        leaf: u64,
        /// Configurations the terminal context stood for.
        configs: u64,
        /// The leaf's return value.
        exit: u64,
    },
}

impl EventKind {
    /// Stable snake_case name of the event class, used by every
    /// exporter and by span reconstruction.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::CommitBegin { .. } => "commit_begin",
            EventKind::CommitEnd { .. } => "commit_end",
            EventKind::PhaseBegin { .. } => "phase_begin",
            EventKind::PhaseEnd { .. } => "phase_end",
            EventKind::SitePatched { .. } => "site_patched",
            EventKind::SiteRestored { .. } => "site_restored",
            EventKind::Inlined { .. } => "inlined",
            EventKind::EntryJumpWritten { .. } => "entry_jump_written",
            EventKind::PrologueRestored { .. } => "prologue_restored",
            EventKind::FaultObserved { .. } => "fault_observed",
            EventKind::Rollback { .. } => "rollback",
            EventKind::Retry { .. } => "retry",
            EventKind::ActionSkipped { .. } => "action_skipped",
            EventKind::PageBatch { .. } => "page_batch",
            EventKind::StageBegin { .. } => "stage_begin",
            EventKind::StageEnd { .. } => "stage_end",
            EventKind::CacheQuery { .. } => "cache_query",
            EventKind::QuiesceBegin { .. } => "quiesce_begin",
            EventKind::QuiesceEnd { .. } => "quiesce_end",
            EventKind::VcpuParked { .. } => "vcpu_parked",
            EventKind::IcacheShootdown { .. } => "icache_shootdown",
            EventKind::TrapHit { .. } => "trap_hit",
            EventKind::QueueAdmit { .. } => "queue_admit",
            EventKind::Coalesced { .. } => "coalesced",
            EventKind::Shed { .. } => "shed",
            EventKind::Quarantined { .. } => "quarantined",
            EventKind::StrategyDegraded { .. } => "strategy_degraded",
            EventKind::VexecSplit { .. } => "vexec_split",
            EventKind::VexecJoin { .. } => "vexec_join",
            EventKind::VexecLeaf { .. } => "vexec_leaf",
        }
    }

    /// `true` for the point events that live *inside* a phase span (as
    /// opposed to the span-boundary events).
    pub fn is_point(&self) -> bool {
        !matches!(
            self,
            EventKind::CommitBegin { .. }
                | EventKind::CommitEnd { .. }
                | EventKind::PhaseBegin { .. }
                | EventKind::PhaseEnd { .. }
                | EventKind::StageBegin { .. }
                | EventKind::StageEnd { .. }
        )
    }
}

/// One recorded event: a process-wide monotonic sequence number, a host
/// timestamp in nanoseconds since the ring's creation, and the payload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// Monotonic sequence number (global across all rings in the
    /// process, so interleaved streams have a total order).
    pub seq: u64,
    /// Nanoseconds since the recording ring was created.
    pub ts_ns: u64,
    /// The payload.
    pub kind: EventKind,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable() {
        assert_eq!(
            EventKind::CommitBegin { op: "commit" }.name(),
            "commit_begin"
        );
        assert_eq!(Phase::Validate.name(), "validate");
        assert!(EventKind::Rollback { entries: 3 }.is_point());
        assert!(!EventKind::PhaseEnd {
            phase: Phase::Apply,
            ok: true
        }
        .is_point());
    }
}
