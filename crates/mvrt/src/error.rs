//! Run-time library errors.
//!
//! Since the transactional-commit rework, failures inside
//! [`crate::Runtime::commit`] and friends are wrapped in
//! [`RtError::Commit`], which names the phase ([`CommitPhase`]) and, when
//! known, the generic entry of the function being processed. The
//! underlying cause is preserved boxed and reachable both through
//! [`std::error::Error::source`] and [`RtError::root_cause`].

use mvobj::descriptor::DescError;
use mvvm::MemError;
use std::fmt;

/// The phase of a transactional commit in which a failure occurred.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CommitPhase {
    /// The planning pass: reading switches, resolving variant selection
    /// and building the action list (including the delta-planning skip
    /// checks). A plan failure means **nothing was written**.
    Plan,
    /// The read-only validation pass: call-site byte verification,
    /// page-protection and descriptor-guard checks. A validate failure
    /// means **nothing was written**.
    Validate,
    /// The journaled write pass. An apply failure means the journal was
    /// rolled back and the image is byte-identical to its pre-commit
    /// state.
    Apply,
    /// Rolling back the journal itself failed. The image may be torn;
    /// the wrapped [`RtError::RollbackFailed`] names the first address
    /// whose restore failed.
    Rollback,
}

impl fmt::Display for CommitPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CommitPhase::Plan => "plan",
            CommitPhase::Validate => "validate",
            CommitPhase::Apply => "apply",
            CommitPhase::Rollback => "rollback",
        })
    }
}

/// Errors of the multiverse run-time library.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RtError {
    /// Guest memory access failed.
    Mem(MemError),
    /// A descriptor section is malformed.
    Desc(DescError),
    /// No multiversed function with this generic address.
    UnknownFunction(u64),
    /// No configuration switch at this address.
    UnknownVariable(u64),
    /// A guard references a switch with no variable descriptor.
    UnknownGuardVariable {
        /// Generic address of the guarded function.
        function: u64,
        /// Unresolvable switch address.
        var_addr: u64,
    },
    /// A call site did not contain the instruction the runtime expected —
    /// the "check if they point to a expected call target" step of §4.
    SiteVerifyFailed {
        /// Address of the call site.
        site: u64,
        /// Human-readable description of the mismatch.
        what: String,
    },
    /// A generic function body is smaller than the 5-byte entry jump that
    /// completeness patching must place over it.
    GenericTooSmall {
        /// Generic entry address.
        function: u64,
        /// Its body size.
        size: u32,
    },
    /// A `call rel32`/`jmp rel32` target is farther than the ±2 GiB the
    /// 32-bit displacement field can reach. Surfaced by the encoders
    /// instead of silently truncating the displacement.
    DisplacementOutOfRange {
        /// Address of the instruction being encoded.
        site: u64,
        /// The unreachable target.
        target: u64,
    },
    /// A variant body is larger than the call site it was asked to be
    /// inlined into — a corrupt descriptor body length. Surfaced as an
    /// error so a transaction rolls back instead of aborting the process.
    InlineTooLarge {
        /// Body length in bytes.
        body: usize,
        /// Available call-site length in bytes.
        site_len: usize,
    },
    /// A function-pointer switch holds a value that is not a function
    /// entry the runtime knows how to reach.
    BadFnPtrTarget {
        /// Switch address.
        var_addr: u64,
        /// Pointer value found.
        target: u64,
    },
    /// An icache flush after a text write did not take effect (the page's
    /// code version did not advance), so stale decoded instructions would
    /// keep executing. Treated as a transient patching fault.
    IcacheStale {
        /// Address of the written range whose flush was lost.
        addr: u64,
    },
    /// Restoring a journal entry during rollback failed; the text segment
    /// may be torn. Carried inside an [`RtError::Commit`] with
    /// [`CommitPhase::Rollback`].
    RollbackFailed {
        /// Address of the journal entry whose restore failed.
        addr: u64,
        /// Why the restore failed.
        source: Box<RtError>,
    },
    /// A concurrent commit could not quiesce the SMP machine: the
    /// rendezvous or breakpoint drain did not converge within its round
    /// budget. Nothing was written; every vCPU was released.
    Quiesce {
        /// What did not converge.
        reason: &'static str,
        /// Scheduler rounds spent before giving up.
        rounds: u64,
    },
    /// A transactional commit/revert operation failed. `source` is the
    /// underlying error; `phase` says how far the transaction got (and
    /// therefore what state the image is in — see [`CommitPhase`]).
    Commit {
        /// The phase that failed.
        phase: CommitPhase,
        /// Generic entry of the function being processed, when known.
        function: Option<u64>,
        /// The underlying error.
        source: Box<RtError>,
    },
}

impl RtError {
    /// Follows `Commit`/`RollbackFailed` wrappers down to the underlying
    /// error.
    pub fn root_cause(&self) -> &RtError {
        match self {
            RtError::Commit { source, .. } | RtError::RollbackFailed { source, .. } => {
                source.root_cause()
            }
            other => other,
        }
    }

    /// The commit phase this error is attributed to, if it came out of a
    /// transactional operation.
    pub fn commit_phase(&self) -> Option<CommitPhase> {
        match self {
            RtError::Commit { phase, .. } => Some(*phase),
            _ => None,
        }
    }

    /// `true` for apply-phase failures whose root cause is a transient
    /// patching fault (a protection fault on a mapped page, or a lost
    /// icache flush) — the class the bounded retry policy may retry,
    /// because the image was rolled back and the fault may heal.
    pub fn is_transient(&self) -> bool {
        match self {
            RtError::Commit {
                phase: CommitPhase::Apply,
                source,
                ..
            } => matches!(
                source.root_cause(),
                RtError::Mem(MemError { mapped: true, .. }) | RtError::IcacheStale { .. }
            ),
            _ => false,
        }
    }
}

impl fmt::Display for RtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtError::Mem(e) => write!(f, "{e}"),
            RtError::Desc(e) => write!(f, "{e}"),
            RtError::UnknownFunction(a) => write!(f, "no multiversed function at {a:#x}"),
            RtError::UnknownVariable(a) => write!(f, "no configuration switch at {a:#x}"),
            RtError::UnknownGuardVariable { function, var_addr } => write!(
                f,
                "function {function:#x} guarded by unknown switch {var_addr:#x}"
            ),
            RtError::SiteVerifyFailed { site, what } => {
                write!(f, "call-site verification failed at {site:#x}: {what}")
            }
            RtError::GenericTooSmall { function, size } => write!(
                f,
                "generic body of {function:#x} is {size} bytes, smaller than an entry jump"
            ),
            RtError::DisplacementOutOfRange { site, target } => {
                write!(f, "target {target:#x} is out of rel32 range from {site:#x}")
            }
            RtError::InlineTooLarge { body, site_len } => write!(
                f,
                "inline body of {body} bytes does not fit a {site_len}-byte call site"
            ),
            RtError::BadFnPtrTarget { var_addr, target } => write!(
                f,
                "function pointer at {var_addr:#x} holds unreachable target {target:#x}"
            ),
            RtError::IcacheStale { addr } => {
                write!(f, "icache flush lost for patched range at {addr:#x}")
            }
            RtError::RollbackFailed { addr, source } => {
                write!(f, "rollback failed restoring {addr:#x}: {source}")
            }
            RtError::Quiesce { reason, rounds } => {
                write!(
                    f,
                    "quiesce did not converge after {rounds} rounds: {reason}"
                )
            }
            RtError::Commit {
                phase,
                function,
                source,
            } => {
                write!(f, "commit failed in {phase} phase")?;
                if let Some(g) = function {
                    write!(f, " (function {g:#x})")?;
                }
                write!(f, ": {source}")
            }
        }
    }
}

impl std::error::Error for RtError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RtError::Mem(e) => Some(e),
            RtError::Desc(e) => Some(e),
            RtError::RollbackFailed { source, .. } | RtError::Commit { source, .. } => {
                Some(source.as_ref())
            }
            _ => None,
        }
    }
}

impl From<MemError> for RtError {
    fn from(e: MemError) -> RtError {
        RtError::Mem(e)
    }
}

impl From<DescError> for RtError {
    fn from(e: DescError) -> RtError {
        RtError::Desc(e)
    }
}

impl From<mvasm::AbiError> for RtError {
    fn from(e: mvasm::AbiError) -> RtError {
        match e {
            mvasm::AbiError::DisplacementOutOfRange { site, target } => {
                RtError::DisplacementOutOfRange { site, target }
            }
            mvasm::AbiError::InlineTooLarge { body, site_len } => {
                RtError::InlineTooLarge { body, site_len }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvvm::mem::Access;
    use std::error::Error as _;

    fn protection_fault() -> RtError {
        RtError::Mem(MemError {
            addr: 0x1000,
            access: Access::Write,
            mapped: true,
        })
    }

    #[test]
    fn source_chains_through_wrappers() {
        let e = RtError::Commit {
            phase: CommitPhase::Apply,
            function: Some(0x4000),
            source: Box::new(protection_fault()),
        };
        // RtError -> inner RtError::Mem -> MemError
        let inner = e.source().unwrap();
        assert!(inner.source().unwrap().is::<MemError>());
        assert_eq!(e.root_cause(), &protection_fault());
        assert_eq!(e.commit_phase(), Some(CommitPhase::Apply));
    }

    #[test]
    fn transient_classification() {
        let transient = RtError::Commit {
            phase: CommitPhase::Apply,
            function: None,
            source: Box::new(protection_fault()),
        };
        assert!(transient.is_transient());
        let validate = RtError::Commit {
            phase: CommitPhase::Validate,
            function: None,
            source: Box::new(protection_fault()),
        };
        assert!(!validate.is_transient());
        let hard = RtError::Commit {
            phase: CommitPhase::Apply,
            function: None,
            source: Box::new(RtError::UnknownFunction(1)),
        };
        assert!(!hard.is_transient());
        assert!(!protection_fault().is_transient());
        let stale = RtError::Commit {
            phase: CommitPhase::Apply,
            function: None,
            source: Box::new(RtError::IcacheStale { addr: 0x2000 }),
        };
        assert!(stale.is_transient());
    }

    #[test]
    fn display_names_phase_and_function() {
        let e = RtError::Commit {
            phase: CommitPhase::Validate,
            function: Some(0x4000),
            source: Box::new(RtError::GenericTooSmall {
                function: 0x4000,
                size: 3,
            }),
        };
        let s = e.to_string();
        assert!(s.contains("validate"), "{s}");
        assert!(s.contains("0x4000"), "{s}");
    }
}
