//! Lock elision — the Fig. 1 / Fig. 4 (left) spinlock case study.
//!
//! The kernel's `spin_lock_irq`/`spin_unlock_irq` pair, with the SMP lock
//! acquisition guarded by `config_smp`. One MVC source builds all four
//! kernels measured in §6.1:
//!
//! | kernel | binding | build |
//! |---|---|---|
//! | No Lock Elision ("Ubuntu standard") | compile-time `SMP=1` | [`KernelBuild::NoElision`] |
//! | Lock Elision \[if\] | dynamic test | [`KernelBuild::ElisionIf`] |
//! | Lock Elision \[multiverse\] | commit-time | [`KernelBuild::ElisionMultiverse`] |
//! | Lock Elision \[ifdef Off\] | compile-time `SMP=0` | [`KernelBuild::IfdefOff`] |

use multiverse::mvc::Options;
use multiverse::mvvm::{CostModel, MachineConfig, MachineMode};
use multiverse::{BuildError, Program, World};

/// The spinlock kernel fragment (shared by every build).
pub const SRC: &str = r#"
    // CONFIG_SMP as a run-time configuration switch (Fig. 1 C).
    multiverse bool config_smp;
    i64 lock_word;
    i64 preempt_count;

    multiverse void spin_lock_irq(void) {
        __cli();
        // Like the kernel, the lock path also maintains the preemption
        // count; this keeps the specialized bodies above the 5-byte
        // call-site inline threshold, as real spinlocks are.
        preempt_count = preempt_count + 1;
        if (config_smp) {
            while (__xchg(&lock_word, 1) != 0) { __pause(); }
        }
    }

    multiverse void spin_unlock_irq(void) {
        if (config_smp) {
            lock_word = 0;
        }
        preempt_count = preempt_count - 1;
        __sti();
    }

    // Fig. 4 measures the lock+unlock pair; Fig. 1 the lock alone.
    void lock_unlock(void) {
        spin_lock_irq();
        spin_unlock_irq();
    }

    i64 main(void) { return 0; }
"#;

/// The four benchmarked kernel configurations.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum KernelBuild {
    /// Mainline SMP kernel: the lock is always taken (static `SMP=1`).
    NoElision,
    /// Run-time `if (config_smp)` elision — binding B.
    ElisionIf,
    /// Multiverse elision — binding C (committed per machine mode).
    ElisionMultiverse,
    /// Statically UP kernel (`SMP=0` at compile time) — binding A.
    IfdefOff,
}

impl KernelBuild {
    /// Display label matching Fig. 4.
    pub fn label(self) -> &'static str {
        match self {
            KernelBuild::NoElision => "No Lock Elision",
            KernelBuild::ElisionIf => "Lock Elision [if]",
            KernelBuild::ElisionMultiverse => "Lock Elision [multiverse]",
            KernelBuild::IfdefOff => "Lock Elision [ifdef Off]",
        }
    }

    fn options(self) -> Options {
        match self {
            KernelBuild::NoElision => Options::static_build(&[("config_smp", 1)]),
            KernelBuild::ElisionIf => Options::dynamic(),
            KernelBuild::ElisionMultiverse => Options::default(),
            KernelBuild::IfdefOff => Options::static_build(&[("config_smp", 0)]),
        }
    }
}

/// Compiles the spinlock kernel in the given build configuration.
pub fn build(kind: KernelBuild) -> Result<Program, BuildError> {
    Program::build_with(&[("spinlock.c", SRC)], &kind.options())
}

/// Boots a kernel in `mode` (unicore/multicore), sets `config_smp`
/// accordingly, and — for the multiverse kernel — commits.
pub fn boot(kind: KernelBuild, mode: MachineMode) -> Result<World, BuildError> {
    let program = build(kind)?;
    let mut world = program.boot_with(
        CostModel::default(),
        MachineConfig {
            mode,
            ..MachineConfig::default()
        },
    );
    let smp = matches!(mode, MachineMode::Multicore);
    // Static builds read a baked-in constant; the variable write is
    // harmless there.
    world.set("config_smp", smp as i64)?;
    if kind == KernelBuild::ElisionMultiverse {
        world.commit()?;
    }
    Ok(world)
}

/// Average cycles for the lock+unlock pair (Fig. 4 left).
pub fn measure_pair(world: &mut World, iterations: u64) -> Result<f64, BuildError> {
    Ok(world
        .time_calls("lock_unlock", &[], iterations, false)?
        .avg_cycles)
}

/// Average cycles for `spin_lock_irq` alone (the Fig. 1 table). The
/// lock word is cleared between calls so the SMP path never spins.
pub fn measure_lock(world: &mut World, iterations: u64) -> Result<f64, BuildError> {
    let lock_word = world.sym("lock_word")?;
    let addr = world.sym("spin_lock_irq")?;
    world.machine.call(addr, &[])?; // warm-up
    world.machine.mem.write_int(lock_word, 0, 8)?;
    let c0 = world.cycles();
    for _ in 0..iterations {
        world.machine.call(addr, &[])?;
        // Release outside the measured function, as the benchmark driver
        // in the paper's kernel module does between samples.
        world.machine.mem.write_int(lock_word, 0, 8)?;
    }
    Ok((world.cycles() - c0) as f64 / iterations as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kernels_build_and_run() {
        for kind in [
            KernelBuild::NoElision,
            KernelBuild::ElisionIf,
            KernelBuild::ElisionMultiverse,
            KernelBuild::IfdefOff,
        ] {
            for mode in [MachineMode::Unicore, MachineMode::Multicore] {
                if kind == KernelBuild::IfdefOff && mode == MachineMode::Multicore {
                    continue; // the UP kernel is never run SMP (Fig. 4)
                }
                let mut w = boot(kind, mode).unwrap();
                w.call("lock_unlock", &[]).unwrap();
            }
        }
    }

    #[test]
    fn lock_actually_locks_in_smp() {
        let mut w = boot(KernelBuild::NoElision, MachineMode::Multicore).unwrap();
        w.call("spin_lock_irq", &[]).unwrap();
        assert_eq!(w.get("lock_word").unwrap(), 1, "lock word taken");
        w.call("spin_unlock_irq", &[]).unwrap();
        assert_eq!(w.get("lock_word").unwrap(), 0, "released");
    }

    #[test]
    fn up_kernels_elide_the_atomic() {
        for kind in [KernelBuild::ElisionMultiverse, KernelBuild::IfdefOff] {
            let mut w = boot(kind, MachineMode::Unicore).unwrap();
            let a0 = w.machine.stats.atomics;
            w.call("lock_unlock", &[]).unwrap();
            assert_eq!(w.machine.stats.atomics, a0, "{kind:?}: no atomic in UP");
        }
        // The mainline kernel always pays the atomic.
        let mut w = boot(KernelBuild::NoElision, MachineMode::Unicore).unwrap();
        let a0 = w.machine.stats.atomics;
        w.call("lock_unlock", &[]).unwrap();
        assert!(w.machine.stats.atomics > a0);
    }

    #[test]
    fn fig1_ordering_holds_in_unicore() {
        // Fig. 1: static (A) ≤ multiverse (C) < dynamic (B) < mainline.
        let n = 2000;
        let a = measure_lock(
            &mut boot(KernelBuild::IfdefOff, MachineMode::Unicore).unwrap(),
            n,
        )
        .unwrap();
        let b = measure_lock(
            &mut boot(KernelBuild::ElisionIf, MachineMode::Unicore).unwrap(),
            n,
        )
        .unwrap();
        let c = measure_lock(
            &mut boot(KernelBuild::ElisionMultiverse, MachineMode::Unicore).unwrap(),
            n,
        )
        .unwrap();
        let main = measure_lock(
            &mut boot(KernelBuild::NoElision, MachineMode::Unicore).unwrap(),
            n,
        )
        .unwrap();
        assert!(a <= c + 0.5, "static {a} ≤ multiverse {c}");
        assert!(c < b, "multiverse {c} < dynamic {b}");
        assert!(b < main, "dynamic {b} < mainline {main}");
    }

    #[test]
    fn smp_costs_dominate_in_multicore() {
        // Fig. 4: in multicore mode all three SMP-capable kernels are
        // close (the atomic dominates; the warm branch is nearly free).
        let n = 2000;
        let no = measure_pair(
            &mut boot(KernelBuild::NoElision, MachineMode::Multicore).unwrap(),
            n,
        )
        .unwrap();
        let dynif = measure_pair(
            &mut boot(KernelBuild::ElisionIf, MachineMode::Multicore).unwrap(),
            n,
        )
        .unwrap();
        let mv = measure_pair(
            &mut boot(KernelBuild::ElisionMultiverse, MachineMode::Multicore).unwrap(),
            n,
        )
        .unwrap();
        let spread = (no - mv).abs().max((no - dynif).abs());
        assert!(
            spread / no < 0.25,
            "SMP kernels within 25%: no={no} if={dynif} mv={mv}"
        );
        // And every SMP run is far above the UP multiverse run.
        let up = measure_pair(
            &mut boot(KernelBuild::ElisionMultiverse, MachineMode::Unicore).unwrap(),
            n,
        )
        .unwrap();
        assert!(no > 1.5 * up, "SMP {no} ≫ UP {up}");
    }

    #[test]
    fn multiverse_kernel_reconfigures_at_runtime() {
        // UP → SMP hot-plug: flip the switch, re-commit, lock works.
        let mut w = boot(KernelBuild::ElisionMultiverse, MachineMode::Unicore).unwrap();
        let a0 = w.machine.stats.atomics;
        w.call("lock_unlock", &[]).unwrap();
        assert_eq!(w.machine.stats.atomics, a0);

        w.machine.set_mode(MachineMode::Multicore);
        w.set("config_smp", 1).unwrap();
        w.commit().unwrap();
        w.call("lock_unlock", &[]).unwrap();
        assert!(w.machine.stats.atomics > a0, "lock taken after hot-plug");

        // And back to UP.
        w.machine.set_mode(MachineMode::Unicore);
        w.set("config_smp", 0).unwrap();
        w.commit().unwrap();
        let a1 = w.machine.stats.atomics;
        w.call("lock_unlock", &[]).unwrap();
        assert_eq!(w.machine.stats.atomics, a1);
    }

    #[test]
    fn callsites_are_recorded() {
        let p = build(KernelBuild::ElisionMultiverse).unwrap();
        let w = p.boot();
        let rt = w.rt.as_ref().unwrap();
        assert_eq!(rt.num_variables(), 1);
        assert_eq!(rt.num_functions(), 2);
        // lock_unlock calls both multiversed functions.
        assert!(rt.num_callsites() >= 2);
    }
}
