#![warn(missing_docs)]
//! MVC — the Multiverse C compiler.
//!
//! This crate is the reproduction of the paper's GCC plugin (§3): it
//! compiles **MVC**, a small C-like systems language, to MV64 objects and
//! implements the four plugin phases on its own intermediate
//! representation:
//!
//! 1. **Collect** configuration switches: global integer/bool/enum (and
//!    function-pointer) variables carrying the `multiverse` attribute,
//!    with value domains — `{0, 1}` by default, all enumerators for enum
//!    types, or an explicit `multiverse(v1, v2, …)` domain (§3, §7.1).
//! 2. **Clone and specialize** every `multiverse` function for the cross
//!    product of the domains of the switches it actually reads, replacing
//!    each switch read by the assignment's constant *before* optimization,
//!    so constant propagation, folding and dead-code elimination produce
//!    perfectly specialized variants. Writes to a switch inside a
//!    multiversed function produce a warning. The generic variant is
//!    never inlined.
//! 3. **Merge** clones whose bodies are structurally identical after
//!    optimization (Fig. 2's `multi.A=0.B=01`), synthesizing range guards
//!    that cover exactly the merged assignments.
//! 4. **Emit descriptors** for switches, functions/variants/guards, and
//!    every call site of a multiversed function (a label placed exactly at
//!    the emitted `call` instruction), into the `multiverse.*` sections.
//!
//! Because variability is expressed with ordinary `if`s instead of the
//! preprocessor, *all* code paths are compiled and type-checked in every
//! build (§7.4) — the compiler rejects errors in disabled branches too.
//!
//! # Build configurations
//!
//! [`Options`] selects between the paper's three bindings from a single
//! source (Fig. 1):
//!
//! * **static** (`#ifdef`-like): [`Options::static_config`] fixes switches
//!   to compile-time constants everywhere — binding A;
//! * **dynamic**: multiverse disabled, switches are evaluated at run time —
//!   binding B;
//! * **multiverse**: variants + descriptors, bound at commit time via
//!   `mvrt` — binding C.

pub mod ast;
pub mod codegen;
pub mod driver;
pub mod error;
pub mod ir;
pub mod lexer;
pub mod lower;
pub mod mv;
pub mod parser;
pub mod passes;
pub mod pipeline;
pub mod token;
pub mod types;

pub use driver::{compile, compile_and_link, Options};
pub use error::{CompileError, Warning};
pub use pipeline::{Pipeline, PipelineStats, StageStats};
