//! Span-tree reconstruction.
//!
//! The ring stores a flat, bounded event stream; analysis wants the
//! hierarchy back: **commit → attempt → phase → point events**. The
//! builder here walks the stream once and rebuilds that tree, tolerating
//! truncation (a bounded ring may have dropped the oldest events, so a
//! stream can open mid-commit — orphaned events before the first
//! `commit_begin` are skipped and reported).

use crate::event::{Event, EventKind, Phase};

/// One phase of one attempt, with the point events recorded inside it.
#[derive(Clone, Debug)]
pub struct PhaseSpan {
    /// Which phase.
    pub phase: Phase,
    /// Timestamp of `phase_begin` (ns since ring epoch).
    pub begin_ns: u64,
    /// Timestamp of `phase_end`; equal to `begin_ns` if the stream was
    /// truncated before the end arrived.
    pub end_ns: u64,
    /// Whether the phase completed successfully.
    pub ok: bool,
    /// Point events (site patches, faults, rollbacks, …) in order.
    pub events: Vec<Event>,
}

impl PhaseSpan {
    /// Phase duration in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.begin_ns)
    }
}

/// One plan→validate→apply walk. A commit that retries has several.
#[derive(Clone, Debug, Default)]
pub struct AttemptSpan {
    /// The phases that ran, in order (a validate failure has no apply).
    pub phases: Vec<PhaseSpan>,
    /// Set if this attempt ended in a retry (1-based retry number).
    pub retry: Option<u32>,
}

impl AttemptSpan {
    /// `true` if every phase of the attempt succeeded.
    pub fn ok(&self) -> bool {
        self.phases.iter().all(|p| p.ok)
    }

    /// The span of `phase` within this attempt, if it ran.
    pub fn phase(&self, phase: Phase) -> Option<&PhaseSpan> {
        self.phases.iter().find(|p| p.phase == phase)
    }
}

/// One complete transactional operation.
#[derive(Clone, Debug)]
pub struct CommitSpan {
    /// The Table 1 operation name (`commit`, `revert`, …).
    pub op: &'static str,
    /// Sequence number of the `commit_begin` event.
    pub begin_seq: u64,
    /// Timestamp of `commit_begin` (ns since ring epoch).
    pub begin_ns: u64,
    /// Timestamp of `commit_end`; `begin_ns` if truncated.
    pub end_ns: u64,
    /// Overall outcome (after all retries). `false` also for commits
    /// whose `commit_end` was never recorded.
    pub ok: bool,
    /// The attempts, in order. At least one for a well-formed stream.
    pub attempts: Vec<AttemptSpan>,
}

impl CommitSpan {
    /// Total duration in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.begin_ns)
    }

    /// Durations of every completed run of `phase` across all attempts.
    pub fn phase_durations_ns(&self, phase: Phase) -> Vec<u64> {
        self.attempts
            .iter()
            .flat_map(|a| a.phase(phase))
            .map(|p| p.duration_ns())
            .collect()
    }
}

/// One compiler pipeline stage (`stage_begin`/`stage_end` pair emitted
/// by `mvc`'s staged pipeline, outside any commit).
#[derive(Clone, Debug, Default)]
pub struct StageSpan {
    /// Stage name (`lower`, `mv-expand`, `optimize`, `merge`, `codegen`).
    pub stage: &'static str,
    /// Timestamp of `stage_begin`.
    pub begin_ns: u64,
    /// Timestamp of `stage_end` (== `begin_ns` when truncated).
    pub end_ns: u64,
    /// Work items the stage reported on `stage_end`.
    pub items: u64,
    /// Point events recorded inside the stage (cache queries, …).
    pub events: Vec<Event>,
}

impl StageSpan {
    /// Wall-clock duration in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.begin_ns)
    }
}

/// Result of [`build_spans`]: the reconstructed commits plus how many
/// leading events had to be skipped because the ring had already
/// dropped their enclosing `commit_begin`.
#[derive(Clone, Debug, Default)]
pub struct SpanForest {
    /// Reconstructed commit spans, in stream order.
    pub commits: Vec<CommitSpan>,
    /// Compiler pipeline stages, in stream order (empty unless the
    /// stream came from a traced `mvc` pipeline).
    pub stages: Vec<StageSpan>,
    /// Events skipped before the first `commit_begin`.
    pub orphaned: usize,
}

/// Rebuilds the span tree from a flat event stream (oldest first).
///
/// The builder is forgiving by design: streams from a bounded ring may
/// start mid-commit or end mid-phase. A commit without its `commit_end`
/// is closed at its last seen event with `ok = false`; events before the
/// first `commit_begin` are counted in [`SpanForest::orphaned`].
pub fn build_spans(events: &[Event]) -> SpanForest {
    let mut forest = SpanForest::default();
    let mut current: Option<CommitSpan> = None;
    let mut attempt = AttemptSpan::default();
    let mut open_phase: Option<PhaseSpan> = None;
    let mut open_stage: Option<StageSpan> = None;

    let close_phase = |attempt: &mut AttemptSpan, phase: &mut Option<PhaseSpan>, ts: u64| {
        if let Some(mut p) = phase.take() {
            // Truncated phase: close it at the closing timestamp.
            if p.end_ns < p.begin_ns {
                p.end_ns = ts;
            }
            attempt.phases.push(p);
        }
    };

    for &e in events {
        let Some(span) = current.as_mut() else {
            match e.kind {
                EventKind::CommitBegin { op } => {
                    // A commit interrupts any open stage (should not
                    // happen from a well-formed pipeline; close it).
                    if let Some(mut s) = open_stage.take() {
                        s.end_ns = e.ts_ns;
                        forest.stages.push(s);
                    }
                    current = Some(CommitSpan {
                        op,
                        begin_seq: e.seq,
                        begin_ns: e.ts_ns,
                        end_ns: e.ts_ns,
                        ok: false,
                        attempts: Vec::new(),
                    });
                    attempt = AttemptSpan::default();
                    open_phase = None;
                }
                EventKind::StageBegin { stage } => {
                    if let Some(mut s) = open_stage.take() {
                        s.end_ns = e.ts_ns;
                        forest.stages.push(s);
                    }
                    open_stage = Some(StageSpan {
                        stage,
                        begin_ns: e.ts_ns,
                        end_ns: e.ts_ns,
                        items: 0,
                        events: Vec::new(),
                    });
                }
                EventKind::StageEnd { stage, items } => {
                    if let Some(mut s) = open_stage.take() {
                        // A mismatched name still closes the open stage
                        // (truncation tolerance) but keeps its own name.
                        let _ = stage;
                        s.end_ns = e.ts_ns;
                        s.items = items;
                        forest.stages.push(s);
                    } else {
                        forest.orphaned += 1;
                    }
                }
                _ => match open_stage.as_mut() {
                    Some(s) => s.events.push(e),
                    None => forest.orphaned += 1,
                },
            }
            continue;
        };
        match e.kind {
            EventKind::CommitBegin { op } => {
                // Missing commit_end (truncated stream): close what we
                // have and start over.
                close_phase(&mut attempt, &mut open_phase, e.ts_ns);
                if !attempt.phases.is_empty() {
                    span.attempts.push(std::mem::take(&mut attempt));
                }
                forest.commits.push(current.take().unwrap());
                current = Some(CommitSpan {
                    op,
                    begin_seq: e.seq,
                    begin_ns: e.ts_ns,
                    end_ns: e.ts_ns,
                    ok: false,
                    attempts: Vec::new(),
                });
            }
            EventKind::CommitEnd { ok } => {
                close_phase(&mut attempt, &mut open_phase, e.ts_ns);
                if !attempt.phases.is_empty() {
                    span.attempts.push(std::mem::take(&mut attempt));
                }
                span.ok = ok;
                span.end_ns = e.ts_ns;
                forest.commits.push(current.take().unwrap());
            }
            EventKind::PhaseBegin { phase } => {
                close_phase(&mut attempt, &mut open_phase, e.ts_ns);
                open_phase = Some(PhaseSpan {
                    phase,
                    begin_ns: e.ts_ns,
                    // Sentinel below begin_ns marks "not yet closed".
                    end_ns: e.ts_ns.wrapping_sub(1),
                    ok: false,
                    events: Vec::new(),
                });
            }
            EventKind::PhaseEnd { phase, ok } => {
                if let Some(mut p) = open_phase.take() {
                    if p.phase == phase {
                        p.end_ns = e.ts_ns;
                        p.ok = ok;
                        attempt.phases.push(p);
                    } else {
                        // Mismatched end: close both defensively.
                        p.end_ns = e.ts_ns;
                        attempt.phases.push(p);
                    }
                }
            }
            EventKind::Retry { attempt: n } => {
                close_phase(&mut attempt, &mut open_phase, e.ts_ns);
                attempt.retry = Some(n);
                span.attempts.push(std::mem::take(&mut attempt));
            }
            _ => match open_phase.as_mut() {
                Some(p) => p.events.push(e),
                // Point event outside a phase (should not happen from
                // the runtime; keep it attached to the attempt anyway
                // by opening a zero-length pseudo record): drop to the
                // orphan counter rather than invent structure.
                None => forest.orphaned += 1,
            },
        }
    }
    // Stream ended mid-stage.
    if let Some(s) = open_stage.take() {
        forest.stages.push(s);
    }
    // Stream ended mid-commit.
    if let Some(mut span) = current.take() {
        let last_ts = events.last().map_or(span.begin_ns, |e| e.ts_ns);
        close_phase(&mut attempt, &mut open_phase, last_ts);
        if !attempt.phases.is_empty() {
            span.attempts.push(attempt);
        }
        span.end_ns = last_ts;
        forest.commits.push(span);
    }
    forest
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(seq: u64, ts_ns: u64, kind: EventKind) -> Event {
        Event { seq, ts_ns, kind }
    }

    #[test]
    fn compile_stages_become_top_level_spans() {
        use EventKind::*;
        let events = vec![
            ev(1, 0, StageBegin { stage: "lower" }),
            ev(
                2,
                50,
                StageEnd {
                    stage: "lower",
                    items: 3,
                },
            ),
            ev(3, 60, StageBegin { stage: "mv-expand" }),
            ev(
                4,
                70,
                CacheQuery {
                    hit: true,
                    variants: 4,
                },
            ),
            ev(
                5,
                90,
                StageEnd {
                    stage: "mv-expand",
                    items: 8,
                },
            ),
            ev(6, 100, CommitBegin { op: "commit" }),
            ev(7, 200, CommitEnd { ok: true }),
        ];
        let forest = build_spans(&events);
        assert_eq!(forest.orphaned, 0);
        assert_eq!(forest.stages.len(), 2);
        assert_eq!(forest.stages[0].stage, "lower");
        assert_eq!(forest.stages[0].duration_ns(), 50);
        assert_eq!(forest.stages[0].items, 3);
        assert_eq!(forest.stages[1].events.len(), 1);
        assert_eq!(forest.commits.len(), 1);
    }

    #[test]
    fn truncated_stage_is_closed_at_stream_end() {
        use EventKind::*;
        let events = vec![ev(1, 0, StageBegin { stage: "codegen" })];
        let forest = build_spans(&events);
        assert_eq!(forest.stages.len(), 1);
        assert_eq!(forest.stages[0].duration_ns(), 0);
    }

    /// The canonical faulted-then-retried commit stream: attempt 1 walks
    /// all three phases, faults in apply, rolls back and retries;
    /// attempt 2 succeeds.
    fn faulted_retry_stream() -> Vec<Event> {
        use EventKind::*;
        let mut t = 0;
        let mut s = 0;
        let mut next = |kind| {
            t += 100;
            s += 1;
            ev(s, t, kind)
        };
        vec![
            next(CommitBegin { op: "commit" }),
            next(PhaseBegin { phase: Phase::Plan }),
            next(PhaseEnd {
                phase: Phase::Plan,
                ok: true,
            }),
            next(PhaseBegin {
                phase: Phase::Validate,
            }),
            next(PhaseEnd {
                phase: Phase::Validate,
                ok: true,
            }),
            next(PhaseBegin {
                phase: Phase::Apply,
            }),
            next(SitePatched {
                site: 0x4000,
                target: 0x5000,
            }),
            next(FaultObserved {
                addr: 0x4005,
                what: "protection-fault",
            }),
            next(Rollback { entries: 1 }),
            next(PhaseEnd {
                phase: Phase::Apply,
                ok: false,
            }),
            next(Retry { attempt: 1 }),
            next(PhaseBegin { phase: Phase::Plan }),
            next(PhaseEnd {
                phase: Phase::Plan,
                ok: true,
            }),
            next(PhaseBegin {
                phase: Phase::Validate,
            }),
            next(PhaseEnd {
                phase: Phase::Validate,
                ok: true,
            }),
            next(PhaseBegin {
                phase: Phase::Apply,
            }),
            next(SitePatched {
                site: 0x4000,
                target: 0x5000,
            }),
            next(EntryJumpWritten {
                function: 0x4100,
                variant: 0x5000,
            }),
            next(PhaseEnd {
                phase: Phase::Apply,
                ok: true,
            }),
            next(CommitEnd { ok: true }),
        ]
    }

    #[test]
    fn faulted_then_retried_commit_reconstructs() {
        let forest = build_spans(&faulted_retry_stream());
        assert_eq!(forest.orphaned, 0);
        assert_eq!(forest.commits.len(), 1);
        let c = &forest.commits[0];
        assert_eq!(c.op, "commit");
        assert!(c.ok);
        assert_eq!(c.attempts.len(), 2);

        let a1 = &c.attempts[0];
        assert_eq!(a1.retry, Some(1));
        assert!(!a1.ok());
        let apply1 = a1.phase(Phase::Apply).unwrap();
        assert!(!apply1.ok);
        let names: Vec<&str> = apply1.events.iter().map(|e| e.kind.name()).collect();
        assert_eq!(names, vec!["site_patched", "fault_observed", "rollback"]);

        let a2 = &c.attempts[1];
        assert_eq!(a2.retry, None);
        assert!(a2.ok());
        assert_eq!(a2.phases.len(), 3);
        assert_eq!(a2.phase(Phase::Apply).unwrap().events.len(), 2);

        // Phase durations are the ts deltas of the synthetic stream.
        assert_eq!(c.phase_durations_ns(Phase::Plan), vec![100, 100]);
        assert_eq!(c.phase_durations_ns(Phase::Apply), vec![400, 300]);
        assert_eq!(c.duration_ns(), 1900);
    }

    #[test]
    fn truncated_stream_is_tolerated() {
        let full = faulted_retry_stream();
        // Drop the first 7 events: the stream now opens mid-apply.
        let forest = build_spans(&full[7..]);
        // The commit_begin was dropped, so nothing from that commit can
        // be reconstructed — every survivor is counted as orphaned.
        assert_eq!(forest.commits.len(), 0);
        assert_eq!(forest.orphaned, full.len() - 7);
        // And a stream that ends mid-commit closes it as not-ok.
        let forest = build_spans(&full[..9]);
        assert_eq!(forest.commits.len(), 1);
        assert!(!forest.commits[0].ok);
        assert_eq!(forest.commits[0].attempts.len(), 1);
    }

    #[test]
    fn interleaved_commits_split_cleanly() {
        use EventKind::*;
        let mut events = faulted_retry_stream();
        let base_seq = events.last().unwrap().seq;
        let base_ts = events.last().unwrap().ts_ns;
        events.extend([
            ev(base_seq + 1, base_ts + 100, CommitBegin { op: "revert" }),
            ev(
                base_seq + 2,
                base_ts + 200,
                PhaseBegin { phase: Phase::Plan },
            ),
            ev(
                base_seq + 3,
                base_ts + 300,
                PhaseEnd {
                    phase: Phase::Plan,
                    ok: true,
                },
            ),
            ev(base_seq + 4, base_ts + 400, CommitEnd { ok: true }),
        ]);
        let forest = build_spans(&events);
        assert_eq!(forest.commits.len(), 2);
        assert_eq!(forest.commits[1].op, "revert");
        assert!(forest.commits[1].ok);
    }
}
