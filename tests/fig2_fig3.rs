//! E9 — the paper's running example (Fig. 2 and Fig. 3) driven through
//! every patch state, asserting both behaviour and the exact text-segment
//! transformations.

#![allow(clippy::disallowed_names)] // `foo` is the paper's own Fig. 2 identifier
use multiverse::{mvasm, mvobj, Program, World};

const SRC: &str = r#"
    multiverse bool A;
    multiverse i32 B;

    u64 calc_count;
    u64 log_count;

    void calc(void) { calc_count = calc_count + 1; }
    void log_(void) { log_count = log_count + 1; }

    multiverse void multi(void) {
        if (A) {
            calc();
            if (B) {
                log_();
            }
        }
    }

    void foo(void) { multi(); }

    i64 main(void) { return 0; }
"#;

fn counts(w: &mut World) -> (i64, i64) {
    (w.get("calc_count").unwrap(), w.get("log_count").unwrap())
}

fn callsite_insn(w: &World) -> mvasm::Insn {
    let foo = w.sym("foo").unwrap();
    let bytes = w.machine.mem.read_vec(foo, 16).unwrap();
    mvasm::decode(&bytes).unwrap().0
}

#[test]
fn fig2_variant_inventory() {
    let program = Program::build(&[("fig2.c", SRC)]).unwrap();
    let exe = program.exe();
    // Fig. 2: four raw assignments, A=0 pair merges → three variants.
    assert!(exe.symbol("multi.A=1.B=0").is_some());
    assert!(exe.symbol("multi.A=1.B=1").is_some());
    assert!(exe.symbol("multi.A=0.B=0-1").is_some(), "merged variant");
    assert!(exe.symbol("multi.A=0.B=0").is_none());

    // Descriptor sections exist and are well-formed arrays.
    let (_, vars) = exe.section(mvobj::SEC_MV_VARIABLES);
    assert_eq!(vars, 2 * 32, "two switches");
    let (_, sites) = exe.section(mvobj::SEC_MV_CALLSITES);
    assert_eq!(sites, 16, "one recorded call site (in foo)");
}

#[test]
fn fig3_patch_state_machine() {
    let program = Program::build(&[("fig2.c", SRC)]).unwrap();
    let mut w = program.boot();
    let multi = w.sym("multi").unwrap();

    // (a) Initially loaded binary: call to the generic.
    let initial = callsite_insn(&w);
    assert!(matches!(initial, mvasm::Insn::CallRel { .. }));
    let initial_entry = w.machine.mem.read_vec(multi, 5).unwrap();

    // (b) A=1, B=0: the call site targets the specialized variant.
    w.set("A", 1).unwrap();
    w.set("B", 0).unwrap();
    w.commit().unwrap();
    let v10 = w.sym("multi.A=1.B=0").unwrap();
    let mvasm::Insn::CallRel { rel } = callsite_insn(&w) else {
        panic!("expected patched call")
    };
    let foo = w.sym("foo").unwrap();
    assert_eq!((foo + 5).wrapping_add(rel as i64 as u64), v10);
    // The generic entry is an unconditional jmp to the variant.
    let entry = w.machine.mem.read_vec(multi, 5).unwrap();
    let (jmp, _) = mvasm::decode(&entry).unwrap();
    assert!(matches!(jmp, mvasm::Insn::Jmp { .. }));
    // Behaviour: calc once, no log.
    w.call("foo", &[]).unwrap();
    assert_eq!(counts(&mut w), (1, 0));

    // (c) A=0 (any B): the merged empty variant is inlined as a NOP.
    w.set("A", 0).unwrap();
    w.set("B", 1).unwrap();
    w.commit().unwrap();
    let insn = callsite_insn(&w);
    assert!(insn.is_nop(), "empty body erased, found `{insn}`");
    w.call("foo", &[]).unwrap();
    assert_eq!(counts(&mut w), (1, 0), "inlined NOP does nothing");

    // (d) Out-of-domain values: revert to the (restored) generic.
    w.set("A", 3).unwrap();
    w.set("B", 4).unwrap();
    let report = w.commit().unwrap();
    assert_eq!(report.generic_fallbacks, 1, "signalled to the user");
    assert_eq!(
        w.machine.mem.read_vec(multi, 5).unwrap(),
        initial_entry,
        "prologue restored"
    );
    // Generic dynamic behaviour for arbitrary values: A=3 truthy, B=4
    // truthy → calc and log both run.
    w.call("foo", &[]).unwrap();
    assert_eq!(counts(&mut w), (2, 1));
}

#[test]
fn commit_refs_binds_only_dependent_functions() {
    // A second function guarded only by B; commit_refs(&A) must not
    // touch it.
    let src = format!(
        "{SRC}
         multiverse void only_b(void) {{ if (B) {{ log_(); }} }}
         void bar(void) {{ only_b(); }}"
    );
    let src = src.replace("i64 main(void) { return 0; }", "");
    let src = format!("{src}\n i64 main(void) {{ return 0; }}");
    let program = Program::build(&[("t.c", &src)]).unwrap();
    let mut w = program.boot();
    w.set("A", 1).unwrap();
    w.set("B", 1).unwrap();
    w.commit_refs("A").unwrap();
    let rt = w.rt.as_ref().unwrap();
    let multi = w.sym("multi").unwrap();
    let only_b = w.sym("only_b").unwrap();
    assert!(matches!(
        rt.binding_of(multi),
        Some(multiverse::mvrt::FnBinding::Variant(_))
    ));
    assert_eq!(
        rt.binding_of(only_b),
        Some(multiverse::mvrt::FnBinding::Generic),
        "only_b does not reference A"
    );
}
