//! The optimizer — constant propagation/folding, branch folding, dead-code
//! elimination and CFG cleanup.
//!
//! These are the passes §3 of the paper leans on: the multiverse pass
//! replaces switch reads with constants *before* optimization, and "of
//! special effectiveness are the constant propagation, constant folding,
//! and dead-code elimination as they directly benefit from the introduced
//! constants". [`optimize`] runs the pipeline to a fixpoint, after which
//! variants whose bodies collapsed to the same shape compare equal under
//! [`crate::ir::FuncIr::canonical_key`].

pub mod cfg;
pub mod constfold;
pub mod dce;
pub mod inline;

use crate::ir::FuncIr;

/// Runs all passes to a (bounded) fixpoint.
pub fn optimize(f: &mut FuncIr) {
    for _ in 0..16 {
        let mut changed = false;
        changed |= constfold::run(f);
        changed |= cfg::run(f);
        changed |= dce::run(f);
        if !changed {
            break;
        }
    }
    f.validate();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Inst, IrBin, Operand, Term};
    use crate::lexer::lex;
    use crate::lower::lower_unit;
    use crate::parser::parse;

    fn optimized(src: &str, name: &str) -> FuncIr {
        let mut l = lower_unit(&parse(&lex(src).unwrap()).unwrap()).unwrap();
        let mut f = l.funcs.remove(
            l.funcs
                .iter()
                .position(|f| f.name == name)
                .expect("function present"),
        );
        optimize(&mut f);
        f
    }

    #[test]
    fn constant_expression_folds_to_return() {
        let f = optimized("i64 f(void) { return (2 + 3) * 4 - 6 / 2; }", "f");
        assert_eq!(f.blocks.len(), 1);
        assert!(f.blocks[0].insts.is_empty());
        assert_eq!(f.blocks[0].term, Term::Ret(Some(Operand::Const(17))));
    }

    #[test]
    fn dead_branch_is_eliminated() {
        // if (0) { work(); } collapses away entirely.
        let f = optimized(
            "void work(void) {} void f(void) { if (0) { work(); } }",
            "f",
        );
        assert_eq!(f.blocks.len(), 1);
        assert!(f.blocks[0].insts.is_empty());
        assert!(!f
            .blocks
            .iter()
            .any(|b| b.insts.iter().any(|i| matches!(i, Inst::Call { .. }))));
    }

    #[test]
    fn taken_branch_is_flattened() {
        let f = optimized(
            "i64 g; void f(void) { if (1) { g = 7; } else { g = 9; } }",
            "f",
        );
        assert_eq!(f.blocks.len(), 1);
        assert_eq!(f.blocks[0].insts.len(), 1);
        assert!(matches!(
            &f.blocks[0].insts[0],
            Inst::StoreGlobal {
                src: Operand::Const(7),
                ..
            }
        ));
    }

    #[test]
    fn local_constants_propagate_within_block() {
        let f = optimized(
            "i64 f(void) { i64 x = 5; i64 y = x + 2; return y * x; }",
            "f",
        );
        assert_eq!(f.blocks[0].term, Term::Ret(Some(Operand::Const(35))));
    }

    #[test]
    fn constant_while_false_disappears() {
        let f = optimized("void w(void) {} void f(void) { while (0) { w(); } }", "f");
        assert_eq!(f.blocks.len(), 1);
        assert!(f.blocks[0].insts.is_empty());
    }

    #[test]
    fn side_effects_survive_dce() {
        let f = optimized("void f(void) { __out(65); }", "f");
        assert_eq!(f.blocks[0].insts.len(), 1);
    }

    #[test]
    fn unused_pure_results_are_dropped() {
        let f = optimized("i64 f(i64 a) { i64 unused = a * 3; return a; }", "f");
        assert!(
            !f.blocks[0]
                .insts
                .iter()
                .any(|i| matches!(i, Inst::Bin { op: IrBin::Mul, .. })),
            "multiply feeding only a dead slot must vanish"
        );
    }

    #[test]
    fn division_by_zero_is_not_folded_away() {
        // The fault must still happen at run time.
        let f = optimized("i64 f(void) { i64 x = 1 / 0; return 2; }", "f");
        assert!(f.blocks[0].insts.iter().any(|i| matches!(
            i,
            Inst::Bin {
                op: IrBin::Divs,
                ..
            }
        )));
    }

    #[test]
    fn straightline_blocks_merge() {
        let f = optimized(
            "i64 g; i64 f(i64 x) { if (x) { g = 1; } else { g = 2; } return g; }",
            "f",
        );
        // if/else with dynamic condition: entry + 2 arms + join at most.
        assert!(f.blocks.len() <= 4, "{} blocks", f.blocks.len());
    }

    #[test]
    fn fig1_specialized_smp_false_collapses() {
        // The SMP=false variant of the paper's spinlock: with the switch
        // constant-folded to 0, only the cli remains.
        let src = r#"
            i64 lock_word;
            void spin_lock_irq(void) {
                __cli();
                if (0) {
                    while (__xchg(&lock_word, 1) != 0) { __pause(); }
                }
            }
        "#;
        let f = optimized(src, "spin_lock_irq");
        assert_eq!(f.blocks.len(), 1);
        assert_eq!(f.blocks[0].insts.len(), 1, "only __cli survives");
    }
}
