//! The Linux `alternative`/`alternative_smp` macro family (§1.1),
//! expressed with multiverse.
//!
//! The kernel marks single instructions so boot code can overwrite them
//! with alternatives — e.g. the SMAP guards (`stac`/`clac`) are replaced
//! by NOPs when the boot processor lacks the feature. The paper's claim
//! is that multiverse *subsumes* these hand-rolled mechanisms: mark the
//! feature flag as a switch, wrap the instruction in a multiversed
//! one-liner, and the commit inlines either the instruction or nothing
//! into every call site.
//!
//! The model here uses the memory fence as the stand-in single
//! instruction (MV64 has no `stac`/`clac`): with the feature present the
//! guard executes `mfence`, without it the empty variant is erased into a
//! NOP at each of the call sites — byte-level exactly what
//! `apply_alternatives()` does at boot.

use multiverse::mvc::Options;
use multiverse::{BuildError, Program, World};

/// The SMAP-style guarded copy routine.
pub const SRC: &str = r#"
    // Boot-detected CPU feature, fixed before user space starts.
    multiverse bool cpu_has_smap;

    u8 user_buf[256];
    u8 kernel_buf[256];

    // The alternative-marked guards: a single instruction when the
    // feature exists, nothing otherwise.
    multiverse void smap_allow(void) {
        if (cpu_has_smap) { __mfence(); }
    }
    multiverse void smap_forbid(void) {
        if (cpu_has_smap) { __mfence(); }
    }

    // copy_from_user-style routine with the guards around the access
    // window, as the kernel places stac/clac.
    i64 copy_from_user(i64 n) {
        smap_allow();
        for (i64 i = 0; i < n; i++) {
            kernel_buf[i] = user_buf[i];
        }
        smap_forbid();
        return n;
    }

    i64 main(void) { return 0; }
"#;

/// Builds the kernel and applies the boot-time alternative patching for
/// the detected feature state.
pub fn boot(cpu_has_smap: bool) -> Result<World, BuildError> {
    let program = Program::build(&[("alternative.c", SRC)])?;
    let mut world = program.boot();
    world.set("cpu_has_smap", cpu_has_smap as i64)?;
    world.commit()?;
    Ok(world)
}

/// The dynamic baseline the macros exist to avoid: test the feature flag
/// on every guard execution.
pub fn boot_dynamic(cpu_has_smap: bool) -> Result<World, BuildError> {
    let program = Program::build_with(&[("alternative.c", SRC)], &Options::dynamic())?;
    let mut world = program.boot();
    world.set("cpu_has_smap", cpu_has_smap as i64)?;
    Ok(world)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill_user_buf(w: &mut World) {
        let buf = w.sym("user_buf").unwrap();
        let data: Vec<u8> = (0..=255).collect();
        w.machine.mem.write(buf, &data).unwrap();
    }

    #[test]
    fn copy_works_with_and_without_the_feature() {
        for smap in [false, true] {
            let mut w = boot(smap).unwrap();
            fill_user_buf(&mut w);
            assert_eq!(w.call("copy_from_user", &[64]).unwrap(), 64);
            let kbuf = w.sym("kernel_buf").unwrap();
            let got = w.machine.mem.read_vec(kbuf, 64).unwrap();
            assert_eq!(got, (0..64).collect::<Vec<u8>>(), "smap={smap}");
        }
    }

    #[test]
    fn feature_present_executes_the_instruction() {
        let mut w = boot(true).unwrap();
        let f0 = count_fences(&mut w);
        assert_eq!(f0, 2, "allow + forbid each fence once");
    }

    #[test]
    fn feature_absent_is_patched_to_nops() {
        let mut w = boot(false).unwrap();
        assert_eq!(count_fences(&mut w), 0, "guards erased");
        // And erased means *inlined as NOPs at the call sites* — no calls
        // to the guards remain either.
        let c0 = w.machine.stats.calls;
        w.call("copy_from_user", &[1]).unwrap();
        assert_eq!(
            w.machine.stats.calls - c0,
            0,
            "host entry does not execute call instructions; guards are NOPs"
        );
    }

    fn count_fences(w: &mut World) -> u64 {
        // The cost model charges `fence` cycles only for mfence; count
        // via a cycle-difference fingerprint instead of new stats: run
        // once with and compare against instructions… simplest: use the
        // instruction count of the two guard bodies by calling them
        // directly through their generic entries.
        let s0 = w.machine.stats.instructions;
        let c0 = w.machine.cycles();
        w.call("copy_from_user", &[0]).unwrap();
        let d_insns = w.machine.stats.instructions - s0;
        let d_cycles = w.machine.cycles() - c0;
        // Each executed mfence costs (fence - nop) more than a NOP would,
        // with identical instruction counts across the two builds after
        // inlining. Derive the fence count from the cycle surplus over
        // the all-NOP lower bound of this exact instruction sequence.
        let _ = d_insns;
        // Calibrate: a zero-length copy with NOP guards costs a fixed
        // baseline; measure it from a known-false boot.
        let mut base = boot(false).unwrap();
        let b0 = base.machine.cycles();
        base.call("copy_from_user", &[0]).unwrap();
        let baseline = base.machine.cycles() - b0;
        let fence_cost = base.machine.cost.fence - base.machine.cost.nop;
        (d_cycles.saturating_sub(baseline)) / fence_cost
    }

    #[test]
    fn multiverse_beats_the_dynamic_guard() {
        // The reason the kernel patches instead of testing: per-call
        // overhead on every copy_from_user.
        let n = 2000;
        let mut dynamic = boot_dynamic(false).unwrap();
        let d = dynamic
            .time_calls("copy_from_user", &[4], n, false)
            .unwrap();
        let mut patched = boot(false).unwrap();
        let p = patched
            .time_calls("copy_from_user", &[4], n, false)
            .unwrap();
        assert!(
            p.avg_cycles < d.avg_cycles,
            "patched {} !< dynamic {}",
            p.avg_cycles,
            d.avg_cycles
        );
    }

    #[test]
    fn refeature_at_runtime() {
        // What the macros cannot do and multiverse can: un-apply. (The
        // paper's VM-migration motivation — a feature appearing or
        // vanishing under a live kernel.)
        let mut w = boot(true).unwrap();
        assert_eq!(count_fences(&mut w), 2);
        w.set("cpu_has_smap", 0).unwrap();
        w.commit().unwrap();
        assert_eq!(count_fences(&mut w), 0);
    }
}
