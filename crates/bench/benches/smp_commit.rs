//! E15 — concurrent-commit cost on a truly multi-vCPU machine: commit
//! latency and worker stall cycles vs. core count for both quiesce
//! protocols, plus host-side throughput of the quiesced commit itself.
//!
//! The guest-cycle table is deterministic (the sweep also runs as the
//! `smp_commit_quick` CI gate); the criterion group measures the host
//! wall time of one commit+revert flip against live workers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use multiverse::bench::render_table;
use multiverse::mvrt::CommitStrategy;
use mv_workloads::smp_contention;

fn bench(c: &mut Criterion) {
    let rows = mv_bench::smp_commit_data(&[2, 4, 8], 256, 8);
    println!(
        "{}",
        render_table(
            "E15 — quiesced commit under SMP lock contention (256 iters/worker, 8 flips)",
            &mv_bench::smp_commit_series(&rows)
        )
    );
    for r in &rows {
        assert!(r.consistent, "{} @ {} vCPUs", r.strategy, r.vcpus);
    }
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_smp.json");
    std::fs::write(path, mv_bench::smp_commit_json(&rows)).expect("write BENCH_smp.json");
    println!("wrote {path}\n");

    // Host wall time of one quiesced flip against live workers. The
    // workers get a huge iteration budget and the world is rebooted if
    // they ever drain, so every sample quiesces a machine that is
    // genuinely mid-flight.
    let program = smp_contention::build().expect("build");
    let fresh = |n: usize| {
        let mut w = program.boot_smp(n);
        w.smp.set_seed(7);
        w.set("config_smp", 1).unwrap();
        w.spawn_all("worker", &[1_000_000]).unwrap();
        for _ in 0..4 {
            w.smp.step_round();
        }
        w
    };
    let mut g = c.benchmark_group("smp_commit");
    for strategy in [CommitStrategy::StopMachine, CommitStrategy::Breakpoint] {
        for vcpus in [2usize, 4, 8] {
            let mut w = fresh(vcpus);
            g.bench_with_input(BenchmarkId::new(strategy.name(), vcpus), &vcpus, |b, &n| {
                b.iter(|| {
                    if !w.smp.any_live() {
                        w = fresh(n);
                    }
                    w.smp.step_round();
                    w.commit_quiesced(strategy).expect("commit");
                    w.revert_quiesced(strategy).expect("revert")
                })
            });
        }
    }
    g.finish();
}

criterion_group! {
    name = benches;
    // Simulated workloads are deterministic; short sampling keeps the
    // full suite fast without changing any conclusion.
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(1));
    targets = bench
}
criterion_main!(benches);
