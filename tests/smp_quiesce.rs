//! Atomicity of quiesced concurrent commits (the E15 safety property):
//! for **every** fault index of every injectable op, at several
//! scheduler interleavings, on both [`CommitStrategy`] protocols, a
//! failed quiesced commit must leave the text segment byte-identical to
//! its pre-commit state — no torn call site, no stranded trap byte —
//! and the worker vCPUs must run to completion unharmed. A successful
//! quiesced commit must produce an image byte-identical to the same
//! plan committed on an idle single-vCPU world.

use multiverse::mvrt::CommitStrategy;
use multiverse::mvvm::{FaultOp, FaultPlan};
use multiverse::{Program, SmpWorld};
use mv_workloads::smp_contention;

const VCPUS: usize = 4;
const ITERS: u64 = 96;
const SEEDS: [u64; 3] = [1, 7, 42];
/// Rounds run before the quiesce, so every commit happens mid-flight.
const WARM_ROUNDS: u64 = 6;
const MAX_ROUNDS: u64 = 10_000_000;
const STRATEGIES: [CommitStrategy; 2] = [CommitStrategy::StopMachine, CommitStrategy::Breakpoint];

/// Boots the contention workload with live workers mid-loop.
fn boot_workers(p: &Program, seed: u64) -> SmpWorld {
    let mut w = p.boot_smp(VCPUS);
    w.smp.set_seed(seed);
    w.set("config_smp", 1).unwrap();
    w.spawn_all("worker", &[ITERS]).unwrap();
    for _ in 0..WARM_ROUNDS {
        w.smp.step_round();
    }
    w
}

fn text_of(p: &Program, w: &SmpWorld) -> Vec<u8> {
    let (taddr, tsize) = p.exe().section(multiverse::mvobj::SEC_TEXT);
    w.smp.machine.mem.read_vec(taddr, tsize as usize).unwrap()
}

/// The reference image: the identical plan committed on an idle
/// single-vCPU world, where no concurrency question exists.
fn single_vcpu_committed_text(p: &Program) -> Vec<u8> {
    let mut w = p.boot();
    w.set("config_smp", 1).unwrap();
    w.commit().unwrap();
    let (taddr, tsize) = p.exe().section(multiverse::mvobj::SEC_TEXT);
    w.machine.mem.read_vec(taddr, tsize as usize).unwrap()
}

/// A quiesced commit against running workers must yield the same bytes
/// as a single-vCPU commit of the same plan, at every interleaving, and
/// a quiesced revert must restore the pristine image — while the
/// workers lose not a single locked increment.
#[test]
fn quiesced_image_matches_single_vcpu_commit() {
    let p = smp_contention::build().unwrap();
    let reference = single_vcpu_committed_text(&p);
    for strategy in STRATEGIES {
        for seed in SEEDS {
            let mut w = boot_workers(&p, seed);
            let pristine = text_of(&p, &w);
            assert_ne!(pristine, reference, "commit must change text");

            let q = w.commit_quiesced(strategy).unwrap();
            assert!(q.commit.variants_committed >= 1);
            assert_eq!(
                text_of(&p, &w),
                reference,
                "{strategy} seed {seed}: committed image diverged from single-vCPU commit"
            );

            let r = w.revert_quiesced(strategy).unwrap();
            assert!(r.commit.variants_committed >= 1 || r.commit.sites_touched >= 1);
            assert_eq!(
                text_of(&p, &w),
                pristine,
                "{strategy} seed {seed}: revert did not restore the pristine image"
            );

            w.run(MAX_ROUNDS).unwrap();
            assert_eq!(
                w.get("counter").unwrap(),
                (VCPUS as i64) * (ITERS as i64),
                "{strategy} seed {seed}: an increment was lost"
            );
        }
    }
}

/// The exhaustive sweep: fail every position of every injectable op of
/// the quiesced commit, at several interleavings, on both protocols.
/// Every failure must surface as `Err` with pristine text; the workers
/// must then finish with an exact counter; the healed retry must
/// converge on the single-vCPU reference image.
#[test]
fn fault_sweep_never_tears_text_or_workers() {
    let p = smp_contention::build().unwrap();
    let reference = single_vcpu_committed_text(&p);
    for strategy in STRATEGIES {
        // Probe: count the ops one clean quiesced commit performs (for
        // breakpoint-first this includes every trap plant and restore).
        let mut probe = boot_workers(&p, SEEDS[0]);
        probe.commit_quiesced(strategy).unwrap();
        let d = probe.rt.as_ref().unwrap().stats;
        let schedule = [
            (FaultOp::TextWrite, d.journal_entries),
            (FaultOp::Mprotect, d.mprotects),
            (FaultOp::IcacheFlush, d.icache_flushes),
        ];
        assert!(
            d.journal_entries >= 2 && d.mprotects >= 2,
            "{strategy}: commit too small to sweep ({d:?})"
        );

        for (op, count) in schedule {
            for n in 1..=count {
                for seed in SEEDS {
                    let mut w = boot_workers(&p, seed);
                    let pristine = text_of(&p, &w);

                    w.smp.machine.inject_fault(FaultPlan::new(op, n));
                    match w.commit_quiesced(strategy) {
                        Err(_) => {
                            // The commit failed: the rollback (and, for
                            // breakpoint-first, the trap unwind) must
                            // leave the text byte-identical.
                            assert_eq!(
                                text_of(&p, &w),
                                pristine,
                                "{strategy} {op:?}@{n} seed {seed} tore the text segment"
                            );
                        }
                        Ok(_) => {
                            // A lost icache flush is the one fault the
                            // protocol absorbs: its own IPI shootdown
                            // re-syncs every vCPU, so the commit lands
                            // safely. Everything else must surface.
                            assert_eq!(
                                op,
                                FaultOp::IcacheFlush,
                                "{strategy} {op:?}@{n} seed {seed} was swallowed"
                            );
                            assert_eq!(
                                text_of(&p, &w),
                                reference,
                                "{strategy} {op:?}@{n} seed {seed}: shootdown-repaired \
                                 commit diverged"
                            );
                        }
                    }

                    // The machine was released: every worker finishes and
                    // not one locked increment is lost to a torn fetch or
                    // stale decode.
                    w.run(MAX_ROUNDS).unwrap();
                    assert_eq!(
                        w.get("counter").unwrap(),
                        (VCPUS as i64) * (ITERS as i64),
                        "{strategy} {op:?}@{n} seed {seed}: worker damaged"
                    );

                    // One-shot fault has fired; the identical commit heals
                    // (or re-lands) exactly on the reference image.
                    w.commit_quiesced(strategy)
                        .unwrap_or_else(|e| panic!("{strategy} {op:?}@{n} heal failed: {e}"));
                    assert_eq!(
                        text_of(&p, &w),
                        reference,
                        "{strategy} {op:?}@{n} seed {seed}: healed image diverged"
                    );
                }
            }
        }
    }
}

/// A partial (per-switch) quiesced commit under contention also sweeps
/// clean: `commit_refs(config_smp)` is what the paper's case studies
/// call while the kernel runs.
#[test]
fn commit_refs_fault_sweep_is_atomic() {
    let p = smp_contention::build().unwrap();
    for strategy in STRATEGIES {
        let mut probe = boot_workers(&p, SEEDS[0]);
        smp_contention::commit_refs_once(&mut probe, strategy).unwrap();
        let d = probe.rt.as_ref().unwrap().stats;
        for n in 1..=d.journal_entries {
            let mut w = boot_workers(&p, SEEDS[1]);
            let pristine = text_of(&p, &w);
            w.smp
                .machine
                .inject_fault(FaultPlan::new(FaultOp::TextWrite, n));
            smp_contention::commit_refs_once(&mut w, strategy)
                .expect_err(&format!("{strategy} TextWrite@{n} must surface"));
            assert_eq!(text_of(&p, &w), pristine, "{strategy} TextWrite@{n}");
            w.run(MAX_ROUNDS).unwrap();
            assert_eq!(w.get("counter").unwrap(), (VCPUS as i64) * (ITERS as i64));
        }
    }
}
