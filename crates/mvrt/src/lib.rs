#![warn(missing_docs)]
//! The multiverse run-time library.
//!
//! This is the reproduction of the paper's <850-line C run-time (§4–§5): a
//! light-weight binary-patching mechanism that interprets the descriptors
//! emitted by the compiler, selects function variants according to the
//! *current* values of the configuration switches, and installs them into
//! the running process image.
//!
//! # The mechanism (Fig. 3)
//!
//! For a `commit`, the runtime:
//!
//! 1. reads every configuration switch from guest memory (width- and
//!    signedness-aware, per its 32-byte descriptor);
//! 2. for each multiversed function, searches a variant whose guard ranges
//!    all admit the current values — if none fits, the function *reverts to
//!    the generic* body, which is always correct, and the fallback is
//!    signalled to the caller (Fig. 3 d);
//! 3. patches every recorded call site: after verifying the site still
//!    contains the expected `call rel32`, the call target is replaced —
//!    or, if the variant body (minus its final `ret`) fits into the 5-byte
//!    call site, the body is **inlined** and padded with wide NOPs, which
//!    erases empty bodies entirely (Fig. 3 c);
//! 4. saves the first 5 bytes of the generic function and overwrites them
//!    with an unconditional `jmp` to the variant, so calls the compiler
//!    never saw (function pointers, foreign code) also reach the committed
//!    variant — the **completeness** argument of §7.4;
//! 5. performs every text write inside an `mprotect(RW)` … `mprotect(RX)`
//!    window and flushes the instruction cache afterwards. The `mvvm`
//!    machine faults on unwritable text and executes stale code when the
//!    flush is forgotten, so both steps are load-bearing.
//!
//! `revert` restores the saved prologues and re-points all call sites at
//! the generic functions.
//!
//! # Table 1 API
//!
//! | paper | here |
//! |---|---|
//! | `multiverse_commit()` | [`Runtime::commit`] |
//! | `multiverse_revert()` | [`Runtime::revert`] |
//! | `multiverse_commit_refs(&var)` | [`Runtime::commit_refs`] |
//! | `multiverse_revert_refs(&var)` | [`Runtime::revert_refs`] |
//! | `multiverse_commit_func(&fn)` | [`Runtime::commit_func`] |
//! | `multiverse_revert_func(&fn)` | [`Runtime::revert_func`] |
//!
//! Function-pointer configuration switches (the §4 extension used by the
//! PV-Ops case study) are handled by the same call-site patcher; see
//! [`fnptr`].

pub mod backend;
pub mod error;
pub mod fnptr;
pub mod journal;
pub mod metrics;
pub mod mvd;
pub mod patch;
pub mod quiesce;
pub mod runtime;
pub mod stats;
pub mod txn;

pub use backend::{HostTierBackend, Mv64RtBackend, RtBackend};
pub use error::{CommitPhase, RtError};
pub use journal::{Journal, JournalEntry};
pub use metrics::RtMetrics;
pub use mvd::{
    CommitDaemon, Completion, Lane, MvdConfig, MvdMetrics, MvdOp, MvdOutcome, MvdStats,
    QuarantineEntry, RequestId,
};
pub use quiesce::{CommitStrategy, QuiesceOp, QuiesceReport};
pub use runtime::{CommitReport, FnBinding, PatchStrategy, Runtime};
pub use stats::{PatchStats, PatchTiming};
pub use txn::{FnHealth, RetryPolicy, SiteHealth, ValidationReport};

// Re-exported so downstream code can consume traces (sinks, span
// reconstruction) and metrics (registry, exporters, residency)
// without naming the crates separately.
pub use mvmetrics;
pub use mvtrace;
