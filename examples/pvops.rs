//! The Fig. 4 (right) paravirtualization scenario: one kernel binary that
//! binds its interrupt primitives to native instructions on bare metal
//! and to Xen hypercall stubs inside a PV guest.
//!
//! ```sh
//! cargo run --release --example pvops
//! ```

use multiverse::mvvm::Platform;
use mv_workloads::pvops::{boot, measure, PvBuild};

fn main() {
    let n = 20_000;

    println!("Fig. 4 (right) — sti+cli average cycles:");
    println!("{:30} {:>10} {:>14}", "", "Native", "XEN (guest)");
    for build in [
        PvBuild::Current,
        PvBuild::Multiverse,
        PvBuild::IfdefDisabled,
    ] {
        let native = measure(&mut boot(build, Platform::Native).unwrap(), n).unwrap();
        let xen = measure(&mut boot(build, Platform::XenGuest).unwrap(), n).unwrap();
        println!("{:30} {native:>10.2} {xen:>14.2}", build.label());
    }

    println!();
    println!("Why the gap in the guest? The current PV-Ops mechanism uses a");
    println!("custom calling convention with no scratch registers: the Xen");
    println!("implementations save and restore every register they touch,");
    println!("even when the caller holds nothing live. The multiversed");
    println!("variants are ordinary functions under the standard convention,");
    println!("so the compiler handles the low-level details (§6.1).");
    println!();
    println!("And the [ifdef] kernel inside the guest shows the raw cost of");
    println!("unparavirtualized privileged instructions: every cli/sti traps");
    println!("to the hypervisor.");
}
