//! Binary encoding of MV64 instructions.
//!
//! The encoding is fixed-length per opcode (cf. [`Insn::len`]), with
//! little-endian immediates. The opcodes for `call rel32` (`0xE8`) and
//! `jmp rel32` (`0xE9`) deliberately match x86, and wide NOPs come in every
//! length from 1 to 15 bytes so the patcher can erase arbitrary call sites.

use crate::insn::{Insn, Width};

/// Opcode byte for `call rel32`.
pub const OP_CALL_REL: u8 = 0xE8;
/// Opcode byte for `jmp rel32`.
pub const OP_JMP: u8 = 0xE9;
/// Opcode byte for the single-byte NOP.
pub const OP_NOP1: u8 = 0x90;
/// Opcode byte for the wide NOP (`0x91 len pad…`).
pub const OP_NOPW: u8 = 0x91;
/// Opcode byte for the one-byte trap — deliberately x86's `int3`
/// (`0xCC`), the byte kernels plant first when cross-modifying live text.
pub const OP_TRAP: u8 = 0xCC;

pub(crate) const OP_MOV_RR: u8 = 0x01;
pub(crate) const OP_MOV_RI: u8 = 0x02;
pub(crate) const OP_LEA: u8 = 0x03;
pub(crate) const OP_LOAD: u8 = 0x04;
pub(crate) const OP_STORE: u8 = 0x05;
pub(crate) const OP_LOAD_ABS: u8 = 0x06;
pub(crate) const OP_STORE_ABS: u8 = 0x07;
pub(crate) const OP_ALU_RR: u8 = 0x08;
pub(crate) const OP_ALU_RI: u8 = 0x09;
pub(crate) const OP_CMP_RR: u8 = 0x0A;
pub(crate) const OP_CMP_RI: u8 = 0x0B;
pub(crate) const OP_JCC: u8 = 0x0C;
pub(crate) const OP_CALL_IND: u8 = 0x0D;
pub(crate) const OP_CALL_MEM: u8 = 0x0E;
pub(crate) const OP_PUSH: u8 = 0x0F;
pub(crate) const OP_POP: u8 = 0x10;
pub(crate) const OP_RET: u8 = 0x11;
pub(crate) const OP_HALT: u8 = 0x12;
pub(crate) const OP_STI: u8 = 0x13;
pub(crate) const OP_CLI: u8 = 0x14;
pub(crate) const OP_HYPERCALL: u8 = 0x15;
pub(crate) const OP_RDTSC: u8 = 0x16;
pub(crate) const OP_PAUSE: u8 = 0x17;
pub(crate) const OP_OUT: u8 = 0x18;
pub(crate) const OP_XCHG_LOCK: u8 = 0x19;
pub(crate) const OP_MFENCE: u8 = 0x1A;
pub(crate) const OP_SETCC: u8 = 0x1B;

fn width_flags(width: Width, signed: bool) -> u8 {
    width.encode() | if signed { 0b100 } else { 0 }
}

/// Encodes `insn`, appending its bytes to `out`.
pub fn encode_into(insn: &Insn, out: &mut Vec<u8>) {
    let start = out.len();
    match *insn {
        Insn::MovRR { dst, src } => {
            out.extend_from_slice(&[OP_MOV_RR, dst.raw(), src.raw()]);
        }
        Insn::MovRI { dst, imm } => {
            out.extend_from_slice(&[OP_MOV_RI, dst.raw()]);
            out.extend_from_slice(&imm.to_le_bytes());
        }
        Insn::Lea { dst, addr } => {
            out.extend_from_slice(&[OP_LEA, dst.raw()]);
            out.extend_from_slice(&addr.to_le_bytes());
        }
        Insn::Load {
            dst,
            base,
            off,
            width,
            signed,
        } => {
            out.extend_from_slice(&[OP_LOAD, dst.raw(), base.raw()]);
            out.extend_from_slice(&off.to_le_bytes());
            out.push(width_flags(width, signed));
        }
        Insn::Store {
            src,
            base,
            off,
            width,
        } => {
            out.extend_from_slice(&[OP_STORE, src.raw(), base.raw()]);
            out.extend_from_slice(&off.to_le_bytes());
            out.push(width_flags(width, false));
        }
        Insn::LoadAbs {
            dst,
            addr,
            width,
            signed,
        } => {
            out.extend_from_slice(&[OP_LOAD_ABS, dst.raw()]);
            out.extend_from_slice(&addr.to_le_bytes());
            out.push(width_flags(width, signed));
        }
        Insn::StoreAbs { src, addr, width } => {
            out.extend_from_slice(&[OP_STORE_ABS, src.raw()]);
            out.extend_from_slice(&addr.to_le_bytes());
            out.push(width_flags(width, false));
        }
        Insn::AluRR { op, dst, src } => {
            out.extend_from_slice(&[OP_ALU_RR, op.encode(), dst.raw(), src.raw()]);
        }
        Insn::AluRI { op, dst, imm } => {
            out.extend_from_slice(&[OP_ALU_RI, op.encode(), dst.raw()]);
            out.extend_from_slice(&imm.to_le_bytes());
        }
        Insn::CmpRR { a, b } => {
            out.extend_from_slice(&[OP_CMP_RR, a.raw(), b.raw()]);
        }
        Insn::CmpRI { a, imm } => {
            out.extend_from_slice(&[OP_CMP_RI, a.raw()]);
            out.extend_from_slice(&imm.to_le_bytes());
        }
        Insn::Jmp { rel } => {
            out.push(OP_JMP);
            out.extend_from_slice(&rel.to_le_bytes());
        }
        Insn::Jcc { cc, rel } => {
            out.extend_from_slice(&[OP_JCC, cc.encode()]);
            out.extend_from_slice(&rel.to_le_bytes());
        }
        Insn::CallRel { rel } => {
            out.push(OP_CALL_REL);
            out.extend_from_slice(&rel.to_le_bytes());
        }
        Insn::CallInd { target } => {
            out.extend_from_slice(&[OP_CALL_IND, target.raw()]);
        }
        Insn::CallMem { addr } => {
            out.push(OP_CALL_MEM);
            out.extend_from_slice(&addr.to_le_bytes());
        }
        Insn::Push { src } => out.extend_from_slice(&[OP_PUSH, src.raw()]),
        Insn::Pop { dst } => out.extend_from_slice(&[OP_POP, dst.raw()]),
        Insn::Ret => out.push(OP_RET),
        Insn::Halt => out.push(OP_HALT),
        Insn::Sti => out.push(OP_STI),
        Insn::Cli => out.push(OP_CLI),
        Insn::Hypercall { nr } => out.extend_from_slice(&[OP_HYPERCALL, nr]),
        Insn::Rdtsc { dst } => out.extend_from_slice(&[OP_RDTSC, dst.raw()]),
        Insn::Pause => out.push(OP_PAUSE),
        Insn::Out { src } => out.extend_from_slice(&[OP_OUT, src.raw()]),
        Insn::XchgLock { val, base } => {
            out.extend_from_slice(&[OP_XCHG_LOCK, val.raw(), base.raw()]);
        }
        Insn::Setcc { cc, dst } => {
            out.extend_from_slice(&[OP_SETCC, cc.encode(), dst.raw()]);
        }
        Insn::Mfence => out.push(OP_MFENCE),
        Insn::Trap => out.push(OP_TRAP),
        Insn::Nop { len } => {
            assert!(
                (1..=crate::MAX_NOP_LEN as u8).contains(&len),
                "nop length {len} out of range 1..=15"
            );
            if len == 1 {
                out.push(OP_NOP1);
            } else {
                out.push(OP_NOPW);
                out.push(len);
                out.resize(start + len as usize, 0);
            }
        }
    }
    debug_assert_eq!(out.len() - start, insn.len(), "length mismatch for {insn}");
}

/// Encodes `insn` into a fresh byte vector.
pub fn encode(insn: &Insn) -> Vec<u8> {
    let mut v = Vec::with_capacity(insn.len());
    encode_into(insn, &mut v);
    v
}

/// Produces a byte sequence of NOP instructions filling exactly `len` bytes.
///
/// Used by the patcher to erase an empty function body at a call site
/// (Fig. 3 c of the paper). Any `len` is supported by chaining wide NOPs.
pub fn nop_fill(len: usize) -> Vec<u8> {
    let mut v = Vec::with_capacity(len);
    let mut remaining = len;
    while remaining > 0 {
        // A trailing remainder of 16 must not emit a 15-byte NOP followed by
        // an invalid 1-byte tail of a wide NOP, so split 16 as 8 + 8.
        let chunk = match remaining {
            16 => 8,
            n => n.min(crate::MAX_NOP_LEN),
        };
        encode_into(&Insn::Nop { len: chunk as u8 }, &mut v);
        remaining -= chunk;
    }
    debug_assert_eq!(v.len(), len);
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::decode;
    use crate::reg::Reg;

    #[test]
    fn lengths_match_declared() {
        let insns = [
            Insn::MovRR {
                dst: Reg::R0,
                src: Reg::R1,
            },
            Insn::MovRI {
                dst: Reg::R2,
                imm: -7,
            },
            Insn::CallRel { rel: 42 },
            Insn::Jmp { rel: -42 },
            Insn::Ret,
            Insn::Nop { len: 1 },
            Insn::Nop { len: 15 },
        ];
        for i in &insns {
            assert_eq!(encode(i).len(), i.len(), "{i}");
        }
    }

    #[test]
    fn nop_fill_covers_every_length() {
        for len in 1..200 {
            let bytes = nop_fill(len);
            assert_eq!(bytes.len(), len);
            // The fill must decode as a pure NOP sled.
            let mut pos = 0;
            while pos < len {
                let (insn, n) = decode(&bytes[pos..]).expect("decodable");
                assert!(insn.is_nop(), "at {pos}: {insn}");
                pos += n;
            }
            assert_eq!(pos, len);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn nop_zero_rejected() {
        encode(&Insn::Nop { len: 0 });
    }
}
