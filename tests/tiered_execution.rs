//! Differential oracle for the tiered execution engine: under every
//! [`ExecTier`] the machine must be *observation-identical* to the
//! tierless interpreter — same results, same cycle counts, same
//! [`Stats`], same committed text images, same SMP schedules — on real
//! compiled programs, through real runtime commits/reverts, through
//! quiesced concurrent commits, and through injected commit faults.
//! The block layers memoize decode, never semantics; these tests are
//! the contract.

use multiverse::mvasm::{self, Insn, Reg};
use multiverse::mvobj::{self, link, Layout, Object, Prot, SectionKind, Symbol};
use multiverse::mvrt::CommitStrategy;
use multiverse::mvvm::{ExecTier, FaultOp, FaultPlan, SmpMachine, Stats, PAGE_SIZE};
use multiverse::{Program, SmpWorld};
use mv_workloads::smp_contention;

const VCPUS: usize = 4;
const ITERS: u64 = 96;
const WARM_ROUNDS: u64 = 6;
const MAX_ROUNDS: u64 = 10_000_000;

const SRC: &str = r#"
    multiverse bool fast;
    multiverse i64 pick(void) {
        if (fast) { return 1; }
        return 2;
    }
    i64 use_it(void) { return pick(); }
    i64 main(void) { return 0; }
"#;

/// A full commit/revert life cycle on a compiled program: every call
/// result, the cycle count and the machine [`Stats`] must be identical
/// at every tier — the runtime's patches and icache flushes must
/// invalidate blocks precisely enough that no stale variant survives
/// and no fresh one appears early.
#[test]
fn compiled_program_commit_cycle_is_tier_invariant() {
    let program = Program::build(&[("t.c", SRC)]).unwrap();
    let run = |tier: ExecTier| -> (Vec<u64>, u64, Stats, u64) {
        let mut w = program.boot();
        w.machine.set_tier(tier);
        let mut results = Vec::new();
        for _ in 0..24 {
            results.push(w.call("use_it", &[]).unwrap());
        }
        w.set("fast", 1).unwrap();
        w.commit().unwrap();
        for _ in 0..24 {
            results.push(w.call("use_it", &[]).unwrap());
        }
        w.revert().unwrap();
        results.push(w.call("use_it", &[]).unwrap());
        w.set("fast", 0).unwrap();
        results.push(w.call("use_it", &[]).unwrap());
        (
            results,
            w.cycles(),
            w.machine.stats,
            w.machine.block_stats().hits,
        )
    };
    let (base, cycles, stats, _) = run(ExecTier::Tierless);
    assert_eq!(&base[..24], &[2; 24], "generic before commit");
    assert_eq!(&base[24..48], &[1; 24], "variant after commit");
    assert_eq!(base[48], 1, "reverted generic still evaluates fast=1");
    assert_eq!(base[49], 2, "generic reads the switch dynamically again");
    for tier in [ExecTier::Block, ExecTier::Superblock] {
        let (r, c, s, hits) = run(tier);
        assert_eq!(r, base, "{tier}: results diverged");
        assert_eq!(c, cycles, "{tier}: cycles diverged");
        assert_eq!(s, stats, "{tier}: stats diverged");
        assert!(hits > 0, "{tier}: repeated calls must replay blocks");
    }
}

fn boot_workers(p: &Program, tier: ExecTier, seed: u64) -> SmpWorld {
    let mut w = p.boot_smp(VCPUS);
    w.smp.set_seed(seed);
    w.smp.set_tier(tier);
    w.set("config_smp", 1).unwrap();
    w.spawn_all("worker", &[ITERS]).unwrap();
    for _ in 0..WARM_ROUNDS {
        w.smp.step_round();
    }
    w
}

fn text_of(p: &Program, w: &SmpWorld) -> Vec<u8> {
    let (taddr, tsize) = p.exe().section(mvobj::SEC_TEXT);
    w.smp.machine.mem.read_vec(taddr, tsize as usize).unwrap()
}

/// Quiesced commit + revert against live contending workers: the
/// committed image, the final image, every per-vCPU cycle counter, the
/// aggregate stats and the locked counter must match the tierless run
/// exactly, under both quiesce protocols.
#[test]
fn quiesced_commits_are_tier_invariant() {
    let p = smp_contention::build().unwrap();
    for strategy in [CommitStrategy::StopMachine, CommitStrategy::Breakpoint] {
        let run = |tier: ExecTier| {
            let mut w = boot_workers(&p, tier, 7);
            w.commit_quiesced(strategy).unwrap();
            let committed = text_of(&p, &w);
            for _ in 0..WARM_ROUNDS {
                w.smp.step_round();
            }
            w.revert_quiesced(strategy).unwrap();
            w.run(MAX_ROUNDS).unwrap();
            let cycles: Vec<u64> = (0..VCPUS).map(|i| w.smp.cycles_of(i)).collect();
            let counter = w.get("counter").unwrap();
            (
                committed,
                text_of(&p, &w),
                cycles,
                w.smp.total_stats(),
                counter,
            )
        };
        let base = run(ExecTier::Tierless);
        assert_eq!(
            base.4,
            (VCPUS as i64) * (ITERS as i64),
            "{strategy}: tierless lost an increment"
        );
        for tier in [ExecTier::Block, ExecTier::Superblock] {
            assert_eq!(run(tier), base, "{strategy} {tier}: diverged from tierless");
        }
    }
}

/// Commit faults at several schedule positions: a failed quiesced
/// commit must roll back to the pristine image and the workers must
/// finish exact — with per-vCPU cycles identical at every tier, so the
/// rollback path is observation-identical too.
#[test]
fn faulted_quiesced_commits_are_tier_invariant() {
    let p = smp_contention::build().unwrap();
    for (op, n) in [(FaultOp::TextWrite, 2), (FaultOp::Mprotect, 1)] {
        let run = |tier: ExecTier| {
            let mut w = boot_workers(&p, tier, 42);
            let pristine = text_of(&p, &w);
            w.smp.machine.inject_fault(FaultPlan::new(op, n));
            w.commit_quiesced(CommitStrategy::Breakpoint)
                .expect_err("injected fault must surface");
            assert_eq!(text_of(&p, &w), pristine, "{tier} {op:?}@{n}: torn text");
            w.run(MAX_ROUNDS).unwrap();
            let cycles: Vec<u64> = (0..VCPUS).map(|i| w.smp.cycles_of(i)).collect();
            (cycles, w.get("counter").unwrap(), text_of(&p, &w))
        };
        let base = run(ExecTier::Tierless);
        assert_eq!(base.1, (VCPUS as i64) * (ITERS as i64), "{op:?}@{n}");
        for tier in [ExecTier::Block, ExecTier::Superblock] {
            assert_eq!(run(tier), base, "{op:?}@{n} {tier}: diverged");
        }
    }
}

/// An executable whose `straddle` function starts 2 bytes before a page
/// boundary, so its 10-byte `mov r0, imm` encoding spans two pages; the
/// imm field lives entirely on the tail page.
fn straddle_exe() -> (mvobj::Executable, u64) {
    let mut a = mvasm::Assembler::new();
    a.call_sym("straddle", false);
    a.emit(Insn::Halt);
    while a.len() < PAGE_SIZE as usize - 2 {
        a.emit(Insn::Nop { len: 1 });
    }
    let off = a.len() as u64;
    a.mov_ri(Reg::R0, 1);
    a.ret();
    let blob = a.finish().unwrap();
    let mut o = Object::new("t");
    o.append(mvobj::SEC_TEXT, SectionKind::Text, &blob.bytes);
    o.define(Symbol::func("main", mvobj::SEC_TEXT, 0, 6));
    o.define(Symbol::func("straddle", mvobj::SEC_TEXT, off, 11));
    for f in &blob.fixups {
        let kind = match f.kind {
            mvasm::FixupKind::Rel32 { next_insn } => mvobj::RelocKind::Rel32 {
                next_insn: next_insn as u64,
            },
            mvasm::FixupKind::Abs64 => mvobj::RelocKind::Abs64,
        };
        o.relocate(mvobj::Reloc {
            section: mvobj::SEC_TEXT.into(),
            offset: f.offset as u64,
            kind,
            symbol: f.symbol.clone(),
            addend: f.addend,
        });
    }
    let exe = link(&[o], &Layout::default()).unwrap();
    let entry = exe.symbol("straddle").unwrap();
    (exe, entry)
}

/// Page-straddling patch site under *ranged* remote shootdowns, in the
/// SMP sticky-icache discipline: a shootdown covering only the patched
/// tail-page bytes does **not** evict the decode (the instruction
/// *starts* on the head page — the same instruction-start-address rule
/// the per-insn cache uses), while a shootdown covering the start
/// refreshes it. Every tier must observe the exact same staleness.
#[test]
fn straddling_patch_under_ranged_shootdown_is_tier_invariant() {
    let run = |tier: ExecTier| {
        let (exe, straddle) = straddle_exe();
        let imm = straddle + 2; // first byte of the MovRI immediate
        assert_eq!(imm % PAGE_SIZE, 0, "imm field must open the tail page");
        let mut smp = SmpMachine::boot(&exe, 2);
        smp.set_tier(tier);
        fn observe(smp: &mut SmpMachine, entry: u64) -> Vec<u64> {
            for i in 0..2 {
                smp.spawn(i, entry, &[]).unwrap();
            }
            smp.run_until_done(1000).unwrap()
        }
        assert_eq!(
            observe(&mut smp, exe.entry),
            vec![1, 1],
            "{tier}: warm both vCPU caches"
        );

        // Patch the immediate (tail page only) host-side.
        smp.machine.mem.mprotect(imm, 8, Prot::RW).unwrap();
        smp.machine.mem.write(imm, &2i64.to_le_bytes()).unwrap();
        smp.machine.mem.mprotect(imm, 8, Prot::RX).unwrap();

        // A shootdown of just the patched bytes misses the insn start.
        smp.flush_remote(Some((imm, imm + 8)));
        let after_tail_flush = observe(&mut smp, exe.entry);

        // A shootdown covering the instruction start evicts it.
        smp.flush_remote(Some((straddle, straddle + 10)));
        let after_full_flush = observe(&mut smp, exe.entry);
        (
            after_tail_flush,
            after_full_flush,
            smp.block_stats().evictions,
        )
    };
    let (tail, full, _) = run(ExecTier::Tierless);
    assert_eq!(
        tail,
        vec![1, 1],
        "start-address rule: tail-only flush keeps stale"
    );
    assert_eq!(full, vec![2, 2], "flush over the start refreshes");
    for tier in [ExecTier::Block, ExecTier::Superblock] {
        let (t, f, evictions) = run(tier);
        assert_eq!((t, f), (tail.clone(), full.clone()), "{tier}: diverged");
        assert!(
            evictions >= 1,
            "{tier}: the ranged shootdown must evict blocks"
        );
    }
}
