//! A small assembler: symbolic instructions with labels and symbol
//! references, resolved to bytes plus relocation fixups.
//!
//! The compiler backend ([`mvc`]'s code generator) drives this assembler.
//! References to symbols in other sections or translation units cannot be
//! resolved here; they are recorded as [`Fixup`]s which the linker (in
//! `mvobj`) turns into relocations. This mirrors the paper's §5: descriptor
//! and code addresses are injected via ordinary relocation entries, which is
//! what makes position-independent images work "for free".
//!
//! [`mvc`]: https://crates.io/crates/mvc

use crate::encode::encode_into;
use crate::insn::{Cond, Insn, Width};
use crate::reg::Reg;
use std::collections::HashMap;

/// What kind of field a fixup patches.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FixupKind {
    /// A 32-bit displacement relative to the end of the instruction
    /// (`call rel32` / `jmp rel32` / `jcc`).
    Rel32 {
        /// Offset of the first byte *after* the instruction, relative to
        /// the start of the emitted code.
        next_insn: u32,
    },
    /// A 64-bit absolute address field.
    Abs64,
}

/// An unresolved symbol reference inside emitted code.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Fixup {
    /// Byte offset of the field to patch, relative to the start of the
    /// emitted code.
    pub offset: u32,
    /// Field kind.
    pub kind: FixupKind,
    /// Referenced symbol name.
    pub symbol: String,
    /// Constant added to the symbol address.
    pub addend: i64,
}

/// Label placed on an emitted byte offset.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LabelDef {
    /// Label name (local to this assembly).
    pub name: String,
    /// Byte offset of the label.
    pub offset: u32,
}

#[derive(Clone, Debug)]
enum PendingBranch {
    Jmp { at: usize, label: String },
    Jcc { at: usize, label: String },
}

/// Incremental assembler for one function or code blob.
///
/// # Examples
///
/// ```
/// use mvasm::{Assembler, Insn, Reg, Cond};
///
/// let mut a = Assembler::new();
/// a.cmp_ri(Reg::R0, 0);
/// a.jcc("skip", Cond::Eq);
/// a.mov_ri(Reg::R0, 1);
/// a.label("skip");
/// a.ret();
/// let code = a.finish().unwrap();
/// assert!(code.fixups.is_empty());
/// ```
#[derive(Default)]
pub struct Assembler {
    bytes: Vec<u8>,
    labels: HashMap<String, u32>,
    pending: Vec<PendingBranch>,
    fixups: Vec<Fixup>,
    callsites: Vec<u32>,
}

/// Finished assembly output.
#[derive(Clone, Debug, Default)]
pub struct CodeBlob {
    /// Encoded instruction bytes.
    pub bytes: Vec<u8>,
    /// Unresolved external references.
    pub fixups: Vec<Fixup>,
    /// Offsets of `call rel32` instructions emitted via
    /// [`Assembler::call_sym`] with call-site recording enabled. These feed
    /// the `multiverse.callsites` descriptors.
    pub callsites: Vec<u32>,
}

/// Error from [`Assembler::finish`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum AsmError {
    /// A branch referenced a label that was never defined.
    UndefinedLabel(String),
    /// A label was defined twice.
    DuplicateLabel(String),
    /// The emitted code exceeded `i32::MAX` bytes.
    TooLarge,
}

impl std::fmt::Display for AsmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AsmError::UndefinedLabel(l) => write!(f, "undefined label `{l}`"),
            AsmError::DuplicateLabel(l) => write!(f, "duplicate label `{l}`"),
            AsmError::TooLarge => write!(f, "code blob too large"),
        }
    }
}

impl std::error::Error for AsmError {}

impl Assembler {
    /// Creates an empty assembler.
    pub fn new() -> Assembler {
        Assembler::default()
    }

    /// Current emitted size in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// `true` if nothing has been emitted yet.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Emits a fully resolved instruction.
    pub fn emit(&mut self, insn: Insn) {
        encode_into(&insn, &mut self.bytes);
    }

    /// Defines `name` at the current offset.
    ///
    /// Duplicates are reported by [`Assembler::finish`].
    pub fn label(&mut self, name: &str) {
        let off = self.bytes.len() as u32;
        if self.labels.insert(name.to_string(), off).is_some() {
            // Record the duplicate by re-inserting a sentinel pending branch
            // is clumsy; instead remember it via a poisoned label map entry.
            // Simplest robust choice: keep the first definition and flag on
            // finish by storing a marker.
            self.pending.push(PendingBranch::Jmp {
                at: usize::MAX,
                label: name.to_string(),
            });
        }
    }

    /// Emits `jmp` to a local label (resolved at [`Assembler::finish`]).
    pub fn jmp(&mut self, label: &str) {
        let at = self.bytes.len();
        self.emit(Insn::Jmp { rel: 0 });
        self.pending.push(PendingBranch::Jmp {
            at,
            label: label.to_string(),
        });
    }

    /// Emits `jcc` to a local label.
    pub fn jcc(&mut self, label: &str, cc: Cond) {
        let at = self.bytes.len();
        self.emit(Insn::Jcc { cc, rel: 0 });
        self.pending.push(PendingBranch::Jcc {
            at,
            label: label.to_string(),
        });
    }

    /// Emits `call rel32` to an external symbol, recording a fixup.
    ///
    /// If `record_callsite` is set the call-site offset is reported in
    /// [`CodeBlob::callsites`] so the compiler can emit a
    /// `multiverse.callsites` descriptor for it — the §3 "label exactly at
    /// the emitted call instruction".
    pub fn call_sym(&mut self, symbol: &str, record_callsite: bool) {
        let at = self.bytes.len() as u32;
        if record_callsite {
            self.callsites.push(at);
        }
        self.emit(Insn::CallRel { rel: 0 });
        self.fixups.push(Fixup {
            offset: at + 1,
            kind: FixupKind::Rel32 { next_insn: at + 5 },
            symbol: symbol.to_string(),
            addend: 0,
        });
    }

    /// Emits `call *[sym]` — an indirect call through a function pointer
    /// stored at the symbol's address (PV-Ops style).
    pub fn call_mem_sym(&mut self, symbol: &str) {
        let at = self.bytes.len() as u32;
        self.emit(Insn::CallMem { addr: 0 });
        self.fixups.push(Fixup {
            offset: at + 1,
            kind: FixupKind::Abs64,
            symbol: symbol.to_string(),
            addend: 0,
        });
    }

    /// Emits `lea dst, sym` (materialize a symbol address).
    pub fn lea_sym(&mut self, dst: Reg, symbol: &str) {
        let at = self.bytes.len() as u32;
        self.emit(Insn::Lea { dst, addr: 0 });
        self.fixups.push(Fixup {
            offset: at + 2,
            kind: FixupKind::Abs64,
            symbol: symbol.to_string(),
            addend: 0,
        });
    }

    /// Emits an absolute load from a global symbol (+ byte offset).
    pub fn load_sym(&mut self, dst: Reg, symbol: &str, addend: i64, width: Width, signed: bool) {
        let at = self.bytes.len() as u32;
        self.emit(Insn::LoadAbs {
            dst,
            addr: 0,
            width,
            signed,
        });
        self.fixups.push(Fixup {
            offset: at + 2,
            kind: FixupKind::Abs64,
            symbol: symbol.to_string(),
            addend,
        });
    }

    /// Emits an absolute store to a global symbol (+ byte offset).
    pub fn store_sym(&mut self, src: Reg, symbol: &str, addend: i64, width: Width) {
        let at = self.bytes.len() as u32;
        self.emit(Insn::StoreAbs {
            src,
            addr: 0,
            width,
        });
        self.fixups.push(Fixup {
            offset: at + 2,
            kind: FixupKind::Abs64,
            symbol: symbol.to_string(),
            addend,
        });
    }

    // Convenience emitters for common instructions.

    /// Emits `mov dst, src`.
    pub fn mov_rr(&mut self, dst: Reg, src: Reg) {
        self.emit(Insn::MovRR { dst, src });
    }

    /// Emits `mov dst, imm`.
    pub fn mov_ri(&mut self, dst: Reg, imm: i64) {
        self.emit(Insn::MovRI { dst, imm });
    }

    /// Emits `cmp a, imm`.
    pub fn cmp_ri(&mut self, a: Reg, imm: i64) {
        self.emit(Insn::CmpRI { a, imm });
    }

    /// Emits `cmp a, b`.
    pub fn cmp_rr(&mut self, a: Reg, b: Reg) {
        self.emit(Insn::CmpRR { a, b });
    }

    /// Emits `push src`.
    pub fn push(&mut self, src: Reg) {
        self.emit(Insn::Push { src });
    }

    /// Emits `pop dst`.
    pub fn pop(&mut self, dst: Reg) {
        self.emit(Insn::Pop { dst });
    }

    /// Emits `ret`.
    pub fn ret(&mut self) {
        self.emit(Insn::Ret);
    }

    /// Resolves local branches and returns the finished blob.
    pub fn finish(mut self) -> Result<CodeBlob, AsmError> {
        if self.bytes.len() > i32::MAX as usize {
            return Err(AsmError::TooLarge);
        }
        for p in std::mem::take(&mut self.pending) {
            let (at, label) = match &p {
                PendingBranch::Jmp { at, label } => (*at, label.clone()),
                PendingBranch::Jcc { at, label } => (*at, label.clone()),
            };
            if at == usize::MAX {
                return Err(AsmError::DuplicateLabel(label));
            }
            let patch_at = match &p {
                PendingBranch::Jmp { .. } => at + 1,
                PendingBranch::Jcc { .. } => at + 2,
            };
            let target = *self
                .labels
                .get(&label)
                .ok_or(AsmError::UndefinedLabel(label))? as i64;
            let insn_len = match &p {
                PendingBranch::Jmp { .. } => 5,
                PendingBranch::Jcc { .. } => 6,
            };
            // Blob offsets are bounded by the TooLarge check above, so
            // the shared checked displacement cannot fail here.
            let rel = crate::abi::checked_rel32((at as i64 + insn_len) as u64, target as u64)
                .ok_or(AsmError::TooLarge)?;
            self.bytes[patch_at..patch_at + 4].copy_from_slice(&rel.to_le_bytes());
        }
        Ok(CodeBlob {
            bytes: self.bytes,
            fixups: self.fixups,
            callsites: self.callsites,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::decode;

    #[test]
    fn forward_and_backward_branches_resolve() {
        let mut a = Assembler::new();
        a.label("top");
        a.cmp_ri(Reg::R0, 10);
        a.jcc("done", Cond::Ge);
        a.emit(Insn::AluRI {
            op: crate::insn::AluOp::Add,
            dst: Reg::R0,
            imm: 1,
        });
        a.jmp("top");
        a.label("done");
        a.ret();
        let blob = a.finish().unwrap();

        // Walk the code and check the branch targets land on instruction
        // boundaries.
        let mut offs = vec![];
        let mut pos = 0;
        while pos < blob.bytes.len() {
            offs.push(pos);
            let (_, n) = decode(&blob.bytes[pos..]).unwrap();
            pos += n;
        }
        // jcc at offset 10 (after 10-byte cmp), jmp after the 11-byte alu.
        let (jcc, n) = decode(&blob.bytes[10..]).unwrap();
        if let Insn::Jcc { rel, .. } = jcc {
            let target = 10 + n as i64 + rel as i64;
            assert!(offs.contains(&(target as usize)));
        } else {
            panic!("expected jcc, got {jcc}");
        }
    }

    #[test]
    fn undefined_label_is_error() {
        let mut a = Assembler::new();
        a.jmp("nowhere");
        assert_eq!(
            a.finish().unwrap_err(),
            AsmError::UndefinedLabel("nowhere".into())
        );
    }

    #[test]
    fn duplicate_label_is_error() {
        let mut a = Assembler::new();
        a.label("x");
        a.label("x");
        assert_eq!(
            a.finish().unwrap_err(),
            AsmError::DuplicateLabel("x".into())
        );
    }

    #[test]
    fn call_sym_records_fixup_and_callsite() {
        let mut a = Assembler::new();
        a.mov_ri(Reg::R0, 1);
        a.call_sym("spin_lock", true);
        a.call_sym("helper", false);
        a.ret();
        let blob = a.finish().unwrap();
        assert_eq!(blob.callsites, vec![10]);
        assert_eq!(blob.fixups.len(), 2);
        assert_eq!(blob.fixups[0].offset, 11);
        assert_eq!(blob.fixups[0].kind, FixupKind::Rel32 { next_insn: 15 });
        assert_eq!(blob.fixups[0].symbol, "spin_lock");
    }

    #[test]
    fn load_sym_fixup_points_at_addr_field() {
        let mut a = Assembler::new();
        a.load_sym(Reg::R1, "config_smp", 0, Width::W32, true);
        let blob = a.finish().unwrap();
        assert_eq!(blob.fixups[0].offset, 2);
        assert_eq!(blob.fixups[0].kind, FixupKind::Abs64);
    }
}
