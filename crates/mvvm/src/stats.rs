//! Execution statistics.

/// Counters accumulated while the machine runs.
///
/// Cycle counts live on the CPU's time-stamp counter; these counters cover
/// the event classes the paper reports on, e.g. the −40 % branch reduction
/// for multiversed `malloc(1)` (§6.2.2).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Stats {
    /// Instructions retired.
    pub instructions: u64,
    /// Conditional branches executed.
    pub branches: u64,
    /// Conditional branches taken.
    pub branches_taken: u64,
    /// Mispredicted control transfers (conditional, indirect and returns).
    pub mispredicts: u64,
    /// Direct calls.
    pub calls: u64,
    /// Indirect calls (register or memory).
    pub indirect_calls: u64,
    /// Returns.
    pub rets: u64,
    /// Bus-locked atomic operations.
    pub atomics: u64,
    /// Data loads.
    pub loads: u64,
    /// Data stores.
    pub stores: u64,
    /// Privileged-instruction traps taken in guest mode.
    pub guest_traps: u64,
    /// Hypercalls.
    pub hypercalls: u64,
    /// Bytes written to the output sink.
    pub out_bytes: u64,
    /// NOP instructions retired (inlined empty bodies show up here).
    pub nops: u64,
}

impl std::ops::AddAssign for Stats {
    fn add_assign(&mut self, d: Stats) {
        self.instructions += d.instructions;
        self.branches += d.branches;
        self.branches_taken += d.branches_taken;
        self.mispredicts += d.mispredicts;
        self.calls += d.calls;
        self.indirect_calls += d.indirect_calls;
        self.rets += d.rets;
        self.atomics += d.atomics;
        self.loads += d.loads;
        self.stores += d.stores;
        self.guest_traps += d.guest_traps;
        self.hypercalls += d.hypercalls;
        self.out_bytes += d.out_bytes;
        self.nops += d.nops;
    }
}

impl Stats {
    /// Difference `self - earlier`, counter-wise. Panics in debug builds if
    /// any counter went backwards.
    pub fn since(&self, earlier: &Stats) -> Stats {
        Stats {
            instructions: self.instructions - earlier.instructions,
            branches: self.branches - earlier.branches,
            branches_taken: self.branches_taken - earlier.branches_taken,
            mispredicts: self.mispredicts - earlier.mispredicts,
            calls: self.calls - earlier.calls,
            indirect_calls: self.indirect_calls - earlier.indirect_calls,
            rets: self.rets - earlier.rets,
            atomics: self.atomics - earlier.atomics,
            loads: self.loads - earlier.loads,
            stores: self.stores - earlier.stores,
            guest_traps: self.guest_traps - earlier.guest_traps,
            hypercalls: self.hypercalls - earlier.hypercalls,
            out_bytes: self.out_bytes - earlier.out_bytes,
            nops: self.nops - earlier.nops,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn since_subtracts() {
        let a = Stats {
            instructions: 10,
            branches: 4,
            ..Stats::default()
        };
        let b = Stats {
            instructions: 25,
            branches: 9,
            ..Stats::default()
        };
        let d = b.since(&a);
        assert_eq!(d.instructions, 15);
        assert_eq!(d.branches, 5);
    }
}
