//! Deterministic workload-input generation.
//!
//! The grep experiment of §6.2.3 runs over "a 2 GiB large file of
//! hexadecimal-formatted random numbers" placed on a ramdisk. This module
//! generates the same *kind* of corpus — lines of lowercase hex digits —
//! at configurable (laptop-scale) sizes, deterministically seeded so every
//! benchmark run sees identical bytes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates `size` bytes of newline-separated hexadecimal random text.
///
/// Each line is one hexadecimal-formatted random number (8–16 digits),
/// as a number-per-line dump produces. The digits `a`–`f` occur
/// naturally, so patterns like the paper's `a.a` match at a realistic
/// density.
pub fn hex_corpus(size: usize, seed: u64) -> Vec<u8> {
    const HEX: &[u8; 16] = b"0123456789abcdef";
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(size);
    while out.len() < size {
        let line_len = rng.gen_range(8..=16).min(size - out.len());
        for _ in 0..line_len {
            out.push(HEX[rng.gen_range(0..16)]);
        }
        if out.len() < size {
            out.push(b'\n');
        }
    }
    out.truncate(size);
    out
}

/// Counts the matches of the paper's pattern `a.a` (an `a`, any one
/// character, another `a`) in `text` — the Rust reference implementation
/// the MVC matcher is validated against. Overlapping matches count, as
/// a scan-every-position matcher sees them.
pub fn count_a_any_a(text: &[u8]) -> u64 {
    let mut n = 0;
    for w in text.windows(3) {
        if w[0] == b'a' && w[2] == b'a' && w[1] != b'\n' {
            n += 1;
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_deterministic() {
        assert_eq!(hex_corpus(1000, 7), hex_corpus(1000, 7));
        assert_ne!(hex_corpus(1000, 7), hex_corpus(1000, 8));
    }

    #[test]
    fn corpus_is_hex_lines() {
        let c = hex_corpus(4096, 1);
        assert_eq!(c.len(), 4096);
        assert!(c
            .iter()
            .all(|&b| b == b'\n' || b.is_ascii_digit() || (b'a'..=b'f').contains(&b)));
        assert!(c.contains(&b'\n'));
    }

    #[test]
    fn pattern_counter_reference() {
        assert_eq!(count_a_any_a(b"axa"), 1);
        assert_eq!(count_a_any_a(b"aaa"), 1);
        assert_eq!(count_a_any_a(b"aaaa"), 2, "overlapping matches");
        assert_eq!(count_a_any_a(b"a\na"), 0, "no match across newline");
        assert_eq!(count_a_any_a(b"bcb"), 0);
        // Matches exist at a realistic density in generated corpora.
        let c = hex_corpus(10_000, 3);
        let n = count_a_any_a(&c);
        assert!(n > 10, "{n}");
    }
}
