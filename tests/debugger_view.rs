//! §7.2 — the debugger's view of a patched program: the static
//! disassembly of a patched call site may still *look* like the original
//! call (GDB shows the original), but stepping (the retirement trace)
//! lands in the committed variant.

use multiverse::Program;

const SRC: &str = r#"
    multiverse bool turbo;
    multiverse i64 engine(void) {
        if (turbo) { return 2; }
        return 1;
    }
    i64 drive(void) { return engine(); }
    i64 main(void) { return 0; }
"#;

#[test]
fn trace_steps_into_the_variant() {
    let program = Program::build(&[("t.c", SRC)]).unwrap();
    let mut w = program.boot();
    w.set("turbo", 1).unwrap();
    w.commit().unwrap();

    let exe = program.exe();
    let generic = exe.symbol("engine").unwrap();
    let variant = exe.symbol("engine.turbo=1").unwrap();
    let variant_end = exe
        .symbols
        .values()
        .filter(|&&a| a > variant)
        .min()
        .copied()
        .unwrap_or(variant + 64);

    w.machine.enable_trace(256);
    assert_eq!(w.call("drive", &[]).unwrap(), 2);
    let trace = w.machine.take_trace().unwrap();

    // Execution went through the variant body…
    assert!(
        trace.touched(variant, variant_end - variant),
        "variant must retire instructions:\n{}",
        trace.render()
    );
    // …and never through the generic body *behind* its entry jump (the
    // first 5 bytes are the patched jump; anything after must not run).
    assert!(
        !trace.touched(generic + 5, 16),
        "generic body must not execute:\n{}",
        trace.render()
    );
}

#[test]
fn trace_documents_the_nop_erasure() {
    // For an empty variant the call site itself retires a NOP — the
    // "instruction history" a debugger user would see.
    let src = r#"
        multiverse bool log_on;
        u64 logged;
        multiverse void maybe_log(void) {
            if (log_on) { logged = logged + 1; }
        }
        i64 work(void) { maybe_log(); return 7; }
        i64 main(void) { return 0; }
    "#;
    let program = Program::build(&[("t.c", src)]).unwrap();
    let mut w = program.boot();
    w.set("log_on", 0).unwrap();
    w.commit().unwrap();

    w.machine.enable_trace(64);
    assert_eq!(w.call("work", &[]).unwrap(), 7);
    let trace = w.machine.take_trace().unwrap();
    let nops = trace.entries().filter(|(_, insn)| insn.is_nop()).count();
    assert!(
        nops >= 1,
        "erased call site retires a NOP:\n{}",
        trace.render()
    );
    // And no call instruction retired at all.
    assert!(
        trace
            .entries()
            .all(|(_, insn)| !matches!(insn, multiverse::mvasm::Insn::CallRel { .. })),
        "{}",
        trace.render()
    );
}
