//! The MVC type system — integer-like scalars, enums, pointers and the
//! opaque `fnptr`.

use core::fmt;

/// A scalar or pointer type.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Type {
    /// No value (function return only).
    Void,
    /// Boolean (1 byte, unsigned storage).
    Bool,
    /// Sized integer.
    Int {
        /// Width in bytes: 1, 2, 4 or 8.
        width: u8,
        /// Signedness.
        signed: bool,
    },
    /// A declared enum (stored as `i32`).
    Enum(String),
    /// Pointer to an element type (8 bytes).
    Ptr(Box<Type>),
    /// Opaque callable function pointer (8 bytes).
    Fnptr,
}

impl Type {
    /// `i32`, the default int.
    pub const I32: Type = Type::Int {
        width: 4,
        signed: true,
    };
    /// `i64`.
    pub const I64: Type = Type::Int {
        width: 8,
        signed: true,
    };
    /// `u8`.
    pub const U8: Type = Type::Int {
        width: 1,
        signed: false,
    };

    /// Storage size in bytes.
    pub fn size(&self) -> u64 {
        match self {
            Type::Void => 0,
            Type::Bool => 1,
            Type::Int { width, .. } => *width as u64,
            Type::Enum(_) => 4,
            Type::Ptr(_) | Type::Fnptr => 8,
        }
    }

    /// Signedness of loads of this type.
    pub fn signed(&self) -> bool {
        match self {
            Type::Int { signed, .. } => *signed,
            Type::Enum(_) => true,
            _ => false,
        }
    }

    /// `true` for types usable as a configuration switch (§2: signed and
    /// unsigned integer types, enumeration types — plus function pointers
    /// via the §4 extension).
    pub fn switchable(&self) -> bool {
        matches!(
            self,
            Type::Bool | Type::Int { .. } | Type::Enum(_) | Type::Fnptr
        )
    }

    /// `true` if values of the type live in an integer register.
    pub fn scalar(&self) -> bool {
        !matches!(self, Type::Void)
    }

    /// Element type behind a pointer, if any.
    pub fn pointee(&self) -> Option<&Type> {
        match self {
            Type::Ptr(t) => Some(t),
            _ => None,
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Void => write!(f, "void"),
            Type::Bool => write!(f, "bool"),
            Type::Int { width, signed } => {
                write!(f, "{}{}", if *signed { "i" } else { "u" }, width * 8)
            }
            Type::Enum(n) => write!(f, "enum {n}"),
            Type::Ptr(t) => write!(f, "{t}*"),
            Type::Fnptr => write!(f, "fnptr"),
        }
    }
}

/// A declared enumeration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EnumDef {
    /// Enum name.
    pub name: String,
    /// `(enumerator, value)` pairs in declaration order.
    pub items: Vec<(String, i64)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes() {
        assert_eq!(Type::Void.size(), 0);
        assert_eq!(Type::Bool.size(), 1);
        assert_eq!(Type::I32.size(), 4);
        assert_eq!(Type::Ptr(Box::new(Type::U8)).size(), 8);
        assert_eq!(Type::Fnptr.size(), 8);
        assert_eq!(Type::Enum("e".into()).size(), 4);
    }

    #[test]
    fn switchable_types() {
        assert!(Type::Bool.switchable());
        assert!(Type::I64.switchable());
        assert!(Type::Enum("mode".into()).switchable());
        assert!(Type::Fnptr.switchable());
        assert!(!Type::Ptr(Box::new(Type::U8)).switchable());
        assert!(!Type::Void.switchable());
    }

    #[test]
    fn display() {
        assert_eq!(Type::I32.to_string(), "i32");
        assert_eq!(Type::U8.to_string(), "u8");
        assert_eq!(Type::Ptr(Box::new(Type::U8)).to_string(), "u8*");
    }
}
